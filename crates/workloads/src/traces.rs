//! Synthetic workload traces for the motivating applications in §1:
//! virtual-machine consolidation in a datacenter (busy time = powered-on
//! host time) and lightpath requests in an optical network (busy time =
//! OADM fiber cost).
//!
//! The paper evaluates nothing empirically; these generators stand in for
//! the production traces its motivation cites, with the standard shape
//! assumptions (Poisson arrivals, heavy-tailed service times).

use abt_core::{Instance, Job};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters for the VM-consolidation trace.
#[derive(Debug, Clone, Copy)]
pub struct VmTraceConfig {
    /// Number of VM lease requests.
    pub n: usize,
    /// Host capacity (VMs per host).
    pub g: usize,
    /// Mean inter-arrival gap in ticks (exponential).
    pub mean_interarrival: f64,
    /// Mean lease duration in ticks (the tail is Pareto-ish by mixing).
    pub mean_duration: f64,
    /// Fraction of batch (flexible) requests; the rest are interactive
    /// (rigid interval jobs).
    pub flexible_fraction: f64,
    /// Window slack of a flexible request as a multiple of its duration.
    pub slack_factor: f64,
}

impl Default for VmTraceConfig {
    fn default() -> Self {
        VmTraceConfig {
            n: 100,
            g: 8,
            mean_interarrival: 10.0,
            mean_duration: 60.0,
            flexible_fraction: 0.4,
            slack_factor: 1.5,
        }
    }
}

/// Generates a VM lease trace: arrival-ordered jobs, a heavy-ish duration
/// tail (80/20 exponential mixture with a 5× tail), and a mix of rigid and
/// flexible leases.
pub fn vm_trace(cfg: &VmTraceConfig, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = 0f64;
    let mut jobs = Vec::with_capacity(cfg.n);
    for _ in 0..cfg.n {
        t += exp(&mut rng, cfg.mean_interarrival);
        let mean = if rng.gen_bool(0.2) {
            cfg.mean_duration * 5.0
        } else {
            cfg.mean_duration
        };
        let len = exp(&mut rng, mean).max(1.0).round() as i64;
        let r = t.round() as i64;
        let slack = if rng.gen_bool(cfg.flexible_fraction) {
            (len as f64 * cfg.slack_factor).round() as i64
        } else {
            0
        };
        jobs.push(Job::new(r, r + len + slack, len));
    }
    Instance::new(jobs, cfg.g).unwrap()
}

/// Parameters for the optical lightpath trace.
#[derive(Debug, Clone, Copy)]
pub struct OpticalTraceConfig {
    /// Number of lightpath requests.
    pub n: usize,
    /// Wavelengths per fiber (the capacity `g`).
    pub g: usize,
    /// Number of "sites" along the line network; requests span contiguous
    /// site ranges (so durations are discrete hop counts).
    pub sites: i64,
}

impl Default for OpticalTraceConfig {
    fn default() -> Self {
        OpticalTraceConfig {
            n: 80,
            g: 4,
            sites: 40,
        }
    }
}

/// Generates interval jobs shaped like line-network lightpath requests
/// (the Kumar–Rudra fiber-minimization setting): each request occupies a
/// contiguous range of links `[i, j)`.
pub fn optical_trace(cfg: &OpticalTraceConfig, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let jobs = (0..cfg.n)
        .map(|_| {
            let a = rng.gen_range(0..cfg.sites - 1);
            // Short hops dominate; occasional long-haul paths.
            let max_hop = if rng.gen_bool(0.15) {
                cfg.sites - a
            } else {
                (cfg.sites / 8).max(2)
            };
            let len = rng.gen_range(1..=max_hop.min(cfg.sites - a));
            Job::interval(a, a + len)
        })
        .collect();
    Instance::new(jobs, cfg.g).unwrap()
}

fn exp(rng: &mut SmallRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(1e-9..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_trace_is_deterministic_and_mixed() {
        let cfg = VmTraceConfig::default();
        let a = vm_trace(&cfg, 42);
        let b = vm_trace(&cfg, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.n);
        assert!(
            a.jobs().iter().any(|j| j.slack() > 0),
            "some flexible leases"
        );
        assert!(a.jobs().iter().any(|j| j.slack() == 0), "some rigid leases");
    }

    #[test]
    fn vm_trace_arrivals_increase() {
        let inst = vm_trace(&VmTraceConfig::default(), 7);
        let releases: Vec<i64> = inst.jobs().iter().map(|j| j.release).collect();
        let mut sorted = releases.clone();
        sorted.sort_unstable();
        assert_eq!(releases, sorted);
    }

    #[test]
    fn optical_trace_is_interval_and_bounded() {
        let cfg = OpticalTraceConfig::default();
        let inst = optical_trace(&cfg, 3);
        assert!(inst.is_interval_instance());
        assert!(inst.max_deadline() <= cfg.sites);
        assert_eq!(inst.len(), cfg.n);
    }
}

//! # abt-workloads
//!
//! Workload generators for the `active-busy-time` workspace:
//!
//! * [`gadgets`] — every gadget/worked example of the paper with its
//!   closed-form bounds (Fig. 1, Fig. 3, the §3.5 integrality gap,
//!   Figs. 6–12), ε-constructions scaled to exact integer ticks;
//! * [`busy`] — busy-time families: machine-capacity `g` sweeps over a
//!   fixed job set, laminar nested-window fan-in instances, and
//!   release-ordered arrival streams (E24/E25);
//! * [`random`] — uniform, proper, clique, laminar, unit,
//!   feasibility-guaranteed, VUB-heavy nested-window, and many-components
//!   block-diagonal families for the comparison experiments;
//! * [`online`] — the online-arrivals stream (jobs arriving stripe by
//!   stripe from repeated window-layout templates), the stress family for
//!   the warm-start/incremental subsystem;
//! * [`traces`] — synthetic VM-consolidation and optical-lightpath traces
//!   standing in for the motivating applications of §1.

#![warn(missing_docs)]

pub mod busy;
pub mod gadgets;
pub mod online;
pub mod random;
pub mod traces;

pub use busy::{
    busy_g_sweep, busy_laminar_nested, busy_release_stream, BusyLaminarConfig, BusyStreamConfig,
};
pub use gadgets::{
    fig10_flexible_factor4, fig1_example, fig3_minimal_tight, fig6_greedy_tracking_tight,
    fig8_interval_tight, fig9_dp_profile_tight, integrality_gap, Fig10, Fig3, Fig6, Fig8, Fig9,
    IntegralityGap, SCALE,
};
pub use online::{online_arrivals, OnlineArrivals, OnlineArrivalsConfig};
pub use random::{
    many_components, random_active_feasible, random_clique, random_flexible, random_interval,
    random_laminar, random_proper, random_unit, vub_heavy, ManyComponentsConfig, RandomConfig,
    VubHeavyConfig,
};
pub use traces::{optical_trace, vm_trace, OpticalTraceConfig, VmTraceConfig};

//! Random instance families for the empirical comparison experiments
//! (E10/E11) and the property-test corpus.

use abt_core::{Instance, Job, Time};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of a random family.
#[derive(Debug, Clone, Copy)]
pub struct RandomConfig {
    /// Number of jobs.
    pub n: usize,
    /// Capacity.
    pub g: usize,
    /// Horizon length in ticks/slots.
    pub horizon: i64,
    /// Maximum job length.
    pub max_len: i64,
    /// Extra window slack as a multiple of the length (0 = interval jobs).
    pub slack_factor: f64,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            n: 20,
            g: 3,
            horizon: 100,
            max_len: 10,
            slack_factor: 1.0,
        }
    }
}

/// Uniform random flexible instance (windows = length × (1 + slack)).
pub fn random_flexible(cfg: &RandomConfig, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let jobs = (0..cfg.n)
        .map(|_| {
            let len = rng.gen_range(1..=cfg.max_len);
            let slack = (len as f64 * cfg.slack_factor).round() as i64;
            let latest_release = (cfg.horizon - len - slack).max(0);
            let r = rng.gen_range(0..=latest_release);
            Job::new(r, r + len + slack, len)
        })
        .collect();
    Instance::new(jobs, cfg.g).unwrap()
}

/// Uniform random interval instance.
pub fn random_interval(cfg: &RandomConfig, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let jobs = (0..cfg.n)
        .map(|_| {
            let len = rng.gen_range(1..=cfg.max_len);
            let r = rng.gen_range(0..=(cfg.horizon - len).max(0));
            Job::interval(r, r + len)
        })
        .collect();
    Instance::new(jobs, cfg.g).unwrap()
}

/// Random unit-length active-time instance (always feasible for `g ≥ 1` if
/// windows have at least one slot, which construction guarantees; overall
/// feasibility still depends on congestion — use
/// [`random_active_feasible`] when a feasible instance is required).
pub fn random_unit(cfg: &RandomConfig, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let jobs = (0..cfg.n)
        .map(|_| {
            let r = rng.gen_range(0..cfg.horizon);
            let d = r + 1 + rng.gen_range(0..=(cfg.horizon - r - 1).min(cfg.max_len));
            Job::new(r, d, 1)
        })
        .collect();
    Instance::new(jobs, cfg.g).unwrap()
}

/// Random active-time instance guaranteed feasible: jobs are carved out of
/// a reference schedule (each job's units are placed first, then the window
/// is the hull of its units plus slack), so opening the whole horizon
/// always works.
pub fn random_active_feasible(cfg: &RandomConfig, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut load = vec![0usize; cfg.horizon as usize + 1];
    let mut jobs = Vec::with_capacity(cfg.n);
    for _ in 0..cfg.n {
        let len = rng.gen_range(1..=cfg.max_len.min(cfg.horizon));
        // Find a placement window with spare capacity.
        let mut placed = None;
        for _ in 0..50 {
            let start = rng.gen_range(0..=(cfg.horizon - len)) as usize;
            let slots = start..start + len as usize;
            if slots.clone().all(|s| load[s] < cfg.g) {
                placed = Some(slots);
                break;
            }
        }
        let Some(slots) = placed else {
            continue; // skip a job rather than break feasibility
        };
        for s in slots.clone() {
            load[s] += 1;
        }
        let slack = (len as f64 * cfg.slack_factor).round() as i64;
        let r = (slots.start as i64 - rng.gen_range(0..=slack)).max(0);
        let d = (slots.end as i64 + rng.gen_range(0..=slack)).min(cfg.horizon);
        jobs.push(Job::new(r, d, len));
    }
    Instance::new(jobs, cfg.g).unwrap()
}

/// A random **proper** interval instance: no window contains another
/// (starts and ends are both strictly increasing).
pub fn random_proper(cfg: &RandomConfig, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut starts: Vec<Time> = (0..cfg.n).map(|_| rng.gen_range(0..cfg.horizon)).collect();
    starts.sort_unstable();
    starts.dedup();
    let mut jobs = Vec::with_capacity(starts.len());
    let mut prev_end = i64::MIN;
    for &s in &starts {
        let min_end = (prev_end + 1).max(s + 1);
        let end = min_end + rng.gen_range(0..cfg.max_len);
        jobs.push(Job::interval(s, end));
        prev_end = end;
    }
    Instance::new(jobs, cfg.g).unwrap()
}

/// A random **clique** instance: every window contains the common time
/// point `horizon/2`.
pub fn random_clique(cfg: &RandomConfig, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mid = cfg.horizon / 2;
    let jobs = (0..cfg.n)
        .map(|_| {
            let left = rng.gen_range(0..=mid);
            let right = mid + 1 + rng.gen_range(0..=(cfg.horizon - mid - 1).max(0));
            Job::interval(left, right)
        })
        .collect();
    Instance::new(jobs, cfg.g).unwrap()
}

/// A random **laminar** interval instance: any two windows are disjoint or
/// nested (generated by recursive subdivision).
pub fn random_laminar(cfg: &RandomConfig, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut jobs = Vec::new();
    fn subdivide(rng: &mut SmallRng, lo: Time, hi: Time, budget: &mut usize, jobs: &mut Vec<Job>) {
        if *budget == 0 || hi - lo < 2 {
            return;
        }
        *budget -= 1;
        jobs.push(Job::interval(lo, hi));
        // Split into two disjoint children with a gap.
        if hi - lo >= 4 && rng.gen_bool(0.8) {
            let mid = rng.gen_range(lo + 1..hi - 1);
            subdivide(rng, lo, mid, budget, jobs);
            subdivide(rng, mid + 1, hi, budget, jobs);
        }
    }
    let mut budget = cfg.n;
    while budget > 0 {
        let before = budget;
        subdivide(&mut rng, 0, cfg.horizon, &mut budget, &mut jobs);
        if budget == before {
            break;
        }
    }
    Instance::new(jobs, cfg.g).unwrap()
}

/// Parameters of the VUB-heavy nested-window family (see [`vub_heavy`]).
#[derive(Debug, Clone, Copy)]
pub struct VubHeavyConfig {
    /// Target number of jobs (the generator may stop short when the
    /// capacity of the nesting is exhausted).
    pub n: usize,
    /// Capacity `g`.
    pub g: usize,
    /// Horizon length.
    pub horizon: i64,
    /// Maximum job length.
    pub max_len: i64,
    /// Jobs sharing each nested window.
    pub fan_in: usize,
}

impl Default for VubHeavyConfig {
    fn default() -> Self {
        VubHeavyConfig {
            n: 24,
            g: 4,
            horizon: 64,
            max_len: 4,
            fan_in: 4,
        }
    }
}

/// A **VUB-heavy** feasible active-time family: nested (laminar) windows
/// with `fan_in` jobs sharing each window, after the structured instances
/// of Cao et al. (arXiv:2207.12507). Deep slot runs lie inside *every*
/// ancestor window, so the per-interval job fan-in — and with it the
/// number of `x_{I,j} ≤ Y_I` caps — is as large as the nesting allows:
/// the stress family for the VUB-aware simplex. Feasibility is guaranteed
/// by carving each job's units out of a reference schedule, as in
/// [`random_active_feasible`].
pub fn vub_heavy(cfg: &VubHeavyConfig, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut load = vec![0usize; cfg.horizon as usize + 1];
    let mut jobs = Vec::with_capacity(cfg.n);
    // Breadth-first over the laminar window tree: the root window first,
    // then its halves, their halves, … — `fan_in` jobs per window.
    let mut queue: std::collections::VecDeque<(Time, Time)> = std::collections::VecDeque::new();
    queue.push_back((0, cfg.horizon));
    while let Some((lo, hi)) = queue.pop_front() {
        if jobs.len() >= cfg.n || hi - lo < 2 {
            continue;
        }
        for _ in 0..cfg.fan_in {
            if jobs.len() >= cfg.n {
                break;
            }
            let len = rng.gen_range(1..=cfg.max_len.min(hi - lo));
            // Reserve the units somewhere inside (lo, hi] with spare
            // capacity; skip the job if the window is saturated.
            let mut placed = None;
            for _ in 0..50 {
                let start = (lo + rng.gen_range(0..=(hi - lo - len))) as usize;
                let slots = start..start + len as usize;
                if slots.clone().all(|s| load[s] < cfg.g) {
                    placed = Some(slots);
                    break;
                }
            }
            let Some(slots) = placed else {
                continue;
            };
            for s in slots {
                load[s] += 1;
            }
            jobs.push(Job::new(lo, hi, len));
        }
        let mid = lo + (hi - lo) / 2;
        queue.push_back((lo, mid));
        queue.push_back((mid, hi));
    }
    Instance::new(jobs, cfg.g).unwrap()
}

/// Parameters of the many-components family (see [`many_components`]).
#[derive(Debug, Clone, Copy)]
pub struct ManyComponentsConfig {
    /// Number of isolated clusters (connected components of the job-window
    /// interval graph).
    pub components: usize,
    /// Target jobs per cluster (the generator may stop short when a
    /// cluster's capacity is exhausted).
    pub jobs_per_component: usize,
    /// Capacity `g`.
    pub g: usize,
    /// Horizon width of each cluster.
    pub span: i64,
    /// Idle gap between consecutive clusters (≥ 1 keeps windows disjoint).
    pub gap: i64,
    /// Maximum job length.
    pub max_len: i64,
    /// Extra window slack as a multiple of the length, clamped to the
    /// cluster (slack never bridges a gap).
    pub slack_factor: f64,
}

impl Default for ManyComponentsConfig {
    fn default() -> Self {
        ManyComponentsConfig {
            components: 8,
            jobs_per_component: 5,
            g: 3,
            span: 16,
            gap: 4,
            max_len: 4,
            slack_factor: 1.0,
        }
    }
}

/// A **many-components** feasible active-time family: `components`
/// isolated job clusters separated by idle gaps, so the job-window
/// interval graph has exactly `components` connected components and LP1's
/// constraint matrix is block-diagonal — the stress family for the
/// decomposition layer (`DecomposeMode::Auto` in `abt-active::lp_model`).
/// Each cluster is generated like [`random_active_feasible`] (jobs carved
/// out of a reference schedule, windows clamped to the cluster), so the
/// whole instance is feasible by construction.
pub fn many_components(cfg: &ManyComponentsConfig, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut jobs = Vec::with_capacity(cfg.components * cfg.jobs_per_component);
    for c in 0..cfg.components {
        let base = c as i64 * (cfg.span + cfg.gap);
        let mut load = vec![0usize; cfg.span as usize + 1];
        for _ in 0..cfg.jobs_per_component {
            let len = rng.gen_range(1..=cfg.max_len.min(cfg.span));
            let mut placed = None;
            for _ in 0..50 {
                let start = rng.gen_range(0..=(cfg.span - len)) as usize;
                let slots = start..start + len as usize;
                if slots.clone().all(|s| load[s] < cfg.g) {
                    placed = Some(slots);
                    break;
                }
            }
            let Some(slots) = placed else {
                continue; // skip a job rather than break feasibility
            };
            for s in slots.clone() {
                load[s] += 1;
            }
            let slack = (len as f64 * cfg.slack_factor).round() as i64;
            let r = (slots.start as i64 - rng.gen_range(0..=slack)).max(0);
            let d = (slots.end as i64 + rng.gen_range(0..=slack)).min(cfg.span);
            jobs.push(Job::new(base + r, base + d, len));
        }
    }
    Instance::new(jobs, cfg.g).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn many_components_clusters_are_isolated_and_feasible() {
        let cfg = ManyComponentsConfig::default();
        let inst = many_components(&cfg, 5);
        assert_eq!(many_components(&cfg, 5), inst, "deterministic per seed");
        assert!(inst.len() >= cfg.components, "every cluster places jobs");
        // Each job's window lies inside one cluster stripe, so windows from
        // different stripes never overlap.
        let stride = cfg.span + cfg.gap;
        let mut seen = std::collections::BTreeSet::new();
        for j in inst.jobs() {
            let c = j.release / stride;
            assert!(
                j.release >= c * stride && j.deadline <= c * stride + cfg.span,
                "{j:?} escapes its cluster"
            );
            seen.insert(c);
        }
        assert_eq!(seen.len(), cfg.components, "all clusters populated");
        // Per-cluster load ≤ g by construction: the mass bound holds.
        assert!(inst.total_length() <= cfg.g as i64 * cfg.components as i64 * cfg.span);
    }

    #[test]
    fn vub_heavy_is_nested_and_feasible() {
        let cfg = VubHeavyConfig::default();
        let inst = vub_heavy(&cfg, 3);
        assert!(!inst.jobs().is_empty());
        assert_eq!(vub_heavy(&cfg, 3), inst, "deterministic per seed");
        // Laminar windows: any two are nested or disjoint.
        for a in inst.jobs() {
            for b in inst.jobs() {
                let disjoint = a.deadline <= b.release || b.deadline <= a.release;
                let nested = (a.release <= b.release && b.deadline <= a.deadline)
                    || (b.release <= a.release && a.deadline <= b.deadline);
                assert!(disjoint || nested, "{a:?} vs {b:?}");
            }
        }
        // The reference-schedule construction keeps per-slot load ≤ g, so
        // opening the whole horizon is feasible: mass ≤ g·horizon.
        let mass: i64 = inst.jobs().iter().map(|j| j.length).sum();
        assert!(mass <= cfg.g as i64 * cfg.horizon);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let cfg = RandomConfig::default();
        assert_eq!(random_interval(&cfg, 7), random_interval(&cfg, 7));
        assert_ne!(random_interval(&cfg, 7), random_interval(&cfg, 8));
    }

    #[test]
    fn interval_family_is_interval() {
        let cfg = RandomConfig::default();
        for seed in 0..5 {
            assert!(random_interval(&cfg, seed).is_interval_instance());
        }
    }

    #[test]
    fn flexible_family_has_slack() {
        let cfg = RandomConfig {
            slack_factor: 2.0,
            ..Default::default()
        };
        let inst = random_flexible(&cfg, 3);
        assert!(inst.jobs().iter().any(|j| j.slack() > 0));
    }

    #[test]
    fn unit_family_is_unit() {
        let cfg = RandomConfig::default();
        let inst = random_unit(&cfg, 1);
        assert!(inst.jobs().iter().all(|j| j.length == 1));
    }

    #[test]
    fn feasible_family_is_feasible_by_construction() {
        // Whole-horizon load never exceeds g by construction; verify the
        // mass bound is consistent.
        for seed in 0..5 {
            let cfg = RandomConfig {
                n: 30,
                g: 2,
                horizon: 40,
                max_len: 6,
                slack_factor: 0.5,
            };
            let inst = random_active_feasible(&cfg, seed);
            assert!(inst.total_length() <= cfg.horizon * cfg.g as i64);
        }
    }

    #[test]
    fn proper_family_is_proper() {
        let inst = random_proper(&RandomConfig::default(), 11);
        let jobs = inst.jobs();
        for a in jobs {
            for b in jobs {
                let nested = a.release < b.release && b.deadline < a.deadline;
                assert!(!nested, "window {b} nested in {a}");
            }
        }
    }

    #[test]
    fn clique_family_shares_a_point() {
        let cfg = RandomConfig::default();
        let inst = random_clique(&cfg, 5);
        let mid = cfg.horizon / 2;
        assert!(inst
            .jobs()
            .iter()
            .all(|j| j.release <= mid && mid < j.deadline));
    }

    #[test]
    fn laminar_family_is_laminar() {
        let inst = random_laminar(
            &RandomConfig {
                n: 15,
                ..Default::default()
            },
            9,
        );
        let jobs = inst.jobs();
        for a in jobs {
            for b in jobs {
                let aw = a.window();
                let bw = b.window();
                let crossing =
                    aw.overlaps(&bw) && !aw.contains_interval(&bw) && !bw.contains_interval(&aw);
                assert!(!crossing, "{aw} crosses {bw}");
            }
        }
    }
}

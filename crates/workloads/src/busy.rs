//! Busy-time workload families for the E24/E25 experiments: a
//! machine-capacity `g` sweep over a fixed interval job set, a laminar
//! nested-window family with per-window fan-in (after the structured
//! instances of Nested Active-Time Scheduling, arXiv:2207.12507), and a
//! release-ordered arrival stream (after the flow-time streams of
//! Davies–Khuller–Zhang).

use abt_core::{Instance, Job, Time};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::random::RandomConfig;

/// One fixed interval job set instantiated at every capacity in `gs`
/// (`cfg.g` is ignored): the family for the busy `g`-sweep scaling
/// experiment. Returns `(g, instance)` pairs; each instance shares the
/// same jobs, so cost differences are attributable to `g` alone.
pub fn busy_g_sweep(cfg: &RandomConfig, gs: &[usize], seed: u64) -> Vec<(usize, Instance)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let jobs: Vec<Job> = (0..cfg.n)
        .map(|_| {
            let len = rng.gen_range(1..=cfg.max_len);
            let r = rng.gen_range(0..=(cfg.horizon - len).max(0));
            Job::interval(r, r + len)
        })
        .collect();
    gs.iter()
        .map(|&g| (g, Instance::new(jobs.clone(), g).unwrap()))
        .collect()
}

/// Parameters of the laminar nested busy family (see [`busy_laminar_nested`]).
#[derive(Debug, Clone, Copy)]
pub struct BusyLaminarConfig {
    /// Target number of jobs.
    pub n: usize,
    /// Capacity `g`.
    pub g: usize,
    /// Horizon length.
    pub horizon: i64,
    /// Interval jobs sharing each nested window.
    pub fan_in: usize,
}

impl Default for BusyLaminarConfig {
    fn default() -> Self {
        BusyLaminarConfig {
            n: 24,
            g: 3,
            horizon: 64,
            fan_in: 3,
        }
    }
}

/// A laminar **interval** family: `fan_in` identical interval jobs on
/// every window of a breadth-first laminar tree over the horizon. Any
/// two windows are nested or disjoint, and the demand profile steps by
/// `fan_in` at every nesting boundary — the busy-side analogue of
/// [`vub_heavy`](crate::random::vub_heavy), stressing the per-segment
/// LP and the level/band packing of the 2-approximations.
pub fn busy_laminar_nested(cfg: &BusyLaminarConfig, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut jobs: Vec<Job> = Vec::with_capacity(cfg.n);
    let mut queue: std::collections::VecDeque<(Time, Time)> = std::collections::VecDeque::new();
    queue.push_back((0, cfg.horizon));
    while let Some((lo, hi)) = queue.pop_front() {
        if jobs.len() >= cfg.n || hi - lo < 2 {
            continue;
        }
        for _ in 0..cfg.fan_in {
            if jobs.len() >= cfg.n {
                break;
            }
            jobs.push(Job::interval(lo, hi));
        }
        // Split at a jittered midpoint so segment lengths vary.
        let mid = lo + (hi - lo) / 2 + rng.gen_range(0..=((hi - lo) / 8).max(0)) as Time
            - ((hi - lo) / 16).max(0);
        let mid = mid.clamp(lo + 1, hi - 1);
        queue.push_back((lo, mid));
        queue.push_back((mid, hi));
    }
    Instance::new(jobs, cfg.g).unwrap()
}

/// Parameters of the release-ordered busy stream (see [`busy_release_stream`]).
#[derive(Debug, Clone, Copy)]
pub struct BusyStreamConfig {
    /// Number of jobs.
    pub n: usize,
    /// Capacity `g`.
    pub g: usize,
    /// Maximum idle gap between consecutive releases.
    pub max_gap: i64,
    /// Maximum job length.
    pub max_len: i64,
}

impl Default for BusyStreamConfig {
    fn default() -> Self {
        BusyStreamConfig {
            n: 32,
            g: 3,
            max_gap: 4,
            max_len: 12,
        }
    }
}

/// A release-ordered **interval** arrival stream: job `k` is released at
/// a non-decreasing time (previous release plus a random gap `0..=max_gap`)
/// and runs for a random length. Sorted arrivals with overlapping tails
/// are the natural input of the online/first-fit heuristics and the
/// workload shape of flow-time streams.
pub fn busy_release_stream(cfg: &BusyStreamConfig, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t: Time = 0;
    let jobs = (0..cfg.n)
        .map(|_| {
            t += rng.gen_range(0..=cfg.max_gap);
            let len = rng.gen_range(1..=cfg.max_len);
            Job::interval(t, t + len)
        })
        .collect();
    Instance::new(jobs, cfg.g).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn g_sweep_shares_one_job_set() {
        let cfg = RandomConfig {
            n: 12,
            horizon: 40,
            max_len: 8,
            ..Default::default()
        };
        let sweep = busy_g_sweep(&cfg, &[1, 2, 4, 8], 7);
        assert_eq!(sweep.len(), 4);
        for (g, inst) in &sweep {
            assert_eq!(inst.g(), *g);
            assert!(inst.is_interval_instance());
            assert_eq!(inst.jobs(), sweep[0].1.jobs(), "same jobs at every g");
        }
        assert_eq!(
            busy_g_sweep(&cfg, &[1, 2], 7),
            busy_g_sweep(&cfg, &[1, 2], 7)
        );
    }

    #[test]
    fn laminar_nested_is_laminar_interval() {
        let cfg = BusyLaminarConfig::default();
        let inst = busy_laminar_nested(&cfg, 3);
        assert_eq!(busy_laminar_nested(&cfg, 3), inst, "deterministic per seed");
        assert!(inst.is_interval_instance());
        assert!(inst.len() >= cfg.fan_in);
        for a in inst.jobs() {
            for b in inst.jobs() {
                let aw = a.window();
                let bw = b.window();
                let crossing =
                    aw.overlaps(&bw) && !aw.contains_interval(&bw) && !bw.contains_interval(&aw);
                assert!(!crossing, "{aw} crosses {bw}");
            }
        }
    }

    #[test]
    fn release_stream_is_release_ordered() {
        let cfg = BusyStreamConfig::default();
        let inst = busy_release_stream(&cfg, 11);
        assert_eq!(
            busy_release_stream(&cfg, 11),
            inst,
            "deterministic per seed"
        );
        assert!(inst.is_interval_instance());
        let jobs = inst.jobs();
        for w in jobs.windows(2) {
            assert!(w[0].release <= w[1].release, "releases must be sorted");
        }
    }
}

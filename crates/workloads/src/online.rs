//! The **online-arrivals** workload: jobs stream into a fixed horizon,
//! stripe by stripe, drawn from a small set of window-layout templates.
//!
//! This is the stress family for the warm-start subsystem (PR 5): each
//! *stripe* (an isolated cluster, as in
//! [`many_components`](crate::random::many_components)) receives its jobs
//! from one of `templates` fixed window layouts, so the LP1 components of
//! same-template stripes are **structural twins** — identical run
//! structure and per-job run spans, different job lengths. That is
//! exactly the shape the batch planner (`WarmMode::Batch` in
//! `abt-active::lp_model`) groups for warm-started sibling solves, and
//! the arrival stream (stripe-major order) is exactly the regime the
//! incremental driver (`abt-active::incremental`) serves: every arrival
//! dirties one component whose shape echoes earlier ones. The online
//! active-time setting follows Chang–Khuller–Mukherjee (arXiv:1610.08154);
//! the nested/structured window layouts follow Cao et al.
//! (arXiv:2207.12507).
//!
//! Feasibility is guaranteed exactly: every window of a stripe contains
//! the stripe midpoint, so Hall's condition reduces to per-endpoint-
//! interval capacity constraints (`Σ_{windows ⊆ [a,b]} len ≤ g·(b−a)`),
//! and each drawn length is capped to keep every such constraint
//! satisfiable for the jobs still to come. Every prefix of the arrival
//! order only removes jobs, so prefixes stay feasible too.

use abt_core::{Instance, Job};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of the online-arrivals family.
#[derive(Debug, Clone, Copy)]
pub struct OnlineArrivalsConfig {
    /// Number of stripes (isolated clusters) jobs arrive into.
    pub clusters: usize,
    /// Jobs per stripe (every stripe receives exactly this many).
    pub jobs_per_cluster: usize,
    /// Distinct window-layout templates; stripe `c` uses template
    /// `c % templates`, so each template has `clusters / templates`
    /// structural twins.
    pub templates: usize,
    /// Capacity `g`.
    pub g: usize,
    /// Horizon width of each stripe.
    pub span: i64,
    /// Idle gap between consecutive stripes (≥ 1 keeps windows disjoint).
    pub gap: i64,
    /// Maximum job length.
    pub max_len: i64,
}

impl Default for OnlineArrivalsConfig {
    fn default() -> Self {
        OnlineArrivalsConfig {
            clusters: 8,
            jobs_per_cluster: 4,
            templates: 2,
            g: 3,
            span: 16,
            gap: 4,
            max_len: 4,
        }
    }
}

/// An online-arrivals trace: the jobs in **arrival order** (stripe-major)
/// plus the capacity they arrive under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnlineArrivals {
    /// Capacity `g`.
    pub g: usize,
    /// Jobs in arrival order.
    pub jobs: Vec<Job>,
}

impl OnlineArrivals {
    /// The full trace as an [`Instance`] (all arrivals landed).
    pub fn instance(&self) -> Instance {
        Instance::new(self.jobs.clone(), self.g).expect("trace is feasible by construction")
    }

    /// The first `k` arrivals as an [`Instance`] (`k` clamped to the
    /// trace length). Every prefix is feasible — the lengths satisfy the
    /// full trace's Hall constraints, and a prefix only removes jobs.
    pub fn prefix_instance(&self, k: usize) -> Instance {
        let k = k.min(self.jobs.len());
        Instance::new(self.jobs[..k].to_vec(), self.g).expect("prefixes stay feasible")
    }
}

/// Generates an online-arrivals trace (deterministic per seed). See the
/// module docs for the construction.
///
/// # Panics
///
/// On a config that cannot guarantee feasibility or structure:
/// `clusters == 0`, `jobs_per_cluster == 0`, `templates == 0`, `g == 0`,
/// `span < 4`, `gap < 1`, `max_len < 1`, or
/// `jobs_per_cluster > 2 * g` (template windows are at least 2 slots
/// wide, so any endpoint interval has capacity `≥ 2g` — enough to hand
/// every job at least one unit whatever the earlier draws took).
pub fn online_arrivals(cfg: &OnlineArrivalsConfig, seed: u64) -> OnlineArrivals {
    assert!(cfg.clusters > 0, "clusters must be positive");
    assert!(
        cfg.jobs_per_cluster > 0,
        "jobs_per_cluster must be positive"
    );
    assert!(cfg.templates > 0, "templates must be positive");
    assert!(cfg.g > 0, "g must be positive");
    assert!(cfg.span >= 4, "span must be at least 4");
    assert!(cfg.gap >= 1, "gap must be at least 1");
    assert!(cfg.max_len >= 1, "max_len must be at least 1");
    assert!(
        cfg.jobs_per_cluster <= 2 * cfg.g,
        "jobs_per_cluster > 2g cannot guarantee feasible lengths"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    // Fixed window layouts: every window straddles the stripe midpoint,
    // so each stripe is one connected component.
    let mid = cfg.span / 2;
    let layouts: Vec<Vec<(i64, i64)>> = (0..cfg.templates)
        .map(|_| {
            (0..cfg.jobs_per_cluster)
                .map(|_| {
                    let lo = rng.gen_range(0..mid);
                    let hi = rng.gen_range(mid + 1..=cfg.span);
                    (lo, hi)
                })
                .collect()
        })
        .collect();
    let g = cfg.g as i64;
    let mut jobs = Vec::with_capacity(cfg.clusters * cfg.jobs_per_cluster);
    for c in 0..cfg.clusters {
        let layout = &layouts[c % cfg.templates];
        let base = c as i64 * (cfg.span + cfg.gap);
        // Length caps via the exact feasibility condition. Every window
        // contains the midpoint, so a subset's window union is itself an
        // interval and Hall's condition reduces to: for every endpoint
        // interval [a, b], Σ_{windows ⊆ [a,b]} len ≤ g·(b − a). Each job's
        // cap additionally reserves one unit for every *later* job inside
        // the same interval, which keeps every cap ≥ 1: with
        // `jobs_per_cluster ≤ 2g` and window widths ≥ 2, an interval
        // containing m windows has capacity g·(b−a) ≥ 2g ≥ m, and the
        // invariant `assigned + remaining ≤ g·(b−a)` is maintained by
        // construction — so the drawn lengths are always feasible, the
        // rng stream is consumed uniformly (shapes stay template-fixed),
        // and every prefix of the stripe only loosens the constraints.
        let mut lens: Vec<i64> = Vec::with_capacity(layout.len());
        for (k, &(lo, hi)) in layout.iter().enumerate() {
            let desired = rng.gen_range(1..=cfg.max_len.min(hi - lo));
            let mut cap = i64::MAX;
            for &(a, _) in layout {
                for &(_, b) in layout {
                    if a > lo || b < hi {
                        continue; // [a, b] must contain this window
                    }
                    let assigned: i64 = layout
                        .iter()
                        .zip(&lens)
                        .filter(|(&(l, h), _)| a <= l && h <= b)
                        .map(|(_, &len)| len)
                        .sum();
                    let future = layout[k + 1..]
                        .iter()
                        .filter(|&&(l, h)| a <= l && h <= b)
                        .count() as i64;
                    cap = cap.min(g * (b - a) - assigned - future);
                }
            }
            debug_assert!(cap >= 1, "the 2g guard keeps every cap positive");
            lens.push(desired.min(cap));
        }
        for (&(lo, hi), &len) in layout.iter().zip(&lens) {
            jobs.push(Job::new(base + lo, base + hi, len));
        }
    }
    OnlineArrivals { g: cfg.g, jobs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_and_striped() {
        let cfg = OnlineArrivalsConfig::default();
        let oa = online_arrivals(&cfg, 9);
        assert_eq!(online_arrivals(&cfg, 9), oa, "deterministic per seed");
        assert_eq!(oa.jobs.len(), cfg.clusters * cfg.jobs_per_cluster);
        // Every job lies inside its stripe; stripes never overlap.
        let stride = cfg.span + cfg.gap;
        for (i, j) in oa.jobs.iter().enumerate() {
            let c = (i / cfg.jobs_per_cluster) as i64;
            assert!(
                j.release >= c * stride && j.deadline <= c * stride + cfg.span,
                "{j:?} escapes stripe {c}"
            );
        }
    }

    #[test]
    fn same_template_stripes_are_structural_twins() {
        let cfg = OnlineArrivalsConfig {
            clusters: 6,
            templates: 2,
            ..Default::default()
        };
        let oa = online_arrivals(&cfg, 4);
        let jp = cfg.jobs_per_cluster;
        let stride = cfg.span + cfg.gap;
        // Window offsets of stripes c and c + templates match slot by slot.
        for c in 0..cfg.clusters - cfg.templates {
            for k in 0..jp {
                let a = oa.jobs[c * jp + k];
                let b = oa.jobs[(c + cfg.templates) * jp + k];
                let shift = cfg.templates as i64 * stride;
                assert_eq!(a.release + shift, b.release, "layouts must repeat");
                assert_eq!(a.deadline + shift, b.deadline);
            }
        }
    }

    #[test]
    fn every_prefix_is_carved_feasible() {
        let cfg = OnlineArrivalsConfig {
            clusters: 5,
            g: 2,
            jobs_per_cluster: 4,
            ..Default::default()
        };
        let oa = online_arrivals(&cfg, 11);
        // The endpoint-interval caps keep the mass bound on every prefix
        // (and construction already validated each Job).
        for k in 0..=oa.jobs.len() {
            let inst = oa.prefix_instance(k);
            assert_eq!(inst.len(), k);
            assert!(inst.total_length() <= cfg.g as i64 * cfg.clusters as i64 * cfg.span);
        }
    }

    #[test]
    fn tight_configs_stay_feasible_across_seeds() {
        // Regression for the carving bug: narrow shared windows with
        // saturating draws used to panic (len clamped to 0) or underflow.
        // The Hall-cap construction must stay panic-free and positive on
        // the tightest guard-passing configs, across many seeds.
        for (g, jobs_per, span) in [(1usize, 2usize, 4i64), (2, 4, 12), (3, 6, 8)] {
            for seed in 0..600u64 {
                let cfg = OnlineArrivalsConfig {
                    clusters: 4,
                    jobs_per_cluster: jobs_per,
                    templates: 2,
                    g,
                    span,
                    gap: 2,
                    max_len: 4.min(span - 1),
                };
                let oa = online_arrivals(&cfg, seed);
                assert_eq!(oa.jobs.len(), cfg.clusters * jobs_per);
                assert!(oa.jobs.iter().all(|j| j.length >= 1));
            }
        }
    }

    #[test]
    #[should_panic(expected = "jobs_per_cluster > 2g")]
    fn overfull_config_rejected() {
        let cfg = OnlineArrivalsConfig {
            g: 1,
            jobs_per_cluster: 3,
            ..Default::default()
        };
        online_arrivals(&cfg, 0);
    }
}

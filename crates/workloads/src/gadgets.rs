//! Generators for every gadget / worked example in the paper, each with its
//! closed-form bounds. ε-based constructions are scaled to integer ticks
//! (ε = a few ticks, "unit" = [`SCALE`] ticks), so all costs are exact.

use abt_core::{Bundle, BusySchedule, Instance, Job, JobId, Time};

/// The integer-tick length of "1 unit" in the ε gadgets.
pub const SCALE: i64 = 1_000;

/// Fig. 1: seven interval jobs with `g = 3` that pack optimally onto two
/// machines. Returns the instance; the optimal cost is measured by the
/// exact solver in the experiments (the figure fixes the structure, not
/// the coordinates).
pub fn fig1_example() -> Instance {
    let ivs = [
        (0, 8), // the long job spanning the horizon
        (0, 3),
        (2, 5),
        (5, 8),
        (0, 4),
        (3, 6),
        (5, 9),
    ];
    Instance::new(ivs.iter().map(|&(a, b)| Job::interval(a, b)).collect(), 3).unwrap()
}

/// Fig. 3: the active-time instance on which a minimal feasible solution
/// costs `3g − 2` while `OPT = g` (tightness of Theorem 1). Requires
/// `g ≥ 3`.
pub struct Fig3 {
    /// The instance.
    pub instance: Instance,
    /// Optimal active time (`g`).
    pub opt: i64,
    /// The paper's illustrative `3g − 2` slot set (the packing described in
    /// the text: long jobs stranded left and right of the full middle).
    /// It is feasible with cost `3g − 2`; note that it is *not* itself
    /// minimal under re-assignment — a genuinely minimal solution of the
    /// same cost is found by the center-out closing order (experiment E2).
    pub adversarial_slots: Vec<Time>,
}

/// Builds the Fig. 3 gadget.
pub fn fig3_minimal_tight(g: usize) -> Fig3 {
    assert!(g >= 3, "the Fig. 3 gadget needs g ≥ 3");
    let gi = g as i64;
    let mut jobs = Vec::new();
    // Two long jobs of length g.
    jobs.push(Job::new(0, 2 * gi, gi));
    jobs.push(Job::new(gi, 3 * gi, gi));
    // g − 2 rigid jobs of length g − 2 with window [g+1, 2g−1).
    for _ in 0..g - 2 {
        jobs.push(Job::new(gi + 1, 2 * gi - 1, gi - 2));
    }
    // g − 2 unit jobs with window [g+1, 2g) and g − 2 with [g, 2g−1).
    for _ in 0..g - 2 {
        jobs.push(Job::new(gi + 1, 2 * gi, 1));
    }
    for _ in 0..g - 2 {
        jobs.push(Job::new(gi, 2 * gi - 1, 1));
    }
    let instance = Instance::new(jobs, g).unwrap();
    // Adversarial minimal solution: rigid middle slots {g+2..2g−1} carry the
    // rigid jobs plus both unit sets (full), stranding the long jobs, which
    // then need g fresh slots each: {2..g+1} and {2g..3g−1}.
    let mut adversarial_slots: Vec<Time> = Vec::new();
    adversarial_slots.extend(2..=gi + 1);
    adversarial_slots.extend(gi + 2..=2 * gi - 1);
    adversarial_slots.extend(2 * gi..=3 * gi - 1);
    adversarial_slots.sort_unstable();
    adversarial_slots.dedup();
    Fig3 {
        instance,
        opt: gi,
        adversarial_slots,
    }
}

/// §3.5: the LP integrality-gap family. `g` pairs of adjacent slots; each
/// pair exclusively hosts `g + 1` unit jobs. `LP = g + 1`, `IP = 2g`, so
/// `IP/LP = 2g/(g+1) → 2`.
pub struct IntegralityGap {
    /// The instance.
    pub instance: Instance,
    /// The integral optimum `2g`.
    pub ip_opt: i64,
    /// The fractional optimum `g + 1` (numerator, denominator 1).
    pub lp_opt: i64,
}

/// Builds the §3.5 integrality-gap instance.
pub fn integrality_gap(g: usize) -> IntegralityGap {
    let gi = g as i64;
    let mut jobs = Vec::new();
    for pair in 0..gi {
        let a = 2 * pair;
        for _ in 0..=g {
            jobs.push(Job::new(a, a + 2, 1));
        }
    }
    IntegralityGap {
        instance: Instance::new(jobs, g).unwrap(),
        ip_opt: 2 * gi,
        lp_opt: gi + 1,
    }
}

/// Figs. 6–7: the gadget on which GreedyTracking's factor 3 is
/// asymptotically tight.
pub struct Fig6 {
    /// The flexible instance: `2g²` unit interval jobs in `g` gadgets plus
    /// `2g` flexible jobs spanning everything.
    pub instance: Instance,
    /// The adversarial span-optimal placement (flexible jobs packed
    /// back-to-back inside each gadget) — a valid output of the
    /// unbounded-`g` placement step.
    pub adversarial_starts: Vec<Time>,
    /// The Fig. 7 worst-case bundling (a valid union-of-`g`-tracks
    /// schedule) of cost `3g(2U − ε)`.
    pub adversarial_schedule: BusySchedule,
    /// Its cost `3g(2U − ε)`.
    pub adversarial_cost: i64,
    /// An upper bound on OPT: `2gU + (2U − ε)`.
    pub opt_upper: i64,
}

/// Builds the Fig. 6 gadget with `eps` ticks of overlap (`eps` even,
/// `0 < eps < U = SCALE`).
pub fn fig6_greedy_tracking_tight(g: usize, eps: i64) -> Fig6 {
    assert!(g >= 1 && eps > 0 && eps % 2 == 0 && eps < SCALE);
    let u = SCALE;
    let gi = g as i64;
    let gadget_span = 2 * u - eps;
    let stride = 2 * u; // gadgets disjoint
    let mut jobs: Vec<Job> = Vec::new();
    // Per gadget k: group A = g unit jobs [s, s+U), group B = g unit jobs
    // [s+U−eps, s+2U−eps).
    let mut group_a: Vec<Vec<JobId>> = Vec::new();
    let mut group_b: Vec<Vec<JobId>> = Vec::new();
    for k in 0..gi {
        let s = k * stride;
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..g {
            a.push(jobs.len());
            jobs.push(Job::interval(s, s + u));
        }
        for _ in 0..g {
            b.push(jobs.len());
            jobs.push(Job::interval(s + u - eps, s + gadget_span));
        }
        group_a.push(a);
        group_b.push(b);
    }
    // 2g flexible jobs of length U − eps/2 spanning all gadgets.
    let horizon_end = (gi - 1) * stride + gadget_span;
    let flex_len = u - eps / 2;
    let mut flexible: Vec<JobId> = Vec::new();
    for _ in 0..2 * g {
        flexible.push(jobs.len());
        jobs.push(Job::new(0, horizon_end, flex_len));
    }
    let instance = Instance::new(jobs, g).unwrap();

    // Adversarial placement: flexible jobs 2 per gadget, back to back,
    // covering the gadget span exactly (both intersect every gadget job).
    let mut starts: Vec<Time> = vec![0; instance.len()];
    for k in 0..gi {
        let s = k * stride;
        let f1 = flexible[2 * k as usize];
        let f2 = flexible[2 * k as usize + 1];
        starts[f1] = s;
        starts[f2] = s + flex_len;
    }
    for k in 0..g {
        for &j in group_a[k].iter().chain(&group_b[k]) {
            starts[j] = instance.job(j).release;
        }
    }

    // Fig. 7 bundling: bundle 1 = (g−1) all-A tracks + 1 all-B track;
    // bundle 2 = 1 all-A track + (g−1) all-B tracks; bundle 3 = the two
    // flexible tracks. Every bundle spans all g gadget regions.
    let mut b1 = Bundle::new();
    let mut b2 = Bundle::new();
    let mut b3 = Bundle::new();
    for k in 0..g {
        for (i, &j) in group_a[k].iter().enumerate() {
            let target = if i < g - 1 { &mut b1 } else { &mut b2 };
            target.items.push((j, starts[j]));
        }
        for (i, &j) in group_b[k].iter().enumerate() {
            let target = if i < g - 1 { &mut b2 } else { &mut b1 };
            target.items.push((j, starts[j]));
        }
    }
    for &j in &flexible {
        b3.items.push((j, starts[j]));
    }
    let adversarial_schedule = BusySchedule {
        bundles: vec![b1, b2, b3],
    };
    let adversarial_cost = 3 * gi * gadget_span;
    let opt_upper = 2 * gi * u + (2 * u - eps);
    Fig6 {
        instance,
        adversarial_starts: starts,
        adversarial_schedule,
        adversarial_cost,
        opt_upper,
    }
}

/// Fig. 8: the interval instance (`g = 2`) on which Kumar–Rudra /
/// Alicherry–Bhatia can approach factor 2.
pub struct Fig8 {
    /// The instance: two unit jobs and the ε/ε′/ε−ε′ triple.
    pub instance: Instance,
    /// Optimal busy time `U + ε`.
    pub opt: i64,
    /// The paper's "possible output" cost `2U + ε + ε′`.
    pub bad_output: i64,
}

/// Builds the Fig. 8 instance with `eps > eps1 > 0` ticks.
pub fn fig8_interval_tight(eps: i64, eps1: i64) -> Fig8 {
    assert!(0 < eps1 && eps1 < eps && eps < SCALE);
    let u = SCALE;
    let jobs = vec![
        Job::interval(0, u),              // A
        Job::interval(0, u),              // B
        Job::interval(u, u + eps),        // C (length ε)
        Job::interval(u, u + eps1),       // D (length ε′)
        Job::interval(u + eps1, u + eps), // E (length ε − ε′)
    ];
    Fig8 {
        instance: Instance::new(jobs, 2).unwrap(),
        opt: u + eps,
        bad_output: 2 * u + eps + eps1,
    }
}

/// Fig. 9: flexible instance where the span-optimal placement's demand
/// profile costs ≈ 2× the profile of the bounded-`g` optimal structure
/// (Lemma 7 tightness).
pub struct Fig9 {
    /// The instance.
    pub instance: Instance,
    /// Span-optimal (adversarial) placement: flexible job `i` hidden inside
    /// interval set `i+1`.
    pub adversarial_starts: Vec<Time>,
    /// The bounded-`g`-friendly placement: all flexible jobs stacked on the
    /// leftmost unit job.
    pub friendly_starts: Vec<Time>,
}

/// Builds the Fig. 9 gadget (`g ≥ 2`, `eps` ticks, `g·eps < SCALE`).
pub fn fig9_dp_profile_tight(g: usize, eps: i64) -> Fig9 {
    assert!(g >= 2 && eps > 0 && (g as i64) * eps < SCALE);
    let u = SCALE;
    let gi = g as i64;
    let stride = 3 * u;
    let mut jobs: Vec<Job> = Vec::new();
    // The single leftmost unit job.
    jobs.push(Job::interval(0, u));
    // Sets i = 1..g−1: g identical interval jobs of length U + i·eps.
    let mut set_start: Vec<Time> = Vec::new();
    for i in 1..gi {
        let s = i * stride;
        set_start.push(s);
        for _ in 0..g {
            jobs.push(Job::interval(s, s + u + i * eps));
        }
    }
    // Flexible jobs i = 1..g−1: length U + i·eps, window from 0 through the
    // end of set i+1 ... (the first i+1 "sets", counting the unit job as
    // set 0).
    let mut flexible: Vec<JobId> = Vec::new();
    for i in 1..gi {
        let window_end = i * stride + u + i * eps; // end of set i
        flexible.push(jobs.len());
        jobs.push(Job::new(0, window_end, u + i * eps));
    }
    let instance = Instance::new(jobs, g).unwrap();

    let mut adversarial: Vec<Time> = instance.jobs().iter().map(|j| j.release).collect();
    let mut friendly = adversarial.clone();
    for (idx, &f) in flexible.iter().enumerate() {
        // Adversarial: align flexible i with set i (same start ⇒ nested in
        // the set's identical intervals ⇒ zero extra span, demand g + 1).
        adversarial[f] = set_start[idx];
        // Friendly: stack at the left with the unit job.
        friendly[f] = 0;
    }
    Fig9 {
        instance,
        adversarial_starts: adversarial,
        friendly_starts: friendly,
    }
}

/// Figs. 10–12: flexible instance on which the KR/AB pipeline approaches
/// factor 4 (Theorem 10 tightness).
pub struct Fig10 {
    /// The instance (without dummies — the algorithms pad internally).
    pub instance: Instance,
    /// Adversarial span-optimal placement: flexible job `k` hidden inside
    /// gadget `k`'s unit block.
    pub adversarial_starts: Vec<Time>,
    /// An explicit optimal-style schedule of cost `gU + (g−1)·2ε`.
    pub opt_schedule: BusySchedule,
    /// Its cost (an upper bound on OPT).
    pub opt_upper: i64,
    /// The Fig. 12 bundling: a valid possible KR/AB output with four
    /// busy-`≈U` machines per gadget (the doubled demand profile — two
    /// bands × two machines — permits it).
    pub bad_schedule: BusySchedule,
    /// Its cost: `U + (g−1)(4U + 3ε)` for `g ≥ 3`.
    pub bad_cost: i64,
}

/// Builds the Fig. 10 gadget (`g ≥ 2`, `eps > eps1 > 0`).
pub fn fig10_flexible_factor4(g: usize, eps: i64, eps1: i64) -> Fig10 {
    assert!(g >= 2 && 0 < eps1 && eps1 < eps && eps < SCALE);
    let u = SCALE;
    let gi = g as i64;
    let stride = 3 * u;
    let mut jobs: Vec<Job> = Vec::new();
    // Leftmost unit job.
    jobs.push(Job::interval(0, u));
    // Gadgets k = 1..g−1 at offset k·stride: g unit jobs, 2g−2 ε jobs,
    // 2 ε′ jobs, 2 ε−ε′ jobs (demand everywhere a multiple of g after the
    // flexible job and dummies join).
    let mut gadget_unit_start: Vec<Time> = Vec::new();
    let mut gadget_members: Vec<Vec<JobId>> = Vec::new();
    for k in 1..gi {
        let s = k * stride;
        gadget_unit_start.push(s);
        let mut members = Vec::new();
        for _ in 0..g {
            members.push(jobs.len());
            jobs.push(Job::interval(s, s + u));
        }
        for _ in 0..2 * g - 2 {
            members.push(jobs.len());
            jobs.push(Job::interval(s + u, s + u + eps));
        }
        for _ in 0..2 {
            members.push(jobs.len());
            jobs.push(Job::interval(s + u, s + u + eps1));
        }
        for _ in 0..2 {
            members.push(jobs.len());
            jobs.push(Job::interval(s + u + eps1, s + u + eps));
        }
        gadget_members.push(members);
    }
    // g−1 flexible unit jobs spanning everything.
    let horizon_end = (gi - 1) * stride + u + eps;
    let mut flexible: Vec<JobId> = Vec::new();
    for _ in 1..gi {
        flexible.push(jobs.len());
        jobs.push(Job::new(0, horizon_end, u));
    }
    let instance = Instance::new(jobs, g).unwrap();

    // Adversarial placement: flexible k aligned with gadget k's unit block.
    let mut adversarial: Vec<Time> = instance.jobs().iter().map(|j| j.release).collect();
    for (k, &f) in flexible.iter().enumerate() {
        adversarial[f] = gadget_unit_start[k];
    }

    // Optimal-style schedule: flexible jobs join the leftmost unit job on
    // one machine (capacity 1 + (g−1) = g); per gadget, the g unit jobs on
    // one machine and the 2g+2 ε-jobs on two machines of span ε each.
    let mut bundles: Vec<Bundle> = Vec::new();
    let mut left = Bundle::new();
    left.items.push((0, 0));
    for &f in &flexible {
        left.items.push((f, 0));
    }
    bundles.push(left);
    for (k, members) in gadget_members.iter().enumerate() {
        let s = gadget_unit_start[k];
        let mut units = Bundle::new();
        let mut eps_a = Bundle::new();
        let mut eps_b = Bundle::new();
        // Split the small jobs by type: each ε-machine gets (g−1) ε jobs,
        // one ε′ and one ε−ε′, peaking at exactly g.
        let mut seen_eps = 0usize;
        let mut seen_eps1 = 0usize;
        let mut seen_rest = 0usize;
        for &j in members {
            let job = instance.job(j);
            if job.length == u {
                units.items.push((j, s));
                continue;
            }
            let counter = if job.length == eps {
                seen_eps += 1;
                seen_eps
            } else if job.length == eps1 {
                seen_eps1 += 1;
                seen_eps1
            } else {
                seen_rest += 1;
                seen_rest
            };
            let limit = if job.length == eps { g - 1 } else { 1 };
            let target = if counter <= limit {
                &mut eps_a
            } else {
                &mut eps_b
            };
            target.items.push((j, job.release));
        }
        bundles.push(units);
        bundles.push(eps_a);
        bundles.push(eps_b);
    }
    let opt_schedule = BusySchedule { bundles };
    let opt_upper = gi * u + (gi - 1) * 2 * eps;

    // Fig. 12 bundling: under the adversarial placement, each gadget's 2g
    // unit-length items (g interval + 1 flexible, plus the dummies the real
    // algorithms pad with) spread across the FOUR machines of its two
    // demand bands, so every machine is busy ≈ U. We realize it with the
    // real jobs only: two machines get one unit job + half the ε jobs each,
    // one machine gets the remaining g−1 unit jobs + the ε′ pair, and one
    // gets the flexible job + the ε−ε′ pair.
    let mut bad: Vec<Bundle> = Vec::new();
    let mut first = Bundle::new();
    first.items.push((0, 0));
    bad.push(first);
    for (k, members) in gadget_members.iter().enumerate() {
        let s = gadget_unit_start[k];
        let mut m1 = Bundle::new();
        let mut m2 = Bundle::new();
        let mut m3 = Bundle::new();
        let mut m4 = Bundle::new();
        let mut unit_seen = 0usize;
        let mut eps_seen = 0usize;
        for &j in members {
            let job = instance.job(j);
            if job.length == u {
                unit_seen += 1;
                match unit_seen {
                    1 => m1.items.push((j, s)),
                    2 => m2.items.push((j, s)),
                    _ => m3.items.push((j, s)),
                }
            } else if job.length == eps {
                eps_seen += 1;
                let target = if eps_seen < g { &mut m1 } else { &mut m2 };
                target.items.push((j, job.release));
            } else if job.length == eps1 {
                m3.items.push((j, job.release));
            } else {
                m4.items.push((j, job.release));
            }
        }
        m4.items.push((flexible[k], adversarial[flexible[k]]));
        bad.extend([m1, m2, m3, m4]);
    }
    let bad_schedule = BusySchedule { bundles: bad };
    // U + (g−1)(4U + 3ε) for g ≥ 3; one machine per gadget lacks a real
    // unit-length item when g = 2, so measure the realized cost directly.
    let bad_cost = bad_schedule.total_busy_time(&instance);
    Fig10 {
        instance,
        adversarial_starts: adversarial,
        opt_schedule,
        opt_upper,
        bad_schedule,
        bad_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abt_core::DemandProfile;

    #[test]
    fn fig1_is_well_formed() {
        let inst = fig1_example();
        assert_eq!(inst.len(), 7);
        assert_eq!(inst.g(), 3);
        assert!(inst.is_interval_instance());
    }

    #[test]
    fn fig3_adversarial_is_feasible_and_sized() {
        for g in [3usize, 4, 6] {
            let f = fig3_minimal_tight(g);
            assert_eq!(f.adversarial_slots.len() as i64, 3 * g as i64 - 2);
            assert_eq!(f.opt, g as i64);
            // Mass equals g² so OPT ≥ g is forced by the mass bound.
            assert_eq!(f.instance.total_length(), (g * g) as i64);
        }
    }

    #[test]
    fn integrality_gap_shape() {
        let ig = integrality_gap(4);
        assert_eq!(ig.instance.len(), 4 * 5);
        assert_eq!(ig.ip_opt, 8);
        assert_eq!(ig.lp_opt, 5);
    }

    #[test]
    fn fig6_schedule_is_valid_with_claimed_cost() {
        for g in [2usize, 3, 5] {
            let f = fig6_greedy_tracking_tight(g, 10);
            // The adversarial placement respects windows.
            let fixed = f.instance.fix_starts(&f.adversarial_starts).unwrap();
            assert!(fixed.is_interval_instance());
            // The Fig. 7 bundling is a valid schedule with the claimed cost.
            f.adversarial_schedule.validate(&f.instance).unwrap();
            assert_eq!(
                f.adversarial_schedule.total_busy_time(&f.instance),
                f.adversarial_cost
            );
            // Ratio approaches 3 from below.
            assert!(f.adversarial_cost <= 3 * f.opt_upper);
        }
    }

    #[test]
    fn fig8_bounds() {
        let f = fig8_interval_tight(100, 30);
        assert_eq!(f.instance.len(), 5);
        // The demand is even everywhere on the support.
        let profile = DemandProfile::new(
            &f.instance
                .jobs()
                .iter()
                .map(|j| j.window())
                .collect::<Vec<_>>(),
        );
        for &(iv, d) in profile.segments() {
            if d > 0 {
                assert_eq!(d % 2, 0, "odd demand on {iv}");
            }
        }
        assert!(f.bad_output < 2 * f.opt);
    }

    #[test]
    fn fig9_placements_are_valid() {
        let f = fig9_dp_profile_tight(4, 8);
        f.instance.fix_starts(&f.adversarial_starts).unwrap();
        f.instance.fix_starts(&f.friendly_starts).unwrap();
        // Adversarial has strictly smaller span.
        let adv = f.instance.fix_starts(&f.adversarial_starts).unwrap();
        let fri = f.instance.fix_starts(&f.friendly_starts).unwrap();
        assert!(adv.interval_span().unwrap() < fri.interval_span().unwrap());
    }

    #[test]
    fn fig10_opt_schedule_valid() {
        for g in [2usize, 3, 4] {
            let f = fig10_flexible_factor4(g, 60, 20);
            f.instance.fix_starts(&f.adversarial_starts).unwrap();
            f.opt_schedule.validate(&f.instance).unwrap();
            assert_eq!(f.opt_schedule.total_busy_time(&f.instance), f.opt_upper);
        }
    }

    #[test]
    fn fig10_bad_schedule_valid_with_factor4_cost() {
        for g in [3usize, 4, 6] {
            let (eps, eps1) = (60, 20);
            let f = fig10_flexible_factor4(g, eps, eps1);
            f.bad_schedule.validate(&f.instance).unwrap();
            let gi = g as i64;
            assert_eq!(f.bad_cost, SCALE + (gi - 1) * (4 * SCALE + 3 * eps));
            // Ratio drifts towards 4 from below, passing 3 at g = 4.
            assert!(f.bad_cost <= 4 * f.opt_upper);
            if g >= 4 {
                assert!(
                    f.bad_cost > 3 * f.opt_upper,
                    "g={g} should exceed 3×OPT-upper"
                );
            }
        }
    }
}

//! `abt` — command-line front end for the active/busy-time schedulers.
//!
//! ```text
//! abt gen <family> [seed]            generate an instance to stdout
//! abt bounds <file>                  print lower bounds
//! abt solve <file>                   exact LP1 optimum + solve telemetry
//! abt active <file> <algo>           minimal|rounding|exact|unit
//! abt busy <file> <algo>             ff|gt|kr|ab|lp|exact|preempt
//! abt incremental [clusters] [jobs_per_cluster] [seed]
//!                                    replay an online-arrivals trace
//!                                    through the incremental LP1 solver
//! abt replay --state-dir DIR [clusters] [jobs_per_cluster] [seed]
//!                                    the durable twin of `incremental`:
//!                                    recover the solver from DIR, resume
//!                                    the trace where it left off, journal
//!                                    every arrival (crash-safe — SIGKILL
//!                                    and rerun resumes bit-identically)
//! abt recover <dir> [--compact]      inspect a state directory's health;
//!                                    --compact folds the journal into a
//!                                    fresh checkpoint
//! abt trace <dump.jsonl> [--expect kinds]
//!                                    validate a flight-recorder dump and
//!                                    print its span/event kind tallies
//! ```
//!
//! `solve` and `incremental` also accept `--pivot-budget N` and
//! `--time-budget-ms N`: per-attempt solve budgets (0 = unlimited). A
//! tripped budget demotes the solve down the supervision ladder (see
//! `abt-active`'s `supervise` module) — the answer stays exact; the
//! printed telemetry shows how many attempts demoted, tripped a budget,
//! or were quarantined.
//!
//! Both also accept `--certify <exact|interval|auto>` selecting the
//! certification tier policy of the revised backend (`auto`, the
//! default, is interval-then-exact — see `abt-lp`'s `CertifyMode`).
//! Every mode returns bit-identical objectives; the supervision summary
//! line reports how the proofs split across the tiers.
//!
//! `solve`, `incremental`, and `replay` accept two observability flags
//! (see `abt-core`'s `obs` module): `--trace-out PATH` arms solve-pipeline
//! tracing and writes the flight-recorder JSONL dump to PATH when the
//! command finishes — including after a quarantine error or panic — and
//! `--metrics` prints the full metrics-registry exposition
//! (`name value` lines) after the command's own output. Each of the three
//! also prints a one-line per-phase time breakdown
//! (decompose/warm/pivot/certify/stitch) from the always-on span rollups.
//!
//! Instance files use the `abt-core::io` text format (`g <k>` then one
//! `job <r> <d> <p>` per line; `#` comments allowed).

use abt_active::{
    exact_active_time, exact_unit_active_time, inspect_store, lp_rounding, lp_telemetry,
    minimal_feasible, solve_active_lp_with, CertifyMode, ClosingOrder, IncrementalSolver,
    LpOptions,
};
use abt_busy::{
    exact_busy_time, preemptive_bounded, preemptive_unbounded, solve_flexible, IntervalAlgo,
};
use abt_core::obs;
use abt_core::{active_lower_bound, busy_lower_bounds, io, Instance};
use abt_workloads::{
    fig1_example, fig3_minimal_tight, integrality_gap, online_arrivals, optical_trace,
    random_flexible, random_interval, vm_trace, OnlineArrivalsConfig, OpticalTraceConfig,
    RandomConfig, VmTraceConfig,
};
use std::process::ExitCode;
use std::sync::OnceLock;

/// Flight-recorder dump path from `--trace-out`, visible to the panic
/// hook: a quarantine panic dumps the recorder before the process dies.
static TRACE_OUT: OnceLock<String> = OnceLock::new();

fn dump_trace() {
    if let Some(path) = TRACE_OUT.get() {
        match obs::dump_to_file(std::path::Path::new(path)) {
            Ok(()) => eprintln!("wrote flight-recorder dump {path}"),
            Err(e) => eprintln!("could not write flight-recorder dump {path}: {e}"),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Arm tracing before any solver work so the dump covers the whole
    // command; the flag itself is stripped later by `parse_budgets`.
    if let Some(i) = args.iter().position(|a| a == "--trace-out") {
        if let Some(path) = args.get(i + 1) {
            let _ = TRACE_OUT.set(path.clone());
            obs::set_tracing(true);
            let default_hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                dump_trace();
                default_hook(info);
            }));
        }
    }
    let print_metrics = args.iter().any(|a| a == "--metrics");
    let result = run(&args.iter().map(String::as_str).collect::<Vec<_>>());
    // Dump on success and on typed errors alike — a quarantined solve is
    // exactly when the flight recorder matters most.
    dump_trace();
    match result {
        Ok(()) => {
            if print_metrics {
                print!("{}", obs::metrics::render());
            }
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage:\n  abt gen <interval|flexible|vm|optical|fig1|fig3|gap> [seed]\n  \
                 abt bounds <file>\n  \
                 abt solve <file> [--pivot-budget N] [--time-budget-ms N] [--certify M] \
                 [--trace-out PATH] [--metrics]\n  \
                 abt active <file> <minimal|rounding|exact|unit>\n  \
                 abt busy <file> <ff|gt|kr|ab|lp|exact|preempt>\n  \
                 abt incremental [clusters] [jobs_per_cluster] [seed] \
                 [--pivot-budget N] [--time-budget-ms N] [--certify M] \
                 [--trace-out PATH] [--metrics]\n  \
                 abt replay --state-dir DIR [clusters] [jobs_per_cluster] [seed] \
                 [--throttle-ms N] [budget flags] [--trace-out PATH] [--metrics]\n  \
                 abt recover <dir> [--compact]\n  \
                 abt trace <dump.jsonl> [--expect kind1,kind2]\n  \
                 (--certify M: exact | interval | auto)"
            );
            ExitCode::from(2)
        }
    }
}

fn load(path: &str) -> Result<Instance, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    io::read_instance(&text).map_err(|e| e.to_string())
}

/// Splits the solve-policy flags (`--pivot-budget N`, `--time-budget-ms
/// N`, `--certify M`) out of `args`, returning the remaining positional
/// arguments and an [`LpOptions`] with the policies applied (budgets: 0 =
/// unlimited; certify: `auto` = interval-then-exact). The observability
/// flags (`--trace-out PATH`, `--metrics`) are stripped here too — they
/// are handled process-wide in `main`.
fn parse_budgets<'a>(args: &[&'a str]) -> Result<(Vec<&'a str>, LpOptions), String> {
    let mut opts = LpOptions::default();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match *a {
            "--metrics" => {}
            "--trace-out" => {
                it.next().ok_or("--trace-out needs a path")?;
            }
            "--pivot-budget" | "--time-budget-ms" => {
                let v = it.next().ok_or_else(|| format!("{a} needs a value"))?;
                let n: u64 = v.parse().map_err(|_| format!("bad {a} value '{v}'"))?;
                if *a == "--pivot-budget" {
                    opts.pivot_budget = n;
                } else {
                    opts.time_budget_ms = n;
                }
            }
            "--certify" => {
                let v = it.next().ok_or_else(|| format!("{a} needs a value"))?;
                opts.certify = match *v {
                    "exact" => CertifyMode::Exact,
                    "interval" => CertifyMode::Interval,
                    "auto" => CertifyMode::IntervalThenExact,
                    other => {
                        return Err(format!(
                            "bad --certify value '{other}' (want exact|interval|auto)"
                        ))
                    }
                };
            }
            other => positional.push(other),
        }
    }
    Ok((positional, opts))
}

/// One-line supervision summary from a telemetry delta, including how the
/// certification proofs split across the interval and exact tiers.
fn supervision_summary(d: &abt_active::LpTelemetry) -> String {
    format!(
        "supervision: {} demotions ({} budget trips), {} quarantined; \
         certify: {} interval accepts, {} escalations \
         ({:.1} ms interval + {:.1} ms exact)",
        d.demotions,
        d.budget_trips,
        d.quarantined,
        d.interval_accepts,
        d.interval_escalations,
        d.certify_interval_nanos as f64 / 1e6,
        d.certify_exact_nanos as f64 / 1e6,
    )
}

/// One-line per-phase wall-time breakdown from the always-on span
/// rollups. The CLI is one command per process, so the cumulative rollup
/// totals are exactly this command's totals.
fn phase_breakdown() -> String {
    let rollups = obs::span_rollups();
    let ms = |name: &str| {
        rollups
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|&(_, _, nanos)| nanos as f64 / 1e6)
            .unwrap_or(0.0)
    };
    format!(
        "phases: decompose {:.1} ms, warm {:.1} ms, pivot {:.1} ms, \
         certify {:.1} ms, stitch {:.1} ms",
        ms("solve.decompose"),
        ms("solve.warm"),
        ms("solve.pivot"),
        ms("solve.certify"),
        ms("solve.stitch"),
    )
}

fn run(args: &[&str]) -> Result<(), String> {
    match args {
        ["gen", family, rest @ ..] => {
            let seed: u64 = rest
                .first()
                .map_or(Ok(0), |s| s.parse().map_err(|_| "bad seed"))?;
            let inst = match *family {
                "interval" => random_interval(&RandomConfig::default(), seed),
                "flexible" => random_flexible(&RandomConfig::default(), seed),
                "vm" => vm_trace(&VmTraceConfig::default(), seed),
                "optical" => optical_trace(&OpticalTraceConfig::default(), seed),
                "fig1" => fig1_example(),
                "fig3" => fig3_minimal_tight(4).instance,
                "gap" => integrality_gap(3).instance,
                other => return Err(format!("unknown family '{other}'")),
            };
            print!("{}", io::write_instance(&inst));
            Ok(())
        }
        ["bounds", path] => {
            let inst = load(path)?;
            println!(
                "jobs: {}  g: {}  horizon: {}",
                inst.len(),
                inst.g(),
                inst.horizon()
            );
            println!("active-time lower bound: {}", active_lower_bound(&inst));
            let b = busy_lower_bounds(&inst);
            println!(
                "busy-time bounds: mass={} span={} profile={}",
                b.mass, b.span, b.profile
            );
            Ok(())
        }
        ["solve", rest @ ..] => {
            let (positional, opts) = parse_budgets(rest)?;
            let [path] = positional[..] else {
                return Err("solve takes exactly one instance file".into());
            };
            let inst = load(path)?;
            let before = lp_telemetry();
            let lp = solve_active_lp_with(&inst, &opts).map_err(|e| e.to_string())?;
            let d = lp_telemetry().delta(&before);
            let open = lp.y.iter().filter(|v| v.signum() > 0).count();
            println!("LP1 optimum: {}", lp.objective);
            println!("fractionally open slots: {open} of {}", lp.slots.len());
            println!(
                "solves: {} ({} components), {} pivots, {} fallbacks",
                d.solves, d.components, d.pivots, d.fallbacks
            );
            println!("{}", supervision_summary(&d));
            println!("{}", phase_breakdown());
            Ok(())
        }
        ["active", path, algo] => {
            let inst = load(path)?;
            let (cost, slots) = match *algo {
                "minimal" => {
                    let r = minimal_feasible(&inst, ClosingOrder::LeftToRight)
                        .map_err(|e| e.to_string())?;
                    (r.slots.len(), r.slots)
                }
                "rounding" => {
                    let r = lp_rounding(&inst).map_err(|e| e.to_string())?;
                    println!(
                        "LP = {}, certified cost ≤ 2·LP: {}",
                        r.lp_objective,
                        r.within_two_lp()
                    );
                    (r.opened.len(), r.opened)
                }
                "exact" => {
                    let r =
                        exact_active_time(&inst, Some(500_000_000)).map_err(|e| e.to_string())?;
                    (r.slots.len(), r.slots)
                }
                "unit" => {
                    let r = exact_unit_active_time(&inst).map_err(|e| e.to_string())?;
                    (r.slots.len(), r.slots)
                }
                other => return Err(format!("unknown active algorithm '{other}'")),
            };
            println!("active time: {cost}");
            println!("active slots: {slots:?}");
            Ok(())
        }
        ["busy", path, algo] => {
            let inst = load(path)?;
            let schedule = match *algo {
                "ff" => solve_flexible(&inst, IntervalAlgo::FirstFit),
                "gt" => solve_flexible(&inst, IntervalAlgo::GreedyTracking),
                "kr" => solve_flexible(&inst, IntervalAlgo::KumarRudra),
                "ab" => solve_flexible(&inst, IntervalAlgo::AlicherryBhatia),
                "lp" => solve_flexible(&inst, IntervalAlgo::LpRounding),
                "exact" => {
                    let r = exact_busy_time(&inst, Some(500_000_000)).map_err(|e| e.to_string())?;
                    println!(
                        "busy time: {} on {} machines",
                        r.cost,
                        r.schedule.machine_count()
                    );
                    return Ok(());
                }
                "preempt" => {
                    let u = preemptive_unbounded(&inst);
                    let b = preemptive_bounded(&inst);
                    println!("preemptive OPT∞: {}", u.cost);
                    println!(
                        "bounded-g 2-approx: {} on {} machines",
                        b.total_busy_time(),
                        b.machine_count()
                    );
                    return Ok(());
                }
                other => return Err(format!("unknown busy algorithm '{other}'")),
            }
            .map_err(|e| e.to_string())?
            .schedule;
            schedule.validate(&inst).map_err(|e| e.to_string())?;
            println!(
                "busy time: {} on {} machines",
                schedule.total_busy_time(&inst),
                schedule.machine_count()
            );
            for (m, b) in schedule.bundles.iter().enumerate() {
                if !b.items.is_empty() {
                    println!("machine {m}: {:?}", b.items);
                }
            }
            Ok(())
        }
        ["incremental", rest @ ..] => {
            let (positional, opts) = parse_budgets(rest)?;
            let parse_at = |i: usize, default: u64| -> Result<u64, String> {
                positional.get(i).map_or(Ok(default), |s| {
                    s.parse().map_err(|_| format!("bad argument '{s}'"))
                })
            };
            let cfg = OnlineArrivalsConfig {
                clusters: parse_at(0, 8)? as usize,
                jobs_per_cluster: parse_at(1, 4)? as usize,
                ..Default::default()
            };
            let seed = parse_at(2, 0)?;
            let oa = online_arrivals(&cfg, seed);
            println!(
                "online-arrivals trace: {} jobs into {} stripes (g = {}, {} templates, seed {seed})",
                oa.jobs.len(),
                cfg.clusters,
                oa.g,
                cfg.templates
            );
            let before = lp_telemetry();
            let mut solver =
                IncrementalSolver::with_options(oa.g, opts).map_err(|e| e.to_string())?;
            for (i, job) in oa.jobs.iter().enumerate() {
                solver.add_job(*job);
                let rep = solver.solve().map_err(|e| e.to_string())?;
                println!(
                    "arrival {i:>3}: job [{:>4}, {:>4}) len {} → LP1 = {}  \
                     (components {}, reused {}, warm {}/{}, cold {})",
                    job.release,
                    job.deadline,
                    job.length,
                    rep.lp.objective,
                    rep.components,
                    rep.reused,
                    rep.warm_hits,
                    rep.warm_attempts,
                    rep.cold_solves
                );
            }
            let d = lp_telemetry().delta(&before);
            println!(
                "replay totals: {} LP solves, {} pivots, warm {}/{} hits ({} pivots saved), {} fallbacks",
                d.solves, d.pivots, d.warm_hits, d.warm_attempts, d.warm_pivots_saved, d.fallbacks
            );
            println!("{}", supervision_summary(&d));
            println!("{}", phase_breakdown());
            Ok(())
        }
        ["replay", rest @ ..] => {
            let (positional, opts) = parse_budgets(rest)?;
            // Pull the replay-specific flags out of the leftovers.
            let mut state_dir: Option<&str> = None;
            let mut throttle_ms: u64 = 0;
            let mut free = Vec::new();
            let mut it = positional.iter();
            while let Some(a) = it.next() {
                match *a {
                    "--state-dir" => {
                        state_dir = Some(it.next().ok_or("--state-dir needs a value")?);
                    }
                    "--throttle-ms" => {
                        let v = it.next().ok_or("--throttle-ms needs a value")?;
                        throttle_ms = v.parse().map_err(|_| format!("bad --throttle-ms '{v}'"))?;
                    }
                    other => free.push(other),
                }
            }
            let state_dir = state_dir.ok_or("replay requires --state-dir DIR")?;
            let parse_at = |i: usize, default: u64| -> Result<u64, String> {
                free.get(i).map_or(Ok(default), |s| {
                    s.parse().map_err(|_| format!("bad argument '{s}'"))
                })
            };
            let cfg = OnlineArrivalsConfig {
                clusters: parse_at(0, 8)? as usize,
                jobs_per_cluster: parse_at(1, 4)? as usize,
                ..Default::default()
            };
            let seed = parse_at(2, 0)?;
            let oa = online_arrivals(&cfg, seed);
            let before = lp_telemetry();
            let mut solver =
                IncrementalSolver::with_options(oa.g, opts).map_err(|e| e.to_string())?;
            let rec = solver.attach_store(state_dir).map_err(|e| e.to_string())?;
            println!(
                "recovery: {} jobs resumed ({} journal ops replayed, {} blocks + {} snapshots \
                 restored), {} corruption events absorbed{}{}",
                rec.resumed_jobs,
                rec.replayed_ops,
                rec.restored_blocks,
                rec.restored_snapshots,
                rec.corruption_events,
                if rec.storm_quarantined {
                    "; restart storm → state quarantined"
                } else {
                    ""
                },
                if rec.cold_start { "; cold start" } else { "" },
            );
            // Resume where the journal left off: each arrival is exactly
            // one add_job, so the job count is the stream position.
            let done = solver.len();
            if done > oa.jobs.len() {
                return Err(format!(
                    "state dir holds {done} jobs but the trace has only {} — \
                     wrong trace parameters or seed for this state dir?",
                    oa.jobs.len()
                ));
            }
            println!(
                "online-arrivals trace: {} jobs into {} stripes (g = {}, seed {seed}); \
                 resuming at arrival {done}",
                oa.jobs.len(),
                cfg.clusters,
                oa.g,
            );
            let mut objective = None;
            for (i, job) in oa.jobs.iter().enumerate().skip(done) {
                solver.add_job(*job);
                let rep = solver.solve().map_err(|e| e.to_string())?;
                println!(
                    "arrival {i:>3}: job [{:>4}, {:>4}) len {} → LP1 = {}  \
                     (components {}, reused {}, warm {}/{}, cold {})",
                    job.release,
                    job.deadline,
                    job.length,
                    rep.lp.objective,
                    rep.components,
                    rep.reused,
                    rep.warm_hits,
                    rep.warm_attempts,
                    rep.cold_solves
                );
                objective = Some(rep.lp.objective);
                if throttle_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(throttle_ms));
                }
            }
            let objective = match objective {
                Some(o) => o,
                // Fully caught up already: one clean re-solve for the line.
                None => solver.solve().map_err(|e| e.to_string())?.lp.objective,
            };
            solver.checkpoint_now();
            let d = lp_telemetry().delta(&before);
            println!(
                "persist: {} restores, {} recoveries, {} state-corrupt, {} admission rejects{}",
                d.persist_restores,
                d.recoveries,
                d.state_corrupt,
                d.admission_rejects,
                if solver.store_degraded() {
                    " (store degraded: persistence stopped, served from memory)"
                } else {
                    ""
                },
            );
            println!("{}", supervision_summary(&d));
            println!("{}", phase_breakdown());
            println!("final objective: {objective}");
            Ok(())
        }
        ["trace", rest @ ..] => {
            // Validate a flight-recorder JSONL dump (written by
            // `--trace-out` on solve/incremental/replay, or by the bench
            // harness): every line must parse as a recorder entry.
            // `--expect kind1,kind2` additionally requires each named
            // span/event kind to appear at least once.
            let mut expect: Vec<&str> = Vec::new();
            let mut file: Option<&str> = None;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match *a {
                    "--expect" => {
                        let v = it.next().ok_or("--expect needs a comma-separated list")?;
                        expect.extend(v.split(',').filter(|s| !s.is_empty()));
                    }
                    // `--check` is accepted as an explicit alias for the
                    // positional form.
                    "--check" => {
                        file = Some(it.next().ok_or("--check needs a file")?);
                    }
                    other if file.is_none() => file = Some(other),
                    other => return Err(format!("unexpected trace argument '{other}'")),
                }
            }
            let file = file.ok_or("trace takes a flight-recorder JSONL dump file")?;
            let text = std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
            let summary = obs::validate_jsonl(&text).map_err(|e| format!("{file}: {e}"))?;
            println!("{file}: {} entries, all valid", summary.lines);
            for (kind, n) in &summary.span_kinds {
                println!("  span  {kind}: {n}");
            }
            for (kind, n) in &summary.event_kinds {
                println!("  event {kind}: {n}");
            }
            for kind in expect {
                if !summary.span_kinds.contains_key(kind) && !summary.event_kinds.contains_key(kind)
                {
                    return Err(format!("expected span/event kind '{kind}' not in {file}"));
                }
            }
            println!("trace: OK");
            Ok(())
        }
        ["recover", rest @ ..] => {
            let (dir, compact) = match rest {
                [dir] => (*dir, false),
                [dir, "--compact"] | ["--compact", dir] => (*dir, true),
                _ => return Err("recover takes <dir> and optionally --compact".into()),
            };
            let ins = inspect_store(dir).map_err(|e| e.to_string())?;
            match (&ins.checkpoint, &ins.checkpoint_error) {
                (Some(c), _) => println!(
                    "checkpoint: ok (g = {}, seq {}, {} live jobs, {} blocks, {} snapshots, \
                     {} quarantined keys)",
                    c.g, c.seq, c.live_jobs, c.blocks, c.snapshots, c.quarantined
                ),
                (None, Some(e)) => println!("checkpoint: REJECTED — {e}"),
                (None, None) => println!("checkpoint: missing"),
            }
            match &ins.journal_error {
                Some(e) if e == "missing" => println!("journal: missing"),
                Some(e) => println!("journal: REJECTED — {e}"),
                None => println!(
                    "journal: ok ({} records, {} pending past the checkpoint{})",
                    ins.journal_records,
                    ins.pending_ops,
                    if ins.journal_torn_tail {
                        "; torn tail"
                    } else {
                        ""
                    }
                ),
            }
            println!(
                "recovery attempts: {} (storm guard trips at {})",
                ins.recovery_attempts,
                abt_active::MAX_RECOVERY_ATTEMPTS
            );
            if compact {
                // Recover through the real attach path (absorbing any
                // corruption exactly as a solver would), then fold the
                // journal into a fresh checkpoint.
                let g = ins.checkpoint.as_ref().map_or(1, |c| c.g);
                let mut solver = IncrementalSolver::new(g).map_err(|e| e.to_string())?;
                let rec = solver.attach_store(dir).map_err(|e| e.to_string())?;
                solver.checkpoint_now();
                println!(
                    "compacted: {} jobs, {} ops folded, {} corruption events absorbed",
                    rec.resumed_jobs, rec.replayed_ops, rec.corruption_events
                );
            }
            Ok(())
        }
        _ => Err("missing or unknown subcommand".into()),
    }
}

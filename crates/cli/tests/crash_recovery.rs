//! Kill-and-restart smoke for the durable replay driver (PR 8): SIGKILL
//! `abt replay --state-dir` mid-stream — after the write-ahead journal
//! shows real progress but long before the trace ends — then restart the
//! same command and require the resumed run to land on the **same**
//! `final objective:` line as an uninterrupted run of the same trace.
//! A crash at an arbitrary instant may leave a torn journal tail; the
//! recovery path must absorb it silently (exit 0, no panic output).

use std::path::Path;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn abt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_abt"))
}

/// The trace: 3 clusters × 3 jobs, seed 11 — 9 arrivals, enough that a
/// throttled run takes ~1 s while the kill lands within ~100 ms.
const TRACE: [&str; 3] = ["3", "3", "11"];

fn replay(state_dir: &Path, extra: &[&str]) -> std::process::Output {
    let mut cmd = abt();
    cmd.args(["replay", "--state-dir", state_dir.to_str().unwrap()]);
    cmd.args(TRACE);
    cmd.args(extra);
    cmd.output().expect("spawn abt replay")
}

fn final_objective(out: &std::process::Output) -> String {
    let stdout = String::from_utf8_lossy(&out.stdout);
    stdout
        .lines()
        .find_map(|l| l.strip_prefix("final objective: "))
        .unwrap_or_else(|| panic!("no 'final objective:' line in:\n{stdout}"))
        .to_string()
}

#[test]
fn sigkill_mid_replay_then_restart_lands_on_the_same_objective() {
    let root = std::env::temp_dir().join(format!("abt-crash-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();

    // Uninterrupted reference run on its own state dir.
    let reference = replay(&root.join("reference"), &[]);
    assert!(
        reference.status.success(),
        "reference replay failed:\n{}",
        String::from_utf8_lossy(&reference.stderr)
    );
    let expected = final_objective(&reference);

    // Crash run: throttled so the SIGKILL lands mid-stream. Wait until
    // the write-ahead journal holds at least two records (header is 16
    // bytes, each Add record ~45), then kill without any shutdown path.
    let state = root.join("state");
    let mut cmd = abt();
    cmd.args(["replay", "--state-dir", state.to_str().unwrap()]);
    cmd.args(TRACE);
    cmd.args(["--throttle-ms", "120"]);
    let mut child = cmd
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn throttled replay");
    let journal = state.join("journal.abt");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if journal.metadata().map(|m| m.len() > 70).unwrap_or(false) {
            break;
        }
        if child.try_wait().expect("poll child").is_some() {
            // The whole throttled trace finished before the poll caught
            // it (absurdly slow filesystem): the restart below still
            // asserts objective identity, just without a torn tail.
            break;
        }
        assert!(
            Instant::now() < deadline,
            "journal never grew: the WAL is not being written"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().ok();
    child.wait().expect("reap killed child");

    // Restart the identical command: recovery replays the journal tail
    // and the resumed run must be bit-identical to the reference.
    let resumed = replay(&state, &[]);
    assert!(
        resumed.status.success(),
        "resumed replay failed:\n{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        final_objective(&resumed),
        expected,
        "kill-and-restart must not move the exact objective"
    );
    let stdout = String::from_utf8_lossy(&resumed.stdout);
    assert!(
        stdout.lines().any(|l| l.starts_with("recovery: ")),
        "resumed run must report its recovery:\n{stdout}"
    );

    // The state dir is healthy after the dust settles.
    let inspect = abt()
        .args(["recover", state.to_str().unwrap()])
        .output()
        .expect("spawn abt recover");
    assert!(
        inspect.status.success(),
        "recover failed:\n{}",
        String::from_utf8_lossy(&inspect.stderr)
    );
    std::fs::remove_dir_all(&root).ok();
}

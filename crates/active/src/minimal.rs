//! Minimal feasible solutions for active time (§2 of the paper).
//!
//! A *minimal feasible solution* (Definition 4) is a set of active slots
//! from which no single slot can be closed without losing feasibility.
//! Theorem 1: **any** minimal feasible solution costs at most `3·OPT`, and
//! the bound is tight (Fig. 3).
//!
//! Because closing is monotone (removing slots only ever hurts
//! feasibility), a single pass over any closing order yields a minimal
//! solution; different orders produce different minimal solutions, which is
//! exactly the gap Theorem 1 bounds. The order is therefore a pluggable
//! ablation knob ([`ClosingOrder`]).

use crate::feasibility::FeasibilityChecker;
use abt_core::active_schedule::horizon_slots;
use abt_core::{ActiveSchedule, Error, Instance, Result, Time};

/// The order in which slots are offered for closing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClosingOrder {
    /// Earliest slot first.
    LeftToRight,
    /// Latest slot first.
    RightToLeft,
    /// Alternating from the outside towards the center.
    OutsideIn,
    /// From the center outwards — the adversarial order on the Fig. 3
    /// gadget (it protects the crowded middle slots and strands the long
    /// jobs outside).
    CenterOut,
    /// Deterministic pseudo-random order derived from the seed.
    Shuffled(u64),
}

impl ClosingOrder {
    /// Arranges `slots` (sorted ascending) into this closing order.
    pub fn arrange(&self, slots: &[Time]) -> Vec<Time> {
        let mut v: Vec<Time> = slots.to_vec();
        match *self {
            ClosingOrder::LeftToRight => {}
            ClosingOrder::RightToLeft => v.reverse(),
            ClosingOrder::OutsideIn => {
                let mut out = Vec::with_capacity(v.len());
                let (mut lo, mut hi) = (0usize, v.len());
                while lo < hi {
                    out.push(v[lo]);
                    lo += 1;
                    if lo < hi {
                        hi -= 1;
                        out.push(v[hi]);
                    }
                }
                v = out;
            }
            ClosingOrder::CenterOut => {
                let mut out = ClosingOrder::OutsideIn.arrange(&v);
                out.reverse();
                v = out;
            }
            ClosingOrder::Shuffled(seed) => {
                // Small deterministic xorshift shuffle (keeps `rand` out of
                // the algorithm crates).
                let mut state = seed | 1;
                for i in (1..v.len()).rev() {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let j = (state % (i as u64 + 1)) as usize;
                    v.swap(i, j);
                }
            }
        }
        v
    }
}

/// Result of the minimal-feasible computation.
#[derive(Debug, Clone)]
pub struct MinimalResult {
    /// The minimal active-slot set, sorted.
    pub slots: Vec<Time>,
    /// A feasible schedule on those slots.
    pub schedule: ActiveSchedule,
}

/// Computes a minimal feasible solution starting from all horizon slots,
/// closing candidates in `order`. Errors if the instance is infeasible even
/// with every slot open.
pub fn minimal_feasible(inst: &Instance, order: ClosingOrder) -> Result<MinimalResult> {
    let all = horizon_slots(inst);
    minimal_feasible_from(inst, &all, order)
}

/// Computes a minimal feasible solution contained in the given starting set
/// of active slots.
pub fn minimal_feasible_from(
    inst: &Instance,
    start: &[Time],
    order: ClosingOrder,
) -> Result<MinimalResult> {
    let checker = FeasibilityChecker::new(inst);
    let mut open: Vec<Time> = start.to_vec();
    open.sort_unstable();
    open.dedup();
    if !checker.is_feasible(&open) {
        return Err(Error::Infeasible(
            "instance infeasible on the given starting slots".into(),
        ));
    }
    for t in order.arrange(&open) {
        let candidate: Vec<Time> = open.iter().copied().filter(|&s| s != t).collect();
        if checker.is_feasible(&candidate) {
            open = candidate;
        }
    }
    let schedule = checker
        .check(&open)
        .expect("minimal set is feasible by construction");
    Ok(MinimalResult {
        slots: open,
        schedule,
    })
}

/// Checks minimality: no single active slot can be closed.
pub fn is_minimal(inst: &Instance, slots: &[Time]) -> bool {
    let checker = FeasibilityChecker::new(inst);
    if !checker.is_feasible(slots) {
        return false;
    }
    slots.iter().all(|&t| {
        let candidate: Vec<Time> = slots.iter().copied().filter(|&s| s != t).collect();
        !checker.is_feasible(&candidate)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Instance {
        Instance::from_triples([(0, 6, 3), (1, 5, 2), (2, 4, 2), (0, 2, 1)], 2).unwrap()
    }

    #[test]
    fn produces_minimal_feasible_solutions() {
        let inst = demo();
        for order in [
            ClosingOrder::LeftToRight,
            ClosingOrder::RightToLeft,
            ClosingOrder::OutsideIn,
            ClosingOrder::CenterOut,
            ClosingOrder::Shuffled(42),
        ] {
            let res = minimal_feasible(&inst, order).unwrap();
            res.schedule.validate(&inst).unwrap();
            assert!(is_minimal(&inst, &res.slots), "not minimal under {order:?}");
        }
    }

    #[test]
    fn infeasible_instance_reported() {
        let inst = Instance::from_triples([(0, 1, 1), (0, 1, 1)], 1).unwrap();
        assert!(matches!(
            minimal_feasible(&inst, ClosingOrder::LeftToRight),
            Err(Error::Infeasible(_))
        ));
    }

    #[test]
    fn orders_are_permutations() {
        let slots = vec![1, 2, 3, 4, 5];
        for order in [
            ClosingOrder::LeftToRight,
            ClosingOrder::RightToLeft,
            ClosingOrder::OutsideIn,
            ClosingOrder::CenterOut,
            ClosingOrder::Shuffled(7),
        ] {
            let mut arranged = order.arrange(&slots);
            arranged.sort_unstable();
            assert_eq!(arranged, slots, "{order:?}");
        }
        assert_eq!(ClosingOrder::OutsideIn.arrange(&slots), vec![1, 5, 2, 4, 3]);
        assert_eq!(ClosingOrder::CenterOut.arrange(&slots), vec![3, 4, 2, 5, 1]);
    }

    #[test]
    fn single_job_tightens_to_length() {
        let inst = Instance::from_triples([(0, 10, 4)], 1).unwrap();
        let res = minimal_feasible(&inst, ClosingOrder::LeftToRight).unwrap();
        assert_eq!(res.slots.len(), 4);
    }

    #[test]
    fn minimality_checker_rejects_slack() {
        let inst = Instance::from_triples([(0, 10, 4)], 1).unwrap();
        assert!(!is_minimal(&inst, &[1, 2, 3, 4, 5]));
        assert!(is_minimal(&inst, &[1, 2, 3, 4]));
        assert!(!is_minimal(&inst, &[1, 2, 3])); // infeasible isn't minimal-feasible
    }
}

//! Exact active time for **unit-length jobs** (the special case solved by
//! Chang, Gabow and Khuller \[2\], cited in §1 of the paper).
//!
//! For unit jobs the bipartite job/slot graph is *convex* (each job's
//! admissible slots form an interval), so by Hall's theorem a slot set `A`
//! is feasible iff for every window interval `(a, b]`:
//! `|{j : a ≤ r_j, d_j ≤ b}| ≤ g · |A ∩ (a, b]|`.
//! Minimizing `|A|` subject to these interval-demand constraints is solved
//! exactly by the classic rightmost-placement greedy: process constraints
//! by right endpoint and open the rightmost available slots of a deficient
//! interval. (Exchange argument: any solution can be pushed right without
//! breaking earlier constraints.) Cross-validated against the
//! branch-and-bound solver in tests.

use crate::feasibility::FeasibilityChecker;
use abt_core::{ActiveSchedule, Error, Instance, Result, Time};
use std::collections::BTreeSet;

/// Result of the unit-job exact algorithm.
#[derive(Debug, Clone)]
pub struct UnitExact {
    /// Optimal active slots, sorted.
    pub slots: Vec<Time>,
    /// An optimal schedule.
    pub schedule: ActiveSchedule,
}

/// Solves a unit-job instance exactly. Errors if some job has `p_j ≠ 1`, or
/// if the instance is infeasible.
pub fn exact_unit_active_time(inst: &Instance) -> Result<UnitExact> {
    if inst.jobs().iter().any(|j| j.length != 1) {
        return Err(Error::Unsupported(
            "exact_unit_active_time requires unit-length jobs".into(),
        ));
    }
    let g = inst.g() as i64;

    // Distinct constraint endpoints.
    let mut lefts: Vec<Time> = inst.jobs().iter().map(|j| j.release).collect();
    let mut rights: Vec<Time> = inst.jobs().iter().map(|j| j.deadline).collect();
    lefts.sort_unstable();
    lefts.dedup();
    rights.sort_unstable();
    rights.dedup();

    // Constraints (a, b, demand) with demand = ⌈N(a,b)/g⌉, sorted by b asc,
    // then a desc (inner intervals first, which keeps the greedy canonical).
    let mut constraints: Vec<(Time, Time, i64)> = Vec::new();
    for &b in &rights {
        for &a in lefts.iter().rev() {
            if a >= b {
                continue;
            }
            let n = inst
                .jobs()
                .iter()
                .filter(|j| j.release >= a && j.deadline <= b)
                .count() as i64;
            if n > 0 {
                constraints.push((a, b, (n + g - 1) / g));
            }
        }
    }
    constraints.sort_by_key(|&(a, b, _)| (b, std::cmp::Reverse(a)));

    let mut chosen: BTreeSet<Time> = BTreeSet::new();
    for &(a, b, q) in &constraints {
        let have = chosen.range(a + 1..=b).count() as i64;
        let mut deficit = q - have;
        let mut t = b;
        while deficit > 0 && t > a {
            if chosen.insert(t) {
                deficit -= 1;
            }
            t -= 1;
        }
        if deficit > 0 {
            return Err(Error::Infeasible(format!(
                "interval ({a}, {b}] needs {q} active slots but has only {} slots",
                b - a
            )));
        }
    }

    let slots: Vec<Time> = chosen.into_iter().collect();
    let schedule = FeasibilityChecker::new(inst)
        .check(&slots)
        .ok_or_else(|| Error::Infeasible("Hall condition violated unexpectedly".into()))?;
    Ok(UnitExact { slots, schedule })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_active_time;

    #[test]
    fn batches_unit_jobs() {
        // 4 unit jobs sharing a window, g = 2: OPT = 2.
        let inst = Instance::from_triples([(0, 5, 1); 4], 2).unwrap();
        let res = exact_unit_active_time(&inst).unwrap();
        assert_eq!(res.slots.len(), 2);
        res.schedule.validate(&inst).unwrap();
    }

    #[test]
    fn respects_disjoint_windows() {
        let inst = Instance::from_triples([(0, 1, 1), (5, 6, 1)], 4).unwrap();
        let res = exact_unit_active_time(&inst).unwrap();
        assert_eq!(res.slots, vec![1, 6]);
    }

    #[test]
    fn staircase_instance() {
        // Windows (0,2], (1,3], (2,4] with g=1: one slot per job needed; the
        // rightmost greedy shares where possible. OPT = 3 (three jobs, g=1).
        let inst = Instance::from_triples([(0, 2, 1), (1, 3, 1), (2, 4, 1)], 1).unwrap();
        let res = exact_unit_active_time(&inst).unwrap();
        assert_eq!(res.slots.len(), 3);
        // With g = 3 a single shared slot (t=2) does not fit all (job 3's
        // window is (2,4]); greedy needs 2 slots.
        let inst3 = inst.with_g(3).unwrap();
        let res3 = exact_unit_active_time(&inst3).unwrap();
        assert_eq!(res3.slots.len(), 2);
    }

    #[test]
    fn rejects_non_unit() {
        let inst = Instance::from_triples([(0, 5, 2)], 1).unwrap();
        assert!(matches!(
            exact_unit_active_time(&inst),
            Err(Error::Unsupported(_))
        ));
    }

    #[test]
    fn detects_infeasible() {
        let inst = Instance::from_triples([(0, 1, 1), (0, 1, 1)], 1).unwrap();
        assert!(matches!(
            exact_unit_active_time(&inst),
            Err(Error::Infeasible(_))
        ));
    }

    #[test]
    fn matches_branch_and_bound_on_small_instances() {
        // Deterministic pseudo-random small unit instances.
        let mut state = 0xC0FFEEu64;
        let mut next = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        for trial in 0..25 {
            let n = 2 + (next(6) as usize);
            let g = 1 + (next(3) as usize);
            let mut triples = Vec::new();
            for _ in 0..n {
                let r = next(8) as i64;
                let d = r + 1 + next(4) as i64;
                triples.push((r, d, 1i64));
            }
            let inst = Instance::from_triples(triples.clone(), g).unwrap();
            let greedy = exact_unit_active_time(&inst);
            let bnb = exact_active_time(&inst, Some(2_000_000));
            match (greedy, bnb) {
                (Ok(gr), Ok(ex)) => {
                    assert_eq!(
                        gr.slots.len(),
                        ex.slots.len(),
                        "trial {trial}: greedy {:?} vs exact {:?} on {triples:?} g={g}",
                        gr.slots,
                        ex.slots
                    );
                }
                (Err(Error::Infeasible(_)), Err(Error::Infeasible(_))) => {}
                (a, b) => panic!("trial {trial}: disagreement {a:?} vs {b:?}"),
            }
        }
    }
}

//! Exact minimum active time via branch-and-bound.
//!
//! The complexity of the (integrally preemptive) active-time problem is
//! open — the paper conjectures NP-hardness — so the exact solver is a
//! search: decide each horizon slot open/closed, pruning a branch as soon
//! as (a) it cannot beat the incumbent, or (b) even opening every
//! undecided slot is infeasible (closing is monotone, so this prune is
//! sound). Intended for the small instances used to measure approximation
//! ratios; the approximation algorithms are the scalable path.
//!
//! # Huge sparse horizons: event-point-run branching
//!
//! The per-slot search branches once per horizon slot, so a sparse
//! instance with a huge horizon (two small jobs a million slots apart)
//! used to hang even though its coalesced LP solves in milliseconds. Past
//! [`RUN_BRANCH_SLOT_LIMIT`] slots the solver switches to branching over
//! **event-point runs** — the same maximal identical-window slot groups
//! LP1 coalesces. Within a run every slot has the same feasible job set
//! and capacity, so all `k`-subsets of a run are interchangeable: the
//! search decides only *how many* slots of each run to open (materializing
//! the rightmost `k` for feasibility probes), and no run ever needs more
//! than `P = Σ_j p_j` open slots. The search tree depth drops from the
//! horizon length to the number of runs (≤ `2n + 1`).

use crate::feasibility::FeasibilityChecker;
use crate::lp_model::{slot_runs, solve_active_lp, SlotRun};
use crate::minimal::{minimal_feasible, ClosingOrder};
use abt_core::active_schedule::horizon_slots;
use abt_core::{active_lower_bound, ActiveSchedule, Error, Instance, Result, Time};

/// Horizon length (in slots) beyond which the per-slot branch-and-bound
/// hands over to event-point-run branching.
pub const RUN_BRANCH_SLOT_LIMIT: i64 = 2048;

/// Result of an exact solve.
#[derive(Debug, Clone)]
pub struct ExactActive {
    /// Optimal active slots.
    pub slots: Vec<Time>,
    /// An optimal schedule.
    pub schedule: ActiveSchedule,
    /// Number of search nodes explored (for reporting).
    pub nodes: u64,
}

/// Solves the instance to optimality. Errors if infeasible.
///
/// `node_limit` bounds the search (None = unlimited); hitting it returns
/// [`Error::Unsupported`] so callers can fall back to approximations.
/// Horizons longer than [`RUN_BRANCH_SLOT_LIMIT`] slots are solved by
/// event-point-run branching (see the module docs) instead of per-slot
/// branching, so sparse instances with huge horizons terminate.
pub fn exact_active_time(inst: &Instance, node_limit: Option<u64>) -> Result<ExactActive> {
    if !inst.is_empty() && inst.max_deadline() - inst.min_release() > RUN_BRANCH_SLOT_LIMIT {
        return exact_over_runs(inst, node_limit);
    }
    let checker = FeasibilityChecker::new(inst);
    let all = horizon_slots(inst);
    if !checker.is_feasible(&all) {
        return Err(Error::Infeasible("no feasible schedule exists".into()));
    }
    // Warm start: the best minimal feasible solution over a few orders.
    let mut best: Vec<Time> = all.clone();
    for order in [
        ClosingOrder::RightToLeft,
        ClosingOrder::LeftToRight,
        ClosingOrder::OutsideIn,
    ] {
        if let Ok(res) = minimal_feasible(inst, order) {
            if res.slots.len() < best.len() {
                best = res.slots;
            }
        }
    }
    // Lower bound: the combinatorial bound, tightened by ⌈LP1⌉ (solved on
    // the coalesced model with the hybrid simplex, so it is cheap relative
    // to the search it prunes and exact, hence sound). Skipped when the
    // warm start already matches the combinatorial bound and the LP could
    // prove nothing new.
    let mut lb = active_lower_bound(inst);
    if best.len() as i64 > lb {
        if let Ok(lp) = solve_active_lp(inst) {
            lb = lb.max(lp.objective.ceil() as i64);
        }
    }

    struct Search<'a> {
        checker: FeasibilityChecker<'a>,
        all: Vec<Time>,
        best: Vec<Time>,
        nodes: u64,
        limit: u64,
        lb: i64,
    }
    impl Search<'_> {
        /// `open`: decided-open slots; `idx`: next undecided position.
        fn dfs(&mut self, open: &mut Vec<Time>, idx: usize) -> Result<()> {
            self.nodes += 1;
            if self.nodes > self.limit {
                return Err(Error::Unsupported(format!(
                    "exact active-time search exceeded {} nodes",
                    self.limit
                )));
            }
            if open.len() >= self.best.len() {
                return Ok(()); // cannot strictly improve
            }
            if (self.best.len() as i64) == self.lb {
                return Ok(()); // incumbent provably optimal
            }
            if idx == self.all.len() {
                if self.checker.is_feasible(open) {
                    self.best = open.clone();
                }
                return Ok(());
            }
            // Candidate relaxation: open ∪ undecided suffix.
            let mut relaxed: Vec<Time> = open.clone();
            relaxed.extend_from_slice(&self.all[idx..]);
            if !self.checker.is_feasible(&relaxed) {
                return Ok(()); // monotone prune
            }
            // Branch: close slot idx first (biases towards small solutions).
            self.dfs(open, idx + 1)?;
            open.push(self.all[idx]);
            self.dfs(open, idx + 1)?;
            open.pop();
            Ok(())
        }
    }

    let mut search = Search {
        checker,
        all,
        best,
        nodes: 0,
        limit: node_limit.unwrap_or(u64::MAX),
        lb,
    };
    let mut open = Vec::new();
    search.dfs(&mut open, 0)?;

    let schedule = FeasibilityChecker::new(inst)
        .check(&search.best)
        .expect("incumbent is feasible");
    Ok(ExactActive {
        slots: search.best,
        schedule,
        nodes: search.nodes,
    })
}

/// Branch-and-bound over event-point runs: decides, per run, how many of
/// its slots to open (rightmost-`k` materialization — all equal-size
/// subsets of a run are interchangeable, see the module docs).
fn exact_over_runs(inst: &Instance, node_limit: Option<u64>) -> Result<ExactActive> {
    let checker = FeasibilityChecker::new(inst);
    let runs = slot_runs(inst, true);
    let p_total = inst.total_length();
    // Per-run cap: a run no job can use never opens; otherwise no schedule
    // needs more than P = Σ p_j slots anywhere, in particular per run.
    let caps: Vec<i64> = runs
        .iter()
        .map(|run| {
            let usable = inst
                .jobs()
                .iter()
                .any(|j| j.release <= run.start && run.end <= j.deadline);
            if usable {
                run.width().min(p_total)
            } else {
                0
            }
        })
        .collect();

    struct RunSearch<'a> {
        checker: FeasibilityChecker<'a>,
        runs: Vec<SlotRun>,
        caps: Vec<i64>,
        best: Vec<Time>,
        nodes: u64,
        limit: u64,
        lb: i64,
    }
    impl RunSearch<'_> {
        /// The rightmost `counts[i]` slots of every run.
        fn materialize(&self, counts: &[i64]) -> Vec<Time> {
            let mut slots = Vec::new();
            for (run, &k) in self.runs.iter().zip(counts) {
                slots.extend((run.end - k + 1)..=run.end);
            }
            slots
        }

        /// `counts[..idx]` are decided; the rest are at their caps.
        fn dfs(&mut self, counts: &mut Vec<i64>, idx: usize, opened: i64) -> Result<()> {
            self.nodes += 1;
            if self.nodes > self.limit {
                return Err(Error::Unsupported(format!(
                    "exact active-time search exceeded {} nodes",
                    self.limit
                )));
            }
            if (self.best.len() as i64) == self.lb {
                return Ok(()); // incumbent provably optimal
            }
            if idx == self.runs.len() {
                let slots = self.materialize(counts);
                if slots.len() < self.best.len() && self.checker.is_feasible(&slots) {
                    self.best = slots;
                }
                return Ok(());
            }
            // Monotone prune: even the cap-relaxation of the undecided
            // suffix cannot be completed to a feasible solution.
            let mut relaxed = counts.clone();
            relaxed.truncate(idx);
            relaxed.extend_from_slice(&self.caps[idx..]);
            if !self.checker.is_feasible(&self.materialize(&relaxed)) {
                return Ok(());
            }
            // Branch on the open count of run `idx`, small counts first
            // (biases towards small solutions, like closing-first above).
            for k in 0..=self.caps[idx] {
                if opened + k >= self.best.len() as i64 {
                    break; // cannot strictly improve
                }
                counts.push(k);
                self.dfs(counts, idx + 1, opened + k)?;
                counts.pop();
            }
            Ok(())
        }
    }

    let mut search = RunSearch {
        checker,
        runs,
        caps: caps.clone(),
        best: Vec::new(),
        nodes: 0,
        limit: node_limit.unwrap_or(u64::MAX),
        lb: 0,
    };
    let full = search.materialize(&caps);
    if !search.checker.is_feasible(&full) {
        return Err(Error::Infeasible("no feasible schedule exists".into()));
    }
    search.best = full;
    let mut lb = active_lower_bound(inst);
    if search.best.len() as i64 > lb {
        if let Ok(lp) = solve_active_lp(inst) {
            lb = lb.max(lp.objective.ceil() as i64);
        }
    }
    search.lb = lb;
    let mut counts = Vec::with_capacity(search.runs.len());
    search.dfs(&mut counts, 0, 0)?;

    let schedule = FeasibilityChecker::new(inst)
        .check(&search.best)
        .expect("incumbent is feasible");
    Ok(ExactActive {
        slots: search.best,
        schedule,
        nodes: search.nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_job() {
        let inst = Instance::from_triples([(0, 10, 4)], 1).unwrap();
        let res = exact_active_time(&inst, None).unwrap();
        assert_eq!(res.slots.len(), 4);
        res.schedule.validate(&inst).unwrap();
    }

    #[test]
    fn sharing_pays() {
        // Two jobs of length 2 with overlapping windows, g=2: OPT = 2.
        let inst = Instance::from_triples([(0, 4, 2), (1, 3, 2)], 2).unwrap();
        let res = exact_active_time(&inst, None).unwrap();
        assert_eq!(res.slots.len(), 2);
    }

    #[test]
    fn capacity_forces_spread() {
        // Same but g=1: OPT = 4.
        let inst = Instance::from_triples([(0, 4, 2), (1, 3, 2)], 1).unwrap();
        let res = exact_active_time(&inst, None).unwrap();
        assert_eq!(res.slots.len(), 4);
    }

    #[test]
    fn matches_lower_bound_on_packed_instance() {
        // g jobs of length L in a window of exactly L slots: OPT = L.
        let inst = Instance::from_triples([(0, 5, 5), (0, 5, 5), (0, 5, 5)], 3).unwrap();
        let res = exact_active_time(&inst, None).unwrap();
        assert_eq!(res.slots.len(), 5);
    }

    #[test]
    fn infeasible_errors() {
        let inst = Instance::from_triples([(0, 1, 1), (0, 1, 1)], 1).unwrap();
        assert!(matches!(
            exact_active_time(&inst, None),
            Err(Error::Infeasible(_))
        ));
    }

    #[test]
    fn node_limit_respected() {
        let inst = Instance::from_triples((0..8).map(|i| (i, i + 6, 2)), 2).unwrap();
        match exact_active_time(&inst, Some(0)) {
            Err(Error::Unsupported(_)) => {}
            other => panic!("expected node-limit error, got {other:?}"),
        }
    }

    #[test]
    fn sparse_huge_horizon_terminates() {
        // Regression: two jobs a million slots apart used to hang the
        // per-slot search; the run-branching path solves it instantly.
        let inst = Instance::from_triples([(0, 3, 2), (1_000_000, 1_000_003, 2)], 1).unwrap();
        let res = exact_active_time(&inst, Some(100_000)).unwrap();
        assert_eq!(res.slots.len(), 4);
        res.schedule.validate(&inst).unwrap();

        // Sharing across the gap endpoints still works with g = 2.
        let inst2 = inst.with_g(2).unwrap();
        let res2 = exact_active_time(&inst2, Some(100_000)).unwrap();
        assert_eq!(res2.slots.len(), 4); // windows are disjoint: no sharing
        res2.schedule.validate(&inst2).unwrap();
    }

    #[test]
    fn run_branching_matches_per_slot_on_small_instances() {
        let cases = [
            Instance::from_triples([(0, 4, 2), (1, 3, 2)], 2).unwrap(),
            Instance::from_triples([(0, 4, 2), (1, 3, 2)], 1).unwrap(),
            Instance::from_triples([(0, 6, 3), (1, 5, 2), (2, 4, 2), (0, 2, 1), (3, 8, 2)], 2)
                .unwrap(),
            Instance::from_triples([(0, 5, 5), (0, 5, 5), (0, 5, 5)], 3).unwrap(),
            Instance::from_triples([(0, 10, 4)], 1).unwrap(),
        ];
        for inst in &cases {
            let per_slot = exact_active_time(inst, None).unwrap();
            let over_runs = exact_over_runs(inst, None).unwrap();
            assert_eq!(per_slot.slots.len(), over_runs.slots.len(), "{inst:?}");
            over_runs.schedule.validate(inst).unwrap();
        }
    }

    #[test]
    fn run_branching_respects_node_limit_and_infeasibility() {
        let inf = Instance::from_triples([(0, 1, 1), (0, 1, 1)], 1).unwrap();
        assert!(matches!(
            exact_over_runs(&inf, None),
            Err(Error::Infeasible(_))
        ));
        let inst = Instance::from_triples((0..8).map(|i| (i, i + 6, 2)), 2).unwrap();
        match exact_over_runs(&inst, Some(0)) {
            Err(Error::Unsupported(_)) => {}
            other => panic!("expected node-limit error, got {other:?}"),
        }
    }

    #[test]
    fn exact_beats_or_ties_minimal() {
        let inst =
            Instance::from_triples([(0, 6, 3), (1, 5, 2), (2, 4, 2), (0, 2, 1), (3, 8, 2)], 2)
                .unwrap();
        let exact = exact_active_time(&inst, None).unwrap();
        for order in [ClosingOrder::LeftToRight, ClosingOrder::RightToLeft] {
            let min = minimal_feasible(&inst, order).unwrap();
            assert!(exact.slots.len() <= min.slots.len());
        }
        exact.schedule.validate(&inst).unwrap();
    }
}

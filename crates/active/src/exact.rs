//! Exact minimum active time via branch-and-bound.
//!
//! The complexity of the (integrally preemptive) active-time problem is
//! open — the paper conjectures NP-hardness — so the exact solver is a
//! search: decide each horizon slot open/closed, pruning a branch as soon
//! as (a) it cannot beat the incumbent, or (b) even opening every
//! undecided slot is infeasible (closing is monotone, so this prune is
//! sound). Intended for the small instances used to measure approximation
//! ratios; the approximation algorithms are the scalable path.

use crate::feasibility::FeasibilityChecker;
use crate::lp_model::solve_active_lp;
use crate::minimal::{minimal_feasible, ClosingOrder};
use abt_core::active_schedule::horizon_slots;
use abt_core::{active_lower_bound, ActiveSchedule, Error, Instance, Result, Time};

/// Result of an exact solve.
#[derive(Debug, Clone)]
pub struct ExactActive {
    /// Optimal active slots.
    pub slots: Vec<Time>,
    /// An optimal schedule.
    pub schedule: ActiveSchedule,
    /// Number of search nodes explored (for reporting).
    pub nodes: u64,
}

/// Solves the instance to optimality. Errors if infeasible.
///
/// `node_limit` bounds the search (None = unlimited); hitting it returns
/// [`Error::Unsupported`] so callers can fall back to approximations.
pub fn exact_active_time(inst: &Instance, node_limit: Option<u64>) -> Result<ExactActive> {
    let checker = FeasibilityChecker::new(inst);
    let all = horizon_slots(inst);
    if !checker.is_feasible(&all) {
        return Err(Error::Infeasible("no feasible schedule exists".into()));
    }
    // Warm start: the best minimal feasible solution over a few orders.
    let mut best: Vec<Time> = all.clone();
    for order in [
        ClosingOrder::RightToLeft,
        ClosingOrder::LeftToRight,
        ClosingOrder::OutsideIn,
    ] {
        if let Ok(res) = minimal_feasible(inst, order) {
            if res.slots.len() < best.len() {
                best = res.slots;
            }
        }
    }
    // Lower bound: the combinatorial bound, tightened by ⌈LP1⌉ (solved on
    // the coalesced model with the hybrid simplex, so it is cheap relative
    // to the search it prunes and exact, hence sound). Skipped when the
    // warm start already matches the combinatorial bound and the LP could
    // prove nothing new.
    let mut lb = active_lower_bound(inst);
    if best.len() as i64 > lb {
        if let Ok(lp) = solve_active_lp(inst) {
            lb = lb.max(lp.objective.ceil() as i64);
        }
    }

    struct Search<'a> {
        checker: FeasibilityChecker<'a>,
        all: Vec<Time>,
        best: Vec<Time>,
        nodes: u64,
        limit: u64,
        lb: i64,
    }
    impl Search<'_> {
        /// `open`: decided-open slots; `idx`: next undecided position.
        fn dfs(&mut self, open: &mut Vec<Time>, idx: usize) -> Result<()> {
            self.nodes += 1;
            if self.nodes > self.limit {
                return Err(Error::Unsupported(format!(
                    "exact active-time search exceeded {} nodes",
                    self.limit
                )));
            }
            if open.len() >= self.best.len() {
                return Ok(()); // cannot strictly improve
            }
            if (self.best.len() as i64) == self.lb {
                return Ok(()); // incumbent provably optimal
            }
            if idx == self.all.len() {
                if self.checker.is_feasible(open) {
                    self.best = open.clone();
                }
                return Ok(());
            }
            // Candidate relaxation: open ∪ undecided suffix.
            let mut relaxed: Vec<Time> = open.clone();
            relaxed.extend_from_slice(&self.all[idx..]);
            if !self.checker.is_feasible(&relaxed) {
                return Ok(()); // monotone prune
            }
            // Branch: close slot idx first (biases towards small solutions).
            self.dfs(open, idx + 1)?;
            open.push(self.all[idx]);
            self.dfs(open, idx + 1)?;
            open.pop();
            Ok(())
        }
    }

    let mut search = Search {
        checker,
        all,
        best,
        nodes: 0,
        limit: node_limit.unwrap_or(u64::MAX),
        lb,
    };
    let mut open = Vec::new();
    search.dfs(&mut open, 0)?;

    let schedule = FeasibilityChecker::new(inst)
        .check(&search.best)
        .expect("incumbent is feasible");
    Ok(ExactActive {
        slots: search.best,
        schedule,
        nodes: search.nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_job() {
        let inst = Instance::from_triples([(0, 10, 4)], 1).unwrap();
        let res = exact_active_time(&inst, None).unwrap();
        assert_eq!(res.slots.len(), 4);
        res.schedule.validate(&inst).unwrap();
    }

    #[test]
    fn sharing_pays() {
        // Two jobs of length 2 with overlapping windows, g=2: OPT = 2.
        let inst = Instance::from_triples([(0, 4, 2), (1, 3, 2)], 2).unwrap();
        let res = exact_active_time(&inst, None).unwrap();
        assert_eq!(res.slots.len(), 2);
    }

    #[test]
    fn capacity_forces_spread() {
        // Same but g=1: OPT = 4.
        let inst = Instance::from_triples([(0, 4, 2), (1, 3, 2)], 1).unwrap();
        let res = exact_active_time(&inst, None).unwrap();
        assert_eq!(res.slots.len(), 4);
    }

    #[test]
    fn matches_lower_bound_on_packed_instance() {
        // g jobs of length L in a window of exactly L slots: OPT = L.
        let inst = Instance::from_triples([(0, 5, 5), (0, 5, 5), (0, 5, 5)], 3).unwrap();
        let res = exact_active_time(&inst, None).unwrap();
        assert_eq!(res.slots.len(), 5);
    }

    #[test]
    fn infeasible_errors() {
        let inst = Instance::from_triples([(0, 1, 1), (0, 1, 1)], 1).unwrap();
        assert!(matches!(
            exact_active_time(&inst, None),
            Err(Error::Infeasible(_))
        ));
    }

    #[test]
    fn node_limit_respected() {
        let inst = Instance::from_triples((0..8).map(|i| (i, i + 6, 2)), 2).unwrap();
        match exact_active_time(&inst, Some(0)) {
            Err(Error::Unsupported(_)) => {}
            other => panic!("expected node-limit error, got {other:?}"),
        }
    }

    #[test]
    fn exact_beats_or_ties_minimal() {
        let inst =
            Instance::from_triples([(0, 6, 3), (1, 5, 2), (2, 4, 2), (0, 2, 1), (3, 8, 2)], 2)
                .unwrap();
        let exact = exact_active_time(&inst, None).unwrap();
        for order in [ClosingOrder::LeftToRight, ClosingOrder::RightToLeft] {
            let min = minimal_feasible(&inst, order).unwrap();
            assert!(exact.slots.len() <= min.slots.len());
        }
        exact.schedule.validate(&inst).unwrap();
    }
}

//! The LP-rounding 2-approximation for active time (§3.2–3.4, Theorem 2).
//!
//! Deadlines are processed left to right. Per segment `i` (with mass
//! `Y_i`), the `⌊Y_i⌋` *fully open* right-shifted slots open integrally for
//! free. The fractional remainder — merged with at most one *proxy* slot
//! carried from earlier iterations — is handled by value:
//!
//! * `= 1`:  the slot became fully open by the merge; open it (footnote 4);
//! * `≥ ½` (*half open*): open it, charging its own `y` at most twice;
//! * `< ½` (*barely open*): try to **close** it — feasible (by max-flow on
//!   the slots opened so far, jobs with processed deadlines) ⇒ carry it as
//!   a proxy; infeasible ⇒ open it and charge it to the earliest fully
//!   open slot without a **dependent**, else complete a **trio**
//!   (full + dependent + this, `Σy ≥ 3/2`), else become the **filler** of a
//!   half-open slot (`Σy ≥ 1`). Lemma 6 proves a charge target always
//!   exists; the implementation still carries a defensive fallback that
//!   opens the slot and flags the ledger (`anomalies`), plus a final
//!   feasibility repair (`repair_slots`) — both remain 0 across the entire
//!   test and experiment suite.
//!
//! The outcome carries the exact LP objective so callers can assert
//! `cost ≤ 2·LP ≤ 2·OPT` with rational arithmetic.

use crate::feasibility::FeasibilityChecker;
use crate::lp_model::{solve_active_lp, ActiveLp};
use crate::right_shift::{right_shift, RightShifted};
use abt_core::{ActiveSchedule, Error, Instance, JobId, Result, Time};
use abt_lp::Rat;
use std::collections::BTreeSet;

/// How an opened slot was paid for (for the experiment tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChargeKind {
    /// A right-shifted fully open slot (cost 1 charged to its own `y = 1`).
    FullyOpen,
    /// A half-open slot charged to itself (`y ≥ ½`).
    SelfHalf,
    /// A barely open slot charged as a dependent of a fully open slot.
    Dependent,
    /// A barely open slot completing a trio.
    Trio,
    /// A barely open slot filling a half-open slot.
    Filler,
    /// Defensive fallback — should never occur (Lemma 6).
    Anomaly,
}

/// Outcome of the rounding.
#[derive(Debug, Clone)]
pub struct RoundingOutcome {
    /// The integrally opened slots, ascending.
    pub opened: Vec<Time>,
    /// A feasible integral schedule on those slots.
    pub schedule: ActiveSchedule,
    /// The exact optimal LP objective (lower bound on integral OPT).
    pub lp_objective: Rat,
    /// `opened.len()` as an integer cost.
    pub cost: i64,
    /// Charge-kind tally, indexed by the order of [`ChargeKind`] variants.
    pub charges: Vec<(ChargeKind, usize)>,
    /// Times the defensive charging fallback fired (expected 0).
    pub anomalies: usize,
    /// Slots added by the final feasibility repair (expected 0).
    pub repair_slots: usize,
}

impl RoundingOutcome {
    /// Whether the 2-approximation certificate holds: `cost ≤ 2 · LP`.
    pub fn within_two_lp(&self) -> bool {
        let two_lp = self.lp_objective.mul(&Rat::from_int(2));
        Rat::from_int(self.cost) <= two_lp
    }
}

struct FullSlot {
    t: Time,
    dependent: Option<Rat>,
    in_trio: bool,
}

struct HalfSlot {
    t: Time,
    y: Rat,
    has_filler: bool,
}

struct Ledger {
    fulls: Vec<FullSlot>,
    halves: Vec<HalfSlot>,
    tally: [usize; 6],
}

impl Ledger {
    fn new() -> Self {
        Ledger {
            fulls: Vec::new(),
            halves: Vec::new(),
            tally: [0; 6],
        }
    }

    fn record(&mut self, kind: ChargeKind) {
        let idx = match kind {
            ChargeKind::FullyOpen => 0,
            ChargeKind::SelfHalf => 1,
            ChargeKind::Dependent => 2,
            ChargeKind::Trio => 3,
            ChargeKind::Filler => 4,
            ChargeKind::Anomaly => 5,
        };
        self.tally[idx] += 1;
    }

    fn add_full(&mut self, t: Time) {
        self.fulls.push(FullSlot {
            t,
            dependent: None,
            in_trio: false,
        });
        self.record(ChargeKind::FullyOpen);
    }

    fn add_half(&mut self, t: Time, y: Rat) {
        self.halves.push(HalfSlot {
            t,
            y,
            has_filler: false,
        });
        self.record(ChargeKind::SelfHalf);
    }

    /// Charges a barely open slot of value `v`; returns how.
    fn charge_barely(&mut self, v: Rat) -> ChargeKind {
        let half = Rat::new(1, 2);
        // (a) earliest fully open slot without dependent (and not in a trio).
        if let Some(fs) = self
            .fulls
            .iter_mut()
            .filter(|f| f.dependent.is_none() && !f.in_trio)
            .min_by_key(|f| f.t)
        {
            fs.dependent = Some(v);
            self.record(ChargeKind::Dependent);
            return ChargeKind::Dependent;
        }
        // (b) earliest fully open slot whose dependent can complete a trio.
        if let Some(fs) = self
            .fulls
            .iter_mut()
            .filter(|f| !f.in_trio && f.dependent.is_some_and(|d| d.add(&v) >= half))
            .min_by_key(|f| f.t)
        {
            fs.in_trio = true;
            self.record(ChargeKind::Trio);
            return ChargeKind::Trio;
        }
        // (c) earliest half-open slot that this can fill.
        if let Some(hs) = self
            .halves
            .iter_mut()
            .filter(|h| !h.has_filler && h.y.add(&v) >= Rat::ONE)
            .min_by_key(|h| h.t)
        {
            hs.has_filler = true;
            self.record(ChargeKind::Filler);
            return ChargeKind::Filler;
        }
        self.record(ChargeKind::Anomaly);
        ChargeKind::Anomaly
    }
}

/// Rounds the optimal LP solution of `inst` into an integral schedule of
/// cost at most `2·LP ≤ 2·OPT`.
pub fn lp_rounding(inst: &Instance) -> Result<RoundingOutcome> {
    let lp = solve_active_lp(inst)?;
    lp_rounding_from(inst, &lp)
}

/// Rounding given an already-solved LP (lets experiments reuse the solve).
pub fn lp_rounding_from(inst: &Instance, lp: &ActiveLp) -> Result<RoundingOutcome> {
    let rs: RightShifted = right_shift(inst, lp);
    let checker = FeasibilityChecker::new(inst);
    let half = Rat::new(1, 2);

    let mut opened: BTreeSet<Time> = BTreeSet::new();
    let mut ledger = Ledger::new();
    let mut proxy: Option<(Rat, Time)> = None;
    let mut jobs_so_far: Vec<JobId> = Vec::new();
    let mut anomalies = 0usize;

    for seg in &rs.segments {
        jobs_so_far.extend_from_slice(&seg.jobs);
        let y = seg.y_sum;
        let floor = y.floor() as i64;
        let fr = y.fract();
        // Open the ⌊Y_i⌋ fully open right-shifted slots.
        for k in 0..floor {
            let t = seg.deadline - k;
            opened.insert(t);
            ledger.add_full(t);
        }
        // Build the fractional residue items: at most one half-open slot and
        // one barely/merged item (§3.4 "Dealing with a proxy slot").
        let mut residue: Vec<(Rat, Time)> = Vec::new();
        let frac_loc = seg.deadline - floor;
        match proxy.take() {
            None => {
                if fr.signum() > 0 {
                    residue.push((fr, frac_loc));
                }
            }
            Some((pv, pp)) => {
                let merged = fr.add(&pv);
                if merged <= Rat::ONE {
                    let loc = if frac_loc > seg.start { frac_loc } else { pp };
                    residue.push((merged, loc));
                } else {
                    // fr > ½: a half-open slot plus a barely open residue.
                    residue.push((fr, frac_loc));
                    let loc2 = if frac_loc - 1 > seg.start {
                        frac_loc - 1
                    } else {
                        pp
                    };
                    residue.push((merged.sub(&Rat::ONE), loc2));
                }
            }
        }
        for (v, loc) in residue {
            if v == Rat::ONE {
                // Became fully open through the merge (footnote 4).
                opened.insert(loc);
                ledger.add_full(loc);
            } else if v >= half {
                opened.insert(loc);
                ledger.add_half(loc, v);
            } else {
                // Barely open: try to close it.
                let open_now: Vec<Time> = opened.iter().copied().collect();
                if checker.is_feasible_subset(&jobs_so_far, &open_now) {
                    proxy = Some((v, loc));
                } else {
                    opened.insert(loc);
                    if ledger.charge_barely(v) == ChargeKind::Anomaly {
                        anomalies += 1;
                    }
                }
            }
        }
    }

    // Final feasibility (guaranteed by Lemma 5; repaired defensively).
    let mut repair_slots = 0usize;
    let mut open_vec: Vec<Time> = opened.iter().copied().collect();
    if !checker.is_feasible(&open_vec) {
        for &t in rs.slots.iter().rev() {
            if opened.contains(&t) {
                continue;
            }
            opened.insert(t);
            repair_slots += 1;
            open_vec = opened.iter().copied().collect();
            if checker.is_feasible(&open_vec) {
                break;
            }
        }
    }
    let schedule = checker
        .check(&open_vec)
        .ok_or_else(|| Error::Infeasible("rounding could not recover feasibility".into()))?;

    let cost = open_vec.len() as i64;
    let charges = vec![
        (ChargeKind::FullyOpen, ledger.tally[0]),
        (ChargeKind::SelfHalf, ledger.tally[1]),
        (ChargeKind::Dependent, ledger.tally[2]),
        (ChargeKind::Trio, ledger.tally[3]),
        (ChargeKind::Filler, ledger.tally[4]),
        (ChargeKind::Anomaly, ledger.tally[5]),
    ];
    Ok(RoundingOutcome {
        opened: open_vec,
        schedule,
        lp_objective: lp.objective,
        cost,
        charges,
        anomalies,
        repair_slots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rat(p: i64, q: i64) -> Rat {
        Rat::new(p as i128, q as i128)
    }

    #[test]
    fn ledger_charges_dependent_then_trio_then_filler() {
        // Drive the private ledger through every charge path (Lemma 6's
        // case analysis): these arise from non-vertex optimal LP solutions,
        // which our simplex never emits, so they need direct coverage.
        let mut ledger = Ledger::new();
        ledger.add_full(10);
        // First barely open slot becomes the dependent of slot 10.
        assert_eq!(ledger.charge_barely(rat(2, 5)), ChargeKind::Dependent);
        // Second one completes the trio (2/5 + 2/5 ≥ 1/2).
        assert_eq!(ledger.charge_barely(rat(2, 5)), ChargeKind::Trio);
        // No fully open slot left; a half-open slot takes a filler.
        ledger.add_half(20, rat(3, 5));
        assert_eq!(ledger.charge_barely(rat(2, 5)), ChargeKind::Filler);
        // Nothing left to charge: the defensive fallback fires.
        assert_eq!(ledger.charge_barely(rat(2, 5)), ChargeKind::Anomaly);
        assert_eq!(ledger.tally, [1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn ledger_prefers_earliest_targets() {
        let mut ledger = Ledger::new();
        ledger.add_full(30);
        ledger.add_full(5);
        assert_eq!(ledger.charge_barely(rat(1, 5)), ChargeKind::Dependent);
        // The earlier slot (t = 5) must have received the dependent.
        let early = ledger.fulls.iter().find(|f| f.t == 5).unwrap();
        assert!(early.dependent.is_some());
        let late = ledger.fulls.iter().find(|f| f.t == 30).unwrap();
        assert!(late.dependent.is_none());
    }

    #[test]
    fn ledger_trio_requires_half_total() {
        let mut ledger = Ledger::new();
        ledger.add_full(1);
        assert_eq!(ledger.charge_barely(rat(1, 10)), ChargeKind::Dependent);
        // 1/10 + 1/10 < 1/2: no trio possible, no half-open slot: anomaly.
        assert_eq!(ledger.charge_barely(rat(1, 10)), ChargeKind::Anomaly);
        // A (2/5)-dependent on a fresh full slot can trio with 1/10.
        ledger.add_full(2);
        assert_eq!(ledger.charge_barely(rat(2, 5)), ChargeKind::Dependent);
        assert_eq!(ledger.charge_barely(rat(1, 10)), ChargeKind::Trio);
    }

    #[test]
    fn ledger_filler_requires_unit_total() {
        let mut ledger = Ledger::new();
        ledger.add_half(7, rat(1, 2));
        // 1/2 + 1/3 < 1: cannot fill.
        assert_eq!(ledger.charge_barely(rat(1, 3)), ChargeKind::Anomaly);
        // 1/2 + 1/2... a barely open value is < 1/2 by definition; 49/100
        // works: 1/2 + 49/100 < 1 still fails; use a bigger half slot.
        ledger.add_half(9, rat(3, 5));
        assert_eq!(ledger.charge_barely(rat(2, 5)), ChargeKind::Filler);
    }

    fn check(inst: &Instance) -> RoundingOutcome {
        let out = lp_rounding(inst).unwrap();
        out.schedule.validate(inst).unwrap();
        assert_eq!(out.anomalies, 0, "charging fallback fired");
        assert_eq!(out.repair_slots, 0, "feasibility repair fired");
        assert!(
            out.within_two_lp(),
            "cost {} > 2·LP {}",
            out.cost,
            out.lp_objective
        );
        out
    }

    #[test]
    fn simple_instances() {
        check(&Instance::from_triples([(0, 4, 2), (1, 3, 2)], 2).unwrap());
        check(&Instance::from_triples([(0, 10, 4)], 1).unwrap());
        check(&Instance::from_triples([(0, 3, 1), (1, 4, 2), (2, 6, 3)], 2).unwrap());
    }

    #[test]
    fn integrality_gap_instance() {
        // §3.5, g = 3: LP = g + 1, rounding must stay within 2·LP and be
        // feasible; integral OPT is 2g.
        let g = 3usize;
        let mut triples = Vec::new();
        for pair in 0..g as i64 {
            let a = 2 * pair;
            for _ in 0..=g {
                triples.push((a, a + 2, 1i64));
            }
        }
        let inst = Instance::from_triples(triples, g).unwrap();
        let out = check(&inst);
        assert_eq!(out.cost, 2 * g as i64); // rounding hits integral OPT here
    }

    #[test]
    fn tight_windows_force_full_slots() {
        // Fully packed instance: LP = OPT = 5, rounding should open exactly 5.
        let inst = Instance::from_triples([(0, 5, 5), (0, 5, 5)], 2).unwrap();
        let out = check(&inst);
        assert_eq!(out.cost, 5);
        assert_eq!(out.lp_objective, Rat::from_int(5));
    }

    #[test]
    fn proxy_paths_are_exercised() {
        // Staggered deadlines with slack create barely open slots that the
        // flow check closes (proxies) or charges.
        let inst =
            Instance::from_triples([(0, 4, 1), (0, 7, 2), (3, 9, 2), (5, 12, 1), (8, 14, 2)], 3)
                .unwrap();
        let out = check(&inst);
        assert!(out.cost >= 2);
    }

    #[test]
    fn infeasible_instance_errors() {
        let inst = Instance::from_triples([(0, 1, 1), (0, 1, 1)], 1).unwrap();
        assert!(matches!(lp_rounding(&inst), Err(Error::Infeasible(_))));
    }

    #[test]
    fn pseudorandom_sweep_respects_two_lp() {
        let mut state = 0xDEADBEEFu64;
        let mut next = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        for _ in 0..30 {
            let n = 2 + next(5) as usize;
            let g = 1 + next(3) as usize;
            let mut triples = Vec::new();
            for _ in 0..n {
                let r = next(6) as i64;
                let len = 1 + next(3) as i64;
                let d = r + len + next(4) as i64;
                triples.push((r, d, len));
            }
            let inst = Instance::from_triples(triples, g).unwrap();
            match lp_rounding(&inst) {
                Ok(_) => {
                    check(&inst);
                }
                Err(Error::Infeasible(_)) => {} // tight random windows may not fit
                Err(e) => panic!("unexpected error {e}"),
            }
        }
    }
}

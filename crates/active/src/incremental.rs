//! Incremental re-solving of LP1 over a **mutating instance** — the
//! online-arrivals driver of the warm-start subsystem.
//!
//! [`IncrementalSolver`] owns a job set that callers mutate between
//! solves ([`IncrementalSolver::add_job`],
//! [`IncrementalSolver::remove_job`], and the window edits of
//! [`IncrementalSolver::update_window`] — widen, shrink, or shift), and
//! re-solves **only what changed**. The machinery composes three layers:
//!
//! * **Component decomposition** (PR 4): every solve recomputes the
//!   connected components of the job-window interval graph — cheap, one
//!   sort-and-merge sweep — so a mutation's blast radius is its own
//!   component (or the components it merges/splits).
//! * **Dirty-component tracking by content** — the solver caches each
//!   solved component under a translation-invariant *content key* (the
//!   sorted multiset of its jobs' `(release, deadline, length)` offsets).
//!   A component whose content key is still cached is **clean**: its
//!   exact per-run `Y` block and rational objective are reused with *no
//!   LP solve at all*. Mutations dirty exactly the components whose job
//!   content changed — including merges and splits, whose products are
//!   new keys. Deletions don't invalidate survivors: an untouched
//!   component keeps its key whatever happens elsewhere.
//! * **Warm starts** ([`abt_lp::warm`]) — a dirty component that must be
//!   re-solved first looks up its *shape* (the structural
//!   [`ComponentSignature`](crate::lp_model)) in a snapshot cache. A hit
//!   resumes phase-2 pivoting from a previously certified basis — for the
//!   streaming-arrivals regime (Chang–Khuller–Mukherjee's online
//!   active-time, arXiv:1610.08154) where new components echo the shapes
//!   of earlier ones, this turns most re-solves into a handful of pivots.
//!   The per-shape pool keeps up to
//!   [`SNAPSHOT_POOL_CAP`](crate::lp_model) candidate snapshots
//!   (different siblings land on different optimal vertices).
//!
//! **Exactness is preserved end to end**: cached blocks carry the exact
//! rational `Y`/objective they were certified with, warm solves are
//! certified like cold ones, and the stitched objective is an exact
//! rational sum — bit-identical to solving the current instance from
//! scratch with [`solve_active_lp_with`](crate::lp_model), which the
//! property tests assert.
//!
//! Telemetry flows into the process-wide [`lp_telemetry`]
//! (`warm_attempts` / `warm_hits` / `warm_pivots_saved`), and each
//! [`IncrementalReport`] carries the per-solve breakdown (components
//! reused / warm-hit / cold-solved).

use crate::admission::admission_precheck;
use crate::lp_model::{
    build_component_lp, component_signature, components, disaggregate, lp_telemetry,
    record_admission_reject, record_quarantine, record_recovery, record_state_corrupt,
    record_warm_attempt, revised_options, slot_runs, ActiveLp, ComponentSignature, DecomposeMode,
    LpBackend, LpOptions, SNAPSHOT_POOL_CAP,
};
use crate::store::{encode_state, JournalOp, RecoveryReport, SolveStateStore};
use crate::supervise::{supervised_solve, PartialSolve, QuarantinedComponent, SolveError};
use abt_core::active_schedule::horizon_slots;
use abt_core::persist::PersistError;
use abt_core::{Error, Instance, Job, Result, SolveFailure, Time};
use abt_lp::{BasisSnapshot, LpStatus, Rat};
use std::collections::HashMap;
use std::path::Path;

/// Bound on cached component blocks; past it both caches are cleared (a
/// rare, cheap reset that keeps a long-lived solver's memory bounded).
const CACHE_CAP: usize = 16_384;

/// Translation-invariant content of a component: the sorted multiset of
/// its jobs as offsets from the component's earliest release. Two
/// components with equal content build LPs that are identical up to a
/// permutation of the per-job blocks, so their exact optima (objective
/// and per-run `Y`) coincide.
pub(crate) type ContentKey = Vec<(i64, i64, i64)>;

/// A solved component block, reusable whenever the same content recurs.
#[derive(Clone)]
pub(crate) struct CachedBlock {
    pub(crate) y_runs: Vec<Rat>,
    pub(crate) objective: Rat,
}

/// A shape's snapshot pool plus the pivot count of the first cold solve
/// that seeded it (the reference for `warm_pivots_saved`).
#[derive(Clone)]
pub(crate) struct ShapeEntry {
    pub(crate) snapshots: Vec<BasisSnapshot>,
    pub(crate) reference_pivots: u64,
}

/// Handle to a job owned by an [`IncrementalSolver`] (stable across
/// mutations; unrelated to any [`Instance`]'s job indices).
pub type IncrementalJobId = usize;

/// What one [`IncrementalSolver::solve`] call did, besides solving.
#[derive(Debug, Clone)]
pub struct IncrementalReport {
    /// The exact LP1 optimum of the current job set (same contract as
    /// [`solve_active_lp_with`](crate::lp_model::solve_active_lp_with)).
    pub lp: ActiveLp,
    /// Components of the current interval graph.
    pub components: usize,
    /// Components reused verbatim from the content cache (no LP solve).
    pub reused: usize,
    /// Components re-solved with a warm-start attempt.
    pub warm_attempts: usize,
    /// Warm attempts that hit (installed and certified).
    pub warm_hits: usize,
    /// Components solved cold (first sighting of their shape, or every
    /// warm candidate missed).
    pub cold_solves: usize,
}

/// An incrementally re-solving LP1 driver. See the module docs.
pub struct IncrementalSolver {
    g: usize,
    opts: LpOptions,
    jobs: Vec<Option<Job>>,
    live: usize,
    content_cache: HashMap<ContentKey, CachedBlock>,
    shape_cache: HashMap<ComponentSignature, ShapeEntry>,
    /// Components whose supervision ladder failed entirely, keyed by
    /// content: a quarantined key is **not retried** on later solves —
    /// re-admission happens automatically when the offending content
    /// changes (a member job removed or mutated produces a new key, which
    /// solves cold like any first sighting) or via
    /// [`IncrementalSolver::clear_quarantine`].
    quarantine: HashMap<ContentKey, SolveFailure>,
    /// Durable-state handle, when [`IncrementalSolver::attach_store`] was
    /// called: mutations are write-ahead journaled and solves periodically
    /// checkpoint. `None` (the default) keeps the solver purely in-memory.
    store: Option<SolveStateStore>,
}

impl IncrementalSolver {
    /// A solver with the default [`LpOptions`] (warm starts are always
    /// attempted on re-solves, whatever `opts.warm` says — that flag
    /// governs the batch planner, not this driver).
    pub fn new(g: usize) -> Result<IncrementalSolver> {
        IncrementalSolver::with_options(g, LpOptions::default())
    }

    /// A solver with explicit [`LpOptions`]. `opts.decompose` is forced to
    /// [`DecomposeMode::Auto`] — per-component solving is what makes
    /// incrementality work. Backends other than [`LpBackend::Revised`]
    /// solve dirty components cold (content-cache reuse still applies).
    pub fn with_options(g: usize, opts: LpOptions) -> Result<IncrementalSolver> {
        if g == 0 {
            return Err(Error::InvalidInstance("g must be at least 1".into()));
        }
        Ok(IncrementalSolver {
            g,
            opts: LpOptions {
                decompose: DecomposeMode::Auto,
                ..opts
            },
            jobs: Vec::new(),
            live: 0,
            content_cache: HashMap::new(),
            shape_cache: HashMap::new(),
            quarantine: HashMap::new(),
            store: None,
        })
    }

    /// Attaches a durable state directory and recovers whatever it holds:
    /// the last checkpoint (job set, content cache, snapshot pools,
    /// quarantine) plus the journaled mutations past it. See
    /// [`crate::store`] for the recovery procedure, the restart-storm
    /// guard, and the reject-don't-trust invariant — a corrupt or
    /// version-drifted state file costs warm capital, never correctness,
    /// and never an error from this method.
    ///
    /// Replaces the solver's in-memory state with the recovered one (call
    /// it on a fresh solver). From here on, every
    /// [`add_job`](IncrementalSolver::add_job) /
    /// [`remove_job`](IncrementalSolver::remove_job) /
    /// [`update_window`](IncrementalSolver::update_window) is journaled
    /// *before* it is applied, and solves compact the journal into a new
    /// checkpoint every [`crate::store::CHECKPOINT_EVERY`] mutations.
    ///
    /// `Err` only on genuine I/O failure (permissions, disk full).
    pub fn attach_store(
        &mut self,
        root: impl AsRef<Path>,
    ) -> std::result::Result<RecoveryReport, PersistError> {
        let (store, state, report) = SolveStateStore::attach(root.as_ref(), self.g)?;
        self.jobs.clear();
        self.live = 0;
        self.content_cache.clear();
        self.shape_cache.clear();
        self.quarantine.clear();
        if let Some(s) = state {
            self.live = s.jobs.iter().flatten().count();
            self.jobs = s.jobs;
            self.content_cache = s.blocks.into_iter().collect();
            self.shape_cache = s.shapes.into_iter().collect();
            self.quarantine = s.quarantine.into_iter().collect();
        }
        self.store = Some(store);
        Ok(RecoveryReport {
            resumed_jobs: self.live,
            ..report
        })
    }

    /// Whether an attached store degraded (an I/O failure stopped
    /// persistence; the solver keeps serving from memory). `false` when no
    /// store is attached.
    pub fn store_degraded(&self) -> bool {
        self.store.as_ref().is_some_and(SolveStateStore::degraded)
    }

    /// Forces a checkpoint of the current state (compacting the journal),
    /// regardless of the periodic schedule. Returns whether a checkpoint
    /// was written (`false` with no store attached or a degraded one).
    pub fn checkpoint_now(&mut self) -> bool {
        let Some(store) = &self.store else {
            return false;
        };
        if store.degraded() {
            return false;
        }
        let seq = store.seq();
        let payload = encode_state(
            self.g,
            seq,
            &self.jobs,
            &self.content_cache,
            &self.shape_cache,
            &self.quarantine,
        );
        let store = self.store.as_mut().expect("checked above");
        store.checkpoint(&payload, seq);
        !store.degraded()
    }

    /// Number of content keys currently quarantined.
    pub fn quarantined(&self) -> usize {
        self.quarantine.len()
    }

    /// Manually re-admits every quarantined component: the next
    /// [`IncrementalSolver::solve`] retries them from the cold rung.
    pub fn clear_quarantine(&mut self) {
        self.quarantine.clear();
    }

    /// Capacity `g` of the instance under mutation.
    pub fn g(&self) -> usize {
        self.g
    }

    /// Number of live jobs.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the job set is empty.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Adds a job; returns its stable handle. With a store attached the
    /// addition is write-ahead journaled before it takes effect.
    pub fn add_job(&mut self, job: Job) -> IncrementalJobId {
        let id = self.jobs.len();
        if let Some(store) = &mut self.store {
            store.log_op(&JournalOp::Add { id, job });
        }
        self.live += 1;
        self.jobs.push(Some(job));
        id
    }

    /// Removes a job by handle (write-ahead journaled, like
    /// [`add_job`](IncrementalSolver::add_job)).
    pub fn remove_job(&mut self, id: IncrementalJobId) -> Result<()> {
        match self.jobs.get_mut(id) {
            Some(slot @ Some(_)) => {
                if let Some(store) = &mut self.store {
                    store.log_op(&JournalOp::Remove { id });
                }
                *slot = None;
                self.live -= 1;
                Ok(())
            }
            _ => Err(Error::InvalidInstance(format!(
                "no live job with incremental id {id}"
            ))),
        }
    }

    /// Replaces a job's window (widen, shrink, or shift), keeping its
    /// length. Fails if the new window cannot hold the job.
    pub fn update_window(
        &mut self,
        id: IncrementalJobId,
        release: Time,
        deadline: Time,
    ) -> Result<()> {
        let Some(slot) = self.jobs.get_mut(id).and_then(Option::as_mut) else {
            return Err(Error::InvalidInstance(format!(
                "no live job with incremental id {id}"
            )));
        };
        let Some(updated) = Job::try_new(release, deadline, slot.length) else {
            return Err(Error::InvalidJob {
                job: id,
                reason: format!(
                    "window [{release}, {deadline}) cannot hold length {}",
                    slot.length
                ),
            });
        };
        if let Some(store) = &mut self.store {
            store.log_op(&JournalOp::Edit {
                id,
                release,
                deadline,
            });
        }
        *slot = updated;
        Ok(())
    }

    /// The current live job set, in handle order.
    pub fn jobs(&self) -> Vec<Job> {
        self.jobs.iter().filter_map(|j| *j).collect()
    }

    /// The current job set as a fresh [`Instance`].
    pub fn instance(&self) -> Result<Instance> {
        Instance::new(self.jobs(), self.g)
    }

    /// Re-solves LP1 for the current job set, reusing cached component
    /// blocks and warm-starting the dirty ones. The objective (and the
    /// stitched per-slot `y`'s feasibility) is bit-identical to a from-
    /// scratch [`solve_active_lp_with`](crate::lp_model::solve_active_lp_with)
    /// on [`IncrementalSolver::instance`].
    ///
    /// This is the legacy, [`Error`]-typed surface: quarantined components
    /// (possible only under fault injection or solve budgets) flatten into
    /// [`Error::Quarantined`]. [`IncrementalSolver::try_solve`] keeps the
    /// typed partial result.
    pub fn solve(&mut self) -> Result<IncrementalReport> {
        self.try_solve().map_err(Error::from)
    }

    /// The fallible-solve surface of [`IncrementalSolver::solve`]: when
    /// some components' supervision ladders failed entirely, returns
    /// [`SolveError::Partial`] carrying the exact objectives of every
    /// healthy component — clean components keep their cached blocks (and
    /// are **never re-solved** on later calls), and the quarantined keys
    /// are skipped until their content changes.
    pub fn try_solve(&mut self) -> std::result::Result<IncrementalReport, SolveError> {
        if self.content_cache.len() > CACHE_CAP {
            self.content_cache.clear();
            self.shape_cache.clear();
            self.quarantine.clear();
        }
        let inst = self.instance().map_err(SolveError::Model)?;
        // Admission control: the Hall-condition precheck bounces
        // provably-infeasible job sets before any LP is built, leaving
        // every cache untouched (see [`crate::admission`]).
        if let Err(rej) = admission_precheck(&inst) {
            record_admission_reject();
            return Err(SolveError::Rejected(rej));
        }
        let slots = horizon_slots(&inst);
        if inst.is_empty() {
            return Ok(IncrementalReport {
                lp: ActiveLp {
                    slots,
                    y: Vec::new(),
                    objective: Rat::ZERO,
                },
                components: 0,
                reused: 0,
                warm_attempts: 0,
                warm_hits: 0,
                cold_solves: 0,
            });
        }
        let runs = slot_runs(&inst, self.opts.coalesce);
        let comps = components(&inst, &runs, DecomposeMode::Auto);
        let ropts = revised_options(&self.opts);
        let mut y_runs = vec![Rat::ZERO; runs.len()];
        let mut objective = Rat::ZERO;
        let mut healthy: Vec<(usize, Rat)> = Vec::new();
        let mut quarantined: Vec<QuarantinedComponent> = Vec::new();
        let mut live_quarantine: Vec<ContentKey> = Vec::new();
        let mut report = IncrementalReport {
            lp: ActiveLp {
                slots: Vec::new(),
                y: Vec::new(),
                objective: Rat::ZERO,
            },
            components: comps.len(),
            reused: 0,
            warm_attempts: 0,
            warm_hits: 0,
            cold_solves: 0,
        };
        for (ci, comp) in comps.iter().enumerate() {
            let n_runs = comp.run_hi - comp.run_lo;
            let ckey = content_key(&inst, comp);
            match self.content_cache.get(&ckey) {
                Some(block) if block.y_runs.len() == n_runs => {
                    report.reused += 1;
                    for (k, val) in block.y_runs.iter().enumerate() {
                        y_runs[comp.run_lo + k] = *val;
                    }
                    objective = objective.add(&block.objective);
                    healthy.push((ci, block.objective));
                    continue;
                }
                Some(_) => {
                    // A block whose run count disagrees with its key can
                    // only come from drifted persisted state (in-memory
                    // inserts always match): reject-don't-trust — drop it
                    // and fall through to a cold re-solve of the
                    // component. Exactness is unharmed; only the cache
                    // hit is lost.
                    record_state_corrupt();
                    record_recovery();
                    self.content_cache.remove(&ckey);
                }
                None => {}
            }
            // A quarantined key is not retried: the ladder already failed
            // for this exact content, and re-admission is content-driven.
            if let Some(f) = self.quarantine.get(&ckey) {
                quarantined.push(QuarantinedComponent {
                    jobs: comp.jobs.clone(),
                    failure: f.clone(),
                });
                live_quarantine.push(ckey);
                continue;
            }
            // Dirty: re-solve, warm where the backend supports it.
            let lp = build_component_lp(&inst, &self.opts, &runs, comp);
            let skey = component_signature(&inst, &runs, comp);
            let (sol, pivots, warm_hit, snapshot) = if self.opts.backend == LpBackend::Revised {
                let entry = self.shape_cache.get(&skey);
                let pool: &[BasisSnapshot] = entry.map(|e| e.snapshots.as_slice()).unwrap_or(&[]);
                match supervised_solve(&lp, &ropts, pool) {
                    Ok(sr) => {
                        if !pool.is_empty() {
                            report.warm_attempts += 1;
                            let reference = entry.map(|e| e.reference_pivots).unwrap_or(0);
                            record_warm_attempt(sr.warm_hit, reference, sr.stats.pivots);
                            if sr.warm_hit {
                                report.warm_hits += 1;
                            }
                        }
                        (sr.solution, sr.stats.pivots, sr.warm_hit, sr.snapshot)
                    }
                    Err(f) => {
                        record_quarantine();
                        quarantined.push(QuarantinedComponent {
                            jobs: comp.jobs.clone(),
                            failure: f.clone(),
                        });
                        live_quarantine.push(ckey.clone());
                        self.quarantine.insert(ckey, f);
                        continue;
                    }
                }
            } else {
                (
                    crate::lp_model::run_backend(&lp, &self.opts),
                    0,
                    false,
                    None,
                )
            };
            match sol.status {
                LpStatus::Optimal => {}
                LpStatus::Infeasible => {
                    return Err(SolveError::Model(Error::Infeasible(
                        "LP1 infeasible: no schedule exists".into(),
                    )))
                }
                LpStatus::Unbounded => unreachable!("LP1 objective is bounded below by 0"),
            }
            if !warm_hit {
                report.cold_solves += 1;
            }
            let block = CachedBlock {
                y_runs: sol.x[..n_runs].to_vec(),
                objective: sol.objective,
            };
            for (k, val) in block.y_runs.iter().enumerate() {
                y_runs[comp.run_lo + k] = *val;
            }
            objective = objective.add(&block.objective);
            healthy.push((ci, block.objective));
            self.content_cache.insert(ckey, block);
            // Only cold-resolved snapshots enrich the shape pool: a warm
            // hit terminated at (or near) a vertex the pool already
            // covers, so pushing it would fill the capped pool with
            // duplicates and crowd out genuinely new vertices.
            if !warm_hit {
                if let Some(s) = snapshot {
                    let entry = self.shape_cache.entry(skey).or_insert_with(|| ShapeEntry {
                        snapshots: Vec::new(),
                        reference_pivots: pivots,
                    });
                    if entry.snapshots.len() < SNAPSHOT_POOL_CAP {
                        entry.snapshots.push(s);
                    }
                }
            }
        }
        // Quarantine entries whose content no longer exists (the offending
        // job was removed or mutated) are pruned: the key can only recur
        // through fresh content, which solves cold like any first sighting.
        self.quarantine.retain(|k, _| live_quarantine.contains(k));
        // Periodic compaction: fold the journal into a fresh checkpoint of
        // the post-solve state (partial solves included — their healthy
        // blocks are cache content worth persisting).
        if self
            .store
            .as_ref()
            .is_some_and(SolveStateStore::checkpoint_due)
        {
            self.checkpoint_now();
        }
        if !quarantined.is_empty() {
            // Healthy blocks (including the ones just solved) stay cached,
            // so the solver keeps serving them on every later call.
            return Err(SolveError::Partial(PartialSolve {
                healthy_objective: objective,
                healthy,
                quarantined,
            }));
        }
        report.lp = ActiveLp {
            y: disaggregate(&runs, &y_runs),
            slots,
            objective,
        };
        debug_assert_eq!(report.lp.y.len(), report.lp.slots.len());
        Ok(report)
    }

    /// Process-wide LP telemetry snapshot, re-exported for driver callers
    /// (the CLI's `incremental` subcommand prints the warm counters).
    pub fn telemetry() -> crate::lp_model::LpTelemetry {
        lp_telemetry()
    }
}

/// The translation-invariant [`ContentKey`] of a component.
fn content_key(inst: &Instance, comp: &crate::lp_model::Component) -> ContentKey {
    let base = comp
        .jobs
        .iter()
        .map(|&j| inst.job(j).release)
        .min()
        .expect("components are never empty");
    let mut key: ContentKey = comp
        .jobs
        .iter()
        .map(|&j| {
            let job = inst.job(j);
            (job.release - base, job.deadline - base, job.length)
        })
        .collect();
    key.sort_unstable();
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp_model::{solve_active_lp, solve_active_lp_with};

    #[test]
    fn matches_from_scratch_solves_across_mutations() {
        let mut solver = IncrementalSolver::new(2).unwrap();
        let a = solver.add_job(Job::new(0, 4, 2));
        let _b = solver.add_job(Job::new(1, 3, 2));
        let first = solver.solve().unwrap();
        assert_eq!(
            first.lp.objective,
            solve_active_lp(&solver.instance().unwrap())
                .unwrap()
                .objective
        );
        // Far-away arrival: a new component; the old one must be reused.
        let c = solver.add_job(Job::new(100, 104, 3));
        let second = solver.solve().unwrap();
        assert_eq!(second.components, 2);
        assert_eq!(second.reused, 1, "the untouched component is clean");
        assert_eq!(
            second.lp.objective,
            solve_active_lp(&solver.instance().unwrap())
                .unwrap()
                .objective
        );
        // Remove + window shift: still bit-identical to from-scratch.
        solver.remove_job(a).unwrap();
        solver.update_window(c, 101, 106).unwrap();
        let third = solver.solve().unwrap();
        assert_eq!(
            third.lp.objective,
            solve_active_lp(&solver.instance().unwrap())
                .unwrap()
                .objective
        );
    }

    #[test]
    fn unchanged_resolve_is_all_cache_hits() {
        let mut solver = IncrementalSolver::new(2).unwrap();
        solver.add_job(Job::new(0, 4, 2));
        solver.add_job(Job::new(10, 14, 3));
        let before = solver.solve().unwrap();
        assert_eq!(before.reused, 0);
        let again = solver.solve().unwrap();
        assert_eq!(again.components, 2);
        // The report counters are solver-local (unlike the process-global
        // telemetry), so exact-zero assertions are race-free here: a
        // fully clean re-solve touches no LP at all.
        assert_eq!(again.reused, 2, "nothing changed: everything is clean");
        assert_eq!(again.cold_solves, 0);
        assert_eq!(again.warm_attempts, 0);
        assert_eq!(again.lp.objective, before.lp.objective);
    }

    #[test]
    fn shape_echoes_warm_start_new_components() {
        // Arrivals into fresh stripes with the same window layout: from
        // the second stripe on, the new component's shape is cached and
        // re-solves attempt warm starts.
        let mut solver = IncrementalSolver::new(2).unwrap();
        let mut warm_attempts = 0;
        for k in 0..4i64 {
            // Distinct lengths per stripe keep the content keys fresh
            // (identical content would short-circuit into the content
            // cache with no solve at all), while the window layout — and
            // so the shape — repeats.
            let base = 20 * k;
            solver.add_job(Job::new(base, base + 6, 2 + k));
            solver.add_job(Job::new(base + 1, base + 5, 2));
            let rep = solver.solve().unwrap();
            warm_attempts += rep.warm_attempts;
            assert_eq!(
                rep.lp.objective,
                solve_active_lp(&solver.instance().unwrap())
                    .unwrap()
                    .objective
            );
        }
        assert!(
            warm_attempts >= 3,
            "later stripes must attempt warm starts (got {warm_attempts})"
        );
    }

    #[test]
    fn merge_and_split_components_stay_exact() {
        // A widening that merges two components, then a removal that
        // splits them again: content keys change, caches stay coherent.
        let mut solver = IncrementalSolver::new(2).unwrap();
        let _a = solver.add_job(Job::new(0, 4, 2));
        let b = solver.add_job(Job::new(8, 12, 2));
        let first = solver.solve().unwrap();
        assert_eq!(first.components, 2);
        // Widen b leftwards across the gap: one merged component.
        solver.update_window(b, 2, 12).unwrap();
        let merged = solver.solve().unwrap();
        assert_eq!(merged.components, 1);
        assert_eq!(
            merged.lp.objective,
            solve_active_lp(&solver.instance().unwrap())
                .unwrap()
                .objective
        );
        // Shrink it back: split again, and the original blocks' content
        // keys are still in the cache — both components are clean.
        solver.update_window(b, 8, 12).unwrap();
        let split = solver.solve().unwrap();
        assert_eq!(split.components, 2);
        assert_eq!(
            split.reused, 2,
            "both original blocks reused after the split"
        );
        assert_eq!(split.lp.objective, first.lp.objective);
    }

    #[test]
    fn empty_and_error_paths() {
        let mut solver = IncrementalSolver::new(3).unwrap();
        let rep = solver.solve().unwrap();
        assert_eq!(rep.lp.objective, Rat::ZERO);
        assert!(rep.lp.y.is_empty());
        assert!(solver.remove_job(7).is_err());
        let id = solver.add_job(Job::new(0, 4, 2));
        assert!(solver.update_window(id, 0, 1).is_err(), "window too small");
        solver.remove_job(id).unwrap();
        assert!(solver.remove_job(id).is_err(), "double remove");
        assert!(IncrementalSolver::new(0).is_err());
    }

    #[test]
    fn infeasible_mutation_is_reported() {
        let mut solver = IncrementalSolver::new(1).unwrap();
        solver.add_job(Job::new(0, 1, 1));
        solver.add_job(Job::new(0, 1, 1));
        assert!(matches!(solver.solve(), Err(Error::Infeasible(_))));
    }

    #[test]
    fn admission_rejection_is_typed_and_leaves_state_untouched() {
        let mut solver = IncrementalSolver::new(1).unwrap();
        solver.add_job(Job::new(0, 4, 2));
        let ok = solver.solve().unwrap();
        // An overloaded arrival bounces with a witness before any LP runs.
        let bad = solver.add_job(Job::new(0, 1, 1));
        solver.add_job(Job::new(0, 1, 1));
        match solver.try_solve() {
            Err(SolveError::Rejected(rej)) => {
                assert_eq!(rej.window, (0, 1));
                assert!(rej.demand > rej.capacity);
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
        // Dropping the offenders restores service; the original block is
        // still cached (the rejection touched nothing).
        solver.remove_job(bad).unwrap();
        solver.remove_job(bad + 1).unwrap();
        let again = solver.solve().unwrap();
        assert_eq!(again.lp.objective, ok.lp.objective);
        assert_eq!(again.reused, 1);
    }

    #[test]
    fn poisoned_cache_block_is_absorbed_not_panicked() {
        // Satellite of the durability work: a cached block whose run
        // count disagrees with its key (reachable only via drifted
        // persisted state) must demote to a cold re-solve, never panic,
        // never change the answer.
        let mut solver = IncrementalSolver::new(2).unwrap();
        solver.add_job(Job::new(0, 4, 2));
        solver.add_job(Job::new(1, 3, 2));
        let clean = solver.solve().unwrap();
        // Poison every cached block with an impossible shape.
        for block in solver.content_cache.values_mut() {
            block.y_runs = vec![Rat::ZERO; 1usize];
            block.objective = Rat::from_int(999);
        }
        let resolved = solver.solve().unwrap();
        assert_eq!(resolved.lp.objective, clean.lp.objective);
        assert_eq!(resolved.reused, 0, "poisoned block must not be reused");
        assert!(resolved.cold_solves + resolved.warm_hits >= 1);
    }

    fn tmp_state_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("abt-incr-{tag}-{}-{n}", std::process::id()))
    }

    #[test]
    fn attach_resume_is_bit_identical_and_keeps_warm_capital() {
        let dir = tmp_state_dir("resume");
        let obj_before;
        {
            let mut solver = IncrementalSolver::new(2).unwrap();
            let rep = solver.attach_store(&dir).unwrap();
            assert!(rep.cold_start, "fresh dir starts cold");
            solver.add_job(Job::new(0, 4, 2));
            solver.add_job(Job::new(10, 14, 3));
            obj_before = solver.solve().unwrap().lp.objective;
            solver.checkpoint_now();
            assert!(!solver.store_degraded());
            // A journaled-but-not-checkpointed mutation with *fresh*
            // content (the content cache is translation-invariant, so an
            // echo of an existing component would be reused, not solved).
            solver.add_job(Job::new(20, 25, 3));
        } // process "dies" here
        let mut solver = IncrementalSolver::new(2).unwrap();
        let rep = solver.attach_store(&dir).unwrap();
        assert!(!rep.cold_start);
        assert_eq!(rep.resumed_jobs, 3, "journal tail replayed over checkpoint");
        assert_eq!(rep.replayed_ops, 1);
        assert!(rep.restored_blocks >= 2, "content cache restored");
        assert_eq!(rep.corruption_events, 0);
        let resumed = solver.solve().unwrap();
        // The two checkpointed components are clean; only the journaled
        // arrival solves.
        assert_eq!(resumed.reused, 2);
        let scratch = solve_active_lp(&solver.instance().unwrap()).unwrap();
        assert_eq!(resumed.lp.objective, scratch.objective);
        assert!(resumed.lp.objective > obj_before);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoint_demotes_to_cold_with_identical_objective() {
        let dir = tmp_state_dir("corrupt");
        {
            let mut solver = IncrementalSolver::new(2).unwrap();
            solver.attach_store(&dir).unwrap();
            solver.add_job(Job::new(0, 4, 2));
            solver.add_job(Job::new(8, 12, 2));
            solver.solve().unwrap();
            solver.checkpoint_now();
        }
        // Bit rot in the checkpoint payload.
        let ckpt = dir.join(crate::store::CHECKPOINT_FILE);
        let mut bytes = std::fs::read(&ckpt).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&ckpt, &bytes).unwrap();
        let mut solver = IncrementalSolver::new(2).unwrap();
        let rep = solver.attach_store(&dir).unwrap();
        assert!(rep.cold_start, "corrupt checkpoint is discarded");
        assert_eq!(rep.corruption_events, 1);
        assert_eq!(rep.resumed_jobs, 0);
        // The job set is gone (warm capital lost), but re-adding and
        // solving is exact — corruption never costs correctness.
        solver.add_job(Job::new(0, 4, 2));
        solver.add_job(Job::new(8, 12, 2));
        let rebuilt = solver.solve().unwrap();
        let scratch = solve_active_lp(&solver.instance().unwrap()).unwrap();
        assert_eq!(rebuilt.lp.objective, scratch.objective);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn g_drift_rejects_the_checkpoint() {
        let dir = tmp_state_dir("gdrift");
        {
            let mut solver = IncrementalSolver::new(2).unwrap();
            solver.attach_store(&dir).unwrap();
            solver.add_job(Job::new(0, 4, 2));
            solver.checkpoint_now();
        }
        // Re-attach with a different capacity: the state is for another g.
        let mut solver = IncrementalSolver::new(3).unwrap();
        let rep = solver.attach_store(&dir).unwrap();
        assert!(rep.cold_start);
        assert_eq!(rep.corruption_events, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restart_storm_quarantines_and_starts_cold() {
        let dir = tmp_state_dir("storm");
        {
            let mut solver = IncrementalSolver::new(2).unwrap();
            solver.attach_store(&dir).unwrap();
            solver.add_job(Job::new(0, 4, 2));
            solver.checkpoint_now();
        }
        // Simulate recovery dying before completion N times: the attempt
        // counter never clears.
        let sd = abt_core::StateDir::open(&dir).unwrap();
        for _ in 0..crate::store::MAX_RECOVERY_ATTEMPTS {
            sd.bump_recovery_attempts().unwrap();
        }
        let mut solver = IncrementalSolver::new(2).unwrap();
        let rep = solver.attach_store(&dir).unwrap();
        assert!(rep.storm_quarantined);
        assert!(rep.cold_start);
        assert!(solver.is_empty());
        assert!(dir
            .join("quarantined-0")
            .join(crate::store::CHECKPOINT_FILE)
            .exists());
        // Service continues: the quarantined dir does not poison new work.
        solver.add_job(Job::new(0, 4, 2));
        solver.solve().unwrap();
        solver.checkpoint_now();
        let mut again = IncrementalSolver::new(2).unwrap();
        let rep = again.attach_store(&dir).unwrap();
        assert!(!rep.cold_start);
        assert_eq!(rep.resumed_jobs, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn periodic_checkpoint_compacts_the_journal() {
        let dir = tmp_state_dir("compact");
        let mut solver = IncrementalSolver::new(2).unwrap();
        solver.attach_store(&dir).unwrap();
        // More mutations than CHECKPOINT_EVERY, with solves in between.
        let mut ids = Vec::new();
        for k in 0..crate::store::CHECKPOINT_EVERY as i64 + 4 {
            ids.push(solver.add_job(Job::new(30 * k, 30 * k + 5, 2)));
            if k % 3 == 0 {
                solver.solve().unwrap();
            }
        }
        solver.solve().unwrap();
        let inspection = crate::store::inspect_store(&dir).unwrap();
        let ckpt = inspection.checkpoint.expect("checkpoint exists");
        assert!(
            ckpt.seq >= crate::store::CHECKPOINT_EVERY,
            "compaction folded the journal into the checkpoint (seq {})",
            ckpt.seq
        );
        assert_eq!(inspection.pending_ops + ckpt.live_jobs, ids.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn matches_all_encoding_variants() {
        // The incremental driver under every BoundsMode × VubMode must
        // reproduce the from-scratch objective bit for bit.
        use crate::lp_model::{BoundsMode, VubMode};
        for bounds in [BoundsMode::Rows, BoundsMode::Implicit] {
            for vub in [VubMode::Rows, VubMode::Implicit] {
                let opts = LpOptions {
                    bounds,
                    vub,
                    ..LpOptions::default()
                };
                let mut solver = IncrementalSolver::with_options(2, opts).unwrap();
                for k in 0..3i64 {
                    let base = 10 * k;
                    solver.add_job(Job::new(base, base + 5, 3));
                    let rep = solver.solve().unwrap();
                    let scratch = solve_active_lp_with(&solver.instance().unwrap(), &opts)
                        .unwrap()
                        .objective;
                    assert_eq!(rep.lp.objective, scratch, "{bounds:?} {vub:?}");
                }
            }
        }
    }
}

//! Admission control for the active-time solver: a sound,
//! near-linear-time **necessary** feasibility condition checked at the
//! service boundary, so requests that cannot possibly be scheduled bounce
//! with a typed [`AdmissionReject`] *before* any LP is built.
//!
//! # The condition
//!
//! Chang–Gabow–Khuller's feasibility characterization (the deficiency
//! form of Hall's theorem for the bipartite job-unit/slot graph behind
//! `G_feas`) implies in particular the **interval load condition**: for
//! every pair of time points `a < b`, the jobs whose whole window fits
//! inside `[a, b)` demand at most what the interval can supply,
//!
//! ```text
//!   Σ { length(j) : a ≤ release(j), deadline(j) ≤ b }  ≤  g · (b − a).
//! ```
//!
//! Violating any such interval proves infeasibility outright (every unit
//! of those jobs must land in `[a, b)`, which has only `g·(b−a)` slot
//! capacity), so a rejection here is *sound*: the solver would have
//! returned [`Error::Infeasible`](abt_core::Error) after doing all the
//! work. The converse does not hold in general — instances passing the
//! precheck can still be infeasible (the full max-flow oracle in
//! [`crate::feasibility`] is the complete test) — which is exactly the
//! right trade for an admission gate: **never bounce a feasible request,
//! bounce the obviously-doomed ones for free.**
//!
//! # Algorithm
//!
//! Only endpoints matter: a maximal violated interval has `a` at some
//! job's release and `b` at some job's deadline. Sweep `b` over the
//! distinct deadlines ascending, maintaining over the distinct releases
//! `a` the value `f(a) = S(a) + g·a`, where `S(a)` is the total length of
//! already-swept jobs (deadline ≤ b) with release ≥ a. Admitting a job
//! range-adds its length onto the prefix of releases `≤ release(j)`; the
//! condition fails iff some prefix maximum of `f` over releases `< b`
//! exceeds `g·b`. A lazy max segment tree gives O((n + checks) · log n)
//! overall — essentially free next to even one simplex pivot.

use abt_core::{Instance, Time};
use std::fmt;

/// A request bounced by [`admission_precheck`]: a witness interval whose
/// confined jobs demand more slot capacity than the interval holds. The
/// witness is a *proof of infeasibility* for the offered instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionReject {
    /// The violated interval `[a, b)` (a witness; there may be others).
    pub window: (Time, Time),
    /// Total length of the jobs whose windows fit inside `window`.
    pub demand: i64,
    /// What the interval can supply: `g · (b − a)`.
    pub capacity: i64,
}

impl fmt::Display for AdmissionReject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "jobs confined to [{}, {}) demand {} slot-units but the interval supplies only {}",
            self.window.0, self.window.1, self.demand, self.capacity
        )
    }
}

/// Lazy max segment tree with range add and prefix-max query, tracking an
/// argmax leaf for the rejection witness.
struct MaxTree {
    n: usize,
    /// Node max (with pending adds of ancestors *not* applied).
    max: Vec<i128>,
    /// Argmax leaf index under each node.
    arg: Vec<usize>,
    /// Pending add per node (applies to the whole subtree).
    lazy: Vec<i128>,
}

impl MaxTree {
    fn new(leaves: &[i128]) -> MaxTree {
        let n = leaves.len();
        let mut t = MaxTree {
            n,
            max: vec![i128::MIN; 4 * n.max(1)],
            arg: vec![0; 4 * n.max(1)],
            lazy: vec![0; 4 * n.max(1)],
        };
        if n > 0 {
            t.build(1, 0, n, leaves);
        }
        t
    }

    fn build(&mut self, node: usize, lo: usize, hi: usize, leaves: &[i128]) {
        if hi - lo == 1 {
            self.max[node] = leaves[lo];
            self.arg[node] = lo;
            return;
        }
        let mid = lo + (hi - lo) / 2;
        self.build(2 * node, lo, mid, leaves);
        self.build(2 * node + 1, mid, hi, leaves);
        self.pull(node);
    }

    fn pull(&mut self, node: usize) {
        let (l, r) = (2 * node, 2 * node + 1);
        if self.max[l] >= self.max[r] {
            self.max[node] = self.max[l];
            self.arg[node] = self.arg[l];
        } else {
            self.max[node] = self.max[r];
            self.arg[node] = self.arg[r];
        }
    }

    fn push(&mut self, node: usize) {
        let add = self.lazy[node];
        if add != 0 {
            for child in [2 * node, 2 * node + 1] {
                self.max[child] += add;
                self.lazy[child] += add;
            }
            self.lazy[node] = 0;
        }
    }

    /// Adds `v` on the leaf range `[l, r)`.
    fn add(&mut self, l: usize, r: usize, v: i128) {
        if self.n > 0 && l < r {
            self.add_rec(1, 0, self.n, l, r, v);
        }
    }

    fn add_rec(&mut self, node: usize, lo: usize, hi: usize, l: usize, r: usize, v: i128) {
        if r <= lo || hi <= l {
            return;
        }
        if l <= lo && hi <= r {
            self.max[node] += v;
            self.lazy[node] += v;
            return;
        }
        self.push(node);
        let mid = lo + (hi - lo) / 2;
        self.add_rec(2 * node, lo, mid, l, r, v);
        self.add_rec(2 * node + 1, mid, hi, l, r, v);
        self.pull(node);
    }

    /// Max (and its argmax leaf) over the leaf range `[l, r)`.
    fn query(&mut self, l: usize, r: usize) -> Option<(i128, usize)> {
        if self.n == 0 || l >= r {
            return None;
        }
        self.query_rec(1, 0, self.n, l, r)
    }

    fn query_rec(
        &mut self,
        node: usize,
        lo: usize,
        hi: usize,
        l: usize,
        r: usize,
    ) -> Option<(i128, usize)> {
        if r <= lo || hi <= l {
            return None;
        }
        if l <= lo && hi <= r {
            return Some((self.max[node], self.arg[node]));
        }
        self.push(node);
        let mid = lo + (hi - lo) / 2;
        let a = self.query_rec(2 * node, lo, mid, l, r);
        let b = self.query_rec(2 * node + 1, mid, hi, l, r);
        match (a, b) {
            (Some(x), Some(y)) => Some(if x.0 >= y.0 { x } else { y }),
            (x, None) => x,
            (None, y) => y,
        }
    }
}

/// Checks the interval load condition (see the module docs) in
/// O(n log n). `Ok(())` admits the instance to the solver; `Err` carries
/// a witness interval proving it infeasible. Never rejects a feasible
/// instance.
pub fn admission_precheck(inst: &Instance) -> Result<(), AdmissionReject> {
    if inst.is_empty() {
        return Ok(());
    }
    let g = inst.g() as i128;
    // Distinct releases ascending: the candidate left endpoints `a`.
    let mut releases: Vec<Time> = inst.jobs().iter().map(|j| j.release).collect();
    releases.sort_unstable();
    releases.dedup();
    // Jobs grouped by deadline ascending: the sweep order of `b`.
    let mut by_deadline: Vec<usize> = (0..inst.len()).collect();
    by_deadline.sort_unstable_by_key(|&j| inst.job(j).deadline);
    let leaves: Vec<i128> = releases.iter().map(|&a| g * a as i128).collect();
    let mut tree = MaxTree::new(&leaves);
    let mut i = 0;
    while i < by_deadline.len() {
        let b = inst.job(by_deadline[i]).deadline;
        // Admit every job with this deadline before checking it.
        while i < by_deadline.len() && inst.job(by_deadline[i]).deadline == b {
            let job = inst.job(by_deadline[i]);
            // All candidate `a ≤ release(j)` gain this job's demand.
            let hi = releases.partition_point(|&a| a <= job.release);
            tree.add(0, hi, job.length as i128);
            i += 1;
        }
        // Check every `a < b` (an `a ≥ b` confines no jobs: r < d ≤ b).
        let hi = releases.partition_point(|&a| a < b);
        if let Some((best, arg)) = tree.query(0, hi) {
            if best > g * b as i128 {
                let a = releases[arg];
                // demand = f(a) − g·a; both fit i64 (sums of job lengths).
                let demand = (best - g * a as i128) as i64;
                let capacity = (g * (b - a) as i128) as i64;
                return Err(AdmissionReject {
                    window: (a, b),
                    demand,
                    capacity,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use abt_core::Job;

    fn inst(g: usize, jobs: &[(i64, i64, i64)]) -> Instance {
        Instance::new(jobs.iter().map(|&(r, d, p)| Job::new(r, d, p)).collect(), g).unwrap()
    }

    #[test]
    fn admits_feasible_instances() {
        assert_eq!(
            admission_precheck(&inst(2, &[(0, 4, 2), (1, 3, 2)])),
            Ok(())
        );
        assert_eq!(
            admission_precheck(&inst(1, &[(0, 2, 1), (0, 2, 1), (2, 4, 2)])),
            Ok(())
        );
        // Exactly at capacity is still admitted.
        assert_eq!(
            admission_precheck(&inst(2, &[(0, 2, 2), (0, 2, 2)])),
            Ok(())
        );
        assert_eq!(
            admission_precheck(&Instance::new(Vec::new(), 1).unwrap()),
            Ok(())
        );
    }

    #[test]
    fn rejects_point_overload_with_witness() {
        let rej = admission_precheck(&inst(1, &[(0, 1, 1), (0, 1, 1)])).unwrap_err();
        assert_eq!(rej.window, (0, 1));
        assert_eq!(rej.demand, 2);
        assert_eq!(rej.capacity, 1);
    }

    #[test]
    fn rejects_interior_interval_overload() {
        // The full horizon [0, 9) has plenty of room; only the jobs
        // confined to [3, 6) overload it: 3+2+2 = 7 > 2·3 = 6.
        let rej = admission_precheck(&inst(2, &[(0, 9, 1), (3, 6, 3), (3, 6, 2), (4, 6, 2)]))
            .unwrap_err();
        assert_eq!(rej.window, (3, 6));
        assert_eq!(rej.demand, 7);
        assert_eq!(rej.capacity, 6);
    }

    #[test]
    fn negative_times_are_handled() {
        // Windows straddling zero: the arithmetic is signed throughout.
        assert_eq!(
            admission_precheck(&inst(1, &[(-4, -1, 2), (-2, 2, 2)])),
            Ok(())
        );
        let rej = admission_precheck(&inst(1, &[(-3, -1, 2), (-3, -1, 1)])).unwrap_err();
        assert_eq!(rej.window, (-3, -1));
        assert_eq!(rej.demand, 3);
        assert_eq!(rej.capacity, 2);
    }

    #[test]
    fn never_rejects_a_schedulable_stream() {
        // A staircase of back-to-back saturated windows at g = 1: every
        // interval is filled exactly to capacity, none over.
        let feasible: Vec<(i64, i64, i64)> = (0..40i64).map(|k| (2 * k, 2 * k + 2, 2)).collect();
        assert_eq!(admission_precheck(&inst(1, &feasible)), Ok(()));
        // Overlapping chains at g = 2 that sum to capacity on [0, 42).
        let overlapping: Vec<(i64, i64, i64)> = (0..40i64)
            .flat_map(|k| [(k, k + 3, 1), (k, k + 2, 1)])
            .collect();
        assert_eq!(admission_precheck(&inst(2, &overlapping)), Ok(()));
    }
}

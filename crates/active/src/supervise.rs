//! Fault-tolerant supervision of LP1 solves: the **degradation ladder**
//! and the typed partial-result error of the sharded solve paths.
//!
//! # The ladder
//!
//! Every revised-backend solve in this crate runs through
//! `supervised_solve`, which retries one component's LP down four rungs
//! until one produces a certified answer. Every rung is one
//! [`abt_lp::solve_lp`] call under a different [`abt_lp::LpOptions`]
//! policy:
//!
//! 1. **Warm** (`snapshots(pool).warm_only(true)`) — only when the caller
//!    offers snapshots. A pool miss (`ShapeDrift`) is a routine cache
//!    outcome and drops through silently; any other failure demotes.
//! 2. **Cold revised** (the default `Revised` backend) — the bounded
//!    revised simplex with budgets armed. A float-level `Infeasible` claim
//!    drops through silently (confirming it is the exact tier's job,
//!    exactly like the legacy dense fallback); panics, budget trips, and
//!    numerical stalls demote.
//! 3. **Dense hybrid** (`SolverBackend::DenseHybrid`) — dense float
//!    search with exact certification and its own internal exact fallback.
//! 4. **Dense exact** (`SolverBackend::DenseExact`) — every pivot in
//!    rationals; the rung of last resort.
//!
//! Each *failure-driven* transition records a demotion in the process-wide
//! telemetry ([`crate::lp_model::lp_telemetry`]); budget failures also
//! record a budget trip. Because every rung ends in a *sound*
//! certification — the revised rungs through the caller's
//! [`abt_lp::CertifyMode`] tier policy (an interval-tier accept is a
//! proof, and an inconclusive interval sweep escalates or demotes, never
//! accepts), the dense rungs exactly by construction — a solve that
//! succeeds on **any** rung returns the same objective bit for bit:
//! demotion trades speed, never answers. Only when all four rungs fail is
//! the component **quarantined**: the caller receives a typed
//! [`SolveFailure`] and degrades to a [`PartialSolve`] carrying the exact
//! objectives of every healthy component.
//!
//! # Fault injection
//!
//! Under the `fault-injection` cargo feature the ladder participates in
//! the [`abt_core::faultinject`] registry: the `fail_nth_solve` failpoint
//! fires at supervisor entry (modelling an unclassifiable crash of the
//! whole attempt — straight to quarantine), while the deeper
//! `panic_in_pivot` / `panic_in_ftran` / `slow_certify` sites fire inside
//! the revised rungs and exercise the demotion path.

use crate::lp_model::{record_budget_trip, record_demotion, record_solve, record_solve_latency};
use abt_core::faultinject;
use abt_core::{obs, panic_message, Error, SolveFailure};
use abt_lp::{
    solve_lp, BasisSnapshot, LpOptions, LpProblem, LpReport, Rat, RevisedOptions, SolverBackend,
};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Solves `lp` down the degradation ladder (see the module docs),
/// recording demotions and budget trips in the process-wide telemetry.
/// Returns `Err` only when every rung failed — the caller quarantines the
/// work item; the error is the root-cause failure (the first one that
/// forced a demotion, or the final rung's panic when nothing demoted).
pub(crate) fn supervised_solve(
    lp: &LpProblem<Rat>,
    ropts: &RevisedOptions,
    snapshots: &[BasisSnapshot],
) -> Result<LpReport, SolveFailure> {
    // `fail_nth_solve` models an unclassifiable crash of the whole
    // supervised attempt: no rung runs, the item goes straight to
    // quarantine.
    if let Err(payload) = catch_unwind(|| faultinject::hit("fail_nth_solve")) {
        return Err(SolveFailure::Panicked(panic_message(payload.as_ref())));
    }
    let mut span = abt_core::obs_span!("solve.component", vars = lp.num_vars());
    let started = std::time::Instant::now();
    let finish = |rep: LpReport, rung: &'static str, span: &mut obs::Span| {
        record_solve(&rep);
        record_solve_latency(started.elapsed());
        span.field("rung", rung);
        rep
    };
    let base = LpOptions::new()
        .pricing(ropts.pricing)
        .certify(ropts.certify);
    let mut first_failure: Option<SolveFailure> = None;
    let mut demote = |f: SolveFailure, from: &'static str, to: &'static str| {
        record_demotion();
        if matches!(f, SolveFailure::BudgetExceeded(_)) {
            record_budget_trip();
        }
        obs::trace::event("supervise.demotion", || {
            vec![
                ("failure", f.to_string()),
                ("from", from.to_string()),
                ("to", to.to_string()),
            ]
        });
        first_failure.get_or_insert(f);
    };
    // Rung 1 — warm, only when the caller offers candidates.
    if !snapshots.is_empty() {
        let warm = base.snapshots(snapshots).warm_only(true);
        match catch_unwind(AssertUnwindSafe(|| solve_lp(lp, &warm))) {
            Ok(Ok(rep)) => return Ok(finish(rep, "warm", &mut span)),
            // A pool miss is a routine cache outcome, not a fault.
            Ok(Err(SolveFailure::ShapeDrift)) => {}
            Ok(Err(f)) => demote(f, "warm", "cold revised"),
            Err(p) => demote(
                SolveFailure::Panicked(panic_message(p.as_ref())),
                "warm",
                "cold revised",
            ),
        }
    }
    // Rung 2 — cold revised with budgets armed.
    match catch_unwind(AssertUnwindSafe(|| solve_lp(lp, &base))) {
        Ok(Ok(rep)) => return Ok(finish(rep, "cold revised", &mut span)),
        // A float-level infeasibility claim needs exact confirmation — the
        // next rung's job, same as the legacy dense fallback. Not a fault.
        Ok(Err(SolveFailure::Infeasible)) => {}
        Ok(Err(f)) => demote(f, "cold revised", "dense hybrid"),
        Err(p) => demote(
            SolveFailure::Panicked(panic_message(p.as_ref())),
            "cold revised",
            "dense hybrid",
        ),
    }
    // Rung 3 — dense hybrid (its own internal exact fallback included;
    // the backend never returns `Err`).
    let hybrid = base.backend(SolverBackend::DenseHybrid);
    match catch_unwind(AssertUnwindSafe(|| solve_lp(lp, &hybrid))) {
        Ok(Ok(rep)) => return Ok(finish(rep, "dense hybrid", &mut span)),
        Ok(Err(f)) => demote(f, "dense hybrid", "dense exact"),
        Err(p) => demote(
            SolveFailure::Panicked(panic_message(p.as_ref())),
            "dense hybrid",
            "dense exact",
        ),
    }
    // Rung 4 — dense exact, the rung of last resort. Its iteration-cap
    // panic is the one failure mode left, caught like any other.
    let exact = base.backend(SolverBackend::DenseExact);
    match catch_unwind(AssertUnwindSafe(|| solve_lp(lp, &exact))) {
        Ok(Ok(rep)) => Ok(finish(rep, "dense exact", &mut span)),
        Ok(Err(f)) => Err(first_failure.unwrap_or(f)),
        Err(p) => {
            let last = SolveFailure::Panicked(panic_message(p.as_ref()));
            Err(first_failure.unwrap_or(last))
        }
    }
}

/// One component the supervisor gave up on: every ladder rung failed.
#[derive(Debug, Clone)]
pub struct QuarantinedComponent {
    /// Instance job indices of the component's members (ascending) — the
    /// jobs whose removal or mutation re-admits the component.
    pub jobs: Vec<usize>,
    /// The root-cause failure (see the module docs' degradation ladder).
    pub failure: SolveFailure,
}

/// The typed partial result of a sharded solve with quarantined
/// components: everything that *did* solve, exactly.
#[derive(Debug, Clone)]
pub struct PartialSolve {
    /// Exact objectives of the healthy components, as `(component index
    /// in solve order, objective)`.
    pub healthy: Vec<(usize, Rat)>,
    /// Exact sum of the healthy objectives — a certified lower bound on
    /// the full LP1 optimum (quarantined components contribute ≥ 0).
    pub healthy_objective: Rat,
    /// The quarantined components; never empty.
    pub quarantined: Vec<QuarantinedComponent>,
}

/// Why a fallible LP1 solve ([`crate::lp_model::try_solve_active_lp_with`]
/// or [`crate::incremental::IncrementalSolver::try_solve`]) failed.
#[derive(Debug, Clone)]
pub enum SolveError {
    /// An instance-level error — the same errors the legacy entry points
    /// return (LP1 infeasibility, invalid instance).
    Model(Error),
    /// Some components were quarantined; the healthy remainder is carried
    /// so callers keep serving it.
    Partial(PartialSolve),
    /// Admission control bounced the request before any solver work: the
    /// offered job set violates the Hall-condition precheck
    /// ([`crate::admission::admission_precheck`]), and the carried witness
    /// interval proves it infeasible. The solver's state is untouched —
    /// the caller can drop or amend the offending jobs and retry.
    Rejected(crate::admission::AdmissionReject),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Model(e) => write!(f, "{e}"),
            SolveError::Partial(p) => write!(
                f,
                "{} of {} components quarantined (first: {}); healthy objective {}",
                p.quarantined.len(),
                p.quarantined.len() + p.healthy.len(),
                p.quarantined[0].failure,
                p.healthy_objective,
            ),
            SolveError::Rejected(rej) => write!(f, "admission rejected: {rej}"),
        }
    }
}

impl std::error::Error for SolveError {}

impl From<SolveError> for Error {
    fn from(e: SolveError) -> Error {
        match e {
            SolveError::Model(err) => err,
            // An admission rejection carries a proof of infeasibility, so
            // the legacy surface reports it as the Infeasible it is.
            SolveError::Rejected(rej) => Error::Infeasible(rej.to_string()),
            partial => Error::Quarantined(partial.to_string()),
        }
    }
}

//! The flow-based feasibility oracle for the active-time model (Fig. 2).
//!
//! Given a set `A` of active slots, the instance is feasible iff the
//! max-flow on `G_feas` equals `P = Σ_j p_j`, where `G_feas` has a source
//! arc of capacity `p_j` per job, a unit arc from job `j` to every active
//! slot in its window, and an arc of capacity `g` from every active slot to
//! the sink. Integrality of max-flow turns a feasible fractional assignment
//! into an integral schedule for free.

use abt_core::active_schedule::job_feasible_in_slot;
use abt_core::{ActiveSchedule, Instance, JobId, Time};
use abt_flow::{max_flow, FlowGraph};

/// Feasibility oracle with assignment extraction.
#[derive(Debug, Clone)]
pub struct FeasibilityChecker<'a> {
    inst: &'a Instance,
}

impl<'a> FeasibilityChecker<'a> {
    /// Creates an oracle for `inst`.
    pub fn new(inst: &'a Instance) -> Self {
        FeasibilityChecker { inst }
    }

    /// Whether all jobs fit into the active slots `slots` (sorted or not).
    pub fn is_feasible(&self, slots: &[Time]) -> bool {
        self.check(slots).is_some()
    }

    /// Whether the subset `jobs` fits into `slots`.
    pub fn is_feasible_subset(&self, jobs: &[JobId], slots: &[Time]) -> bool {
        self.assign_subset(jobs, slots).is_some()
    }

    /// Tries to schedule *all* jobs into `slots`; returns the schedule on
    /// success.
    pub fn check(&self, slots: &[Time]) -> Option<ActiveSchedule> {
        let all: Vec<JobId> = (0..self.inst.len()).collect();
        let assignment = self.assign_subset(&all, slots)?;
        Some(ActiveSchedule::new(slots.iter().copied(), assignment))
    }

    /// Max units of the given jobs schedulable into `slots` (the max-flow
    /// value), plus the per-job slot assignment if everything fits.
    fn assign_subset(&self, jobs: &[JobId], slots: &[Time]) -> Option<Vec<Vec<Time>>> {
        let inst = self.inst;
        let mut sorted: Vec<Time> = slots.to_vec();
        sorted.sort_unstable();
        sorted.dedup();

        // Cheap necessary conditions before building the flow network;
        // the exact solvers probe this oracle with many infeasible slot
        // sets, and both checks reject the bulk of them in O(n log m):
        // each job needs p_j open slots inside its window, and the total
        // demand cannot exceed g units per open slot.
        let mut total = 0i64;
        for &job in jobs {
            let j = inst.job(job);
            total += j.length;
            let lo = sorted.partition_point(|&t| t <= j.release);
            let hi = sorted.partition_point(|&t| t <= j.deadline);
            if ((hi - lo) as i64) < j.length {
                return None;
            }
        }
        if total > inst.g() as i64 * sorted.len() as i64 {
            return None;
        }

        let n = jobs.len();
        let m = sorted.len();
        // Nodes: 0 = source, 1..=n jobs, n+1..=n+m slots, n+m+1 sink.
        let s = 0;
        let t = n + m + 1;
        let mut g = FlowGraph::new(n + m + 2);
        let mut demand = 0i64;
        let mut job_edges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // (edge id, slot idx)
        for (ji, &job) in jobs.iter().enumerate() {
            let p = inst.job(job).length;
            demand += p;
            g.add_edge(s, 1 + ji, p);
        }
        for (si, &slot) in sorted.iter().enumerate() {
            for (ji, &job) in jobs.iter().enumerate() {
                if job_feasible_in_slot(inst, job, slot) {
                    let e = g.add_edge(1 + ji, 1 + n + si, 1);
                    job_edges[ji].push((e, si));
                }
            }
            g.add_edge(1 + n + si, t, inst.g() as i64);
        }
        let f = max_flow(&mut g, s, t);
        if f.value != demand {
            return None;
        }
        // Extract integral assignment for the *whole* instance shape: rows
        // for every job id, empty for jobs outside the subset.
        let mut assignment = vec![Vec::new(); inst.len()];
        for (ji, &job) in jobs.iter().enumerate() {
            for &(e, si) in &job_edges[ji] {
                if g.flow(e) > 0 {
                    assignment[job].push(sorted[si]);
                }
            }
        }
        // Only return the rows for scheduled jobs when subset == all; callers
        // needing partial assignments use `is_feasible_subset`.
        Some(assignment)
    }
}

/// Convenience: feasibility of the whole instance on `slots`.
pub fn feasible_on(inst: &Instance, slots: &[Time]) -> bool {
    FeasibilityChecker::new(inst).is_feasible(slots)
}

/// Convenience: schedule the whole instance on `slots` if possible.
pub fn schedule_on(inst: &Instance, slots: &[Time]) -> Option<ActiveSchedule> {
    FeasibilityChecker::new(inst).check(slots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abt_core::active_schedule::horizon_slots;

    #[test]
    fn all_slots_feasible_when_capacity_suffices() {
        let inst = Instance::from_triples([(0, 3, 2), (0, 3, 2), (1, 4, 1)], 2).unwrap();
        let slots = horizon_slots(&inst);
        let sched = schedule_on(&inst, &slots).expect("feasible");
        sched.validate(&inst).unwrap();
    }

    #[test]
    fn capacity_binds() {
        // Three unit jobs confined to one slot, g = 2: infeasible.
        let inst = Instance::from_triples([(0, 1, 1), (0, 1, 1), (0, 1, 1)], 2).unwrap();
        assert!(!feasible_on(&inst, &[1]));
        let inst2 = inst.with_g(3).unwrap();
        assert!(feasible_on(&inst2, &[1]));
    }

    #[test]
    fn window_binds() {
        let inst = Instance::from_triples([(2, 4, 2)], 1).unwrap();
        assert!(!feasible_on(&inst, &[1, 2, 3])); // slot 4 needed
        assert!(feasible_on(&inst, &[3, 4]));
        assert!(!feasible_on(&inst, &[3])); // not enough slots
    }

    #[test]
    fn subset_feasibility() {
        let inst = Instance::from_triples([(0, 2, 2), (0, 2, 2), (4, 6, 1)], 1).unwrap();
        let chk = FeasibilityChecker::new(&inst);
        assert!(chk.is_feasible_subset(&[0], &[1, 2]));
        assert!(!chk.is_feasible_subset(&[0, 1], &[1, 2]));
        assert!(chk.is_feasible_subset(&[0, 2], &[1, 2, 5]));
    }

    #[test]
    fn extracted_schedule_is_always_valid() {
        // Paper Fig. 3-ish mix with full and non-full slots.
        let inst = Instance::from_triples([(0, 6, 3), (1, 5, 2), (2, 4, 2), (0, 2, 1)], 2).unwrap();
        let slots = horizon_slots(&inst);
        let sched = schedule_on(&inst, &slots).unwrap();
        sched.validate(&inst).unwrap();
        assert_eq!(sched.cost(), 6);
    }

    #[test]
    fn duplicate_and_unsorted_slots_tolerated() {
        let inst = Instance::from_triples([(0, 3, 2)], 1).unwrap();
        let sched = schedule_on(&inst, &[3, 1, 3, 2, 1]).unwrap();
        sched.validate(&inst).unwrap();
    }
}

//! The natural LP relaxation `LP1` of the active-time IP (§3).
//!
//! Variables: `y_t ∈ [0, 1]` per horizon slot (is slot `t` open?) and
//! `x_{t,j} ≥ 0` per job and window slot (units of `j` in `t`).
//! Constraints: `x_{t,j} ≤ y_t`, `Σ_j x_{t,j} ≤ g·y_t`, `Σ_t x_{t,j} ≥ p_j`.
//! Objective: minimize `Σ_t y_t`.
//!
//! Solved with the exact rational simplex so that the rounding algorithm's
//! case analysis (`⌊Y_i⌋`, comparisons against ½) is exact.

#![allow(clippy::needless_range_loop)] // job indices are shared across parallel vectors

use abt_core::active_schedule::{horizon_slots, job_feasible_in_slot};
use abt_core::{Error, Instance, Result, Time};
use abt_lp::{solve, Cmp, LpProblem, LpStatus, Rat};

/// An optimal fractional solution of `LP1`.
#[derive(Debug, Clone)]
pub struct ActiveLp {
    /// Horizon slots, ascending; parallel to `y`.
    pub slots: Vec<Time>,
    /// Optimal `y_t` per slot.
    pub y: Vec<Rat>,
    /// Optimal objective `Σ_t y_t` — a lower bound on integral OPT.
    pub objective: Rat,
}

/// Builds and solves `LP1` for `inst`.
pub fn solve_active_lp(inst: &Instance) -> Result<ActiveLp> {
    let slots = horizon_slots(inst);
    let mut lp: LpProblem<Rat> = LpProblem::new();

    // y variables.
    let y_vars: Vec<_> = slots.iter().map(|_| lp.add_var(Rat::ONE)).collect();
    for &v in &y_vars {
        lp.bound_var(v, Rat::ONE);
    }
    // x variables, only inside windows.
    let mut x_vars: Vec<Vec<(usize, usize)>> = vec![Vec::new(); inst.len()]; // (slot idx, var)
    for j in 0..inst.len() {
        for (si, &t) in slots.iter().enumerate() {
            if job_feasible_in_slot(inst, j, t) {
                let v = lp.add_var(Rat::ZERO);
                x_vars[j].push((si, v));
            }
        }
    }
    // x_{t,j} ≤ y_t.
    for row in &x_vars {
        for &(si, v) in row {
            lp.add_constraint(
                vec![(v, Rat::ONE), (y_vars[si], Rat::from_int(-1))],
                Cmp::Le,
                Rat::ZERO,
            );
        }
    }
    // Σ_j x_{t,j} ≤ g·y_t.
    let g = Rat::from_int(inst.g() as i64);
    for (si, &yv) in y_vars.iter().enumerate() {
        let mut terms: Vec<(usize, Rat)> = x_vars
            .iter()
            .flat_map(|row| row.iter().filter(|&&(s, _)| s == si).map(|&(_, v)| (v, Rat::ONE)))
            .collect();
        if terms.is_empty() {
            continue;
        }
        terms.push((yv, g.neg()));
        lp.add_constraint(terms, Cmp::Le, Rat::ZERO);
    }
    // Σ_t x_{t,j} ≥ p_j.
    for (j, row) in x_vars.iter().enumerate() {
        let terms: Vec<(usize, Rat)> = row.iter().map(|&(_, v)| (v, Rat::ONE)).collect();
        lp.add_constraint(terms, Cmp::Ge, Rat::from_int(inst.job(j).length));
    }

    let sol = solve(&lp);
    match sol.status {
        LpStatus::Optimal => {
            let y: Vec<Rat> = y_vars.iter().map(|&v| sol.x[v]).collect();
            Ok(ActiveLp { slots, y, objective: sol.objective })
        }
        LpStatus::Infeasible => Err(Error::Infeasible("LP1 infeasible: no schedule exists".into())),
        LpStatus::Unbounded => unreachable!("LP1 objective is bounded below by 0"),
    }
}

/// Checks whether a *fractional* assignment exists for all jobs given fixed
/// slot openings `y` (the feasibility system `LP2` of §3.1). Used to
/// validate the right-shifting lemma in tests.
pub fn fractional_feasible(inst: &Instance, slots: &[Time], y: &[Rat]) -> bool {
    assert_eq!(slots.len(), y.len());
    let mut lp: LpProblem<Rat> = LpProblem::new();
    let mut x_vars: Vec<Vec<(usize, usize)>> = vec![Vec::new(); inst.len()];
    for j in 0..inst.len() {
        for (si, &t) in slots.iter().enumerate() {
            if job_feasible_in_slot(inst, j, t) && y[si].signum() > 0 {
                let v = lp.add_var(Rat::ZERO);
                x_vars[j].push((si, v));
                lp.bound_var(v, y[si]); // x ≤ y
            }
        }
    }
    let g = Rat::from_int(inst.g() as i64);
    for (si, yt) in y.iter().enumerate() {
        let terms: Vec<(usize, Rat)> = x_vars
            .iter()
            .flat_map(|row| row.iter().filter(|&&(s, _)| s == si).map(|&(_, v)| (v, Rat::ONE)))
            .collect();
        if !terms.is_empty() {
            lp.add_constraint(terms, Cmp::Le, g.mul(yt));
        }
    }
    for (j, row) in x_vars.iter().enumerate() {
        let terms: Vec<(usize, Rat)> = row.iter().map(|&(_, v)| (v, Rat::ONE)).collect();
        lp.add_constraint(terms, Cmp::Ge, Rat::from_int(inst.job(j).length));
    }
    matches!(solve(&lp).status, LpStatus::Optimal)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lp_lower_bounds_integral_opt() {
        let inst = Instance::from_triples([(0, 4, 2), (1, 3, 2)], 2).unwrap();
        let lp = solve_active_lp(&inst).unwrap();
        // Integral OPT is 2; LP must be ≤ 2 and ≥ P/g = 2.
        assert_eq!(lp.objective, Rat::from_int(2));
    }

    #[test]
    fn lp_detects_infeasible() {
        let inst = Instance::from_triples([(0, 1, 1), (0, 1, 1)], 1).unwrap();
        assert!(matches!(solve_active_lp(&inst), Err(Error::Infeasible(_))));
    }

    #[test]
    fn integrality_gap_instance_g2() {
        // §3.5 with g = 2: two pairs of adjacent slots, each with g+1 = 3
        // exclusive jobs. LP optimum = g + 1 = 3; integral OPT = 2g = 4.
        let g = 2usize;
        let mut triples = Vec::new();
        for pair in 0..g as i64 {
            let a = 2 * pair; // slots (a, a+2] = {a+1, a+2}
            for _ in 0..=g {
                triples.push((a, a + 2, 1i64));
            }
        }
        let inst = Instance::from_triples(triples, g).unwrap();
        let lp = solve_active_lp(&inst).unwrap();
        assert_eq!(lp.objective, Rat::from_int(g as i64 + 1));
    }

    #[test]
    fn y_respects_bounds() {
        let inst = Instance::from_triples([(0, 3, 2), (0, 3, 1)], 1).unwrap();
        let lp = solve_active_lp(&inst).unwrap();
        for v in &lp.y {
            assert!(v.signum() >= 0 && *v <= Rat::ONE);
        }
        assert_eq!(lp.objective, Rat::from_int(3));
    }

    #[test]
    fn fractional_feasibility_oracle() {
        let inst = Instance::from_triples([(0, 2, 1), (0, 2, 1)], 1).unwrap();
        let slots = vec![1, 2];
        assert!(fractional_feasible(&inst, &slots, &[Rat::ONE, Rat::ONE]));
        assert!(!fractional_feasible(
            &inst,
            &slots,
            &[Rat::ONE, Rat::new(1, 2)]
        ));
        // Fractional sharing: y = (1, 1/2) supports total mass 1.5 with g=2...
        let inst2 = inst.with_g(2).unwrap();
        assert!(fractional_feasible(
            &inst2,
            &slots,
            &[Rat::ONE, Rat::new(1, 2)]
        ));
    }
}

//! The natural LP relaxation `LP1` of the active-time IP (§3), with slot
//! coalescing, implicit variable bounds, implicit VUB families for the
//! `x ≤ Y` caps, and a VUB-aware bounded revised hybrid solve as the
//! default configuration.
//!
//! # The per-slot formulation (the seed model)
//!
//! Variables: `y_t ∈ [0, 1]` per horizon slot (is slot `t` open?) and
//! `x_{t,j} ≥ 0` per job and window slot (units of `j` in `t`).
//! Constraints: `x_{t,j} ≤ y_t`, `Σ_j x_{t,j} ≤ g·y_t`, `Σ_t x_{t,j} ≥ p_j`.
//! Objective: minimize `Σ_t y_t`. Size: `O(T·n)` variables and rows for a
//! horizon of `T` slots.
//!
//! # Slot coalescing (the paper's interesting intervals)
//!
//! Between two consecutive job event points (releases/deadlines) every
//! slot has the *same* feasible job set, so a run of `w` identical slots
//! collapses into one weighted super-slot: `Y_I ∈ [0, w_I]` carries the
//! total open mass of the run and `x_{I,j}` the total units of `j` in it,
//! with `x_{I,j} ≤ Y_I`, `Σ_j x_{I,j} ≤ g·Y_I`, `Σ_I x_{I,j} ≥ p_j`, and
//! objective `Σ_I Y_I`. The two LPs have equal optima: per-slot solutions
//! aggregate by summing, and a super-slot solution disaggregates uniformly
//! (`y_t = Y_I/w_I`, `x_{t,j} = x_{I,j}/w_I`), which preserves every
//! constraint and the objective. With at most `2n` event points this cuts
//! the model from `O(T·n)` to `O(n²)` — the dominant win on long horizons.
//!
//! The reported [`ActiveLp`] stays per-slot (the §3.1 right-shifting
//! consumes per-slot `y`), using the exact uniform disaggregation.
//!
//! # Bound encodings
//!
//! The capacity caps `Y_I ≤ w_I` (and `y_t ≤ 1` per-slot) are *constant*
//! upper bounds: under [`BoundsMode::Implicit`] they ride on the variables
//! themselves (`LpProblem::set_upper`) and never become tableau rows —
//! the bounded-variable simplex handles them in its pivoting rules.
//! [`BoundsMode::Rows`] keeps the seed's explicit `≤` rows as the
//! differential-test oracle.
//!
//! The `x_{I,j} ≤ Y_I` caps bound one *variable by another* — a **variable
//! upper bound** (VUB). They are the last `O(n²)` block of LP1: one row
//! per (job, interval) pair while every other row class is `O(n)`. Under
//! [`VubMode::Implicit`] (the default) each cap is registered as a VUB
//! family membership (`LpProblem::set_vub`) that the revised simplex
//! handles inside its pivoting rules — dependents rest *glued* to their
//! `Y_I` key and basic keys carry Schrage-style augmented key columns —
//! shrinking the working basis from `O(n²)` to `O(n)` rows.
//! [`VubMode::Rows`] keeps the explicit `x − Y ≤ 0` rows as the
//! differential-test oracle.
//!
//! # Component decomposition
//!
//! LP1's constraint matrix is **block-diagonal across connected components
//! of the job-window interval graph**: jobs whose windows never overlap
//! share no slot (or super-slot) variables, no capacity row, and no VUB
//! family, so one huge instance is really many independent small ones.
//! Under [`DecomposeMode::Auto`] (the default) the model sweeps the slot
//! runs once to find those components — each is a *contiguous* range of
//! runs, because a job's window covers a contiguous run range — builds one
//! sub-LP per component, solves them through
//! [`abt_core::parallel_map`] on the existing VUB revised simplex, and
//! stitches the per-run `Y` values and objectives back together. The
//! stitching is *exact*: the blocks share nothing, so the monolithic
//! optimum equals the sum of the component optima and the rational sums
//! introduce no rounding. Runs covered by no job window carry `Y = 0` in
//! any optimum and are never sent to a solver. [`DecomposeMode::Off`]
//! keeps the monolithic solve as the differential oracle.
//!
//! Sharding composes with the per-thread slab arena in `abt-lp`
//! ([`abt_lp::SolveArena`]): each worker thread solving a stream of small
//! component LPs reuses its scratch buffers instead of churning the global
//! allocator.
//!
//! # Warm-started sibling batching
//!
//! On the families that shard well the components are often
//! *near-identical* — nested windows and arrival streams repeat the same
//! window layouts with different job lengths. Under [`WarmMode::Batch`]
//! the sharded solve runs a **batch planner**: components are grouped by
//! structural signature (run count + per-job relative run spans — equal
//! signatures build LPs with identical standard-form structure), one
//! representative per group solves cold, and the siblings warm-start from
//! a per-group [`abt_lp::BasisSnapshot`] pool seeded by the
//! representative and grown by every cold-resolved miss
//! ([`abt_lp::solve_revised_warm`]). Siblings run in parallel waves so the
//! pool growth stays deterministic — warm pivot counts are exactly
//! reproducible run to run. Warm answers are certified in exact rationals
//! like cold ones, so `Batch` never changes an objective; cold
//! [`WarmMode::Off`] remains the default and the differential oracle
//! (E22 measures the pivot-effort reduction). The incremental re-solve
//! driver for *mutating* instances lives in [`crate::incremental`].
//!
//! # Solve backends
//!
//! The default is [`abt_lp::solve_revised`]: a bounded revised simplex in
//! `f64` whose terminal basis is re-verified (and, if need be, re-solved)
//! in exact rationals, so the `y` values and objective remain *exact* —
//! the rounding algorithm's case analysis (`⌊Y_i⌋`, comparisons against ½)
//! stays noise-free. [`LpOptions`] recovers the seed behaviour (per-slot +
//! explicit rows + pure exact simplex) and the PR-1 default (coalesced +
//! dense hybrid) for differential tests and benchmarks.
//!
//! Every hybrid-style solve feeds the process-wide telemetry
//! ([`lp_telemetry`]): fallbacks plus the pivot / bound-flip /
//! refactorization / exact-certify counters, and the sharding counters
//! (sharded solves, components solved, largest component). The experiment
//! harness records them per experiment and CI fails when a non-adversarial
//! workload ever needs the exact fallback.

#![allow(clippy::needless_range_loop)] // job indices are shared across parallel vectors

use crate::supervise::{supervised_solve, PartialSolve, QuarantinedComponent, SolveError};
use abt_core::active_schedule::{horizon_slots, job_feasible_in_slot};
use abt_core::obs::{
    self,
    metrics::{Counter, Gauge, Histogram, HistogramSnapshot},
};
use abt_core::{supervised_map, Error, Instance, Result, SolveFailure, Time};
use abt_lp::{
    solve, solve_lp, BasisSnapshot, BoundedOptions, CertifyMode, Cmp, LpProblem, LpReport,
    LpSolution, LpStatus, Rat, RevisedOptions, SolverBackend, DEFAULT_PRICING_WINDOW,
};
use std::collections::BTreeMap;
use std::sync::OnceLock;
use std::time::Duration;

/// Which simplex path solves the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpBackend {
    /// Pure exact-rational dense simplex for every pivot (the seed
    /// behaviour).
    Exact,
    /// Dense float-first solve with exact terminal-basis verification and
    /// exact fallback ([`abt_lp::solve_hybrid`]) — the PR-1 default.
    Hybrid,
    /// Bounded-variable revised simplex in `f64` with sparse exact-LU
    /// verification ([`abt_lp::solve_revised`]). Same exact results,
    /// faster; the current default.
    Revised,
}

/// How constant variable upper bounds enter the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundsMode {
    /// Explicit `x ≤ u` rows (the seed encoding; dense-oracle).
    Rows,
    /// Implicit `[0, u]` bounds on the variables (no rows).
    Implicit,
}

/// How the `x_{I,j} ≤ Y_I` variable upper bounds enter the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VubMode {
    /// Explicit `x − Y ≤ 0` rows (the seed/PR-2 encoding; dense-oracle).
    Rows,
    /// Implicit VUB families handled by the pivoting rules (no rows).
    Implicit,
}

/// Whether LP1 is sharded along the connected components of the
/// job-window interval graph (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecomposeMode {
    /// One monolithic LP, whatever the instance's shape (the differential
    /// oracle and the pre-sharding behaviour).
    Off,
    /// Split into per-component sub-LPs whenever the instance has more
    /// than one component, solving them through
    /// [`abt_core::parallel_map`] and stitching the results exactly.
    Auto,
}

/// Whether a sharded solve batches *similar* component sub-LPs into
/// warm-started sibling solves (see the module docs and
/// [`abt_lp::warm`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmMode {
    /// Every component solves cold (the pre-warm-start behaviour and the
    /// differential oracle).
    Off,
    /// Components are grouped by structural signature; one representative
    /// per group solves cold and its [`abt_lp::BasisSnapshot`] seeds the
    /// siblings' warm solves (a growing per-group snapshot pool keeps the
    /// hit rate high). Exact objectives are unchanged — warm answers are
    /// certified in rationals like cold ones. Only the
    /// [`LpBackend::Revised`] backend warm-starts; other backends ignore
    /// this mode.
    Batch,
}

/// Model/solver configuration for [`solve_active_lp_with`].
#[derive(Debug, Clone, Copy)]
pub struct LpOptions {
    /// Solve backend. Default: [`LpBackend::Revised`].
    pub backend: LpBackend,
    /// Coalesce identical-window slot runs into weighted super-slots.
    /// Default: `true`.
    pub coalesce: bool,
    /// Constant-bound encoding. Default: [`BoundsMode::Implicit`].
    pub bounds: BoundsMode,
    /// Variable-upper-bound encoding. Default: [`VubMode::Implicit`].
    pub vub: VubMode,
    /// Partial-pricing window of the revised backend (`0` = full Dantzig
    /// sweeps). Default: [`DEFAULT_PRICING_WINDOW`].
    pub pricing_window: usize,
    /// Interval-graph component sharding. Default: [`DecomposeMode::Auto`].
    pub decompose: DecomposeMode,
    /// Warm-started sibling batching of the sharded solves. Default:
    /// [`WarmMode::Off`] (the cold path stays the shipping default and the
    /// perf baseline; [`LpOptions::warm_batched`] turns batching on).
    pub warm: WarmMode,
    /// Basis-changing pivot budget per revised solve attempt (`0` =
    /// unlimited, the default). A trip surfaces as a typed
    /// `BudgetExceeded` failure and demotes the solve down the
    /// supervision ladder instead of spinning.
    pub pivot_budget: u64,
    /// Wall-time budget per revised solve *stage* in milliseconds (`0` =
    /// unlimited, the default): the float pass and the exact certifier
    /// each get a fresh clock.
    pub time_budget_ms: u64,
    /// Certification tier policy of the revised backend (see
    /// [`CertifyMode`]). Default: [`CertifyMode::IntervalThenExact`] —
    /// the directed-rounding interval tier discharges most proofs,
    /// escalating to exact rationals only on straddles. Objectives are
    /// bit-identical under every mode.
    pub certify: CertifyMode,
}

impl Default for LpOptions {
    fn default() -> Self {
        LpOptions {
            backend: LpBackend::Revised,
            coalesce: true,
            bounds: BoundsMode::Implicit,
            vub: VubMode::Implicit,
            pricing_window: DEFAULT_PRICING_WINDOW,
            decompose: DecomposeMode::Auto,
            warm: WarmMode::Off,
            pivot_budget: 0,
            time_budget_ms: 0,
            certify: CertifyMode::IntervalThenExact,
        }
    }
}

impl LpOptions {
    /// Sets the solve backend.
    pub fn backend(mut self, backend: LpBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets super-slot coalescing.
    pub fn coalesce(mut self, coalesce: bool) -> Self {
        self.coalesce = coalesce;
        self
    }

    /// Sets the constant-bound encoding.
    pub fn bounds(mut self, bounds: BoundsMode) -> Self {
        self.bounds = bounds;
        self
    }

    /// Sets the variable-upper-bound encoding.
    pub fn vub(mut self, vub: VubMode) -> Self {
        self.vub = vub;
        self
    }

    /// Sets the partial-pricing window (`0` = full Dantzig sweeps).
    pub fn pricing_window(mut self, window: usize) -> Self {
        self.pricing_window = window;
        self
    }

    /// Sets component sharding.
    pub fn decompose(mut self, decompose: DecomposeMode) -> Self {
        self.decompose = decompose;
        self
    }

    /// Sets warm-started sibling batching.
    pub fn warm(mut self, warm: WarmMode) -> Self {
        self.warm = warm;
        self
    }

    /// Sets the per-attempt pivot budget (`0` = unlimited).
    pub fn pivot_budget(mut self, budget: u64) -> Self {
        self.pivot_budget = budget;
        self
    }

    /// Sets the per-stage wall-time budget in milliseconds (`0` =
    /// unlimited).
    pub fn time_budget_ms(mut self, ms: u64) -> Self {
        self.time_budget_ms = ms;
        self
    }

    /// Sets the certification tier policy of the revised backend.
    pub fn certify(mut self, certify: CertifyMode) -> Self {
        self.certify = certify;
        self
    }

    /// The seed configuration: per-slot model, explicit bound rows, pure
    /// exact simplex, one monolithic LP.
    pub fn seed_exact() -> Self {
        LpOptions::default()
            .backend(LpBackend::Exact)
            .coalesce(false)
            .bounds(BoundsMode::Rows)
            .vub(VubMode::Rows)
            .pricing_window(0)
            .decompose(DecomposeMode::Off)
    }

    /// The PR-1 default: coalesced model, explicit bound rows, dense
    /// float-first hybrid. Kept as the perf baseline the revised solver is
    /// benchmarked against.
    pub fn pr1_hybrid() -> Self {
        LpOptions::default()
            .backend(LpBackend::Hybrid)
            .bounds(BoundsMode::Rows)
            .vub(VubMode::Rows)
            .pricing_window(0)
            .decompose(DecomposeMode::Off)
    }

    /// The PR-2 default: coalesced model, implicit constant bounds, VUBs
    /// still rows, full Dantzig pricing. Kept as the perf baseline the
    /// VUB-aware solver is benchmarked against.
    pub fn pr2_revised_bounds() -> Self {
        LpOptions::default()
            .backend(LpBackend::Revised)
            .bounds(BoundsMode::Implicit)
            .vub(VubMode::Rows)
            .pricing_window(0)
            .decompose(DecomposeMode::Off)
    }

    /// The PR-3 default: the VUB-aware revised simplex on one monolithic
    /// LP (no component sharding). Kept as the perf baseline the
    /// decomposition layer is benchmarked against, and as its differential
    /// oracle.
    pub fn pr3_monolithic() -> Self {
        LpOptions::default().decompose(DecomposeMode::Off)
    }

    /// The warm-batched configuration: the default sharded solve plus
    /// [`WarmMode::Batch`] sibling batching. Cold [`LpOptions::default`]
    /// is its differential oracle and perf baseline (E22).
    pub fn warm_batched() -> Self {
        LpOptions::default().warm(WarmMode::Batch)
    }
}

/// Handles of the process-wide LP solve metrics, resolved once from the
/// unified [`abt_core::obs::metrics`] registry (`lp.*` namespace). The
/// legacy [`lp_telemetry`] facade reads these — the registry is the
/// single source of truth, shared with the `abt trace` / `--metrics`
/// exposition surfaces.
struct LpMetrics {
    /// Hybrid-style LP solves (`Hybrid`/`Revised` backends, plus the
    /// feasibility oracle below).
    solves: &'static Counter,
    /// Solves that needed the exact fallback.
    fallbacks: &'static Counter,
    /// Basis-changing pivot count of the float passes.
    pivots: &'static Counter,
    /// Bound/VUB flip count of the float passes.
    bound_flips: &'static Counter,
    /// LU refactorization count of the float passes.
    refactorizations: &'static Counter,
    /// Exact-certification wall time, nanoseconds.
    certify_nanos: &'static Counter,
    /// Certification wall time spent in the directed-rounding interval
    /// tier, nanoseconds (a subset of `certify_nanos`).
    certify_interval_nanos: &'static Counter,
    /// Certification wall time spent in the exact tier (factor, solves,
    /// primal checks, and any exact dual sweeps), nanoseconds.
    certify_exact_nanos: &'static Counter,
    /// Solves whose dual-feasibility proof was discharged by the
    /// interval tier alone.
    interval_accepts: &'static Counter,
    /// Solves whose interval sweep was inconclusive and escalated to (or
    /// was refused pending) the exact sweep.
    interval_escalations: &'static Counter,
    /// LP1 solves that sharded into >1 component.
    sharded_solves: &'static Counter,
    /// Component sub-LPs solved by sharded solves.
    components: &'static Counter,
    /// High-water gauge of the largest component sub-LP's variable count
    /// (sharded solves only). Open an exact max-over-window region with
    /// [`component_vars_window`].
    max_component_vars: &'static Gauge,
    /// Solves that were *offered* a warm-start snapshot (batched
    /// siblings and incremental re-solves).
    warm_attempts: &'static Counter,
    /// Warm attempts that installed and verified warm.
    warm_hits: &'static Counter,
    /// Pivots saved by warm hits, measured against each hit's cold
    /// reference, floored at zero per solve.
    warm_pivots_saved: &'static Counter,
    /// Failure-driven ladder demotions (see [`crate::supervise`]).
    demotions: &'static Counter,
    /// Solve attempts that tripped a pivot / refactorization / wall-time
    /// budget (each such trip is also a demotion).
    budget_trips: &'static Counter,
    /// Components quarantined after the whole ladder failed.
    quarantined: &'static Counter,
    /// Cached component blocks and basis snapshots restored from a
    /// persisted state directory (warm capital carried across process
    /// restarts by `abt_active::store`).
    persist_restores: &'static Counter,
    /// Completed recovery events: journal-tail replays over a
    /// checkpoint, and corrupt-state detections absorbed into a cold
    /// rebuild. Always ≥ `state_corrupt` on a healthy run — a corruption
    /// without a matching recovery means the absorption path itself
    /// broke, which the perf gate fails on.
    recoveries: &'static Counter,
    /// Persisted-state corruption detections (checksum or version
    /// drift, shape drift, malformed payloads) — each one is rejected
    /// and rebuilt cold, never trusted.
    state_corrupt: &'static Counter,
    /// Solve requests bounced by admission control (the Hall-condition
    /// precheck) before touching the solver.
    admission_rejects: &'static Counter,
    /// Wall-time latency of each supervised/hybrid solve, microseconds
    /// (log-bucket histogram; feeds the per-experiment p50/p90/p99
    /// bench fields and the `--max-p99-ratio` perf gate).
    solve_latency_us: &'static Histogram,
    /// Pivot count of each solve (a *deterministic* distribution — used
    /// by the determinism tests and effort diagnostics).
    pivots_per_solve: &'static Histogram,
}

/// The `lp.*` metric handles (resolved on first use).
fn met() -> &'static LpMetrics {
    static MET: OnceLock<LpMetrics> = OnceLock::new();
    MET.get_or_init(|| LpMetrics {
        solves: obs::metrics::counter("lp.solves"),
        fallbacks: obs::metrics::counter("lp.fallbacks"),
        pivots: obs::metrics::counter("lp.pivots"),
        bound_flips: obs::metrics::counter("lp.bound_flips"),
        refactorizations: obs::metrics::counter("lp.refactorizations"),
        certify_nanos: obs::metrics::counter("lp.certify_nanos"),
        certify_interval_nanos: obs::metrics::counter("lp.certify_interval_nanos"),
        certify_exact_nanos: obs::metrics::counter("lp.certify_exact_nanos"),
        interval_accepts: obs::metrics::counter("lp.interval_accepts"),
        interval_escalations: obs::metrics::counter("lp.interval_escalations"),
        sharded_solves: obs::metrics::counter("lp.sharded_solves"),
        components: obs::metrics::counter("lp.components"),
        max_component_vars: obs::metrics::gauge("lp.max_component_vars"),
        warm_attempts: obs::metrics::counter("lp.warm_attempts"),
        warm_hits: obs::metrics::counter("lp.warm_hits"),
        warm_pivots_saved: obs::metrics::counter("lp.warm_pivots_saved"),
        demotions: obs::metrics::counter("lp.demotions"),
        budget_trips: obs::metrics::counter("lp.budget_trips"),
        quarantined: obs::metrics::counter("lp.quarantined"),
        persist_restores: obs::metrics::counter("lp.persist_restores"),
        recoveries: obs::metrics::counter("lp.recoveries"),
        state_corrupt: obs::metrics::counter("lp.state_corrupt"),
        admission_rejects: obs::metrics::counter("lp.admission_rejects"),
        solve_latency_us: obs::metrics::histogram("lp.solve_latency_us"),
        pivots_per_solve: obs::metrics::histogram("lp.pivots_per_solve"),
    })
}

/// Opens an **exact** max-over-window region over the largest-component
/// high-water gauge: the returned handle's `value()` is the largest
/// component sub-LP variable count recorded while it is alive (0 when no
/// sharded solve ran). This is the precise per-region reading that the
/// snapshot-pair [`LpTelemetry::delta`] cannot provide (see its docs);
/// the experiment harness opens one per experiment row.
pub fn component_vars_window() -> abt_core::obs::metrics::HighWaterWindow {
    met().max_component_vars.window()
}

/// Snapshot of the solve-latency histogram (microseconds per
/// supervised/hybrid solve). Bucket counts are cumulative and monotone:
/// diff two snapshots with [`HistogramSnapshot::delta`] to scope
/// deterministic p50/p90/p99 extraction to a region, as the experiment
/// harness does per row.
pub fn solve_latency_snapshot() -> HistogramSnapshot {
    met().solve_latency_us.snapshot()
}

/// Snapshot of the pivots-per-solve histogram (a deterministic
/// distribution: identical solves produce identical bucket counts).
pub fn pivots_per_solve_snapshot() -> HistogramSnapshot {
    met().pivots_per_solve.snapshot()
}

/// A snapshot of the process-wide LP solve telemetry (see
/// [`lp_telemetry`]). All counters are cumulative and monotone; diff two
/// snapshots with [`LpTelemetry::delta`] to scope them to a region. Every
/// field is maintained with atomic adds (the high-water mark with atomic
/// max), so concurrent solves (e.g. under `parallel_map`) are counted
/// exactly — a delta across a parallel region equals the sum of the
/// per-solve contributions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LpTelemetry {
    /// Hybrid-style LP solves (`Hybrid`/`Revised` backends and the
    /// fractional-feasibility oracle). Under [`DecomposeMode::Auto`] each
    /// component sub-LP counts as one solve.
    pub solves: u64,
    /// Solves that needed the exact fallback.
    pub fallbacks: u64,
    /// Basis-changing pivots of the float passes.
    pub pivots: u64,
    /// Bound/VUB flips of the float passes (no basis change).
    pub bound_flips: u64,
    /// LU refactorizations of the float passes (periodic and
    /// VUB-structural).
    pub refactorizations: u64,
    /// Exact-certification wall time, nanoseconds.
    pub certify_nanos: u64,
    /// Certification wall time spent in the directed-rounding interval
    /// tier, nanoseconds (a subset of `certify_nanos`).
    pub certify_interval_nanos: u64,
    /// Certification wall time spent in the exact tier (factor, solves,
    /// primal checks, and any exact dual sweeps), nanoseconds.
    pub certify_exact_nanos: u64,
    /// Solves whose dual-feasibility proof was discharged by the interval
    /// tier alone (no exact reduced-cost sweep ran).
    pub interval_accepts: u64,
    /// Solves whose interval sweep was inconclusive and escalated to the
    /// exact sweep ([`CertifyMode::IntervalThenExact`]) or returned a
    /// refutation for the ladder to absorb ([`CertifyMode::Interval`]).
    pub interval_escalations: u64,
    /// LP1 solves that sharded into more than one component
    /// ([`DecomposeMode::Auto`] with a disconnected interval graph).
    pub sharded_solves: u64,
    /// Component sub-LPs solved by those sharded solves.
    pub components: u64,
    /// High-water mark of the largest component sub-LP's variable count
    /// across sharded solves. **Not** a monotone sum — see
    /// [`LpTelemetry::delta`] for the windowed semantics, and
    /// [`component_vars_window`] for an exact max over an arbitrary
    /// region.
    pub max_component_vars: u64,
    /// Number of strict raises of the `max_component_vars` high water
    /// (monotone). [`LpTelemetry::delta`] uses it to decide whether the
    /// window established a new high water; not meaningful on its own.
    pub max_component_raises: u64,
    /// Solves offered a warm-start snapshot ([`WarmMode::Batch`] siblings
    /// and [`crate::incremental::IncrementalSolver`] re-solves).
    pub warm_attempts: u64,
    /// Warm attempts that installed and certified warm.
    pub warm_hits: u64,
    /// Pivots saved by warm hits versus each hit's cold reference solve
    /// (the group representative / the shape's first cold solve), floored
    /// at zero per solve.
    pub warm_pivots_saved: u64,
    /// Failure-driven supervision-ladder demotions (warm → cold revised →
    /// dense hybrid → dense exact; see [`crate::supervise`]). Zero on
    /// fault-free runs.
    pub demotions: u64,
    /// Solve attempts that tripped a pivot / refactorization / wall-time
    /// budget (a subset of `demotions`).
    pub budget_trips: u64,
    /// Components quarantined after every ladder rung failed. Zero on
    /// fault-free runs.
    pub quarantined: u64,
    /// Cached blocks and basis snapshots restored from a persisted state
    /// directory
    /// ([`crate::incremental::IncrementalSolver::attach_store`]).
    pub persist_restores: u64,
    /// Completed recovery events: journal replays over a checkpoint plus
    /// corrupt-state detections absorbed into cold rebuilds.
    pub recoveries: u64,
    /// Persisted-state corruption detections, each rejected and rebuilt
    /// cold (the reject-don't-trust invariant). Zero unless state files
    /// were actually damaged (or fault-injected).
    pub state_corrupt: u64,
    /// Solve requests bounced by admission control before any LP work.
    pub admission_rejects: u64,
}

impl LpTelemetry {
    /// Componentwise `self − earlier` for the monotone counters.
    ///
    /// `max_component_vars` is a high-water mark, not a sum, and gets
    /// **max-over-window** semantics: when the window raised the
    /// process-wide high water (`max_component_raises` advanced), the
    /// later snapshot's value *is* the exact in-window maximum — the
    /// record that set it happened inside the window — and is reported;
    /// when it did not, the delta reports 0 rather than carrying a stale
    /// process-wide value forward (the historical wart). A window that
    /// sharded only below an earlier high water therefore reads 0 here;
    /// use [`component_vars_window`] when the exact in-window maximum of
    /// such a region matters (the experiment harness does).
    pub fn delta(&self, earlier: &LpTelemetry) -> LpTelemetry {
        LpTelemetry {
            solves: self.solves - earlier.solves,
            fallbacks: self.fallbacks - earlier.fallbacks,
            pivots: self.pivots - earlier.pivots,
            bound_flips: self.bound_flips - earlier.bound_flips,
            refactorizations: self.refactorizations - earlier.refactorizations,
            certify_nanos: self.certify_nanos - earlier.certify_nanos,
            certify_interval_nanos: self.certify_interval_nanos - earlier.certify_interval_nanos,
            certify_exact_nanos: self.certify_exact_nanos - earlier.certify_exact_nanos,
            interval_accepts: self.interval_accepts - earlier.interval_accepts,
            interval_escalations: self.interval_escalations - earlier.interval_escalations,
            sharded_solves: self.sharded_solves - earlier.sharded_solves,
            components: self.components - earlier.components,
            max_component_vars: if self.max_component_raises > earlier.max_component_raises {
                self.max_component_vars
            } else {
                0
            },
            max_component_raises: self.max_component_raises - earlier.max_component_raises,
            warm_attempts: self.warm_attempts - earlier.warm_attempts,
            warm_hits: self.warm_hits - earlier.warm_hits,
            warm_pivots_saved: self.warm_pivots_saved - earlier.warm_pivots_saved,
            demotions: self.demotions - earlier.demotions,
            budget_trips: self.budget_trips - earlier.budget_trips,
            quarantined: self.quarantined - earlier.quarantined,
            persist_restores: self.persist_restores - earlier.persist_restores,
            recoveries: self.recoveries - earlier.recoveries,
            state_corrupt: self.state_corrupt - earlier.state_corrupt,
            admission_rejects: self.admission_rejects - earlier.admission_rejects,
        }
    }
}

/// Snapshot of the cumulative LP telemetry. The experiment harness diffs
/// two snapshots to compute per-experiment fallback rates and iteration
/// counters; CI fails when a non-adversarial workload reports a nonzero
/// fallback rate.
pub fn lp_telemetry() -> LpTelemetry {
    let m = met();
    LpTelemetry {
        solves: m.solves.get(),
        fallbacks: m.fallbacks.get(),
        pivots: m.pivots.get(),
        bound_flips: m.bound_flips.get(),
        refactorizations: m.refactorizations.get(),
        certify_nanos: m.certify_nanos.get(),
        certify_interval_nanos: m.certify_interval_nanos.get(),
        certify_exact_nanos: m.certify_exact_nanos.get(),
        interval_accepts: m.interval_accepts.get(),
        interval_escalations: m.interval_escalations.get(),
        sharded_solves: m.sharded_solves.get(),
        components: m.components.get(),
        max_component_vars: m.max_component_vars.max(),
        max_component_raises: m.max_component_vars.raises(),
        warm_attempts: m.warm_attempts.get(),
        warm_hits: m.warm_hits.get(),
        warm_pivots_saved: m.warm_pivots_saved.get(),
        demotions: m.demotions.get(),
        budget_trips: m.budget_trips.get(),
        quarantined: m.quarantined.get(),
        persist_restores: m.persist_restores.get(),
        recoveries: m.recoveries.get(),
        state_corrupt: m.state_corrupt.get(),
        admission_rejects: m.admission_rejects.get(),
    }
}

/// Records one failure-driven ladder demotion (see [`crate::supervise`],
/// which additionally emits the structured `supervise.demotion` event
/// with the failure and rung context).
pub(crate) fn record_demotion() {
    met().demotions.inc();
}

/// Records one budget trip (pivot / refactorization / wall-time).
pub(crate) fn record_budget_trip() {
    met().budget_trips.inc();
}

/// Records one quarantined component (the whole ladder failed) and emits
/// the `supervise.quarantine` flight-recorder event.
pub(crate) fn record_quarantine() {
    met().quarantined.inc();
    obs::trace::event("supervise.quarantine", Vec::new);
}

/// Records `n` cached blocks / snapshots restored from persisted state.
pub(crate) fn record_persist_restores(n: u64) {
    met().persist_restores.add(n);
    obs::trace::event("persist.restore", || vec![("blocks", n.to_string())]);
}

/// Records one completed recovery event (journal replay or corrupt-state
/// absorption into a cold rebuild).
pub(crate) fn record_recovery() {
    met().recoveries.inc();
    obs::trace::event("persist.recovery", Vec::new);
}

/// Records one persisted-state corruption detection.
pub(crate) fn record_state_corrupt() {
    met().state_corrupt.inc();
    obs::trace::event("persist.corrupt", Vec::new);
}

/// Records one admission-control rejection.
pub(crate) fn record_admission_reject() {
    met().admission_rejects.inc();
    obs::trace::event("admission.reject", Vec::new);
}

/// Records one warm-start attempt into the process-wide telemetry: whether
/// it hit, and (for hits) the pivots saved against `reference_pivots` —
/// the cold pivot count of the solve the snapshot came from. Used by the
/// batch planner below and by [`crate::incremental::IncrementalSolver`].
pub(crate) fn record_warm_attempt(hit: bool, reference_pivots: u64, warm_pivots: u64) {
    let m = met();
    m.warm_attempts.inc();
    if hit {
        m.warm_hits.inc();
        m.warm_pivots_saved
            .add(reference_pivots.saturating_sub(warm_pivots));
    }
}

pub(crate) fn record_solve(rep: &LpReport) {
    let m = met();
    m.solves.inc();
    if rep.fallback {
        m.fallbacks.inc();
    }
    m.pivots.add(rep.stats.pivots);
    m.bound_flips.add(rep.stats.bound_flips);
    m.refactorizations.add(rep.stats.refactorizations);
    m.certify_nanos.add(rep.stats.certify_nanos);
    m.certify_interval_nanos
        .add(rep.stats.certify_interval_nanos);
    m.certify_exact_nanos.add(rep.stats.certify_exact_nanos);
    m.interval_accepts.add(rep.stats.interval_accepts);
    m.interval_escalations.add(rep.stats.interval_escalations);
    m.pivots_per_solve.record(rep.stats.pivots);
}

/// Records one solve's wall-time latency into the `lp.solve_latency_us`
/// histogram (called next to [`record_solve`] by the paths that own the
/// solve's clock).
pub(crate) fn record_solve_latency(elapsed: Duration) {
    met().solve_latency_us.record(elapsed.as_micros() as u64);
}

/// The [`RevisedOptions`] implied by [`LpOptions`]: pricing window plus
/// the solve budgets (`0` means unlimited throughout).
pub(crate) fn revised_options(opts: &LpOptions) -> RevisedOptions {
    RevisedOptions {
        pricing: BoundedOptions {
            pricing_window: opts.pricing_window,
            pivot_budget: opts.pivot_budget,
            time_budget: (opts.time_budget_ms > 0)
                .then(|| Duration::from_millis(opts.time_budget_ms)),
            ..BoundedOptions::default()
        },
        certify: opts.certify,
    }
}

pub(crate) fn run_backend(lp: &LpProblem<Rat>, opts: &LpOptions) -> LpSolution<Rat> {
    match opts.backend {
        LpBackend::Exact => solve(lp),
        LpBackend::Hybrid => {
            let started = std::time::Instant::now();
            let rep = solve_lp(
                lp,
                &abt_lp::LpOptions::new()
                    .backend(SolverBackend::DenseHybrid)
                    .certify(opts.certify),
            )
            .expect("the dense hybrid backend never fails");
            record_solve(&rep);
            record_solve_latency(started.elapsed());
            rep.solution
        }
        LpBackend::Revised => match supervised_solve(lp, &revised_options(opts), &[]) {
            Ok(sr) => sr.solution,
            // Callers of this legacy entry point have no error channel,
            // and a failure of the whole ladder (dense exact included) is
            // not a state any of them can recover from.
            Err(f) => {
                record_quarantine();
                panic!("revised solve quarantined with no error channel: {f}")
            }
        },
    }
}

/// An optimal fractional solution of `LP1`.
#[derive(Debug, Clone)]
pub struct ActiveLp {
    /// Horizon slots, ascending; parallel to `y`.
    pub slots: Vec<Time>,
    /// Optimal `y_t` per slot.
    pub y: Vec<Rat>,
    /// Optimal objective `Σ_t y_t` — a lower bound on integral OPT.
    pub objective: Rat,
}

/// A maximal run of horizon slots with identical feasible job sets:
/// the slots `{start+1, …, end}`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SlotRun {
    /// Exclusive left end.
    pub(crate) start: Time,
    /// Inclusive right end.
    pub(crate) end: Time,
}

impl SlotRun {
    pub(crate) fn width(&self) -> i64 {
        self.end - self.start
    }
}

/// Splits the horizon at every job event point. Each returned run is a
/// maximal group of slots between consecutive event points; every job is
/// either feasible in all of a run's slots or in none of them.
pub(crate) fn slot_runs(inst: &Instance, coalesce: bool) -> Vec<SlotRun> {
    let lo = inst.min_release();
    let hi = inst.max_deadline();
    if !coalesce {
        return (lo..hi)
            .map(|t| SlotRun {
                start: t,
                end: t + 1,
            })
            .collect();
    }
    let mut cuts: Vec<Time> = Vec::with_capacity(2 * inst.len() + 2);
    cuts.push(lo);
    cuts.push(hi);
    for j in inst.jobs() {
        cuts.push(j.release.clamp(lo, hi));
        cuts.push(j.deadline.clamp(lo, hi));
    }
    cuts.sort_unstable();
    cuts.dedup();
    cuts.windows(2)
        .map(|w| SlotRun {
            start: w[0],
            end: w[1],
        })
        .collect()
}

/// A connected component of the job-window interval graph, as a contiguous
/// range of slot runs plus the jobs whose windows lie inside it.
#[derive(Debug, Clone)]
pub(crate) struct Component {
    /// First run index (inclusive).
    pub(crate) run_lo: usize,
    /// One past the last run index (exclusive).
    pub(crate) run_hi: usize,
    /// Member jobs, ascending.
    pub(crate) jobs: Vec<usize>,
}

/// Splits the instance into connected components of the job-window
/// interval graph over `runs`. Under [`DecomposeMode::Off`] the whole
/// instance is one component (covering even job-free runs, so the
/// monolithic LP is reproduced bit for bit). Under [`DecomposeMode::Auto`]
/// each component is a maximal contiguous run range linked by overlapping
/// job windows — a job's window covers a *contiguous* range of runs, so a
/// single sort-and-merge sweep over those ranges finds the components.
/// Runs no job can use are left out entirely: their `Y` is 0 in any
/// optimum and never reaches a solver.
pub(crate) fn components(inst: &Instance, runs: &[SlotRun], mode: DecomposeMode) -> Vec<Component> {
    if mode == DecomposeMode::Off {
        return vec![Component {
            run_lo: 0,
            run_hi: runs.len(),
            jobs: (0..inst.len()).collect(),
        }];
    }
    // Per job: the contiguous run range inside its window. Runs never
    // straddle an event point, so the endpoints decide membership.
    let mut spans: Vec<(usize, usize, usize)> = (0..inst.len())
        .map(|j| {
            let job = inst.job(j);
            let lo = runs.partition_point(|run| run.start < job.release);
            let hi = runs.partition_point(|run| run.end <= job.deadline);
            debug_assert!(lo < hi, "every job window covers at least one run");
            (lo, hi, j)
        })
        .collect();
    spans.sort_unstable();
    let mut out: Vec<Component> = Vec::new();
    for (lo, hi, j) in spans {
        match out.last_mut() {
            Some(c) if lo < c.run_hi => {
                c.run_hi = c.run_hi.max(hi);
                c.jobs.push(j);
            }
            _ => out.push(Component {
                run_lo: lo,
                run_hi: hi,
                jobs: vec![j],
            }),
        }
    }
    for c in &mut out {
        c.jobs.sort_unstable();
    }
    out
}

/// One component's solved block: per-run `Y` over `[run_lo, run_hi)` plus
/// the exact objective contribution.
struct ComponentSolution {
    run_lo: usize,
    y_runs: Vec<Rat>,
    objective: Rat,
}

/// Builds one component's LP1 block. Variable layout: the `Y` variables
/// come first (ids `0..n_runs`, one per run of the component's range),
/// then the `x_{I,j}` variables per member job in `comp.jobs` order. The
/// construction mirrors the monolithic model exactly, so the all-covering
/// component of [`DecomposeMode::Off`] reproduces the pre-sharding LP bit
/// for bit.
pub(crate) fn build_component_lp(
    inst: &Instance,
    opts: &LpOptions,
    runs: &[SlotRun],
    comp: &Component,
) -> LpProblem<Rat> {
    let crange = &runs[comp.run_lo..comp.run_hi];
    let mut lp: LpProblem<Rat> = LpProblem::new();
    // Y variables: total open mass per run, bounded by the run width — as
    // an implicit variable bound or as an explicit row per `opts.bounds`.
    let y_vars: Vec<usize> = crange
        .iter()
        .map(|run| {
            let v = lp.add_var(Rat::ONE);
            match opts.bounds {
                BoundsMode::Implicit => lp.set_upper(v, Rat::from_int(run.width())),
                BoundsMode::Rows => lp.bound_var(v, Rat::from_int(run.width())),
            }
            v
        })
        .collect();
    // x variables, only where the whole run lies inside the job's window.
    // (local ri, var) per member job; runs never straddle a window
    // boundary, so a job is feasible in a run iff it is feasible in the
    // run's first slot.
    let mut x_vars: Vec<Vec<(usize, usize)>> = vec![Vec::new(); comp.jobs.len()];
    for (cj, &j) in comp.jobs.iter().enumerate() {
        let job = inst.job(j);
        for (ri, run) in crange.iter().enumerate() {
            if job.release <= run.start && run.end <= job.deadline {
                let v = lp.add_var(Rat::ZERO);
                x_vars[cj].push((ri, v));
            }
        }
    }
    // x_{I,j} ≤ Y_I: a variable-vs-variable cap — a VUB family membership
    // under the default encoding, an explicit row under the oracle one.
    for row in &x_vars {
        for &(ri, v) in row {
            match opts.vub {
                VubMode::Implicit => lp.set_vub(v, y_vars[ri]),
                VubMode::Rows => lp.add_constraint(
                    vec![(v, Rat::ONE), (y_vars[ri], Rat::from_int(-1))],
                    Cmp::Le,
                    Rat::ZERO,
                ),
            }
        }
    }
    // Σ_j x_{I,j} ≤ g·Y_I.
    let g = Rat::from_int(inst.g() as i64);
    let mut per_run: Vec<Vec<(usize, Rat)>> = vec![Vec::new(); crange.len()];
    for row in &x_vars {
        for &(ri, v) in row {
            per_run[ri].push((v, Rat::ONE));
        }
    }
    for (ri, mut terms) in per_run.into_iter().enumerate() {
        if terms.is_empty() {
            continue;
        }
        terms.push((y_vars[ri], g.neg()));
        lp.add_constraint(terms, Cmp::Le, Rat::ZERO);
    }
    // Σ_I x_{I,j} ≥ p_j.
    for (cj, row) in x_vars.iter().enumerate() {
        let terms: Vec<(usize, Rat)> = row.iter().map(|&(_, v)| (v, Rat::ONE)).collect();
        lp.add_constraint(
            terms,
            Cmp::Ge,
            Rat::from_int(inst.job(comp.jobs[cj]).length),
        );
    }
    lp
}

/// Converts a solved component LP into its [`ComponentSolution`] block
/// (the `Y` values are the first `n_runs` variables by construction).
fn finish_component(
    comp: &Component,
    n_runs: usize,
    sol: LpSolution<Rat>,
) -> Result<ComponentSolution> {
    match sol.status {
        LpStatus::Optimal => Ok(ComponentSolution {
            run_lo: comp.run_lo,
            y_runs: sol.x[..n_runs].to_vec(),
            objective: sol.objective,
        }),
        LpStatus::Infeasible => Err(Error::Infeasible(
            "LP1 infeasible: no schedule exists".into(),
        )),
        LpStatus::Unbounded => unreachable!("LP1 objective is bounded below by 0"),
    }
}

/// One supervised component outcome: the outer `Err` is a quarantine
/// (every ladder rung failed — see [`crate::supervise`]), the inner `Err`
/// a model-level verdict (LP1 infeasibility) that aborts the whole solve.
type ComponentOutcome = std::result::Result<Result<ComponentSolution>, SolveFailure>;

/// Builds and solves one component's LP1 block with the configured
/// backend (the cold path). Revised-backend solves run through the
/// supervision ladder; the other backends keep their legacy direct path
/// (panics there are still isolated by the [`supervised_map`] fan-out).
fn solve_component(
    inst: &Instance,
    opts: &LpOptions,
    runs: &[SlotRun],
    comp: &Component,
    sharded: bool,
) -> ComponentOutcome {
    let lp = build_component_lp(inst, opts, runs, comp);
    if sharded {
        met().max_component_vars.record_max(lp.num_vars() as u64);
    }
    let sol = match opts.backend {
        LpBackend::Revised => supervised_solve(&lp, &revised_options(opts), &[])?.solution,
        _ => run_backend(&lp, opts),
    };
    Ok(finish_component(comp, comp.run_hi - comp.run_lo, sol))
}

/// A component's structural signature: run count plus, per member job (in
/// `comp.jobs` order), the relative run range its window covers. Two
/// components with equal signatures (under the same [`LpOptions`] and the
/// same instance-wide `g`) build LPs with **identical standard-form
/// structure** — same variable layout, same row sparsity pattern, same
/// VUB families — differing only in data (run widths, job lengths), which
/// is exactly what a [`BasisSnapshot`] can bridge.
pub(crate) type ComponentSignature = (usize, Vec<(usize, usize)>);

/// Computes the [`ComponentSignature`] of `comp` over `runs`.
pub(crate) fn component_signature(
    inst: &Instance,
    runs: &[SlotRun],
    comp: &Component,
) -> ComponentSignature {
    let crange = &runs[comp.run_lo..comp.run_hi];
    let spans = comp
        .jobs
        .iter()
        .map(|&j| {
            let job = inst.job(j);
            let lo = crange.partition_point(|run| run.start < job.release);
            let hi = crange.partition_point(|run| run.end <= job.deadline);
            (lo, hi)
        })
        .collect();
    (crange.len(), spans)
}

/// Per-signature snapshot pool cap of the batch planner (and of the
/// incremental solver's shape cache): small enough that a miss sweep
/// stays cheap, large enough to cover the handful of distinct optimal
/// vertices a family's siblings land on.
pub(crate) const SNAPSHOT_POOL_CAP: usize = 8;

/// Sibling wave sizes of the batch planner: the first wave per group is
/// [`FIRST_WAVE`] members, doubling up to [`MAX_WAVE`]. Waves trade a
/// little wall-clock batching latency for a growing snapshot pool: every
/// sibling in wave `k` sees the snapshots contributed by waves `< k`
/// (cold-resolved misses included), which lifts the hit rate far above
/// what the lone representative snapshot achieves — and starting small
/// fills the pool after only a handful of solves, so the bulk of the
/// group already sees a diverse candidate set. Pool growth is
/// deterministic — contributions are appended in sibling order, so pivot
/// counts are exactly reproducible run to run.
const FIRST_WAVE: usize = 4;
/// Cap on the doubling wave size (see [`FIRST_WAVE`]).
const MAX_WAVE: usize = 32;

/// The batch planner ([`WarmMode::Batch`]): groups components by
/// [`ComponentSignature`], solves one representative per group cold, and
/// warm-starts the siblings from a per-group snapshot pool seeded by the
/// representative and grown by every subsequent cold-resolved miss.
/// Returns the component solutions in `comps` order. Exactness is
/// untouched: warm or cold, every answer is certified in rationals.
fn solve_components_batched(
    inst: &Instance,
    opts: &LpOptions,
    runs: &[SlotRun],
    comps: &[Component],
) -> Vec<ComponentOutcome> {
    let ropts = revised_options(opts);
    let mut groups: BTreeMap<ComponentSignature, Vec<usize>> = BTreeMap::new();
    for (ci, comp) in comps.iter().enumerate() {
        groups
            .entry(component_signature(inst, runs, comp))
            .or_default()
            .push(ci);
    }
    let group_members: Vec<Vec<usize>> = groups.into_values().collect();
    // Phase A — representatives (the first member of each group) solve
    // cold, in parallel across groups, each under the supervision ladder.
    let rep_ids: Vec<usize> = group_members.iter().map(|g| g[0]).collect();
    type RepOutcome = (Result<ComponentSolution>, Option<BasisSnapshot>, u64);
    let rep_outs: Vec<std::result::Result<RepOutcome, SolveFailure>> =
        supervised_map(rep_ids, |ci| {
            let comp = &comps[ci];
            let lp = build_component_lp(inst, opts, runs, comp);
            met().max_component_vars.record_max(lp.num_vars() as u64);
            let sr = supervised_solve(&lp, &ropts, &[])?;
            let pivots = sr.stats.pivots;
            Ok((
                finish_component(comp, comp.run_hi - comp.run_lo, sr.solution),
                sr.snapshot,
                pivots,
            ))
        });
    let mut out: Vec<Option<ComponentOutcome>> = (0..comps.len()).map(|_| None).collect();
    // Phase B — siblings, in parallel waves per group. Waves across groups
    // run in one fan-out so small groups don't serialize the sweep. A
    // quarantined representative leaves its group's pool empty — the
    // siblings still solve (cold, supervised), only the warm seeding is
    // lost.
    let mut pools: Vec<(Vec<BasisSnapshot>, u64)> = Vec::with_capacity(group_members.len());
    for (members, rep) in group_members.iter().zip(rep_outs) {
        let mut pool = Vec::new();
        let mut pivots = 0;
        out[members[0]] = Some(match rep {
            Ok((sol, snap, rep_pivots)) => {
                pool.extend(snap);
                pivots = rep_pivots;
                Ok(sol)
            }
            Err(f) => Err(f),
        });
        pools.push((pool, pivots));
    }
    let mut offset = 1usize; // member index within each group
    let mut wave_len = FIRST_WAVE;
    loop {
        // One wave: up to `wave_len` further members of every group.
        let mut batch: Vec<(usize, usize)> = Vec::new(); // (comp idx, group idx)
        for (gi, members) in group_members.iter().enumerate() {
            for &ci in members.iter().skip(offset).take(wave_len) {
                batch.push((ci, gi));
            }
        }
        if batch.is_empty() {
            break;
        }
        let pools_ref = &pools;
        // Per sibling: its solved block and — for misses — the snapshot it
        // contributes to the pool.
        type SiblingOutcome = (Result<ComponentSolution>, Option<BasisSnapshot>);
        let wave_outs: Vec<std::result::Result<SiblingOutcome, SolveFailure>> =
            supervised_map(batch.clone(), |(ci, gi)| {
                let comp = &comps[ci];
                let lp = build_component_lp(inst, opts, runs, comp);
                met().max_component_vars.record_max(lp.num_vars() as u64);
                let (pool, rep_pivots) = &pools_ref[gi];
                let sr = supervised_solve(&lp, &ropts, pool)?;
                // An empty pool (e.g. the representative fell back to the
                // dense exact solver) means the sibling was never *offered*
                // a snapshot — don't count a phantom attempt.
                if !pool.is_empty() {
                    record_warm_attempt(sr.warm_hit, *rep_pivots, sr.stats.pivots);
                }
                let contribute = if sr.warm_hit { None } else { sr.snapshot };
                Ok((
                    finish_component(comp, comp.run_hi - comp.run_lo, sr.solution),
                    contribute,
                ))
            });
        for ((ci, gi), res) in batch.into_iter().zip(wave_outs) {
            out[ci] = Some(match res {
                Ok((sol, contribute)) => {
                    if let Some(s) = contribute {
                        let pool = &mut pools[gi].0;
                        if pool.len() < SNAPSHOT_POOL_CAP {
                            pool.push(s);
                        }
                    }
                    Ok(sol)
                }
                Err(f) => Err(f),
            });
        }
        offset += wave_len;
        wave_len = (wave_len * 2).min(MAX_WAVE);
    }
    out.into_iter()
        .map(|s| s.expect("every component solved"))
        .collect()
}

/// Builds and solves `LP1` for `inst` with the default options
/// (coalesced super-slots, implicit bounds, bounded revised backend,
/// component sharding).
pub fn solve_active_lp(inst: &Instance) -> Result<ActiveLp> {
    solve_active_lp_with(inst, &LpOptions::default())
}

/// Builds and solves `LP1` for `inst` under explicit [`LpOptions`]. Every
/// configuration returns the same exact objective; `y` may differ between
/// alternate LP optima.
///
/// Under [`DecomposeMode::Auto`] a disconnected instance is sharded into
/// per-component sub-LPs fanned through [`abt_core::supervised_map`]; the
/// blocks share no variables or rows, so the stitched objective — an
/// exact rational sum — equals the monolithic optimum bit for bit.
///
/// This is the legacy, [`Error`]-typed surface: a quarantined partial
/// result (possible only under fault injection or solve budgets) is
/// flattened into [`Error::Quarantined`]. Callers that keep serving the
/// healthy components use [`try_solve_active_lp_with`].
pub fn solve_active_lp_with(inst: &Instance, opts: &LpOptions) -> Result<ActiveLp> {
    try_solve_active_lp_with(inst, opts).map_err(Error::from)
}

/// The fallible-solve surface of [`solve_active_lp_with`]: identical
/// behaviour and results, but a sharded solve whose supervision ladder
/// quarantined some components returns [`SolveError::Partial`] carrying
/// the exact objectives of every healthy component instead of discarding
/// them.
pub fn try_solve_active_lp_with(
    inst: &Instance,
    opts: &LpOptions,
) -> std::result::Result<ActiveLp, SolveError> {
    let (slots, runs, comps) = {
        let mut span = abt_core::obs_span!("solve.decompose");
        let slots = horizon_slots(inst);
        let runs = slot_runs(inst, opts.coalesce);
        debug_assert_eq!(
            runs.iter().map(SlotRun::width).sum::<i64>(),
            slots.len() as i64
        );
        let comps = components(inst, &runs, opts.decompose);
        span.field("runs", runs.len());
        span.field("components", comps.len());
        (slots, runs, comps)
    };
    let sharded = comps.len() > 1;
    if sharded {
        met().sharded_solves.inc();
        met().components.add(comps.len() as u64);
    }
    // Warm batching applies to sharded solves on the revised backend; the
    // other backends have no warm entry point and solve cold.
    let batch = sharded && opts.warm == WarmMode::Batch && opts.backend == LpBackend::Revised;
    let solved: Vec<ComponentOutcome> = if batch {
        solve_components_batched(inst, opts, &runs, &comps)
    } else if sharded {
        // The outer `supervised_map` additionally isolates panics raised
        // *outside* the ladder (e.g. while building the component LP).
        supervised_map((0..comps.len()).collect::<Vec<_>>(), |ci| {
            solve_component(inst, opts, &runs, &comps[ci], true)
        })
    } else {
        comps
            .iter()
            .map(|comp| solve_component(inst, opts, &runs, comp, false))
            .collect()
    };
    // Stitch: per-run Y values land back on their global run index (runs
    // outside every component keep Y = 0), objectives sum exactly;
    // quarantined components are collected into the partial result.
    let _stitch = abt_core::obs_span!("solve.stitch");
    let mut y_runs = vec![Rat::ZERO; runs.len()];
    let mut objective = Rat::ZERO;
    let mut healthy: Vec<(usize, Rat)> = Vec::new();
    let mut quarantined: Vec<QuarantinedComponent> = Vec::new();
    for (ci, res) in solved.into_iter().enumerate() {
        match res {
            Ok(Ok(cs)) => {
                for (k, val) in cs.y_runs.iter().enumerate() {
                    y_runs[cs.run_lo + k] = *val;
                }
                objective = objective.add(&cs.objective);
                healthy.push((ci, cs.objective));
            }
            Ok(Err(e)) => return Err(SolveError::Model(e)),
            Err(f) => {
                record_quarantine();
                quarantined.push(QuarantinedComponent {
                    jobs: comps[ci].jobs.clone(),
                    failure: f,
                });
            }
        }
    }
    if !quarantined.is_empty() {
        return Err(SolveError::Partial(PartialSolve {
            healthy_objective: objective,
            healthy,
            quarantined,
        }));
    }
    let y = disaggregate(&runs, &y_runs);
    debug_assert_eq!(y.len(), slots.len());
    Ok(ActiveLp {
        slots,
        y,
        objective,
    })
}

/// Uniform exact disaggregation of per-run `Y` mass back to per-slot `y`
/// (`y_t = Y_I / w_I` on every slot of run `I`).
pub(crate) fn disaggregate(runs: &[SlotRun], y_runs: &[Rat]) -> Vec<Rat> {
    let total: i64 = runs.iter().map(SlotRun::width).sum();
    let mut y: Vec<Rat> = Vec::with_capacity(total as usize);
    for (ri, run) in runs.iter().enumerate() {
        let share = y_runs[ri].div(&Rat::from_int(run.width()));
        for _ in 0..run.width() {
            y.push(share);
        }
    }
    y
}

/// Checks whether a *fractional* assignment exists for all jobs given fixed
/// slot openings `y` (the feasibility system `LP2` of §3.1). Used to
/// validate the right-shifting lemma in tests. Solved with the bounded
/// revised backend — the `x ≤ y_t` caps are constant here (the `y` are
/// fixed), so they become implicit bounds and the model has no bound rows
/// at all.
pub fn fractional_feasible(inst: &Instance, slots: &[Time], y: &[Rat]) -> bool {
    assert_eq!(slots.len(), y.len());
    let mut lp: LpProblem<Rat> = LpProblem::new();
    let mut x_vars: Vec<Vec<(usize, usize)>> = vec![Vec::new(); inst.len()];
    for j in 0..inst.len() {
        for (si, &t) in slots.iter().enumerate() {
            if job_feasible_in_slot(inst, j, t) && y[si].signum() > 0 {
                let v = lp.add_var(Rat::ZERO);
                x_vars[j].push((si, v));
                lp.set_upper(v, y[si]); // x ≤ y, implicitly
            }
        }
    }
    let g = Rat::from_int(inst.g() as i64);
    for (si, yt) in y.iter().enumerate() {
        let terms: Vec<(usize, Rat)> = x_vars
            .iter()
            .flat_map(|row| {
                row.iter()
                    .filter(|&&(s, _)| s == si)
                    .map(|&(_, v)| (v, Rat::ONE))
            })
            .collect();
        if !terms.is_empty() {
            lp.add_constraint(terms, Cmp::Le, g.mul(yt));
        }
    }
    for (j, row) in x_vars.iter().enumerate() {
        let terms: Vec<(usize, Rat)> = row.iter().map(|&(_, v)| (v, Rat::ONE)).collect();
        lp.add_constraint(terms, Cmp::Ge, Rat::from_int(inst.job(j).length));
    }
    let sr = supervised_solve(&lp, &RevisedOptions::default(), &[])
        .unwrap_or_else(|f| panic!("feasibility oracle quarantined: {f}"));
    matches!(sr.solution.status, LpStatus::Optimal)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A grid over backends × bound encodings × VUB encodings ×
    /// decomposition × warm batching (plus both model shapes).
    fn all_options() -> [LpOptions; 12] {
        [
            LpOptions::seed_exact(),
            LpOptions {
                backend: LpBackend::Exact,
                coalesce: true,
                bounds: BoundsMode::Implicit,
                ..LpOptions::default()
            },
            LpOptions {
                backend: LpBackend::Hybrid,
                coalesce: false,
                bounds: BoundsMode::Implicit,
                vub: VubMode::Rows,
                ..LpOptions::default()
            },
            LpOptions::pr1_hybrid(),
            LpOptions {
                backend: LpBackend::Revised,
                coalesce: true,
                bounds: BoundsMode::Rows,
                vub: VubMode::Rows,
                ..LpOptions::default()
            },
            LpOptions::pr2_revised_bounds(),
            LpOptions::pr3_monolithic(),
            LpOptions {
                // VUB families over explicit bound rows.
                backend: LpBackend::Revised,
                coalesce: true,
                bounds: BoundsMode::Rows,
                vub: VubMode::Implicit,
                ..LpOptions::default()
            },
            LpOptions {
                // The default model under full Dantzig pricing.
                pricing_window: 0,
                ..LpOptions::default()
            },
            LpOptions {
                // Sharding on the per-slot (uncoalesced) model.
                coalesce: false,
                ..LpOptions::default()
            },
            LpOptions::warm_batched(),
            LpOptions::default(),
        ]
    }

    #[test]
    fn lp_lower_bounds_integral_opt() {
        let inst = Instance::from_triples([(0, 4, 2), (1, 3, 2)], 2).unwrap();
        let lp = solve_active_lp(&inst).unwrap();
        // Integral OPT is 2; LP must be ≤ 2 and ≥ P/g = 2.
        assert_eq!(lp.objective, Rat::from_int(2));
    }

    #[test]
    fn lp_detects_infeasible() {
        let inst = Instance::from_triples([(0, 1, 1), (0, 1, 1)], 1).unwrap();
        assert!(matches!(solve_active_lp(&inst), Err(Error::Infeasible(_))));
        for opts in all_options() {
            assert!(matches!(
                solve_active_lp_with(&inst, &opts),
                Err(Error::Infeasible(_))
            ));
        }
    }

    #[test]
    fn integrality_gap_instance_g2() {
        // §3.5 with g = 2: two pairs of adjacent slots, each with g+1 = 3
        // exclusive jobs. LP optimum = g + 1 = 3; integral OPT = 2g = 4.
        let g = 2usize;
        let mut triples = Vec::new();
        for pair in 0..g as i64 {
            let a = 2 * pair; // slots (a, a+2] = {a+1, a+2}
            for _ in 0..=g {
                triples.push((a, a + 2, 1i64));
            }
        }
        let inst = Instance::from_triples(triples, g).unwrap();
        let lp = solve_active_lp(&inst).unwrap();
        assert_eq!(lp.objective, Rat::from_int(g as i64 + 1));
    }

    #[test]
    fn y_respects_bounds() {
        let inst = Instance::from_triples([(0, 3, 2), (0, 3, 1)], 1).unwrap();
        let lp = solve_active_lp(&inst).unwrap();
        for v in &lp.y {
            assert!(v.signum() >= 0 && *v <= Rat::ONE);
        }
        assert_eq!(lp.objective, Rat::from_int(3));
    }

    #[test]
    fn all_configurations_agree_on_objective() {
        // The tentpole invariant: coalescing, the bound encoding, and the
        // backend change the model size and the pivot arithmetic, never
        // the exact optimum.
        let cases = [
            Instance::from_triples([(0, 4, 2), (1, 3, 2)], 2).unwrap(),
            Instance::from_triples([(0, 3, 1), (1, 4, 2), (2, 6, 3)], 2).unwrap(),
            Instance::from_triples([(0, 10, 4)], 1).unwrap(),
            Instance::from_triples([(0, 6, 2), (3, 8, 4), (0, 2, 2), (4, 12, 3)], 3).unwrap(),
            Instance::from_triples([(0, 20, 3), (5, 25, 4), (10, 30, 2)], 2).unwrap(),
        ];
        for inst in &cases {
            let reference = solve_active_lp_with(inst, &LpOptions::seed_exact())
                .unwrap()
                .objective;
            for opts in all_options() {
                let lp = solve_active_lp_with(inst, &opts).unwrap();
                assert_eq!(lp.objective, reference, "{opts:?} on {inst:?}");
                // Disaggregated y stays within the per-slot bounds and sums
                // exactly to the objective.
                let mut sum = Rat::ZERO;
                for v in &lp.y {
                    assert!(v.signum() >= 0 && *v <= Rat::ONE, "{opts:?}");
                    sum = sum.add(v);
                }
                assert_eq!(sum, reference, "{opts:?}");
            }
        }
    }

    #[test]
    fn degenerate_zero_slack_and_single_run_instances_agree() {
        // Satellite coverage: (a) all-zero window slack — every x is
        // forced, most LP rows are tight; (b) a single super-slot — all
        // jobs share one window, so the coalesced model has exactly one
        // run and the bound `Y ≤ w` is the only capacity on it.
        let zero_slack =
            Instance::from_triples([(0, 3, 3), (1, 4, 3), (2, 5, 3), (0, 2, 2)], 3).unwrap();
        let single_run =
            Instance::from_triples([(0, 8, 5), (0, 8, 3), (0, 8, 4), (0, 8, 2)], 2).unwrap();
        assert_eq!(slot_runs(&single_run, true).len(), 1);
        for inst in [&zero_slack, &single_run] {
            let reference = solve_active_lp_with(inst, &LpOptions::seed_exact())
                .unwrap()
                .objective;
            for opts in all_options() {
                let lp = solve_active_lp_with(inst, &opts).unwrap();
                assert_eq!(lp.objective, reference, "{opts:?} on {inst:?}");
            }
        }
    }

    #[test]
    fn coalescing_shrinks_long_gaps() {
        // Two short jobs separated by a huge idle stretch: the coalesced
        // model must stay tiny while the per-slot horizon is 10 000 slots.
        let inst = Instance::from_triples([(0, 3, 2), (9_997, 10_000, 2)], 1).unwrap();
        let runs = slot_runs(&inst, true);
        assert!(runs.len() <= 4, "got {} runs", runs.len());
        let lp = solve_active_lp(&inst).unwrap();
        assert_eq!(lp.objective, Rat::from_int(4));
        assert_eq!(lp.slots.len(), 10_000);
    }

    #[test]
    fn telemetry_counts_solves() {
        let before = lp_telemetry();
        let inst = Instance::from_triples([(0, 4, 2), (1, 3, 2)], 2).unwrap();
        solve_active_lp(&inst).unwrap();
        let after = lp_telemetry();
        let d = after.delta(&before);
        assert!(d.solves >= 1);
        assert!(after.fallbacks <= after.solves);
        // The revised backend did *some* work and certified it exactly.
        assert!(d.pivots + d.bound_flips >= 1);
        assert!(d.certify_nanos >= 1);
    }

    #[test]
    fn telemetry_is_accurate_under_concurrent_solves() {
        // Fire k independent LP1 solves from k threads and check the
        // atomic counters account for every one of them. Other tests may
        // solve concurrently in the same process, so the delta is a lower
        // bound, never an exact count.
        let k = 8u64;
        let instances: Vec<Instance> = (0..k as i64)
            .map(|i| Instance::from_triples([(0, 4 + i, 2), (1, 3 + i, 2)], 2).unwrap())
            .collect();
        let before = lp_telemetry();
        let objectives: Vec<Rat> = std::thread::scope(|s| {
            let handles: Vec<_> = instances
                .iter()
                .map(|inst| s.spawn(move || solve_active_lp(inst).unwrap().objective))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let d = lp_telemetry().delta(&before);
        assert_eq!(objectives.len(), k as usize);
        assert!(
            d.solves >= k,
            "expected ≥ {k} solves recorded, got {}",
            d.solves
        );
        assert!(d.pivots + d.bound_flips >= k, "every solve iterates");
        // Sequential re-solve of the same instances must agree exactly
        // with the concurrent results (no shared-state interference).
        for (inst, obj) in instances.iter().zip(&objectives) {
            assert_eq!(solve_active_lp(inst).unwrap().objective, *obj);
        }
    }

    /// The Auto-vs-Off differential pair for one instance: identical exact
    /// objectives and a valid disaggregated `y` on both sides.
    fn assert_auto_matches_off(inst: &Instance) -> (Rat, Rat) {
        let auto = solve_active_lp_with(inst, &LpOptions::default()).unwrap();
        let off = solve_active_lp_with(inst, &LpOptions::pr3_monolithic()).unwrap();
        assert_eq!(auto.objective, off.objective);
        for lp in [&auto, &off] {
            let mut sum = Rat::ZERO;
            for v in &lp.y {
                assert!(v.signum() >= 0 && *v <= Rat::ONE);
                sum = sum.add(v);
            }
            assert_eq!(sum, lp.objective);
        }
        (auto.objective, off.objective)
    }

    #[test]
    fn empty_instance_solves_to_zero_under_both_decompose_modes() {
        let inst = Instance::new(vec![], 3).unwrap();
        for opts in [LpOptions::default(), LpOptions::pr3_monolithic()] {
            let lp = solve_active_lp_with(&inst, &opts).unwrap();
            assert_eq!(lp.objective, Rat::ZERO);
            assert!(lp.y.is_empty());
            assert!(lp.slots.is_empty());
        }
        let runs = slot_runs(&inst, true);
        assert!(components(&inst, &runs, DecomposeMode::Auto).is_empty());
    }

    #[test]
    fn disconnected_instance_shards_and_matches_the_monolith() {
        // Three well-separated clusters; windows never overlap across the
        // gaps, so the interval graph has exactly three components.
        let inst = Instance::from_triples(
            [
                (0, 4, 2),
                (1, 3, 2),
                (100, 104, 3),
                (101, 105, 2),
                (200, 203, 1),
            ],
            2,
        )
        .unwrap();
        let runs = slot_runs(&inst, true);
        let comps = components(&inst, &runs, DecomposeMode::Auto);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0].jobs, vec![0, 1]);
        assert_eq!(comps[1].jobs, vec![2, 3]);
        assert_eq!(comps[2].jobs, vec![4]);
        let before = lp_telemetry();
        // The registered window sees the exact in-window high-water mark
        // even when a concurrent test has already pushed the cumulative
        // gauge higher (the delta would then be 0 by design).
        let window = component_vars_window();
        assert_auto_matches_off(&inst);
        let d = lp_telemetry().delta(&before);
        assert!(d.sharded_solves >= 1, "the Auto solve must shard");
        assert!(d.components >= 3, "three component sub-LPs must be solved");
        assert!(window.value() >= 1);
        // Gap runs stay closed: every slot in (4, 100] has y = 0.
        let auto = solve_active_lp(&inst).unwrap();
        for (slot, y) in auto.slots.iter().zip(&auto.y) {
            if *slot > 4 && *slot <= 100 {
                assert_eq!(*y, Rat::ZERO, "slot {slot} lies in the gap");
            }
        }
    }

    #[test]
    fn all_singleton_components_match_the_monolith() {
        // Every job is alone in its window: n singleton components.
        let triples: Vec<(i64, i64, i64)> = (0..12).map(|i| (10 * i, 10 * i + 3, 2)).collect();
        let inst = Instance::from_triples(triples, 2).unwrap();
        let runs = slot_runs(&inst, true);
        let comps = components(&inst, &runs, DecomposeMode::Auto);
        assert_eq!(comps.len(), 12);
        assert!(comps.iter().all(|c| c.jobs.len() == 1));
        let (auto_obj, _) = assert_auto_matches_off(&inst);
        assert_eq!(auto_obj, Rat::from_int(24));
    }

    #[test]
    fn connected_instance_is_never_sharded() {
        // A chain of overlapping windows: one component, so Auto takes the
        // monolithic path. (No exact-zero telemetry assertions here: the
        // sharding counters are process-global atomics, and sibling tests
        // solve sharded instances concurrently under the default parallel
        // test harness — the disconnected test's `≥` checks cover the
        // counters.)
        let inst =
            Instance::from_triples([(0, 4, 2), (2, 8, 3), (6, 12, 2), (10, 14, 2)], 2).unwrap();
        let runs = slot_runs(&inst, true);
        assert_eq!(components(&inst, &runs, DecomposeMode::Auto).len(), 1);
        assert_auto_matches_off(&inst);
    }

    #[test]
    fn touching_windows_are_separate_components() {
        // d_1 = r_2: the windows share an event point but no slot, so the
        // jobs share no LP variable and must split.
        let inst = Instance::from_triples([(0, 3, 2), (3, 6, 2)], 1).unwrap();
        let runs = slot_runs(&inst, true);
        assert_eq!(components(&inst, &runs, DecomposeMode::Auto).len(), 2);
        assert_auto_matches_off(&inst);
    }

    #[test]
    fn off_mode_reproduces_the_monolithic_component() {
        // Off always yields the single all-covering component, even on a
        // shardable instance.
        let inst = Instance::from_triples([(0, 3, 1), (50, 53, 1)], 1).unwrap();
        let runs = slot_runs(&inst, true);
        let comps = components(&inst, &runs, DecomposeMode::Off);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].run_lo, 0);
        assert_eq!(comps[0].run_hi, runs.len());
        assert_eq!(comps[0].jobs, vec![0, 1]);
    }

    #[test]
    fn warm_batched_matches_cold_and_records_telemetry() {
        // Six identically-shaped singleton stripes with distinct lengths:
        // the batch planner groups them into one signature group, solves
        // the first cold, and warm-starts the other five.
        let triples: Vec<(i64, i64, i64)> =
            (0..6).map(|k| (10 * k, 10 * k + 6, 1 + k % 4)).collect();
        let inst = Instance::from_triples(triples, 2).unwrap();
        let before = lp_telemetry();
        let warm = solve_active_lp_with(&inst, &LpOptions::warm_batched()).unwrap();
        let d = lp_telemetry().delta(&before);
        let cold = solve_active_lp_with(&inst, &LpOptions::default()).unwrap();
        assert_eq!(warm.objective, cold.objective, "warm ≡ cold, bit for bit");
        assert_eq!(warm.y.len(), cold.y.len());
        assert!(
            d.warm_attempts >= 5,
            "five siblings attempted, got {}",
            d.warm_attempts
        );
        assert!(d.warm_hits >= 1, "identically-shaped siblings must hit");
        assert!(d.warm_hits <= d.warm_attempts);
    }

    #[test]
    fn warm_batched_on_connected_instance_is_plain_monolithic() {
        // One component: batching never engages (nothing to group), and
        // the answer matches the default path exactly. (No exact-zero
        // telemetry assertions: the counters are process-global atomics
        // and sibling tests solve sharded instances concurrently.)
        let inst = Instance::from_triples([(0, 4, 2), (2, 8, 3), (6, 12, 2)], 2).unwrap();
        let warm = solve_active_lp_with(&inst, &LpOptions::warm_batched()).unwrap();
        let cold = solve_active_lp_with(&inst, &LpOptions::default()).unwrap();
        assert_eq!(warm.objective, cold.objective);
    }

    #[test]
    fn component_signatures_group_structural_twins() {
        // Two stripes with the same window layout but different lengths
        // share a signature; a third with a different layout does not.
        let inst = Instance::from_triples(
            [(0, 6, 2), (1, 5, 1), (20, 26, 4), (21, 25, 2), (40, 43, 1)],
            2,
        )
        .unwrap();
        let runs = slot_runs(&inst, true);
        let comps = components(&inst, &runs, DecomposeMode::Auto);
        assert_eq!(comps.len(), 3);
        let sigs: Vec<_> = comps
            .iter()
            .map(|c| component_signature(&inst, &runs, c))
            .collect();
        assert_eq!(sigs[0], sigs[1], "structural twins share a signature");
        assert_ne!(sigs[0], sigs[2]);
    }

    #[test]
    fn starved_pivot_budget_demotes_but_answers_exactly() {
        // A one-pivot budget starves the cold revised rung on any
        // non-trivial component; the ladder must demote to the dense tiers
        // and still return the bit-identical exact objective, recording
        // the trip. (Lower-bound assertions only: counters are
        // process-global and other tests solve concurrently.)
        let inst = Instance::from_triples([(0, 6, 3), (1, 5, 2), (2, 6, 3)], 2).unwrap();
        let reference = solve_active_lp_with(&inst, &LpOptions::default()).unwrap();
        let starved = LpOptions {
            pivot_budget: 1,
            ..LpOptions::default()
        };
        let before = lp_telemetry();
        let lp = solve_active_lp_with(&inst, &starved).unwrap();
        let d = lp_telemetry().delta(&before);
        assert_eq!(lp.objective, reference.objective);
        assert!(d.budget_trips >= 1, "the 1-pivot budget must trip");
        assert!(d.demotions >= 1, "the trip must demote down the ladder");
    }

    #[test]
    fn fractional_feasibility_oracle() {
        let inst = Instance::from_triples([(0, 2, 1), (0, 2, 1)], 1).unwrap();
        let slots = vec![1, 2];
        assert!(fractional_feasible(&inst, &slots, &[Rat::ONE, Rat::ONE]));
        assert!(!fractional_feasible(
            &inst,
            &slots,
            &[Rat::ONE, Rat::new(1, 2)]
        ));
        // Fractional sharing: y = (1, 1/2) supports total mass 1.5 with g=2...
        let inst2 = inst.with_g(2).unwrap();
        assert!(fractional_feasible(
            &inst2,
            &slots,
            &[Rat::ONE, Rat::new(1, 2)]
        ));
    }
}

//! Right-shifting the optimal LP solution (§3.1, Fig. 4).
//!
//! The optimal `y` mass between consecutive distinct deadlines is pushed to
//! the latest slots of that segment: with `Y_i = Σ y_t` over segment `i`,
//! the last `⌊Y_i⌋` slots become *fully open* (`y = 1`), the slot
//! `t_{d_i} − ⌊Y_i⌋` carries the fractional remainder (*half open* if
//! `≥ ½`, *barely open* if `< ½`), and everything earlier closes. Lemma 3:
//! the result is still fractionally feasible with unchanged cost.

use crate::lp_model::ActiveLp;
use abt_core::{Instance, JobId, Time};
use abt_lp::Rat;

/// One deadline segment of the right-shifted solution.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Exclusive left end: the previous distinct deadline (or the slot just
    /// before the earliest positive-`y` slot for the first segment).
    pub start: Time,
    /// The deadline `t_{d_i}` (inclusive right end).
    pub deadline: Time,
    /// `Y_i`: total fractional mass in `(start, deadline]`.
    pub y_sum: Rat,
    /// Jobs whose deadline equals `deadline` (the set `J_i`).
    pub jobs: Vec<JobId>,
}

/// The right-shifted LP solution.
#[derive(Debug, Clone)]
pub struct RightShifted {
    /// Segments in increasing deadline order; their `y_sum`s add up to the
    /// LP objective.
    pub segments: Vec<Segment>,
    /// Horizon slots (ascending), parallel to `shifted_y`.
    pub slots: Vec<Time>,
    /// The right-shifted `y` values (Fig. 4's `LP2`).
    pub shifted_y: Vec<Rat>,
}

/// Computes the right-shifted structure from an optimal LP solution.
pub fn right_shift(inst: &Instance, lp: &ActiveLp) -> RightShifted {
    let slots = &lp.slots;
    let first_slot = slots.first().copied().unwrap_or(0);

    // Distinct deadlines, ascending, with their job sets.
    let mut deadlines: Vec<Time> = inst.jobs().iter().map(|j| j.deadline).collect();
    deadlines.sort_unstable();
    deadlines.dedup();

    // The dummy boundary t_{d_0}: just before the earliest positive-y slot
    // (clamped to the horizon start).
    let earliest_positive = slots
        .iter()
        .zip(&lp.y)
        .find(|(_, y)| y.signum() > 0)
        .map(|(&t, _)| t)
        .unwrap_or(first_slot);
    let t0 = (earliest_positive - 1).max(first_slot - 1);

    let mut segments = Vec::with_capacity(deadlines.len());
    let mut prev = t0;
    for &d in &deadlines {
        if d <= prev {
            // Deadline precedes all fractional mass; its segment is empty of
            // mass but must still exist so its jobs are processed.
            segments.push(Segment {
                start: d - 1,
                deadline: d,
                y_sum: Rat::ZERO,
                jobs: vec![],
            });
            continue;
        }
        let mut y_sum = Rat::ZERO;
        for (i, &t) in slots.iter().enumerate() {
            if t > prev && t <= d {
                y_sum = y_sum.add(&lp.y[i]);
            }
        }
        segments.push(Segment {
            start: prev,
            deadline: d,
            y_sum,
            jobs: vec![],
        });
        prev = d;
    }
    for (id, j) in inst.jobs().iter().enumerate() {
        let seg = segments
            .iter_mut()
            .find(|s| s.deadline == j.deadline)
            .expect("every job deadline has a segment");
        seg.jobs.push(id);
    }

    // Materialize the shifted y vector.
    let mut shifted_y = vec![Rat::ZERO; slots.len()];
    let idx_of = |t: Time| -> Option<usize> { slots.binary_search(&t).ok() };
    for seg in &segments {
        let floor = seg.y_sum.floor() as i64;
        let frac = seg.y_sum.fract();
        for k in 0..floor {
            if let Some(i) = idx_of(seg.deadline - k) {
                shifted_y[i] = Rat::ONE;
            }
        }
        if frac.signum() > 0 {
            if let Some(i) = idx_of(seg.deadline - floor) {
                shifted_y[i] = frac;
            }
        }
    }

    RightShifted {
        segments,
        slots: slots.clone(),
        shifted_y,
    }
}

/// Total `Σ_i Y_i` (equals the LP objective; checked in tests).
pub fn total_mass(rs: &RightShifted) -> Rat {
    rs.segments
        .iter()
        .fold(Rat::ZERO, |acc, s| acc.add(&s.y_sum))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp_model::{fractional_feasible, solve_active_lp};

    fn rat(p: i64, q: i64) -> Rat {
        Rat::new(p as i128, q as i128)
    }

    #[test]
    fn segments_cover_all_mass() {
        let inst = Instance::from_triples([(0, 4, 2), (1, 3, 2), (2, 6, 1)], 2).unwrap();
        let lp = solve_active_lp(&inst).unwrap();
        let rs = right_shift(&inst, &lp);
        assert_eq!(total_mass(&rs), lp.objective);
        // Every job appears in exactly one segment.
        let total_jobs: usize = rs.segments.iter().map(|s| s.jobs.len()).sum();
        assert_eq!(total_jobs, inst.len());
    }

    #[test]
    fn shifted_structure_is_right_aligned() {
        let inst = Instance::from_triples([(0, 4, 2), (1, 3, 2), (2, 6, 1)], 2).unwrap();
        let lp = solve_active_lp(&inst).unwrap();
        let rs = right_shift(&inst, &lp);
        // Within each segment: reading right-to-left we must see ones, then
        // at most one fractional value, then zeros (Observation 1).
        for seg in &rs.segments {
            let mut state = 0; // 0 = ones, 1 = fraction seen, 2 = zeros
            for (i, &t) in rs.slots.iter().enumerate().rev() {
                if t > seg.deadline || t <= seg.start {
                    continue;
                }
                let y = rs.shifted_y[i];
                match state {
                    0 if y == Rat::ONE => {}
                    0 if y.is_zero() => state = 2,
                    0 => state = 1,
                    1 if y.is_zero() => state = 2,
                    2 if y.is_zero() => {}
                    _ => panic!("segment ending {} not right-shifted", seg.deadline),
                }
            }
        }
    }

    #[test]
    fn right_shift_preserves_fractional_feasibility() {
        // Lemma 3 on a handful of small instances.
        let cases: Vec<Instance> = vec![
            Instance::from_triples([(0, 4, 2), (1, 3, 2), (2, 6, 1)], 2).unwrap(),
            Instance::from_triples([(0, 3, 1), (0, 3, 1), (1, 5, 3), (2, 4, 1)], 2).unwrap(),
            Instance::from_triples([(0, 6, 2), (3, 8, 4), (0, 2, 2)], 3).unwrap(),
        ];
        for inst in cases {
            let lp = solve_active_lp(&inst).unwrap();
            let rs = right_shift(&inst, &lp);
            assert!(
                fractional_feasible(&inst, &rs.slots, &rs.shifted_y),
                "right-shifted solution must stay feasible (Lemma 3)"
            );
        }
    }

    #[test]
    fn figure4_shape() {
        // A hand-built check mirroring Fig. 4's mechanics: mass 2.17 in a
        // 4-slot segment becomes [_, 0.17, 1, 1].
        let inst = Instance::from_triples([(0, 4, 1)], 1).unwrap(); // shape only
        let lp = ActiveLp {
            slots: vec![1, 2, 3, 4],
            y: vec![rat(6, 10), rat(55, 100), rat(55, 100), rat(47, 100)],
            objective: rat(217, 100),
        };
        let rs = right_shift(&inst, &lp);
        assert_eq!(
            rs.shifted_y,
            vec![Rat::ZERO, rat(17, 100), Rat::ONE, Rat::ONE]
        );
        assert_eq!(rs.segments.len(), 1);
        assert_eq!(rs.segments[0].y_sum, rat(217, 100));
    }
}

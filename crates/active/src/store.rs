//! Durable solver state for the incremental path: checkpoint +
//! write-ahead journal over `abt-core::persist`, with journaled recovery,
//! checkpoint compaction, and the restart-storm guard.
//!
//! # Lifecycle
//!
//! [`IncrementalSolver::attach_store`](crate::IncrementalSolver::attach_store)
//! opens a state directory and recovers whatever it holds:
//!
//! 1. **Storm guard** — if the recovery-attempt counter has reached
//!    [`MAX_RECOVERY_ATTEMPTS`] (meaning recovery itself keeps dying
//!    before completing), the state files are moved into a `quarantined-N`
//!    subdirectory and the solver starts cold. A poisoned state file can
//!    cost warm capital, never a crash loop.
//! 2. **Checkpoint** — the framed `checkpoint.abt` is validated
//!    (checksum, version, kind) and decoded under full structural
//!    validation (job invariants, rational denominators, snapshot shapes,
//!    pool caps). *Any* drift — including a capacity `g` different from
//!    the attaching solver's — rejects the checkpoint **and** the journal
//!    (journal ops are meaningless without the base state they mutate)
//!    and rebuilds cold, recording `state_corrupt` + `recoveries`.
//! 3. **Journal tail** — records with sequence numbers past the
//!    checkpoint's are re-applied in order. A torn tail (partial final
//!    record) is the normal shape of a crash mid-append and is dropped
//!    silently; a mid-stream checksum mismatch or an op that does not
//!    apply cleanly is corruption — the checkpoint state is kept (it is
//!    self-consistent) and the journal is discarded.
//! 4. **Re-baseline** — recovery ends by writing a fresh checkpoint of
//!    the recovered state and truncating the journal, then clearing the
//!    attempt counter. Disk is again exactly one checkpoint + empty
//!    journal.
//!
//! Thereafter every mutation ([`add_job`](crate::IncrementalSolver::add_job)
//! / [`remove_job`](crate::IncrementalSolver::remove_job) /
//! [`update_window`](crate::IncrementalSolver::update_window)) appends a
//! WAL record *before* the in-memory mutation is acted on, and every
//! [`CHECKPOINT_EVERY`] ops a solve is followed by checkpoint compaction
//! (write checkpoint, truncate journal).
//!
//! # The reject-don't-trust invariant
//!
//! Decoded state is a **performance hint, never an authority**: restored
//! cache blocks are revalidated against their component's shape on every
//! hit, restored snapshots go through the same install-validate-certify
//! pipeline as fresh ones, and any validation failure surfaces as
//! [`SolveFailure::StateCorrupt`] absorbed by a cold re-solve. Exactness
//! therefore never depends on the disk: a restored solver and a cold one
//! produce bit-identical objectives, always.
//!
//! An I/O error *while serving* (journal append or checkpoint write
//! failing) degrades the store — persistence stops, the solver keeps
//! serving from memory — because a scheduling service must not fail
//! writes it already acknowledged. [`SolveStateStore::degraded`] reports
//! it.

use crate::incremental::{CachedBlock, ContentKey, ShapeEntry};
use crate::lp_model::{
    record_persist_restores, record_recovery, record_state_corrupt, ComponentSignature,
    SNAPSHOT_POOL_CAP,
};
use abt_core::persist::{self, Dec, Enc, Journal, PersistError, StateDir};
use abt_core::{BudgetKind, Job, SolveFailure, Time};
use abt_lp::{BasisSnapshot, Rat};
use std::collections::HashMap;
use std::path::Path;

/// Frame kind of `checkpoint.abt`.
pub const KIND_CHECKPOINT: u16 = 1;
/// Frame kind of `journal.abt`.
pub const KIND_JOURNAL: u16 = 2;

/// Checkpoint file name inside a state directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.abt";
/// Journal file name inside a state directory.
pub const JOURNAL_FILE: &str = "journal.abt";

/// Recovery attempts after which the storm guard moves the state aside
/// and starts cold instead of crash-looping.
pub const MAX_RECOVERY_ATTEMPTS: u32 = 3;

/// Journal ops between checkpoint compactions.
pub const CHECKPOINT_EVERY: u64 = 16;

/// What [`crate::IncrementalSolver::attach_store`] recovered.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Live jobs in the solver after recovery.
    pub resumed_jobs: usize,
    /// Journal records re-applied over the checkpoint.
    pub replayed_ops: usize,
    /// Content-cache blocks restored from the checkpoint.
    pub restored_blocks: usize,
    /// Basis snapshots restored from the checkpoint.
    pub restored_snapshots: usize,
    /// Corruption detections absorbed during this recovery (each also
    /// recorded in the process-wide telemetry).
    pub corruption_events: usize,
    /// Whether the restart-storm guard quarantined the state directory.
    pub storm_quarantined: bool,
    /// Whether the solver starts with no persisted state at all (a fresh
    /// directory, or everything discarded as corrupt / quarantined).
    pub cold_start: bool,
}

/// One write-ahead-journal operation (mirrors the mutating surface of
/// [`crate::IncrementalSolver`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum JournalOp {
    /// `add_job`: `id` is the handle the solver will assign (always the
    /// next slot index, which replay verifies).
    Add {
        /// Handle assigned to the job.
        id: usize,
        /// The job added.
        job: Job,
    },
    /// `remove_job`.
    Remove {
        /// Handle removed.
        id: usize,
    },
    /// `update_window`: the job keeps its length.
    Edit {
        /// Handle edited.
        id: usize,
        /// New release.
        release: Time,
        /// New deadline.
        deadline: Time,
    },
}

impl JournalOp {
    fn encode(&self, seq: u64) -> Vec<u8> {
        let mut e = Enc::new();
        e.put_u64(seq);
        match self {
            JournalOp::Add { id, job } => {
                e.put_u8(1);
                e.put_usize(*id);
                e.put_i64(job.release);
                e.put_i64(job.deadline);
                e.put_i64(job.length);
            }
            JournalOp::Remove { id } => {
                e.put_u8(2);
                e.put_usize(*id);
            }
            JournalOp::Edit {
                id,
                release,
                deadline,
            } => {
                e.put_u8(3);
                e.put_usize(*id);
                e.put_i64(*release);
                e.put_i64(*deadline);
            }
        }
        e.into_bytes()
    }

    fn decode(bytes: &[u8]) -> Result<(u64, JournalOp), PersistError> {
        let mut d = Dec::new(bytes);
        let seq = d.u64()?;
        let op = match d.u8()? {
            1 => {
                let id = d.usize()?;
                let (r, dl, p) = (d.i64()?, d.i64()?, d.i64()?);
                let job = Job::try_new(r, dl, p).ok_or_else(|| {
                    PersistError::Malformed(format!("journal add of invalid job [{r}, {dl}) × {p}"))
                })?;
                JournalOp::Add { id, job }
            }
            2 => JournalOp::Remove { id: d.usize()? },
            3 => JournalOp::Edit {
                id: d.usize()?,
                release: d.i64()?,
                deadline: d.i64()?,
            },
            t => {
                return Err(PersistError::Malformed(format!(
                    "unknown journal op tag {t}"
                )))
            }
        };
        d.finish()?;
        Ok((seq, op))
    }
}

/// The decoded contents of a checkpoint.
pub(crate) struct PersistedState {
    /// Capacity the state was taken at (must match the attaching solver).
    pub(crate) g: usize,
    /// Last journal sequence number the checkpoint covers.
    pub(crate) seq: u64,
    /// Job slots, dead handles included (handle = index).
    pub(crate) jobs: Vec<Option<Job>>,
    /// Content-keyed cache blocks.
    pub(crate) blocks: Vec<(ContentKey, CachedBlock)>,
    /// Shape-keyed snapshot pools.
    pub(crate) shapes: Vec<(ComponentSignature, ShapeEntry)>,
    /// Quarantined content keys with their root-cause failures.
    pub(crate) quarantine: Vec<(ContentKey, SolveFailure)>,
}

fn encode_rat(e: &mut Enc, r: &Rat) {
    e.put_i128(r.numer());
    e.put_i128(r.denom());
}

fn decode_rat(d: &mut Dec<'_>) -> Result<Rat, PersistError> {
    let n = d.i128()?;
    let den = d.i128()?;
    if den <= 0 {
        return Err(PersistError::Malformed(format!(
            "rational with non-positive denominator {den}"
        )));
    }
    Ok(Rat::new(n, den))
}

fn encode_content_key(e: &mut Enc, key: &ContentKey) {
    e.put_usize(key.len());
    for &(r, d, p) in key {
        e.put_i64(r);
        e.put_i64(d);
        e.put_i64(p);
    }
}

fn decode_content_key(d: &mut Dec<'_>) -> Result<ContentKey, PersistError> {
    let n = d.count(24)?;
    let mut key = Vec::with_capacity(n);
    for _ in 0..n {
        key.push((d.i64()?, d.i64()?, d.i64()?));
    }
    Ok(key)
}

fn encode_failure(e: &mut Enc, f: &SolveFailure) {
    match f {
        SolveFailure::Panicked(msg) => {
            e.put_u8(0);
            e.put_str(msg);
        }
        SolveFailure::BudgetExceeded(k) => {
            e.put_u8(1);
            e.put_u8(match k {
                BudgetKind::Pivots => 0,
                BudgetKind::Time => 1,
                BudgetKind::Refactorizations => 2,
            });
        }
        SolveFailure::NumericalStall => e.put_u8(2),
        SolveFailure::ShapeDrift => e.put_u8(3),
        SolveFailure::Infeasible => e.put_u8(4),
        SolveFailure::StateCorrupt(msg) => {
            e.put_u8(5);
            e.put_str(msg);
        }
    }
}

fn decode_failure(d: &mut Dec<'_>) -> Result<SolveFailure, PersistError> {
    Ok(match d.u8()? {
        0 => SolveFailure::Panicked(d.str_()?),
        1 => SolveFailure::BudgetExceeded(match d.u8()? {
            0 => BudgetKind::Pivots,
            1 => BudgetKind::Time,
            2 => BudgetKind::Refactorizations,
            b => {
                return Err(PersistError::Malformed(format!("unknown budget kind {b}")));
            }
        }),
        2 => SolveFailure::NumericalStall,
        3 => SolveFailure::ShapeDrift,
        4 => SolveFailure::Infeasible,
        5 => SolveFailure::StateCorrupt(d.str_()?),
        t => return Err(PersistError::Malformed(format!("unknown failure tag {t}"))),
    })
}

/// Serializes the solver state into a checkpoint payload. The inverse of
/// [`decode_state`].
pub(crate) fn encode_state(
    g: usize,
    seq: u64,
    jobs: &[Option<Job>],
    blocks: &HashMap<ContentKey, CachedBlock>,
    shapes: &HashMap<ComponentSignature, ShapeEntry>,
    quarantine: &HashMap<ContentKey, SolveFailure>,
) -> Vec<u8> {
    let mut e = Enc::new();
    e.put_usize(g);
    e.put_u64(seq);
    e.put_usize(jobs.len());
    for slot in jobs {
        match slot {
            None => e.put_u8(0),
            Some(job) => {
                e.put_u8(1);
                e.put_i64(job.release);
                e.put_i64(job.deadline);
                e.put_i64(job.length);
            }
        }
    }
    e.put_usize(blocks.len());
    for (key, block) in blocks {
        encode_content_key(&mut e, key);
        e.put_usize(block.y_runs.len());
        for y in &block.y_runs {
            encode_rat(&mut e, y);
        }
        encode_rat(&mut e, &block.objective);
    }
    e.put_usize(shapes.len());
    for ((nruns, spans), entry) in shapes {
        e.put_usize(*nruns);
        e.put_usize(spans.len());
        for &(lo, hi) in spans {
            e.put_usize(lo);
            e.put_usize(hi);
        }
        e.put_u64(entry.reference_pivots);
        e.put_usize(entry.snapshots.len());
        for snap in &entry.snapshots {
            snap.encode(&mut e);
        }
    }
    e.put_usize(quarantine.len());
    for (key, failure) in quarantine {
        encode_content_key(&mut e, key);
        encode_failure(&mut e, failure);
    }
    e.into_bytes()
}

/// Deserializes a checkpoint payload under full structural validation:
/// every job re-passes [`Job::try_new`], every rational has a positive
/// denominator, every snapshot re-passes [`BasisSnapshot::decode`]'s
/// invariants, and every count is capped by the remaining input. Any
/// deviation is a typed [`PersistError`] — never a panic, never a trusted
/// value.
pub(crate) fn decode_state(payload: &[u8]) -> Result<PersistedState, PersistError> {
    let mut d = Dec::new(payload);
    let g = d.usize()?;
    if g == 0 {
        return Err(PersistError::Malformed("checkpoint with g = 0".into()));
    }
    let seq = d.u64()?;
    let njobs = d.count(1)?;
    let mut jobs = Vec::with_capacity(njobs);
    for i in 0..njobs {
        match d.u8()? {
            0 => jobs.push(None),
            1 => {
                let (r, dl, p) = (d.i64()?, d.i64()?, d.i64()?);
                let job = Job::try_new(r, dl, p).ok_or_else(|| {
                    PersistError::Malformed(format!(
                        "checkpoint job slot {i} is invalid: [{r}, {dl}) × {p}"
                    ))
                })?;
                jobs.push(Some(job));
            }
            t => return Err(PersistError::Malformed(format!("unknown job-slot tag {t}"))),
        }
    }
    let nblocks = d.count(1)?;
    let mut blocks = Vec::with_capacity(nblocks);
    for _ in 0..nblocks {
        let key = decode_content_key(&mut d)?;
        let nruns = d.count(32)?;
        let mut y_runs = Vec::with_capacity(nruns);
        for _ in 0..nruns {
            y_runs.push(decode_rat(&mut d)?);
        }
        let objective = decode_rat(&mut d)?;
        blocks.push((key, CachedBlock { y_runs, objective }));
    }
    let nshapes = d.count(1)?;
    let mut shapes = Vec::with_capacity(nshapes);
    for _ in 0..nshapes {
        let nruns = d.usize()?;
        let nspans = d.count(16)?;
        let mut spans = Vec::with_capacity(nspans);
        for _ in 0..nspans {
            spans.push((d.usize()?, d.usize()?));
        }
        let reference_pivots = d.u64()?;
        let nsnaps = d.usize()?;
        if nsnaps > SNAPSHOT_POOL_CAP {
            return Err(PersistError::Malformed(format!(
                "snapshot pool of {nsnaps} exceeds the cap of {SNAPSHOT_POOL_CAP}"
            )));
        }
        let mut snapshots = Vec::with_capacity(nsnaps);
        for _ in 0..nsnaps {
            snapshots.push(BasisSnapshot::decode(&mut d)?);
        }
        shapes.push((
            (nruns, spans),
            ShapeEntry {
                snapshots,
                reference_pivots,
            },
        ));
    }
    let nquar = d.count(1)?;
    let mut quarantine = Vec::with_capacity(nquar);
    for _ in 0..nquar {
        let key = decode_content_key(&mut d)?;
        quarantine.push((key, decode_failure(&mut d)?));
    }
    d.finish()?;
    Ok(PersistedState {
        g,
        seq,
        jobs,
        blocks,
        shapes,
        quarantine,
    })
}

/// The attached durable-state handle of an
/// [`IncrementalSolver`](crate::IncrementalSolver): journal + checkpoint
/// lifecycle over one [`StateDir`].
pub struct SolveStateStore {
    dir: StateDir,
    journal: Option<Journal>,
    /// Last journal sequence number handed out.
    seq: u64,
    /// Sequence number the on-disk checkpoint covers.
    checkpoint_seq: u64,
    degraded: bool,
}

impl SolveStateStore {
    /// Opens `root` and recovers its state (see the module docs for the
    /// full recovery procedure). Returns the store, the recovered state
    /// (`None` on a cold start), and the recovery report. `Err` only on
    /// genuine I/O failures (permissions, disk full) — corruption is
    /// *absorbed*, not returned.
    pub(crate) fn attach(
        root: &Path,
        expected_g: usize,
    ) -> Result<(SolveStateStore, Option<PersistedState>, RecoveryReport), PersistError> {
        let dir = StateDir::open(root)?;
        let mut report = RecoveryReport::default();
        let absorb_corruption = |report: &mut RecoveryReport| {
            record_state_corrupt();
            record_recovery();
            report.corruption_events += 1;
        };
        // Storm guard: recovery itself keeps dying — stop trusting the
        // state files at all.
        if dir.recovery_attempts() >= MAX_RECOVERY_ATTEMPTS {
            dir.quarantine(&[CHECKPOINT_FILE, JOURNAL_FILE])?;
            record_recovery();
            report.storm_quarantined = true;
            report.cold_start = true;
            let journal = Journal::create(&dir.file(JOURNAL_FILE), KIND_JOURNAL)?;
            return Ok((
                SolveStateStore {
                    dir,
                    journal: Some(journal),
                    seq: 0,
                    checkpoint_seq: 0,
                    degraded: false,
                },
                None,
                report,
            ));
        }
        dir.bump_recovery_attempts()?;
        // Checkpoint: reject-on-any-drift, including a mismatched g.
        let mut state: Option<PersistedState> = None;
        let mut had_files = false;
        match persist::read_frame(&dir.file(CHECKPOINT_FILE), KIND_CHECKPOINT) {
            Ok(None) => {}
            Ok(Some(payload)) => {
                had_files = true;
                match decode_state(&payload) {
                    Ok(s) if s.g == expected_g => state = Some(s),
                    Ok(_) | Err(_) => absorb_corruption(&mut report),
                }
            }
            Err(_) => {
                had_files = true;
                absorb_corruption(&mut report);
            }
        }
        // Journal tail: only meaningful over a valid checkpoint.
        let mut replayed = 0usize;
        if let Some(s) = &mut state {
            match Journal::replay(&dir.file(JOURNAL_FILE), KIND_JOURNAL) {
                Ok(None) => {}
                Ok(Some(rep)) => {
                    let mut corrupt = false;
                    for rec in &rep.records {
                        match JournalOp::decode(rec) {
                            Ok((seq, op)) if seq > s.seq => {
                                if apply_op(&mut s.jobs, &op) {
                                    s.seq = seq;
                                    replayed += 1;
                                } else {
                                    corrupt = true;
                                    break;
                                }
                            }
                            Ok(_) => {} // covered by the checkpoint
                            Err(_) => {
                                corrupt = true;
                                break;
                            }
                        }
                    }
                    if corrupt {
                        // Keep the (self-consistent) checkpoint state;
                        // the journal tail past this point is lost.
                        absorb_corruption(&mut report);
                    }
                }
                Err(_) => absorb_corruption(&mut report),
            }
        } else if !had_files && dir.file(JOURNAL_FILE).exists() {
            // A journal with no checkpoint at all: the lifecycle always
            // writes a checkpoint before creating a journal, so the base
            // state these ops mutate is missing — its own corruption
            // event. (A *corrupt* checkpoint was already counted above,
            // and the journal is discarded with it.)
            absorb_corruption(&mut report);
        }
        report.replayed_ops = replayed;
        if let Some(s) = &state {
            report.restored_blocks = s.blocks.len();
            report.restored_snapshots = s
                .shapes
                .iter()
                .map(|(_, e)| e.snapshots.len())
                .sum::<usize>();
            let restored = (report.restored_blocks + report.restored_snapshots) as u64;
            if restored > 0 {
                record_persist_restores(restored);
            }
            // A genuine resume (state came off disk) is a recovery event.
            record_recovery();
        } else {
            report.cold_start = true;
        }
        let seq = state.as_ref().map(|s| s.seq).unwrap_or(0);
        let mut store = SolveStateStore {
            dir,
            journal: None,
            seq,
            checkpoint_seq: seq,
            degraded: false,
        };
        // Re-baseline: one checkpoint of the recovered state, an empty
        // journal, a cleared attempt counter.
        let payload = match &state {
            Some(s) => encode_state_from_vecs(s),
            None => encode_state(
                expected_g,
                0,
                &[],
                &HashMap::new(),
                &HashMap::new(),
                &HashMap::new(),
            ),
        };
        store.write_checkpoint(&payload)?;
        store.dir.clear_recovery_attempts();
        Ok((store, state, report))
    }

    /// Whether an I/O failure while serving disabled persistence (the
    /// solver keeps serving from memory).
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Last journal sequence number handed out.
    pub(crate) fn seq(&self) -> u64 {
        self.seq
    }

    /// Whether enough ops accumulated since the last checkpoint that the
    /// next solve should compact.
    pub(crate) fn checkpoint_due(&self) -> bool {
        !self.degraded && self.seq - self.checkpoint_seq >= CHECKPOINT_EVERY
    }

    /// Appends `op` to the WAL (fsynced) *before* the caller applies it
    /// in memory. An append failure degrades the store.
    pub(crate) fn log_op(&mut self, op: &JournalOp) {
        if self.degraded {
            return;
        }
        self.seq += 1;
        let rec = op.encode(self.seq);
        let ok = match &mut self.journal {
            Some(j) => j.append(&rec).is_ok(),
            None => match Journal::open_append(&self.dir.file(JOURNAL_FILE), KIND_JOURNAL) {
                Ok(mut j) => {
                    let ok = j.append(&rec).is_ok();
                    self.journal = Some(j);
                    ok
                }
                Err(_) => false,
            },
        };
        if !ok {
            self.degraded = true;
            self.journal = None;
        }
    }

    /// Writes `payload` as the checkpoint and truncates the journal —
    /// compaction. A failure degrades the store.
    pub(crate) fn checkpoint(&mut self, payload: &[u8], seq: u64) {
        if self.degraded {
            return;
        }
        if self.write_checkpoint(payload).is_err() {
            self.degraded = true;
            self.journal = None;
        } else {
            self.checkpoint_seq = seq;
        }
    }

    fn write_checkpoint(&mut self, payload: &[u8]) -> Result<(), PersistError> {
        persist::write_atomic(&self.dir.file(CHECKPOINT_FILE), KIND_CHECKPOINT, payload)?;
        self.journal = Some(Journal::create(&self.dir.file(JOURNAL_FILE), KIND_JOURNAL)?);
        Ok(())
    }
}

/// Re-encodes a decoded state (recovery's re-baseline checkpoint).
fn encode_state_from_vecs(s: &PersistedState) -> Vec<u8> {
    let blocks: HashMap<ContentKey, CachedBlock> = s
        .blocks
        .iter()
        .map(|(k, b)| (k.clone(), b.clone()))
        .collect();
    let shapes: HashMap<ComponentSignature, ShapeEntry> = s
        .shapes
        .iter()
        .map(|(k, e)| (k.clone(), e.clone()))
        .collect();
    let quarantine: HashMap<ContentKey, SolveFailure> = s
        .quarantine
        .iter()
        .map(|(k, f)| (k.clone(), f.clone()))
        .collect();
    encode_state(s.g, s.seq, &s.jobs, &blocks, &shapes, &quarantine)
}

/// Applies one journal op to a job-slot vector; `false` when the op does
/// not fit the state (corruption).
fn apply_op(jobs: &mut Vec<Option<Job>>, op: &JournalOp) -> bool {
    match op {
        JournalOp::Add { id, job } => {
            if *id != jobs.len() {
                return false;
            }
            jobs.push(Some(*job));
            true
        }
        JournalOp::Remove { id } => match jobs.get_mut(*id) {
            Some(slot @ Some(_)) => {
                *slot = None;
                true
            }
            _ => false,
        },
        JournalOp::Edit {
            id,
            release,
            deadline,
        } => {
            let Some(slot) = jobs.get_mut(*id).and_then(Option::as_mut) else {
                return false;
            };
            let Some(updated) = Job::try_new(*release, *deadline, slot.length) else {
                return false;
            };
            *slot = updated;
            true
        }
    }
}

/// A read-only health summary of a state directory (`abt recover`).
#[derive(Debug, Clone)]
pub struct StoreInspection {
    /// Decoded checkpoint summary, when the checkpoint is valid.
    pub checkpoint: Option<CheckpointSummary>,
    /// Why the checkpoint was rejected, when it was.
    pub checkpoint_error: Option<String>,
    /// Valid journal records on disk.
    pub journal_records: usize,
    /// Journal ops past the checkpoint (would replay on attach).
    pub pending_ops: usize,
    /// Whether the journal ends in a torn (partial) record.
    pub journal_torn_tail: bool,
    /// Why the journal was rejected, when it was.
    pub journal_error: Option<String>,
    /// Current recovery-attempt counter (nonzero means a recovery died
    /// mid-flight; [`MAX_RECOVERY_ATTEMPTS`] triggers the storm guard).
    pub recovery_attempts: u32,
}

/// Key figures of a valid checkpoint.
#[derive(Debug, Clone)]
pub struct CheckpointSummary {
    /// Capacity `g` the state was taken at.
    pub g: usize,
    /// Journal sequence number the checkpoint covers.
    pub seq: u64,
    /// Live jobs.
    pub live_jobs: usize,
    /// Cached component blocks.
    pub blocks: usize,
    /// Basis snapshots across all shape pools.
    pub snapshots: usize,
    /// Quarantined content keys.
    pub quarantined: usize,
}

/// Inspects a state directory without mutating it or recording telemetry:
/// the diagnosis half of `abt recover`.
pub fn inspect_store(root: impl AsRef<Path>) -> Result<StoreInspection, PersistError> {
    let dir = StateDir::open(root.as_ref())?;
    let mut out = StoreInspection {
        checkpoint: None,
        checkpoint_error: None,
        journal_records: 0,
        pending_ops: 0,
        journal_torn_tail: false,
        journal_error: None,
        recovery_attempts: dir.recovery_attempts(),
    };
    let mut ckpt_seq = 0u64;
    match persist::read_frame(&dir.file(CHECKPOINT_FILE), KIND_CHECKPOINT) {
        Ok(None) => out.checkpoint_error = Some("missing".into()),
        Ok(Some(payload)) => match decode_state(&payload) {
            Ok(s) => {
                ckpt_seq = s.seq;
                out.checkpoint = Some(CheckpointSummary {
                    g: s.g,
                    seq: s.seq,
                    live_jobs: s.jobs.iter().flatten().count(),
                    blocks: s.blocks.len(),
                    snapshots: s.shapes.iter().map(|(_, e)| e.snapshots.len()).sum(),
                    quarantined: s.quarantine.len(),
                });
            }
            Err(e) => out.checkpoint_error = Some(e.to_string()),
        },
        Err(e) => out.checkpoint_error = Some(e.to_string()),
    }
    match Journal::replay(&dir.file(JOURNAL_FILE), KIND_JOURNAL) {
        Ok(None) => out.journal_error = Some("missing".into()),
        Ok(Some(rep)) => {
            out.journal_records = rep.records.len();
            out.journal_torn_tail = rep.torn_tail;
            for rec in &rep.records {
                match JournalOp::decode(rec) {
                    Ok((seq, _)) if seq > ckpt_seq => out.pending_ops += 1,
                    Ok(_) => {}
                    Err(e) => {
                        out.journal_error = Some(e.to_string());
                        break;
                    }
                }
            }
        }
        Err(e) => out.journal_error = Some(e.to_string()),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_op_codec_roundtrip() {
        let ops = [
            JournalOp::Add {
                id: 3,
                job: Job::new(-2, 5, 4),
            },
            JournalOp::Remove { id: 0 },
            JournalOp::Edit {
                id: 7,
                release: 10,
                deadline: 20,
            },
        ];
        for (i, op) in ops.iter().enumerate() {
            let bytes = op.encode(i as u64 + 1);
            let (seq, back) = JournalOp::decode(&bytes).unwrap();
            assert_eq!(seq, i as u64 + 1);
            assert_eq!(&back, op);
        }
        // An Add of an invalid job is rejected at decode, tag drift too.
        let mut e = Enc::new();
        e.put_u64(1);
        e.put_u8(1);
        e.put_usize(0);
        e.put_i64(5);
        e.put_i64(2); // deadline < release
        e.put_i64(1);
        assert!(JournalOp::decode(&e.into_bytes()).is_err());
        let mut e = Enc::new();
        e.put_u64(1);
        e.put_u8(9);
        assert!(JournalOp::decode(&e.into_bytes()).is_err());
    }

    #[test]
    fn state_codec_roundtrip_and_validation() {
        let jobs = vec![Some(Job::new(0, 4, 2)), None, Some(Job::new(6, 9, 1))];
        let mut blocks = HashMap::new();
        blocks.insert(
            vec![(0i64, 4i64, 2i64)],
            CachedBlock {
                y_runs: vec![Rat::new(1, 2), Rat::new(3, 4)],
                objective: Rat::new(5, 4),
            },
        );
        let mut shapes: HashMap<ComponentSignature, ShapeEntry> = HashMap::new();
        shapes.insert(
            (2, vec![(0, 2), (1, 2)]),
            ShapeEntry {
                snapshots: vec![BasisSnapshot {
                    m: 1,
                    ncols: 2,
                    basis: vec![1],
                    state: vec![abt_lp::VarState::AtLower, abt_lp::VarState::Basic],
                }],
                reference_pivots: 7,
            },
        );
        let mut quarantine = HashMap::new();
        quarantine.insert(
            vec![(0i64, 1i64, 1i64)],
            SolveFailure::BudgetExceeded(BudgetKind::Time),
        );
        let payload = encode_state(3, 42, &jobs, &blocks, &shapes, &quarantine);
        let s = decode_state(&payload).unwrap();
        assert_eq!(s.g, 3);
        assert_eq!(s.seq, 42);
        assert_eq!(s.jobs, jobs);
        assert_eq!(s.blocks.len(), 1);
        assert_eq!(s.blocks[0].1.objective, Rat::new(5, 4));
        assert_eq!(s.shapes.len(), 1);
        assert_eq!(s.shapes[0].1.reference_pivots, 7);
        assert_eq!(s.quarantine.len(), 1);
        // Every truncation is a typed reject.
        for cut in [0, 1, 8, payload.len() / 2, payload.len() - 1] {
            assert!(decode_state(&payload[..cut]).is_err());
        }
        // g = 0 is malformed.
        let bad = encode_state(0, 0, &[], &HashMap::new(), &HashMap::new(), &HashMap::new());
        assert!(decode_state(&bad).is_err());
    }
}

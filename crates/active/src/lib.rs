//! # abt-active
//!
//! Algorithms for the **active time** problem (§2–3 of Chang–Khuller–
//! Mukherjee, SPAA 2014): schedule jobs preemptively (at integer points) on
//! one machine with at most `g` job-units per active slot, minimizing the
//! number of active slots.
//!
//! * [`feasibility`] — the max-flow oracle `G_feas` (Fig. 2).
//! * [`minimal`] — minimal feasible solutions: a 3-approximation for *any*
//!   closing order (Theorem 1; tight by the Fig. 3 gadget).
//! * [`rounding`] — the LP-rounding 2-approximation (Theorem 2), on top of
//!   [`lp_model`] (the `LP1` relaxation, solved with exact rationals) and
//!   [`right_shift`](mod@right_shift) (§3.1 preprocessing).
//! * [`exact`] — branch-and-bound optimum for ratio measurements.
//! * [`unit`](mod@unit) — the exact rightmost-greedy for unit jobs
//!   (Chang–Gabow–Khuller special case).

#![warn(missing_docs)]

pub mod exact;
pub mod feasibility;
pub mod lp_model;
pub mod minimal;
pub mod right_shift;
pub mod rounding;
pub mod unit;

pub use exact::{exact_active_time, ExactActive};
pub use feasibility::{feasible_on, schedule_on, FeasibilityChecker};
pub use lp_model::{
    fractional_feasible, lp_telemetry, solve_active_lp, solve_active_lp_with, ActiveLp, BoundsMode,
    LpBackend, LpOptions, LpTelemetry, VubMode,
};
pub use minimal::{
    is_minimal, minimal_feasible, minimal_feasible_from, ClosingOrder, MinimalResult,
};
pub use right_shift::{right_shift, RightShifted, Segment};
pub use rounding::{lp_rounding, lp_rounding_from, ChargeKind, RoundingOutcome};
pub use unit::{exact_unit_active_time, UnitExact};

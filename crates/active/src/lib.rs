//! # abt-active
//!
//! Algorithms for the **active time** problem (§2–3 of Chang–Khuller–
//! Mukherjee, SPAA 2014): schedule jobs preemptively (at integer points) on
//! one machine with at most `g` job-units per active slot, minimizing the
//! number of active slots.
//!
//! * [`feasibility`] — the max-flow oracle `G_feas` (Fig. 2).
//! * [`minimal`] — minimal feasible solutions: a 3-approximation for *any*
//!   closing order (Theorem 1; tight by the Fig. 3 gadget).
//! * [`rounding`] — the LP-rounding 2-approximation (Theorem 2), on top of
//!   [`lp_model`] (the `LP1` relaxation, solved with exact rationals,
//!   sharded along interval-graph components under
//!   [`DecomposeMode::Auto`], with warm-started sibling batching under
//!   [`WarmMode::Batch`]) and [`right_shift`](mod@right_shift) (§3.1
//!   preprocessing).
//! * [`incremental`] — the warm-started incremental re-solve driver for
//!   mutating instances / online arrival streams
//!   ([`IncrementalSolver`]).
//! * [`exact`] — branch-and-bound optimum for ratio measurements.
//! * [`unit`](mod@unit) — the exact rightmost-greedy for unit jobs
//!   (Chang–Gabow–Khuller special case).
//!
//! See the repo-root `ARCHITECTURE.md` for how this crate sits between the
//! `abt-lp` solver substrate and the `abt-bench` experiment harness.
//!
//! # Example
//!
//! Decompose-and-solve an active-time instance: two job clusters far
//! apart make the job-window interval graph disconnected, so the default
//! options ([`DecomposeMode::Auto`]) split LP1 into independent
//! per-component sub-LPs and stitch the exact results — bit-identical to
//! the monolithic solve:
//!
//! ```
//! use abt_active::{solve_active_lp_with, DecomposeMode, LpOptions};
//! use abt_core::Instance;
//!
//! let inst = Instance::from_triples(
//!     [(0, 4, 2), (1, 3, 2), (100, 104, 3)], // two clusters, 96 idle slots
//!     2,
//! )
//! .unwrap();
//! let auto = solve_active_lp_with(&inst, &LpOptions::default()).unwrap();
//! let mono = solve_active_lp_with(
//!     &inst,
//!     &LpOptions {
//!         decompose: DecomposeMode::Off,
//!         ..LpOptions::default()
//!     },
//! )
//! .unwrap();
//! assert_eq!(auto.objective, mono.objective); // exact stitching
//! // 2 fractional slots for the first cluster + 3 for the second.
//! assert_eq!(auto.objective, abt_lp::Rat::from_int(5));
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod exact;
pub mod feasibility;
pub mod incremental;
pub mod lp_model;
pub mod minimal;
pub mod right_shift;
pub mod rounding;
pub mod store;
pub mod supervise;
pub mod unit;

pub use abt_lp::CertifyMode;
pub use admission::{admission_precheck, AdmissionReject};
pub use exact::{exact_active_time, ExactActive};
pub use feasibility::{feasible_on, schedule_on, FeasibilityChecker};
pub use incremental::{IncrementalJobId, IncrementalReport, IncrementalSolver};
pub use lp_model::{
    component_vars_window, fractional_feasible, lp_telemetry, pivots_per_solve_snapshot,
    solve_active_lp, solve_active_lp_with, solve_latency_snapshot, try_solve_active_lp_with,
    ActiveLp, BoundsMode, DecomposeMode, LpBackend, LpOptions, LpTelemetry, VubMode, WarmMode,
};
pub use minimal::{
    is_minimal, minimal_feasible, minimal_feasible_from, ClosingOrder, MinimalResult,
};
pub use right_shift::{right_shift, RightShifted, Segment};
pub use rounding::{lp_rounding, lp_rounding_from, ChargeKind, RoundingOutcome};
pub use store::{
    inspect_store, CheckpointSummary, RecoveryReport, SolveStateStore, StoreInspection,
    CHECKPOINT_EVERY, MAX_RECOVERY_ATTEMPTS,
};
pub use supervise::{PartialSolve, QuarantinedComponent, SolveError};
pub use unit::{exact_unit_active_time, UnitExact};

//! Differential property tests for the warm-start subsystem (PR 5):
//! batched sibling solves (`WarmMode::Batch`) and incremental re-solves
//! (`IncrementalSolver`) must reproduce the cold `DecomposeMode::Auto`
//! objective **bit for bit** across `BoundsMode × VubMode`, and the
//! stitched per-slot `y` must remain a feasible fractional opening
//! (certified against LP2 by the `fractional_feasible` oracle).

use abt_active::{
    fractional_feasible, solve_active_lp_with, BoundsMode, IncrementalSolver, LpOptions, VubMode,
    WarmMode,
};
use abt_lp::Rat;
use abt_workloads::{many_components, online_arrivals, ManyComponentsConfig, OnlineArrivalsConfig};
use proptest::prelude::*;

/// Asserts `WarmMode::Batch` ≡ cold `Auto` on `inst` under every
/// `BoundsMode × VubMode` encoding, plus LP2 feasibility of the stitched
/// `y` under the default encodings.
fn assert_batch_matches_cold(inst: &abt_core::Instance) -> Result<(), TestCaseError> {
    let cold = solve_active_lp_with(inst, &LpOptions::default())
        .expect("instances are feasible by construction");
    for bounds in [BoundsMode::Rows, BoundsMode::Implicit] {
        for vub in [VubMode::Rows, VubMode::Implicit] {
            let opts = LpOptions {
                bounds,
                vub,
                warm: WarmMode::Batch,
                ..LpOptions::default()
            };
            let warm = solve_active_lp_with(inst, &opts).unwrap();
            prop_assert_eq!(warm.objective, cold.objective, "{:?}", opts);
            let mut sum = Rat::ZERO;
            for y in &warm.y {
                prop_assert!(y.signum() >= 0 && *y <= Rat::ONE, "{:?}", opts);
                sum = sum.add(y);
            }
            prop_assert_eq!(
                sum,
                cold.objective,
                "{:?}: Σy must equal the objective",
                opts
            );
            if bounds == BoundsMode::Implicit && vub == VubMode::Implicit {
                prop_assert!(
                    fractional_feasible(inst, &warm.slots, &warm.y),
                    "{:?}: warm-batched y must be LP2-feasible",
                    opts
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn warm_batched_preserves_lp1_exactly_on_online_arrivals(
        seed in 0u64..1_000_000,
        clusters in 2usize..9,
        jobs_per in 1usize..5,
        templates in 1usize..4,
        g in 2usize..4,
    ) {
        let cfg = OnlineArrivalsConfig {
            clusters,
            jobs_per_cluster: jobs_per,
            templates,
            g,
            span: 12,
            gap: 3,
            max_len: 3,
        };
        let inst = online_arrivals(&cfg, seed).instance();
        assert_batch_matches_cold(&inst)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn warm_batched_preserves_lp1_exactly_on_many_components(
        seed in 0u64..1_000_000,
        components in 1usize..7,
        jobs_per in 1usize..4,
        g in 1usize..4,
    ) {
        // The block-diagonal family with *random* window slack: component
        // shapes repeat only sometimes, so this exercises mixed
        // hit/miss/singleton-group paths of the planner.
        let cfg = ManyComponentsConfig {
            components,
            jobs_per_component: jobs_per,
            g,
            span: 12,
            gap: 3,
            max_len: 3,
            slack_factor: 1.0,
        };
        let inst = many_components(&cfg, seed);
        if inst.jobs().is_empty() {
            return Ok(());
        }
        assert_batch_matches_cold(&inst)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn incremental_replay_matches_from_scratch_prefixes(
        seed in 0u64..1_000_000,
        clusters in 1usize..6,
        jobs_per in 1usize..4,
        g in 2usize..4,
        bounds_implicit in 0usize..2,
        vub_implicit in 0usize..2,
    ) {
        // Replay an arrival stream through the incremental driver and
        // check *every* prefix against a from-scratch cold solve: exact
        // objective equality plus LP2 feasibility of the stitched y.
        let opts = LpOptions {
            bounds: if bounds_implicit == 1 { BoundsMode::Implicit } else { BoundsMode::Rows },
            vub: if vub_implicit == 1 { VubMode::Implicit } else { VubMode::Rows },
            ..LpOptions::default()
        };
        let cfg = OnlineArrivalsConfig {
            clusters,
            jobs_per_cluster: jobs_per,
            templates: 2.min(clusters),
            g,
            span: 10,
            gap: 2,
            max_len: 3,
        };
        let oa = online_arrivals(&cfg, seed);
        let mut solver = IncrementalSolver::with_options(g, opts).unwrap();
        for (k, job) in oa.jobs.iter().enumerate() {
            solver.add_job(*job);
            let rep = solver.solve().unwrap();
            let prefix = oa.prefix_instance(k + 1);
            let scratch = solve_active_lp_with(&prefix, &opts).unwrap();
            prop_assert_eq!(
                rep.lp.objective,
                scratch.objective,
                "prefix {} under {:?}",
                k + 1,
                opts
            );
            let mut sum = Rat::ZERO;
            for y in &rep.lp.y {
                prop_assert!(y.signum() >= 0 && *y <= Rat::ONE);
                sum = sum.add(y);
            }
            prop_assert_eq!(sum, scratch.objective);
        }
        // Certify the final stitched y against LP2 once per case (the
        // oracle itself solves an LP, so per-prefix checks would dominate
        // the test's runtime).
        let rep = solver.solve().unwrap();
        prop_assert!(fractional_feasible(
            &oa.instance(),
            &rep.lp.slots,
            &rep.lp.y
        ));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn incremental_mutations_match_from_scratch(
        seed in 0u64..1_000_000,
        clusters in 2usize..6,
        g in 2usize..4,
    ) {
        // Beyond arrivals: removals and window edits must leave the
        // driver bit-identical to from-scratch solves of the mutated set.
        let cfg = OnlineArrivalsConfig {
            clusters,
            jobs_per_cluster: 3,
            templates: 2,
            g,
            span: 10,
            gap: 2,
            max_len: 3,
        };
        let oa = online_arrivals(&cfg, seed);
        let mut solver = IncrementalSolver::new(g).unwrap();
        let ids: Vec<_> = oa.jobs.iter().map(|j| solver.add_job(*j)).collect();
        solver.solve().unwrap();
        // Remove every third job.
        for id in ids.iter().step_by(3) {
            solver.remove_job(*id).unwrap();
        }
        // Widen the second job of each surviving stripe by one slot each way
        // (clamped to keep windows positive).
        for (i, id) in ids.iter().enumerate() {
            if i % 3 == 1 {
                let job = oa.jobs[i];
                solver
                    .update_window(*id, (job.release - 1).max(0), job.deadline + 1)
                    .unwrap();
            }
        }
        let rep = solver.solve().unwrap();
        let scratch = solve_active_lp_with(&solver.instance().unwrap(), &LpOptions::default())
            .unwrap();
        prop_assert_eq!(rep.lp.objective, scratch.objective);
        prop_assert!(fractional_feasible(
            &solver.instance().unwrap(),
            &rep.lp.slots,
            &rep.lp.y
        ));
    }
}

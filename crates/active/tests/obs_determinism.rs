//! Determinism of the observability layer over the solve pipeline:
//! identical solves must produce identical span trees (names, parent
//! linkage, structured fields — everything except wall-clock timings)
//! and identical `lp.pivots_per_solve` histogram bucket deltas, whether
//! tracing is armed or not. A divergence here means observability is
//! perturbing solver decisions — the one thing it must never do.
//!
//! This file holds a single test: the flight recorder is process-global,
//! so the test owns the whole binary to keep the ring free of interleaved
//! entries from unrelated tests.

use abt_active::{pivots_per_solve_snapshot, solve_active_lp_with, LpOptions};
use abt_core::obs;
use abt_core::Instance;

/// Three well-separated clusters — a sharded solve whose components run
/// under `parallel_map`, so thread interleaving in the recorder is real
/// and the comparison must be order-insensitive.
fn striped_instance() -> Instance {
    let mut triples = Vec::new();
    for c in 0..3i64 {
        let base = 100 * c;
        triples.push((base, base + 6, 3));
        triples.push((base + 1, base + 5, 2));
        triples.push((base + 2, base + 6, 3));
    }
    Instance::from_triples(triples, 2).unwrap()
}

/// One span/event reduced to its deterministic parts: name, parent span
/// *name* (ids differ across runs; the tree shape must not), and the
/// structured fields (pivot counts, component sizes, certify outcomes —
/// all deterministic per instance).
type Skeleton = Vec<(String, String, Vec<(String, String)>)>;

fn skeleton(entries: &[obs::TraceEntry]) -> Skeleton {
    let name_of: std::collections::BTreeMap<u64, &str> = entries
        .iter()
        .filter(|e| e.span != 0)
        .map(|e| (e.span, e.name))
        .collect();
    let mut out: Skeleton = entries
        .iter()
        .map(|e| {
            (
                e.name.to_string(),
                name_of.get(&e.parent).unwrap_or(&"root").to_string(),
                e.fields
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            )
        })
        .collect();
    out.sort();
    out
}

#[test]
fn identical_solves_trace_identically_and_tracing_never_perturbs_pivots() {
    let inst = striped_instance();
    let solve = || {
        let before = pivots_per_solve_snapshot();
        let lp = solve_active_lp_with(&inst, &LpOptions::default()).unwrap();
        (lp.objective, pivots_per_solve_snapshot().delta(&before))
    };

    // Baseline with tracing disarmed: the pivot distribution to beat.
    let (obj_off, buckets_off) = solve();

    obs::set_tracing(true);
    obs::recorder::clear();
    let (obj_a, buckets_a) = solve();
    let run_a = skeleton(&obs::recorder::entries());

    obs::recorder::clear();
    let (obj_b, buckets_b) = solve();
    let run_b = skeleton(&obs::recorder::entries());
    obs::set_tracing(false);

    // Identical solves → identical span trees and bucket counts.
    assert_eq!(obj_a, obj_b);
    assert!(!run_a.is_empty(), "armed tracing must record the pipeline");
    assert_eq!(run_a, run_b, "span skeletons must be bit-identical");
    assert_eq!(buckets_a.counts(), buckets_b.counts());

    // Tracing must not perturb solver decisions: pivot counts (and the
    // objective) are bit-identical with the recorder armed or not.
    assert_eq!(obj_off, obj_a);
    assert_eq!(buckets_off.counts(), buckets_a.counts());

    // The skeleton covers the full pipeline phase taxonomy.
    for phase in [
        "solve.decompose",
        "solve.pivot",
        "solve.certify",
        "solve.stitch",
    ] {
        assert!(
            run_a.iter().any(|(name, _, _)| name == phase),
            "missing {phase} span in {run_a:?}"
        );
    }
}

//! Fault-injection tests for the supervision ladder at the active-time
//! layer: injected failures in the pivot loop, FTRAN, the certifier, and
//! the supervisor entry must either demote (bit-identical objectives,
//! nonzero `demotions`, zero `quarantined`) or quarantine cleanly (typed
//! [`SolveError::Partial`] with exact healthy objectives).
//!
//! Compiled only with `--features fault-injection`; every test holds the
//! process-global [`faultinject::exclusive`] guard, so exact-zero
//! telemetry assertions are safe *within this binary*.

#![cfg(feature = "fault-injection")]

use abt_active::{
    lp_telemetry, solve_active_lp_with, try_solve_active_lp_with, IncrementalSolver, LpOptions,
    SolveError,
};
use abt_core::faultinject::{self, FaultSpec, IoFault};
use abt_core::{obs, Error, Instance, Job, SolveFailure};
use abt_workloads::{online_arrivals, OnlineArrivalsConfig};

/// Six well-separated clusters of three overlapping jobs each: a sharded
/// solve with enough pivot work that `every:k` failpoints fire several
/// times whichever component the scheduler runs first.
fn striped_instance() -> Instance {
    let mut triples = Vec::new();
    for c in 0..6i64 {
        let base = 100 * c;
        triples.push((base, base + 6, 3));
        triples.push((base + 1, base + 5, 2));
        triples.push((base + 2, base + 6, 3));
    }
    Instance::from_triples(triples, 2).unwrap()
}

/// Tentpole differential: with failpoints firing in three layers (pivot
/// loop, FTRAN, certifier), the sharded and warm-batched solves complete
/// without abort and return objectives bit-identical to the fault-free
/// runs — demotions absorb every injected fault, nothing quarantines.
#[test]
fn intermittent_faults_in_three_layers_demote_but_stay_bit_identical() {
    let _guard = faultinject::exclusive();
    let inst = striped_instance();
    let modes = [LpOptions::default(), LpOptions::warm_batched()];
    let baseline: Vec<_> = modes
        .iter()
        .map(|o| solve_active_lp_with(&inst, o).unwrap().objective)
        .collect();

    faultinject::configure("panic_in_pivot", FaultSpec::panic_every(4));
    faultinject::configure("panic_in_ftran", FaultSpec::panic_every(7));
    faultinject::configure("slow_certify", FaultSpec::delay_nth(3, 1));
    let before = lp_telemetry();
    for (opts, expect) in modes.iter().zip(&baseline) {
        let lp = solve_active_lp_with(&inst, opts).unwrap();
        assert_eq!(lp.objective, *expect, "demotion must never change answers");
    }
    let d = lp_telemetry().delta(&before);
    assert!(d.demotions >= 1, "injected faults must demote");
    assert_eq!(d.quarantined, 0, "the dense rungs absorb every fault");

    // Fault-free control: with the registry cleared, the same solves
    // record zero demotions, budget trips, and quarantines.
    faultinject::reset();
    let before = lp_telemetry();
    for (opts, expect) in modes.iter().zip(&baseline) {
        assert_eq!(
            solve_active_lp_with(&inst, opts).unwrap().objective,
            *expect
        );
    }
    let d = lp_telemetry().delta(&before);
    assert_eq!((d.demotions, d.budget_trips, d.quarantined), (0, 0, 0));
}

/// Supervisor-entry crashes quarantine every component: the typed
/// partial-result error carries them all, the legacy surface flattens to
/// [`Error::Quarantined`], and recovery after clearing the registry is
/// bit-identical to the fault-free baseline.
#[test]
fn supervisor_entry_crashes_quarantine_components_with_typed_partials() {
    let _guard = faultinject::exclusive();
    let inst = striped_instance();
    let opts = LpOptions::default();
    let baseline = solve_active_lp_with(&inst, &opts).unwrap().objective;

    faultinject::configure("fail_nth_solve", FaultSpec::panic_every(1));
    let before = lp_telemetry();
    match try_solve_active_lp_with(&inst, &opts) {
        Err(SolveError::Partial(p)) => {
            assert_eq!(p.quarantined.len(), 6, "all six components crash");
            assert!(p.healthy.is_empty());
            assert!(p
                .quarantined
                .iter()
                .all(|q| matches!(q.failure, SolveFailure::Panicked(_))));
        }
        other => panic!("expected a partial solve, got {other:?}"),
    }
    assert!(matches!(
        solve_active_lp_with(&inst, &opts),
        Err(Error::Quarantined(_))
    ));
    assert!(lp_telemetry().delta(&before).quarantined >= 6);

    faultinject::reset();
    let lp = solve_active_lp_with(&inst, &opts).unwrap();
    assert_eq!(lp.objective, baseline);
}

/// Satellite: a quarantined [`IncrementalSolver`] component is skipped
/// (not retried) on later solves, is re-admitted and solved cold once the
/// offending job is removed, and the clean components are served from the
/// content cache throughout — never re-solved.
#[test]
fn incremental_quarantine_readmits_on_content_change_without_resolving_clean_blocks() {
    let _guard = faultinject::exclusive();
    let mut solver = IncrementalSolver::new(2).unwrap();
    solver.add_job(Job::new(0, 4, 2));
    solver.add_job(Job::new(100, 104, 3));
    solver.add_job(Job::new(200, 203, 1));
    let clean = solver.solve().unwrap();
    // All three singletons solve (cold, or warm off the shape cache —
    // the stripes share a run-level shape); none can be content-reused.
    assert_eq!((clean.components, clean.reused), (3, 0));
    let clean_objective = clean.lp.objective;

    // A fourth, far-apart job arrives and its (only dirty) component
    // crashes at supervisor entry.
    let bad = solver.add_job(Job::new(300, 306, 3));
    faultinject::configure("fail_nth_solve", FaultSpec::panic_nth(1));
    let partial = match solver.try_solve() {
        Err(SolveError::Partial(p)) => p,
        other => panic!("expected a partial solve, got {other:?}"),
    };
    assert_eq!(partial.quarantined.len(), 1);
    assert_eq!(partial.quarantined[0].jobs.len(), 1);
    assert_eq!(partial.healthy.len(), 3, "clean blocks keep serving");
    assert_eq!(partial.healthy_objective, clean_objective);
    assert_eq!(solver.quarantined(), 1);

    // The failpoint is gone, but the quarantined key is not retried:
    // re-admission is content-driven, not time-driven.
    faultinject::reset();
    let before = lp_telemetry();
    match solver.try_solve() {
        Err(SolveError::Partial(p)) => {
            assert_eq!(p.quarantined.len(), 1);
            assert_eq!(p.healthy_objective, clean_objective);
        }
        other => panic!("expected the quarantine to persist, got {other:?}"),
    }
    let d = lp_telemetry().delta(&before);
    assert_eq!(d.solves, 0, "no component may re-solve on a skip pass");

    // Removing the offending job re-admits by content: the component
    // disappears, its stale quarantine entry is pruned, and the clean
    // blocks are reused verbatim — zero cold solves.
    solver.remove_job(bad).unwrap();
    let report = solver.solve().unwrap();
    assert_eq!(report.components, 3);
    assert_eq!(report.reused, 3, "clean components never re-solve");
    assert_eq!(report.cold_solves, 0);
    assert_eq!(report.lp.objective, clean_objective);
    assert_eq!(solver.quarantined(), 0, "stale quarantine keys are pruned");

    // Manual re-admission: the same bad content, quarantined again, is
    // retried after `clear_quarantine` (the registry is already clean).
    solver.add_job(Job::new(300, 306, 3));
    faultinject::configure("fail_nth_solve", FaultSpec::panic_nth(1));
    assert!(solver.try_solve().is_err());
    faultinject::reset();
    solver.clear_quarantine();
    let report = solver.solve().unwrap();
    assert_eq!(report.reused, 3, "clean blocks are still cache hits");
    assert_eq!(
        report.cold_solves + report.warm_hits,
        1,
        "the re-admitted component solves exactly once"
    );
}

/// Observability satellite (PR 10): with tracing armed, injected pivot
/// faults leave `supervise.demotion` events in the flight recorder —
/// parented under the demoting component's `solve.component` span, with
/// the failure and both rung names as structured fields, and *sequenced
/// before* the span's close entry (spans are pushed to the ring at
/// close, so correct ordering means every demotion's `seq` precedes its
/// parent span's `seq`). Injected checkpoint corruption likewise leaves
/// `persist.corrupt` events, each absorbed by a later `persist.recovery`.
#[test]
fn flight_recorder_captures_demotion_and_recovery_events_in_order() {
    let _guard = faultinject::exclusive();
    let inst = striped_instance();
    obs::set_tracing(true);
    obs::recorder::clear();

    faultinject::configure("panic_in_pivot", FaultSpec::panic_every(4));
    solve_active_lp_with(&inst, &LpOptions::default()).unwrap();
    faultinject::reset();
    let entries = obs::recorder::entries();

    let demotions: Vec<_> = entries
        .iter()
        .filter(|e| e.name == "supervise.demotion")
        .collect();
    assert!(!demotions.is_empty(), "injected pivot panics must demote");
    for d in &demotions {
        let field = |k| {
            d.fields
                .iter()
                .find(|(key, _)| *key == k)
                .map(|(_, v)| v.as_str())
                .unwrap_or_else(|| panic!("demotion event missing `{k}`: {d:?}"))
        };
        assert!(field("failure").contains("panic"), "failure: {d:?}");
        let ladder = ["warm", "cold revised", "dense hybrid", "dense exact"];
        let from = ladder.iter().position(|r| *r == field("from")).unwrap();
        let to = ladder.iter().position(|r| *r == field("to")).unwrap();
        assert_eq!(to, from + 1, "demotions step one rung down: {d:?}");
        // Ordering: the demotion happened inside a still-open
        // `solve.component` span, so the span's close entry (where it is
        // pushed to the ring) must carry a later sequence number.
        let parent = entries
            .iter()
            .find(|e| e.span == d.parent)
            .unwrap_or_else(|| panic!("demotion parent span {} never closed", d.parent));
        assert_eq!(parent.name, "solve.component");
        assert!(
            d.seq < parent.seq,
            "event {} vs span close {}",
            d.seq,
            parent.seq
        );
    }

    // Phase 2 — persistence: build a durable store cleanly, then re-attach
    // with `corrupt_read` firing. Every corruption detection must appear
    // as a `persist.corrupt` event and be absorbed by a `persist.recovery`
    // event sequenced after it.
    let dir = std::env::temp_dir().join(format!("abt-fi-recorder-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut solver = IncrementalSolver::new(2).unwrap();
    solver.attach_store(&dir).unwrap();
    for (r, d, p) in [(0i64, 6i64, 3i64), (100, 105, 2), (200, 206, 3)] {
        solver.add_job(Job::new(r, d, p));
    }
    solver.solve().unwrap();
    solver.checkpoint_now();

    obs::recorder::clear();
    faultinject::configure("corrupt_read", FaultSpec::io_every(IoFault::CorruptRead, 1));
    let before = lp_telemetry();
    let mut solver = IncrementalSolver::new(2).unwrap();
    solver
        .attach_store(&dir)
        .expect("corruption is absorbed, never surfaced");
    faultinject::reset();
    let d = lp_telemetry().delta(&before);
    assert!(d.state_corrupt > 0, "the armed corrupt_read never fired");

    let entries = obs::recorder::entries();
    obs::set_tracing(false);
    let seqs = |name: &str| -> Vec<u64> {
        entries
            .iter()
            .filter(|e| e.name == name)
            .map(|e| e.seq)
            .collect()
    };
    let corrupt = seqs("persist.corrupt");
    let recovery = seqs("persist.recovery");
    assert_eq!(
        corrupt.len() as u64,
        d.state_corrupt,
        "events mirror counters"
    );
    assert_eq!(recovery.len() as u64, d.recoveries);
    assert!(recovery.len() >= corrupt.len());
    assert!(
        corrupt.iter().max() < recovery.iter().max(),
        "each corruption must be followed by a completed recovery"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Durable-state satellite (PR 8): with the persist layer's I/O
/// failpoints firing — `torn_write` truncating checkpoints after the
/// atomic rename, `corrupt_read` flipping bytes on every other load —
/// repeated attach/solve/checkpoint cycles must keep every exact
/// objective bit-identical to from-scratch solves. Every injected
/// corruption surfaces internally as `StateCorrupt`, demotes to a cold
/// (or partial) rebuild, and is matched by a completed recovery: no
/// panics, no wrong answers, no solver-component quarantines.
#[test]
fn injected_io_corruption_demotes_to_cold_rebuilds_bit_identically() {
    let _guard = faultinject::exclusive();
    let cfg = OnlineArrivalsConfig {
        clusters: 6,
        jobs_per_cluster: 3,
        templates: 2,
        g: 2,
        span: 12,
        gap: 3,
        max_len: 3,
    };
    let oa = online_arrivals(&cfg, 17);
    let total = oa.jobs.len();
    let cycles = 4;
    let dir = std::env::temp_dir().join(format!("abt-fi-io-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    faultinject::configure("torn_write", FaultSpec::io_every(IoFault::TornWrite, 2));
    faultinject::configure("corrupt_read", FaultSpec::io_every(IoFault::CorruptRead, 3));
    let before = lp_telemetry();
    for cycle in 1..=cycles {
        let target = total * cycle / cycles;
        let mut solver = IncrementalSolver::new(cfg.g).unwrap();
        let report = solver
            .attach_store(&dir)
            .expect("injected corruption must be absorbed, never surfaced");
        assert!(
            report.resumed_jobs <= target,
            "cycle {cycle}: recovery resumed more jobs than were ever journaled"
        );
        for job in &oa.jobs[report.resumed_jobs..target] {
            solver.add_job(*job);
        }
        let rep = solver.solve().expect("prefixes are feasible");
        let scratch = solve_active_lp_with(&oa.prefix_instance(target), &LpOptions::default())
            .unwrap()
            .objective;
        assert_eq!(
            rep.lp.objective, scratch,
            "cycle {cycle}: corruption must never move the exact objective"
        );
        solver.checkpoint_now();
    }
    let d = lp_telemetry().delta(&before);
    assert!(d.state_corrupt > 0, "the armed I/O failpoints never fired");
    assert!(
        d.recoveries >= d.state_corrupt,
        "every corruption detection ({}) must be absorbed by a completed recovery ({})",
        d.state_corrupt,
        d.recoveries
    );
    assert_eq!(
        d.quarantined, 0,
        "I/O corruption demotes persisted state, never solver components"
    );

    // Fault-free control: with the registry cleared, the surviving state
    // attaches cleanly and the full set still solves bit-identically.
    faultinject::reset();
    let mut solver = IncrementalSolver::new(cfg.g).unwrap();
    let report = solver.attach_store(&dir).unwrap();
    for job in &oa.jobs[report.resumed_jobs..] {
        solver.add_job(*job);
    }
    let rep = solver.solve().unwrap();
    let scratch = solve_active_lp_with(&oa.instance(), &LpOptions::default())
        .unwrap()
        .objective;
    assert_eq!(rep.lp.objective, scratch);
    std::fs::remove_dir_all(&dir).ok();
}

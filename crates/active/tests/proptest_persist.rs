//! Property tests for the durable-state layer (PR 8): the persist codec
//! must round-trip bit-for-bit, reject *every* single-byte corruption of
//! a sealed frame, and never panic on arbitrarily mutated bytes; and the
//! full attach/checkpoint/re-attach cycle must preserve exact objectives
//! no matter what happens to the state files in between — persisted state
//! is a hint, never an input the answers depend on.

use abt_active::{solve_active_lp_with, IncrementalSolver, LpOptions};
use abt_core::persist::{open_frame, seal, Dec, Enc};
use abt_core::Job;
use abt_lp::{BasisSnapshot, Rat, VarState};
use abt_workloads::{online_arrivals, OnlineArrivalsConfig};
use proptest::collection;
use proptest::prelude::*;
use std::sync::OnceLock;

fn tmp_state_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("abt-pp-{tag}-{}-{n}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn basis_snapshot_codec_roundtrips_and_never_panics_on_mutations(
        m in 0usize..24,
        ncols in 1usize..32,
        basis_raw in collection::vec(0usize..1 << 20, 24usize),
        state_raw in collection::vec(0usize..4, 32usize),
        pos in 0usize..4096,
        mask in 1usize..256,
    ) {
        let snap = BasisSnapshot {
            m,
            ncols,
            basis: basis_raw[..m].iter().map(|&v| v % ncols).collect(),
            state: state_raw[..ncols]
                .iter()
                .map(|&v| match v {
                    0 => VarState::Basic,
                    1 => VarState::AtLower,
                    2 => VarState::AtUpper,
                    _ => VarState::AtVub,
                })
                .collect(),
        };
        let mut enc = Enc::new();
        snap.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        let back = BasisSnapshot::decode(&mut dec).expect("roundtrip must decode");
        prop_assert!(dec.is_done());
        prop_assert_eq!(&back, &snap);

        // The payload-level codec carries no checksum (the frame does);
        // the contract under mutation is typed-error-or-value, never a
        // panic and never an out-of-invariant snapshot.
        let mut flipped = bytes.clone();
        if !flipped.is_empty() {
            let p = pos % flipped.len();
            flipped[p] ^= mask as u8;
            if let Ok(s) = BasisSnapshot::decode(&mut Dec::new(&flipped)) {
                prop_assert_eq!(s.basis.len(), s.m);
                prop_assert_eq!(s.state.len(), s.ncols);
                prop_assert!(s.basis.iter().all(|&c| c < s.ncols));
            }
        }
        let cut = pos % (bytes.len() + 1);
        if let Ok(s) = BasisSnapshot::decode(&mut Dec::new(&bytes[..cut])) {
            prop_assert_eq!(s.basis.len(), s.m);
            prop_assert_eq!(s.state.len(), s.ncols);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn sealed_frames_reject_every_single_byte_corruption(
        payload_raw in collection::vec(0usize..256, 0..64),
        pos in 0usize..4096,
        mask in 1usize..256,
        cut in 0usize..4096,
    ) {
        let payload: Vec<u8> = payload_raw.iter().map(|&b| b as u8).collect();
        let framed = seal(7, &payload);
        prop_assert_eq!(open_frame(7, &framed).expect("pristine frame"), &payload[..]);

        // Deterministic, not probabilistic: the exact-length check pins
        // the layout and FNV-1a's xor-then-multiply chain is injective in
        // each input byte, so *every* single-byte flip must be caught.
        let mut flipped = framed.clone();
        let p = pos % flipped.len();
        flipped[p] ^= mask as u8;
        prop_assert!(
            open_frame(7, &flipped).is_err(),
            "single-byte flip at {} of {} went undetected",
            p,
            flipped.len()
        );

        // Every proper truncation and any kind drift must be rejected too.
        prop_assert!(open_frame(7, &framed[..cut % framed.len()]).is_err());
        prop_assert!(open_frame(8, &framed).is_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn attach_checkpoint_reattach_preserves_objectives_and_warm_capital(
        seed in 0u64..1_000_000,
        clusters in 2usize..5,
        jobs_per in 1usize..4,
        g in 2usize..4,
    ) {
        let cfg = OnlineArrivalsConfig {
            clusters,
            jobs_per_cluster: jobs_per,
            templates: 2.min(clusters),
            g,
            span: 12,
            gap: 3,
            max_len: 3,
        };
        let oa = online_arrivals(&cfg, seed);
        let dir = tmp_state_dir("roundtrip");
        let expected = solve_active_lp_with(&oa.instance(), &LpOptions::default())
            .expect("feasible by construction")
            .objective;

        let first = {
            let mut solver = IncrementalSolver::new(g).unwrap();
            let rep = solver.attach_store(&dir).expect("fresh dir");
            prop_assert!(rep.cold_start);
            for job in &oa.jobs {
                solver.add_job(*job);
            }
            let rep = solver.solve().unwrap();
            prop_assert!(solver.checkpoint_now(), "checkpoint must not degrade");
            rep
        };
        prop_assert_eq!(first.lp.objective, expected);

        let mut solver = IncrementalSolver::new(g).unwrap();
        let rec = solver.attach_store(&dir).expect("pristine state dir");
        prop_assert_eq!(rec.resumed_jobs, oa.jobs.len());
        prop_assert_eq!(rec.corruption_events, 0);
        prop_assert!(!rec.cold_start);
        let second = solver.solve().unwrap();
        prop_assert_eq!(second.lp.objective, expected, "re-attach must be bit-identical");
        prop_assert_eq!(
            second.cold_solves, 0,
            "a pristine resume restores the full content cache — nothing re-solves cold"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A pristine persisted state built once: a checkpoint covering five jobs
/// plus a one-record journal tail, with the exact full-set objective.
struct Pristine {
    g: usize,
    jobs: Vec<Job>,
    checkpoint: Vec<u8>,
    journal: Vec<u8>,
    objective: Rat,
}

fn pristine() -> &'static Pristine {
    static PRISTINE: OnceLock<Pristine> = OnceLock::new();
    PRISTINE.get_or_init(|| {
        let cfg = OnlineArrivalsConfig {
            clusters: 3,
            jobs_per_cluster: 2,
            templates: 2,
            g: 2,
            span: 12,
            gap: 3,
            max_len: 3,
        };
        let oa = online_arrivals(&cfg, 5);
        let dir = tmp_state_dir("pristine");
        {
            let mut solver = IncrementalSolver::new(cfg.g).unwrap();
            solver.attach_store(&dir).expect("fresh dir");
            let (head, tail) = oa.jobs.split_at(oa.jobs.len() - 1);
            for job in head {
                solver.add_job(*job);
            }
            solver.solve().expect("feasible by construction");
            assert!(solver.checkpoint_now());
            // One journaled arrival past the checkpoint, so mutations can
            // hit a live journal record, not just the checkpoint frame.
            solver.add_job(tail[0]);
        }
        let checkpoint = std::fs::read(dir.join("checkpoint.abt")).expect("checkpoint written");
        let journal = std::fs::read(dir.join("journal.abt")).expect("journal written");
        assert!(journal.len() > 16, "the journal must hold a real record");
        std::fs::remove_dir_all(&dir).ok();
        let objective = solve_active_lp_with(&oa.instance(), &LpOptions::default())
            .expect("feasible by construction")
            .objective;
        Pristine {
            g: cfg.g,
            jobs: oa.jobs,
            checkpoint,
            journal,
            objective,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn attach_absorbs_arbitrary_state_file_mutations_without_panics_or_wrong_answers(
        which in 0usize..2,
        kind in 0usize..3,
        pos in 0usize..1 << 16,
        mask in 1usize..256,
        junk in collection::vec(0usize..256, 1..24),
    ) {
        let p = pristine();
        let mut checkpoint = p.checkpoint.clone();
        let mut journal = p.journal.clone();
        {
            let target = if which == 0 { &mut checkpoint } else { &mut journal };
            match kind {
                // Flip one byte anywhere in the file.
                0 => {
                    let at = pos % target.len();
                    target[at] ^= mask as u8;
                }
                // Truncate to any proper prefix (torn write / torn tail).
                1 => target.truncate(pos % target.len()),
                // Append junk past the frame.
                _ => target.extend(junk.iter().map(|&b| b as u8)),
            }
        }
        let dir = tmp_state_dir("mutate");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("checkpoint.abt"), &checkpoint).unwrap();
        std::fs::write(dir.join("journal.abt"), &journal).unwrap();

        // Whatever the mutation did, attach must absorb it: a typed
        // internal rejection demoting to a cold (or partial) rebuild —
        // never a panic, never an error surfaced to the caller.
        let mut solver = IncrementalSolver::new(p.g).unwrap();
        let rec = solver.attach_store(&dir).expect("corruption is absorbed, not surfaced");
        prop_assert!(
            rec.resumed_jobs <= p.jobs.len(),
            "recovery can only resume journaled arrivals"
        );

        // Top the solver back up to the full set; the exact objective
        // must be bit-identical to the from-scratch solve regardless of
        // how much persisted state survived.
        for job in &p.jobs[rec.resumed_jobs..] {
            solver.add_job(*job);
        }
        let rep = solver.solve().expect("feasible by construction");
        prop_assert_eq!(rep.lp.objective, p.objective);
        std::fs::remove_dir_all(&dir).ok();
    }
}

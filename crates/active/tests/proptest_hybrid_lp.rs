//! Differential property tests for the LP pipeline: on feasible random
//! active-time instances, every backend × bound-encoding × VUB-encoding ×
//! model-shape configuration must reproduce the seed configuration
//! (per-slot model, explicit bound/VUB rows, pure exact-rational simplex)
//! bit for bit on status and objective, and the disaggregated per-slot `y`
//! must stay a valid fractional opening.

use abt_active::{
    fractional_feasible, solve_active_lp_with, BoundsMode, CertifyMode, DecomposeMode, LpBackend,
    LpOptions, VubMode,
};
use abt_lp::Rat;
use abt_workloads::{
    many_components, random_active_feasible, vub_heavy, ManyComponentsConfig, RandomConfig,
    VubHeavyConfig,
};
use proptest::prelude::*;

/// The differential grid: the seed oracle plus every interesting
/// backend × bounds × vub × coalesce combination.
fn variants() -> Vec<LpOptions> {
    let mut v = Vec::new();
    for backend in [LpBackend::Exact, LpBackend::Hybrid, LpBackend::Revised] {
        for bounds in [BoundsMode::Rows, BoundsMode::Implicit] {
            for vub in [VubMode::Rows, VubMode::Implicit] {
                v.push(LpOptions {
                    backend,
                    coalesce: true,
                    bounds,
                    vub,
                    ..LpOptions::default()
                });
            }
        }
    }
    v.push(LpOptions {
        backend: LpBackend::Revised,
        coalesce: false,
        ..LpOptions::default()
    });
    v.push(LpOptions {
        backend: LpBackend::Hybrid,
        coalesce: false,
        bounds: BoundsMode::Implicit,
        vub: VubMode::Rows,
        ..LpOptions::default()
    });
    // The default model priced with full Dantzig sweeps instead of the
    // partial-pricing window.
    v.push(LpOptions {
        pricing_window: 0,
        ..LpOptions::default()
    });
    // Every certification tier policy of the revised backend. The tier
    // only changes *how* dual feasibility is proven — an interval-only
    // refusal demotes down the supervision ladder — so the objective is
    // bit-identical throughout.
    for certify in [
        CertifyMode::Exact,
        CertifyMode::Interval,
        CertifyMode::IntervalThenExact,
    ] {
        v.push(LpOptions::default().certify(certify));
    }
    v
}

fn assert_all_variants_match(inst: &abt_core::Instance) -> Result<(), TestCaseError> {
    let seed_lp = solve_active_lp_with(inst, &LpOptions::seed_exact())
        .expect("instances are feasible by construction");
    for opts in variants() {
        let lp = solve_active_lp_with(inst, &opts).unwrap();
        prop_assert_eq!(lp.objective, seed_lp.objective, "{:?}", opts);
        prop_assert_eq!(lp.slots.len(), seed_lp.slots.len());
        let mut sum = Rat::ZERO;
        for y in &lp.y {
            prop_assert!(y.signum() >= 0 && *y <= Rat::ONE, "{:?}", opts);
            sum = sum.add(y);
        }
        prop_assert_eq!(
            sum,
            seed_lp.objective,
            "{:?}: Σy must equal the objective",
            opts
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn all_backend_bounds_configs_preserve_lp1_exactly(
        seed in 0u64..1_000_000,
        n in 4usize..14,
        g in 1usize..4,
        horizon in 10i64..26,
        max_len in 1i64..5,
    ) {
        let cfg = RandomConfig { n, g, horizon, max_len, slack_factor: 1.0 };
        let inst = random_active_feasible(&cfg, seed);
        if inst.jobs().is_empty() {
            return Ok(());
        }
        assert_all_variants_match(&inst)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn degenerate_zero_slack_instances_preserve_lp1_exactly(
        seed in 0u64..1_000_000,
        n in 4usize..12,
        g in 1usize..4,
        horizon in 8i64..20,
        max_len in 1i64..5,
    ) {
        // Zero window slack: every job's window equals its length, so all
        // assignments are forced and most LP rows are tight (maximal
        // degeneracy for the pivoting rules).
        let cfg = RandomConfig { n, g, horizon, max_len, slack_factor: 0.0 };
        let inst = random_active_feasible(&cfg, seed);
        if inst.jobs().is_empty() {
            return Ok(());
        }
        assert_all_variants_match(&inst)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn vub_heavy_nested_instances_preserve_lp1_exactly(
        seed in 0u64..1_000_000,
        n in 6usize..16,
        g in 2usize..5,
        fan_in in 2usize..5,
        horizon in 16i64..40,
    ) {
        // The VUB stress family: laminar nested windows with `fan_in` jobs
        // per window (after Cao et al., arXiv:2207.12507) maximize the
        // per-interval job fan-in, i.e. the number of `x ≤ Y` caps per key.
        let cfg = VubHeavyConfig { n, g, horizon, max_len: 4, fan_in };
        let inst = vub_heavy(&cfg, seed);
        if inst.jobs().is_empty() {
            return Ok(());
        }
        assert_all_variants_match(&inst)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn component_sharding_preserves_lp1_exactly(
        seed in 0u64..1_000_000,
        components in 1usize..7,
        jobs_per in 1usize..5,
        g in 1usize..4,
        span in 6i64..14,
        gap in 1i64..5,
    ) {
        // The decomposition stress family: `components` isolated clusters
        // (degenerate corners included — a single cluster collapses Auto to
        // the monolithic path, and one job per cluster makes every
        // component a singleton). `DecomposeMode::Auto` must reproduce the
        // monolithic `Off` objective bit for bit under every
        // BoundsMode × VubMode encoding, and the stitched per-slot `y`
        // must stay a feasible fractional opening.
        let cfg = ManyComponentsConfig {
            components,
            jobs_per_component: jobs_per,
            g,
            span,
            gap,
            max_len: 3,
            slack_factor: 1.0,
        };
        let inst = many_components(&cfg, seed);
        if inst.jobs().is_empty() {
            return Ok(());
        }
        let oracle = solve_active_lp_with(&inst, &LpOptions::pr3_monolithic())
            .expect("instances are feasible by construction");
        for bounds in [BoundsMode::Rows, BoundsMode::Implicit] {
            for vub in [VubMode::Rows, VubMode::Implicit] {
                for decompose in [DecomposeMode::Off, DecomposeMode::Auto] {
                    let opts = LpOptions { bounds, vub, decompose, ..LpOptions::default() };
                    let lp = solve_active_lp_with(&inst, &opts).unwrap();
                    prop_assert_eq!(lp.objective, oracle.objective, "{:?}", opts);
                    let mut sum = Rat::ZERO;
                    for y in &lp.y {
                        prop_assert!(y.signum() >= 0 && *y <= Rat::ONE, "{:?}", opts);
                        sum = sum.add(y);
                    }
                    prop_assert_eq!(
                        sum,
                        oracle.objective,
                        "{:?}: stitched Σy must equal the objective",
                        opts
                    );
                    // Under the default encodings, certify the stitched y
                    // actually supports a fractional schedule (LP2).
                    if bounds == BoundsMode::Implicit && vub == VubMode::Implicit {
                        prop_assert!(
                            fractional_feasible(&inst, &lp.slots, &lp.y),
                            "{:?}: stitched y must be LP2-feasible",
                            opts
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn single_super_slot_instances_preserve_lp1_exactly(
        seed in 0u64..1_000_000,
        n in 2usize..8,
        g in 2usize..5,
        width in 6i64..14,
    ) {
        // Every job shares the window (0, width]: the coalesced model has a
        // single super-slot, so the entire capacity structure lives in the
        // variable bound Y ≤ width.
        let mut triples = Vec::new();
        let mut used = 0i64;
        for i in 0..n {
            let len = 1 + (seed >> (i % 16)) as i64 % width.min(4);
            if used + len > g as i64 * width {
                break;
            }
            used += len;
            triples.push((0i64, width, len));
        }
        if triples.is_empty() {
            return Ok(());
        }
        let inst = abt_core::Instance::from_triples(triples, g).unwrap();
        assert_all_variants_match(&inst)?;
    }
}

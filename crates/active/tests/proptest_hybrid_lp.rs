//! Differential property tests for the PR-1 LP pipeline: on feasible
//! random active-time instances, the coalesced/hybrid configurations must
//! reproduce the seed configuration (per-slot model, pure exact-rational
//! simplex) bit for bit on status and objective, and the disaggregated
//! per-slot `y` must stay a valid fractional opening.

use abt_active::{solve_active_lp_with, LpBackend, LpOptions};
use abt_lp::Rat;
use abt_workloads::{random_active_feasible, RandomConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn hybrid_and_coalescing_preserve_lp1_exactly(
        seed in 0u64..1_000_000,
        n in 4usize..14,
        g in 1usize..4,
        horizon in 10i64..26,
        max_len in 1i64..5,
    ) {
        let cfg = RandomConfig { n, g, horizon, max_len, slack_factor: 1.0 };
        let inst = random_active_feasible(&cfg, seed);
        if inst.jobs().is_empty() {
            return Ok(());
        }
        let seed_lp = solve_active_lp_with(&inst, &LpOptions::seed_exact())
            .expect("instances are feasible by construction");
        let variants = [
            LpOptions { backend: LpBackend::Exact, coalesce: true },
            LpOptions { backend: LpBackend::Hybrid, coalesce: false },
            LpOptions::default(),
        ];
        for opts in variants {
            let lp = solve_active_lp_with(&inst, &opts).unwrap();
            prop_assert_eq!(lp.objective, seed_lp.objective, "{:?}", opts);
            prop_assert_eq!(lp.slots.len(), seed_lp.slots.len());
            let mut sum = Rat::ZERO;
            for y in &lp.y {
                prop_assert!(y.signum() >= 0 && *y <= Rat::ONE, "{:?}", opts);
                sum = sum.add(y);
            }
            prop_assert_eq!(sum, seed_lp.objective, "{:?}: Σy must equal the objective", opts);
        }
    }
}

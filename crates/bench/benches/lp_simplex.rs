//! B4 — `lp_simplex`: the LP1 hot path across solver generations. Compares
//! the seed configuration (per-slot LP1, explicit bound rows, pure
//! exact-rational simplex), the PR-1 default (coalesced super-slots, dense
//! `f64`-first hybrid), the PR-2 default (`revised_bounds`: implicit
//! constant bounds, `x ≤ Y` caps as rows), the PR-3 default
//! (`vub_implicit`: VUB-aware revised simplex, no cap rows, monolithic),
//! and the current default (`vub_decomposed`: the same solver behind
//! interval-graph component sharding) on `random_active_feasible`
//! instances.
//!
//! The size dimension covers n ∈ {40, 200, 1000}; configurations whose
//! dense passes are no longer practical at a size are skipped there (the
//! seed exact solver past n = 40, the dense hybrids past n = 200).

use abt_active::{solve_active_lp_with, BoundsMode, LpBackend, LpOptions};
use abt_workloads::{random_active_feasible, RandomConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_lp_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_simplex");
    group.sample_size(10);
    // (name, options, max n it is still reasonable to run at). Every
    // generation runs monolithically (DecomposeMode::Off) so the columns
    // compare solver generations; `vub_decomposed` is the shipping
    // default, which additionally shards by interval-graph components.
    let variants: [(&str, LpOptions, usize); 7] = [
        ("seed_exact_perslot", LpOptions::seed_exact(), 40),
        (
            "exact_coalesced",
            LpOptions {
                backend: LpBackend::Exact,
                coalesce: true,
                bounds: BoundsMode::Rows,
                ..LpOptions::pr3_monolithic()
            },
            40,
        ),
        ("hybrid_coalesced", LpOptions::pr1_hybrid(), 200),
        (
            "revised_rows",
            LpOptions {
                backend: LpBackend::Revised,
                coalesce: true,
                bounds: BoundsMode::Rows,
                ..LpOptions::pr2_revised_bounds()
            },
            200,
        ),
        ("revised_bounds", LpOptions::pr2_revised_bounds(), 1000),
        ("vub_implicit", LpOptions::pr3_monolithic(), 1000),
        ("vub_decomposed", LpOptions::default(), 1000),
    ];
    for &(n, g, horizon) in &[(40usize, 4usize, 100i64), (200, 4, 400), (1000, 4, 2000)] {
        let cfg = RandomConfig {
            n,
            g,
            horizon,
            max_len: 5,
            slack_factor: 1.0,
        };
        let inst = random_active_feasible(&cfg, 7);
        for (name, opts, max_n) in variants {
            if n > max_n {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(name, n), &inst, |b, inst| {
                b.iter(|| black_box(solve_active_lp_with(inst, &opts).unwrap().objective))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_lp_simplex);
criterion_main!(benches);

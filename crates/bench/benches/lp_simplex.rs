//! B4 — `lp_simplex`: the PR-1 hot path. Compares the seed configuration
//! (per-slot LP1 solved by the pure exact-rational simplex) against the
//! new default (coalesced super-slot LP1 solved by the f64-first hybrid
//! with exact verification), plus the intermediate single-lever variants,
//! on `random_active_feasible` instances.

use abt_active::{solve_active_lp_with, LpBackend, LpOptions};
use abt_workloads::{random_active_feasible, RandomConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_lp_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_simplex");
    group.sample_size(10);
    let variants = [
        (
            "seed_exact_perslot",
            LpOptions {
                backend: LpBackend::Exact,
                coalesce: false,
            },
        ),
        (
            "exact_coalesced",
            LpOptions {
                backend: LpBackend::Exact,
                coalesce: true,
            },
        ),
        (
            "hybrid_perslot",
            LpOptions {
                backend: LpBackend::Hybrid,
                coalesce: false,
            },
        ),
        ("hybrid_coalesced", LpOptions::default()),
    ];
    for &(n, g) in &[(20usize, 3usize), (40, 4)] {
        let cfg = RandomConfig {
            n,
            g,
            ..RandomConfig::default()
        };
        let inst = random_active_feasible(&cfg, 7);
        for (name, opts) in variants {
            group.bench_with_input(BenchmarkId::new(name, n), &inst, |b, inst| {
                b.iter(|| black_box(solve_active_lp_with(inst, &opts).unwrap().objective))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_lp_simplex);
criterion_main!(benches);

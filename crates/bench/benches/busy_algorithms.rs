//! B3 — busy-time algorithm benches: the four interval algorithms, the
//! span placement solvers, and the preemptive pair, across instance sizes.

use abt_busy::{
    preemptive_bounded, preemptive_unbounded, solve_flexible, span_exact, span_greedy, IntervalAlgo,
};
use abt_workloads::{random_flexible, random_interval, vm_trace, RandomConfig, VmTraceConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_interval_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval_algorithms");
    group.sample_size(10);
    for &n in &[50usize, 200, 800] {
        let cfg = RandomConfig {
            n,
            g: 4,
            horizon: 3 * n as i64,
            max_len: 25,
            slack_factor: 0.0,
        };
        let inst = random_interval(&cfg, 13);
        for algo in IntervalAlgo::all() {
            group.bench_with_input(BenchmarkId::new(algo.name(), n), &n, |b, _| {
                b.iter(|| {
                    black_box(
                        solve_flexible(&inst, algo)
                            .unwrap()
                            .schedule
                            .total_busy_time(&inst),
                    )
                })
            });
        }
    }
    group.finish();
}

fn bench_span_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("span_placement");
    group.sample_size(10);
    for &n in &[12usize, 18, 24] {
        let cfg = RandomConfig {
            n,
            g: 2,
            horizon: 60,
            max_len: 8,
            slack_factor: 1.5,
        };
        let inst = random_flexible(&cfg, 31);
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            b.iter(|| black_box(span_exact(&inst).unwrap().cost))
        });
    }
    for &n in &[100usize, 1000] {
        let cfg = RandomConfig {
            n,
            g: 2,
            horizon: 4 * n as i64,
            max_len: 8,
            slack_factor: 1.5,
        };
        let inst = random_flexible(&cfg, 31);
        group.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, _| {
            b.iter(|| black_box(span_greedy(&inst).cost))
        });
    }
    group.finish();
}

fn bench_preemptive(c: &mut Criterion) {
    let mut group = c.benchmark_group("preemptive");
    for &n in &[50usize, 200, 800] {
        let cfg = VmTraceConfig {
            n,
            ..Default::default()
        };
        let inst = vm_trace(&cfg, 23);
        group.bench_with_input(BenchmarkId::new("unbounded_exact", n), &n, |b, _| {
            b.iter(|| black_box(preemptive_unbounded(&inst).cost))
        });
        group.bench_with_input(BenchmarkId::new("bounded_2approx", n), &n, |b, _| {
            b.iter(|| black_box(preemptive_bounded(&inst).total_busy_time()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_interval_algorithms,
    bench_span_solvers,
    bench_preemptive
);
criterion_main!(benches);

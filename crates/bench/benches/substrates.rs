//! B1 — substrate benches: max-flow feasibility graphs, the exact-rational
//! simplex on LP1, interval algebra, and track extraction.

use abt_active::{feasible_on, solve_active_lp};
use abt_busy::tracks::longest_track;
use abt_core::{DemandProfile, Interval, IntervalSet};
use abt_workloads::{random_active_feasible, random_interval, RandomConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_flow_feasibility(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_feasibility");
    for &n in &[20usize, 60, 180] {
        let cfg = RandomConfig {
            n,
            g: 3,
            horizon: 2 * n as i64,
            max_len: 8,
            slack_factor: 1.0,
        };
        let inst = random_active_feasible(&cfg, 42);
        let slots: Vec<i64> = (1..=inst.max_deadline()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(feasible_on(&inst, &slots)))
        });
    }
    group.finish();
}

fn bench_simplex_lp1(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex_lp1_exact_rational");
    group.sample_size(10);
    for &n in &[6usize, 10, 14] {
        let cfg = RandomConfig {
            n,
            g: 2,
            horizon: 18,
            max_len: 4,
            slack_factor: 1.0,
        };
        let inst = random_active_feasible(&cfg, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(solve_active_lp(&inst).unwrap().objective))
        });
    }
    group.finish();
}

fn bench_interval_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval_set_union");
    for &n in &[100usize, 1000, 10000] {
        let ivs: Vec<Interval> = (0..n as i64)
            .map(|i| Interval::new(i * 7 % 5000, i * 7 % 5000 + 1 + i % 40))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(IntervalSet::from_intervals(ivs.iter().copied()).measure()))
        });
    }
    group.finish();
}

fn bench_demand_profile(c: &mut Criterion) {
    let mut group = c.benchmark_group("demand_profile");
    for &n in &[100usize, 1000, 10000] {
        let cfg = RandomConfig {
            n,
            g: 4,
            horizon: 4 * n as i64,
            max_len: 30,
            slack_factor: 0.0,
        };
        let inst = random_interval(&cfg, 5);
        let ivs: Vec<Interval> = inst.jobs().iter().map(|j| j.window()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(DemandProfile::new(&ivs).cost(4)))
        });
    }
    group.finish();
}

fn bench_longest_track(c: &mut Criterion) {
    let mut group = c.benchmark_group("longest_track");
    for &n in &[100usize, 1000, 10000] {
        let cfg = RandomConfig {
            n,
            g: 4,
            horizon: 4 * n as i64,
            max_len: 30,
            slack_factor: 0.0,
        };
        let inst = random_interval(&cfg, 11);
        let ids: Vec<usize> = (0..n).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(longest_track(&inst, &ids).len()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_flow_feasibility,
    bench_simplex_lp1,
    bench_interval_set,
    bench_demand_profile,
    bench_longest_track
);
criterion_main!(benches);

//! B2 — active-time algorithm benches: the minimal-feasible 3-approx, the
//! LP-rounding 2-approx, the exact unit-job greedy, and the B&B optimum on
//! small instances.

use abt_active::{
    exact_active_time, exact_unit_active_time, lp_rounding, minimal_feasible, ClosingOrder,
};
use abt_workloads::{random_active_feasible, random_unit, RandomConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_minimal_feasible(c: &mut Criterion) {
    let mut group = c.benchmark_group("minimal_feasible");
    group.sample_size(10);
    for &n in &[10usize, 20, 40] {
        let cfg = RandomConfig {
            n,
            g: 3,
            horizon: 3 * n as i64,
            max_len: 6,
            slack_factor: 1.0,
        };
        let inst = random_active_feasible(&cfg, 21);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    minimal_feasible(&inst, ClosingOrder::LeftToRight)
                        .unwrap()
                        .slots
                        .len(),
                )
            })
        });
    }
    group.finish();
}

fn bench_lp_rounding(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_rounding");
    group.sample_size(10);
    for &n in &[6usize, 10, 14] {
        let cfg = RandomConfig {
            n,
            g: 2,
            horizon: 18,
            max_len: 4,
            slack_factor: 1.0,
        };
        let inst = random_active_feasible(&cfg, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(lp_rounding(&inst).unwrap().cost))
        });
    }
    group.finish();
}

fn bench_unit_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("unit_exact_greedy");
    for &n in &[50usize, 200, 800] {
        let cfg = RandomConfig {
            n,
            g: 4,
            horizon: n as i64,
            max_len: 10,
            slack_factor: 0.0,
        };
        let inst = random_unit(&cfg, 9);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| match exact_unit_active_time(&inst) {
                Ok(r) => black_box(r.slots.len()),
                Err(_) => 0,
            })
        });
    }
    group.finish();
}

fn bench_exact_bnb(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_branch_and_bound");
    group.sample_size(10);
    for &n in &[6usize, 8, 10] {
        let cfg = RandomConfig {
            n,
            g: 2,
            horizon: 14,
            max_len: 4,
            slack_factor: 1.0,
        };
        let inst = random_active_feasible(&cfg, 17);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(exact_active_time(&inst, Some(100_000_000)).unwrap().nodes))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_minimal_feasible,
    bench_lp_rounding,
    bench_unit_exact,
    bench_exact_bnb
);
criterion_main!(benches);

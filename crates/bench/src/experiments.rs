//! The experiment suite: one function per paper artifact (see DESIGN.md §4
//! for the index). Each returns an [`ExperimentReport`] whose table is the
//! regenerated figure/claim; `EXPERIMENTS.md` records this output.

#![allow(clippy::type_complexity)] // ad-hoc closures over small stat tuples

use crate::parallel::parallel_map;
use crate::table::{ratio, Table};
use abt_active::{
    exact_active_time, fractional_feasible, is_minimal, lp_rounding, minimal_feasible, right_shift,
    schedule_on, solve_active_lp, ClosingOrder,
};
use abt_busy::placement_from_starts;
use abt_busy::{
    alicherry_bhatia_run, busy_lp_telemetry, exact_busy_time, first_fit, greedy_tracking,
    kumar_rudra_run, preemptive_bounded, preemptive_lower_bound, preemptive_unbounded,
    solve_flexible, solve_with_placement, span_place, FirstFitOrder, IntervalAlgo,
};
use abt_core::{busy_lower_bounds, within_factor, DemandProfile, Frac, Instance};
use abt_lp::Rat;
use abt_workloads::{
    busy_g_sweep, busy_laminar_nested, busy_release_stream, fig10_flexible_factor4, fig1_example,
    fig3_minimal_tight, fig6_greedy_tracking_tight, fig8_interval_tight, fig9_dp_profile_tight,
    integrality_gap, optical_trace, random_active_feasible, random_clique, random_interval,
    random_laminar, random_proper, vm_trace, BusyLaminarConfig, BusyStreamConfig,
    OpticalTraceConfig, RandomConfig, VmTraceConfig,
};

/// One experiment's regenerated artifact.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Identifier (`e1` … `e23`).
    pub id: &'static str,
    /// Paper artifact it reproduces.
    pub title: String,
    /// The claim being checked.
    pub claim: String,
    /// The regenerated table.
    pub table: Table,
    /// Pass/fail style observations.
    pub notes: Vec<String>,
    /// Experiment-defined headline ratio, copied into the experiment's
    /// `BENCH_lp.json` row (`e21` reports its Auto-vs-Off LP1 speedup
    /// here); `None` for experiments without one.
    pub speedup: Option<f64>,
    /// Per-algorithm busy-time summaries, copied into the experiment's
    /// `BENCH_lp.json` row (`busy_algos`; the `LpRounding` entry also
    /// becomes the row's headline `busy_cost`/`busy_ratio`). Empty for
    /// experiments without a gated busy sweep (everything but E24/E25).
    pub busy: Vec<BusyAlgoSummary>,
}

/// One algorithm's aggregate over a busy experiment's instance families:
/// total cost and the worst observed cost/lower-bound ratio. Costs are
/// exact integers and the instance streams are seeded, so both values
/// are bit-deterministic and `perf_gate` can compare them across runs.
#[derive(Debug, Clone)]
pub struct BusyAlgoSummary {
    /// `IntervalAlgo::name()` of the algorithm.
    pub algo: String,
    /// Total busy time summed over every instance of the experiment.
    pub cost: u64,
    /// Max over instances of `cost / busy_lower_bounds(inst).best()`.
    pub ratio: f64,
}

impl ExperimentReport {
    /// Renders the report as Markdown.
    pub fn to_markdown(&self) -> String {
        let mut s = format!(
            "### {} — {}\n\n*Claim:* {}\n\n",
            self.id.to_uppercase(),
            self.title,
            self.claim
        );
        s.push_str(&self.table.to_markdown());
        if !self.notes.is_empty() {
            s.push('\n');
            for n in &self.notes {
                s.push_str(&format!("- {n}\n"));
            }
        }
        s
    }
}

/// E1 — Fig. 1: the seven-job example, `g = 3`.
pub fn e1() -> ExperimentReport {
    let inst = fig1_example();
    let exact = exact_busy_time(&inst, None).unwrap();
    let lb = busy_lower_bounds(&inst);
    let mut table = Table::new(["algorithm", "busy time", "machines", "vs OPT"]);
    table.row([
        "exact (B&B)".to_string(),
        exact.cost.to_string(),
        exact.schedule.machine_count().to_string(),
        "1.0000".to_string(),
    ]);
    let mut notes = vec![format!(
        "lower bounds: mass={} span={} profile={}; OPT={}",
        lb.mass, lb.span, lb.profile, exact.cost
    )];
    for algo in IntervalAlgo::all() {
        let s = algo.run(&inst).unwrap();
        s.validate(&inst).unwrap();
        let c = s.total_busy_time(&inst);
        table.row([
            algo.name().to_string(),
            c.to_string(),
            s.machine_count().to_string(),
            ratio(c, exact.cost),
        ]);
    }
    notes.push(format!(
        "optimal packing uses {} machines as in the figure",
        exact.schedule.machine_count()
    ));
    ExperimentReport {
        id: "e1",
        busy: Vec::new(),
        speedup: None,
        title: "Fig. 1 — optimal packing of seven interval jobs (g = 3)".into(),
        claim: "the instance packs onto two machines; every algorithm stays within its factor"
            .into(),
        table,
        notes,
    }
}

/// E2 — Fig. 3 + Theorem 1: minimal feasible solutions approach `3·OPT`.
pub fn e2() -> ExperimentReport {
    let gs = vec![3usize, 4, 6, 8, 12, 16, 24, 32];
    let rows = parallel_map(gs, |g| {
        let f = fig3_minimal_tight(g);
        let paper_ok = schedule_on(&f.instance, &f.adversarial_slots).is_some();
        // Our own minimal-feasible runs (best and worst over orders), each
        // minimal by construction; verify the worst one explicitly.
        let mut worst: Option<Vec<i64>> = None;
        let mut best = i64::MAX;
        for order in [
            ClosingOrder::LeftToRight,
            ClosingOrder::RightToLeft,
            ClosingOrder::OutsideIn,
            ClosingOrder::CenterOut,
            ClosingOrder::Shuffled(g as u64),
        ] {
            let res = minimal_feasible(&f.instance, order).unwrap();
            best = best.min(res.slots.len() as i64);
            if worst.as_ref().is_none_or(|w| res.slots.len() > w.len()) {
                worst = Some(res.slots);
            }
        }
        let worst = worst.unwrap();
        let worst_minimal = is_minimal(&f.instance, &worst);
        let opt_feasible = schedule_on(
            &f.instance,
            &((g as i64 + 1)..=(2 * g as i64)).collect::<Vec<_>>(),
        )
        .is_some();
        (
            g,
            f.opt,
            paper_ok,
            best,
            worst.len() as i64,
            worst_minimal,
            opt_feasible,
        )
    });
    let mut table = Table::new([
        "g",
        "OPT",
        "worst minimal",
        "ratio",
        "paper bound (3g-2)/g",
        "best minimal",
    ]);
    let mut notes = Vec::new();
    let mut all_ok = true;
    let mut hits_bound = true;
    for (g, opt, paper_ok, best, worst, worst_min, opt_ok) in rows {
        all_ok &= paper_ok && worst_min && opt_ok;
        hits_bound &= worst == 3 * g as i64 - 2;
        table.row([
            g.to_string(),
            opt.to_string(),
            worst.to_string(),
            ratio(worst, opt),
            format!("{:.4}", (3 * g as i64 - 2) as f64 / g as f64),
            best.to_string(),
        ]);
    }
    notes.push(format!(
        "worst-order minimal solution verified minimal; paper's 3g−2 packing verified feasible; OPT-sized set verified feasible: {}",
        if all_ok { "yes" } else { "NO (unexpected)" }
    ));
    notes.push(format!(
        "the worst closing order attains exactly 3g−2 on every g: {}",
        if hits_bound { "yes" } else { "no" }
    ));
    notes.push("ratio approaches 3 as g grows, matching Theorem 1's tightness".into());
    ExperimentReport {
        id: "e2",
        busy: Vec::new(),
        speedup: None,
        title: "Fig. 3 — tightness of the minimal-feasible 3-approximation".into(),
        claim: "a minimal feasible solution of cost 3g−2 exists while OPT = g".into(),
        table,
        notes,
    }
}

/// E3 — Fig. 4 / Lemma 3: right-shifting preserves cost and feasibility.
pub fn e3() -> ExperimentReport {
    let mut table = Table::new([
        "instance",
        "LP cost",
        "shifted cost",
        "fractionally feasible",
    ]);
    let mut notes = Vec::new();
    let mut cases: Vec<(String, Instance)> = vec![
        (
            "staggered-3".into(),
            Instance::from_triples([(0, 4, 2), (1, 3, 2), (2, 6, 1)], 2).unwrap(),
        ),
        (
            "mixed-4".into(),
            Instance::from_triples([(0, 3, 1), (0, 3, 1), (1, 5, 3), (2, 4, 1)], 2).unwrap(),
        ),
    ];
    for seed in 0..6u64 {
        let cfg = RandomConfig {
            n: 8,
            g: 2,
            horizon: 14,
            max_len: 4,
            slack_factor: 1.0,
        };
        cases.push((format!("random-{seed}"), random_active_feasible(&cfg, seed)));
    }
    // The per-instance LP1 solves are independent: fan them out.
    let results = parallel_map(cases, |(name, inst)| {
        let lp = solve_active_lp(&inst).ok()?;
        let rs = right_shift(&inst, &lp);
        let shifted_cost = rs
            .segments
            .iter()
            .fold(Rat::ZERO, |acc, s| acc.add(&s.y_sum));
        let feasible = fractional_feasible(&inst, &rs.slots, &rs.shifted_y);
        Some((name, lp.objective, shifted_cost, feasible))
    });
    let mut all_ok = true;
    for (name, objective, shifted_cost, feasible) in results.into_iter().flatten() {
        all_ok &= feasible && shifted_cost == objective;
        table.row([
            name,
            objective.to_string(),
            shifted_cost.to_string(),
            feasible.to_string(),
        ]);
    }
    notes.push(format!(
        "cost preserved and feasibility maintained on every instance: {}",
        if all_ok { "yes" } else { "NO" }
    ));
    ExperimentReport {
        id: "e3",
        busy: Vec::new(),
        speedup: None,
        title: "Fig. 4 / Lemma 3 — right-shifting the optimal LP solution".into(),
        claim: "pushing y-mass to segment ends keeps the LP feasible at unchanged cost".into(),
        table,
        notes,
    }
}

/// E4 — §3.5: the LP integrality gap `2g/(g+1) → 2`.
pub fn e4() -> ExperimentReport {
    let gs = vec![2usize, 3, 4, 5, 8, 12, 16];
    let rows = parallel_map(gs, |g| {
        let ig = integrality_gap(g);
        let lp = solve_active_lp(&ig.instance).unwrap();
        let ip = if g <= 4 {
            exact_active_time(&ig.instance, Some(50_000_000))
                .map(|r| r.slots.len() as i64)
                .ok()
        } else {
            None
        };
        (g, lp.objective, ig.lp_opt, ig.ip_opt, ip)
    });
    let mut table = Table::new([
        "g",
        "LP (measured)",
        "LP (paper g+1)",
        "IP (paper 2g)",
        "IP (exact)",
        "gap",
    ]);
    let mut notes = Vec::new();
    let mut lp_ok = true;
    for (g, lp_measured, lp_paper, ip_paper, ip_exact) in rows {
        lp_ok &= lp_measured == Rat::from_int(lp_paper);
        if let Some(ip) = ip_exact {
            lp_ok &= ip == ip_paper;
        }
        table.row([
            g.to_string(),
            lp_measured.to_string(),
            lp_paper.to_string(),
            ip_paper.to_string(),
            ip_exact.map_or("-".into(), |v| v.to_string()),
            format!("{:.4}", ip_paper as f64 / lp_paper as f64),
        ]);
    }
    notes.push(format!(
        "measured LP optimum equals g+1 on every g (and exact IP equals 2g where checked): {}",
        if lp_ok { "yes" } else { "NO" }
    ));
    notes.push("gap = 2g/(g+1) → 2, so 2 is the best factor achievable from LP1".into());
    ExperimentReport {
        id: "e4",
        busy: Vec::new(),
        speedup: None,
        title: "§3.5 — integrality gap of the active-time LP".into(),
        claim: "IP/LP = 2g/(g+1) on the gap family".into(),
        table,
        notes,
    }
}

/// E5 — Theorem 2: LP rounding stays within 2·LP (and the ledger's
/// machinery — dependents/trios/fillers — is exercised).
pub fn e5() -> ExperimentReport {
    let mut grid = Vec::new();
    for seed in 0..12u64 {
        for (n, g, horizon, slack) in [
            (8, 2, 16, 1.0),
            (10, 3, 20, 0.5),
            (12, 2, 24, 2.0),
            (14, 4, 20, 1.5),
        ] {
            grid.push((seed, n, g, horizon, slack));
        }
    }
    let results = parallel_map(grid, |(seed, n, g, horizon, slack)| {
        let cfg = RandomConfig {
            n,
            g,
            horizon,
            max_len: 5,
            slack_factor: slack,
        };
        let inst = random_active_feasible(&cfg, seed);
        let out = lp_rounding(&inst).ok()?;
        out.schedule.validate(&inst).unwrap();
        let exact = if inst.max_deadline() <= 18 {
            exact_active_time(&inst, Some(20_000_000))
                .ok()
                .map(|r| r.slots.len() as i64)
        } else {
            None
        };
        Some((out, exact))
    });
    let mut table = Table::new([
        "family",
        "instances",
        "max cost/LP",
        "max cost/OPT",
        "anomalies",
        "repairs",
    ]);
    let mut worst_lp = Frac::int(0);
    let mut worst_opt = Frac::int(0);
    let mut count = 0usize;
    let mut anomalies = 0usize;
    let mut repairs = 0usize;
    let mut charge_totals = [0usize; 5];
    for r in results.into_iter().flatten() {
        let (out, exact) = r;
        count += 1;
        anomalies += out.anomalies;
        repairs += out.repair_slots;
        let lp_frac = Frac::new(out.lp_objective.numer(), out.lp_objective.denom());
        let cost_over_lp = Frac::int(out.cost).mul(Frac::new(lp_frac.den(), lp_frac.num()));
        if cost_over_lp > worst_lp {
            worst_lp = cost_over_lp;
        }
        if let Some(opt) = exact {
            let f = Frac::ratio(out.cost, opt);
            if f > worst_opt {
                worst_opt = f;
            }
        }
        for (i, (_, c)) in out.charges.iter().take(5).enumerate() {
            charge_totals[i] += c;
        }
    }
    table.row([
        "random feasible".to_string(),
        count.to_string(),
        format!("{:.4}", worst_lp.to_f64()),
        format!("{:.4}", worst_opt.to_f64()),
        anomalies.to_string(),
        repairs.to_string(),
    ]);
    let notes =
        vec![
            format!(
            "charge tally — fully open: {}, self(half): {}, dependents: {}, trios: {}, fillers: {}",
            charge_totals[0], charge_totals[1], charge_totals[2], charge_totals[3], charge_totals[4]
        ),
            "max cost/LP ≤ 2 with zero anomalies and zero repairs, as Theorem 2 requires".into(),
        ];
    ExperimentReport {
        id: "e5",
        busy: Vec::new(),
        speedup: None,
        title: "Theorem 2 — LP rounding 2-approximation".into(),
        claim: "rounded cost ≤ 2·LP ≤ 2·OPT on every instance".into(),
        table,
        notes,
    }
}

/// E6 — Figs. 6–7: GreedyTracking's factor 3 is tight.
pub fn e6() -> ExperimentReport {
    let gs = vec![2usize, 3, 4, 6, 8, 16, 32];
    let rows = parallel_map(gs, |g| {
        let f = fig6_greedy_tracking_tight(g, 10);
        let adv_ratio = Frac::ratio(f.adversarial_cost, f.opt_upper);
        // Our deterministic GreedyTracking on the adversarial placement.
        let placement = placement_from_starts(&f.instance, f.adversarial_starts.clone()).unwrap();
        let gt = solve_with_placement(&f.instance, &placement, IntervalAlgo::GreedyTracking)
            .unwrap()
            .schedule
            .total_busy_time(&f.instance);
        (g, f.adversarial_cost, f.opt_upper, adv_ratio, gt)
    });
    let mut table = Table::new([
        "g",
        "Fig.7 bundling",
        "OPT upper",
        "ratio",
        "paper limit",
        "our GT (same placement)",
    ]);
    for (g, adv, opt, r, gt) in rows {
        table.row([
            g.to_string(),
            adv.to_string(),
            opt.to_string(),
            format!("{:.4}", r.to_f64()),
            "3.0000".to_string(),
            gt.to_string(),
        ]);
    }
    let notes = vec![
        "the Fig. 7 bundling is a valid union-of-g-tracks schedule; its ratio approaches 3 as g grows and ε→0".into(),
        "our deterministic tie-breaking extracts aligned tracks and lands well below the worst case — the gap is a tie-breaking artifact the paper's analysis allows".into(),
    ];
    ExperimentReport {
        id: "e6",
        busy: Vec::new(),
        speedup: None,
        title: "Figs. 6–7 — tightness of GreedyTracking's factor 3".into(),
        claim: "a valid GreedyTracking output costs 3g(2−ε) against OPT ≤ 2g + 2 − ε".into(),
        table,
        notes,
    }
}

/// E7 — Fig. 8 + Theorem 3/8: KR and AB are 2-approximate on interval
/// jobs, and the factor is approachable.
pub fn e7() -> ExperimentReport {
    let eps_list = vec![(400i64, 100i64), (100, 30), (20, 5), (4, 1)];
    let rows = parallel_map(eps_list, |(eps, eps1)| {
        let f = fig8_interval_tight(eps, eps1);
        let exact = exact_busy_time(&f.instance, None).unwrap();
        let kr = kumar_rudra_run(&f.instance).unwrap();
        let ab = alicherry_bhatia_run(&f.instance).unwrap();
        let krc = kr.schedule.total_busy_time(&f.instance);
        let abc = ab.schedule.total_busy_time(&f.instance);
        (eps, eps1, f.opt, exact.cost, f.bad_output, krc, abc)
    });
    let mut table = Table::new([
        "ε (ticks)",
        "ε′",
        "OPT (paper)",
        "OPT (exact)",
        "paper bad output",
        "bad/OPT",
        "KR",
        "AB",
    ]);
    let mut opt_ok = true;
    for (eps, eps1, opt_paper, opt_exact, bad, krc, abc) in rows {
        opt_ok &= opt_paper == opt_exact;
        table.row([
            eps.to_string(),
            eps1.to_string(),
            opt_paper.to_string(),
            opt_exact.to_string(),
            bad.to_string(),
            ratio(bad, opt_exact),
            krc.to_string(),
            abc.to_string(),
        ]);
    }
    let notes = vec![
        format!("exact OPT equals the paper's 1+ε on every ε: {}", if opt_ok { "yes" } else { "NO" }),
        "the paper's possible output approaches ratio 2 as ε→0; both implementations stay ≤ 2×profile by construction".into(),
    ];
    ExperimentReport {
        id: "e7",
        busy: Vec::new(),
        speedup: None,
        title: "Fig. 8 — tightness of the interval 2-approximations".into(),
        claim: "KR/AB never exceed 2×profile; an output of cost 2+ε+ε′ vs OPT 1+ε is possible"
            .into(),
        table,
        notes,
    }
}

/// E8 — Fig. 9 / Lemma 7: the span-optimal placement's demand profile is
/// within (and can approach) 2× the optimal structure's profile.
pub fn e8() -> ExperimentReport {
    let gs = vec![2usize, 3, 4, 6, 8, 12];
    let rows = parallel_map(gs, |g| {
        let f = fig9_dp_profile_tight(g, 4);
        let adv = f.instance.fix_starts(&f.adversarial_starts).unwrap();
        let fri = f.instance.fix_starts(&f.friendly_starts).unwrap();
        let profile = |inst: &Instance| {
            DemandProfile::new(&inst.jobs().iter().map(|j| j.window()).collect::<Vec<_>>()).cost(g)
        };
        let adv_span = adv.interval_span().unwrap();
        let fri_span = fri.interval_span().unwrap();
        // Our span solver should find the adversarial (smaller) span.
        let our = span_place(&f.instance);
        (
            g,
            adv_span,
            fri_span,
            profile(&adv),
            profile(&fri),
            our.cost,
        )
    });
    let mut table = Table::new([
        "g",
        "span (DP/adversarial)",
        "span (friendly)",
        "profile (DP)",
        "profile (friendly)",
        "profile ratio",
        "our solver span",
    ]);
    let mut solver_ok = true;
    for (g, advs, fris, advp, frip, ours) in rows {
        // The exact solver applies up to 127 jobs (g ≤ 8 here); beyond
        // that the greedy fallback may land on the friendly placement.
        if g <= 8 {
            solver_ok &= ours <= advs;
        }
        table.row([
            g.to_string(),
            advs.to_string(),
            fris.to_string(),
            advp.to_string(),
            frip.to_string(),
            ratio(advp, frip),
            ours.to_string(),
        ]);
    }
    let notes = vec![
        format!(
            "our exact placement solver attains the span-optimal (adversarial) cost wherever it applies (n ≤ 127, i.e. g ≤ 8): {}",
            if solver_ok { "yes" } else { "NO" }
        ),
        "profile(DP)/profile(friendly) climbs towards 2 with g, reproducing Lemma 7's tight family".into(),
    ];
    ExperimentReport {
        id: "e8",
        busy: Vec::new(),
        speedup: None,
        title: "Fig. 9 / Lemma 7 — demand profile of the span-optimal placement".into(),
        claim: "span minimization can double the demand profile, but never worse".into(),
        table,
        notes,
    }
}

/// E9 — Figs. 10–12 / Theorem 10: the KR/AB flexible pipeline approaches 4.
pub fn e9() -> ExperimentReport {
    let gs = vec![3usize, 4, 6, 8, 12, 16];
    let rows = parallel_map(gs, |g| {
        let f = fig10_flexible_factor4(g, 60, 20);
        f.bad_schedule.validate(&f.instance).unwrap();
        let placement = placement_from_starts(&f.instance, f.adversarial_starts.clone()).unwrap();
        let mut costs = Vec::new();
        for algo in [IntervalAlgo::KumarRudra, IntervalAlgo::AlicherryBhatia] {
            let out = solve_with_placement(&f.instance, &placement, algo).unwrap();
            costs.push(out.schedule.total_busy_time(&f.instance));
        }
        (g, f.opt_upper, f.bad_cost, costs)
    });
    let mut table = Table::new([
        "g",
        "OPT upper",
        "Fig.12 bundling",
        "Fig.12/OPT",
        "paper limit",
        "our KR",
        "our AB",
    ]);
    for (g, opt, bad, costs) in rows {
        table.row([
            g.to_string(),
            opt.to_string(),
            bad.to_string(),
            ratio(bad, opt),
            "4.0000".to_string(),
            costs[0].to_string(),
            costs[1].to_string(),
        ]);
    }
    let notes = vec![
        "the Fig. 12 bundling is a valid schedule a KR/AB run may output (two demand bands × two machines per gadget, each kept busy a full unit); its ratio climbs to 4 with g".into(),
        "our deterministic level assignment packs the unit layer into one band, so the implemented KR/AB land near 2× instead — the same tie-breaking slack as E6".into(),
    ];
    ExperimentReport {
        id: "e9",
        busy: Vec::new(),
        speedup: None,
        title: "Figs. 10–12 / Theorem 10 — flexible pipeline factor 4".into(),
        claim: "KR/AB after span placement can approach 4×OPT; never exceed it".into(),
        table,
        notes,
    }
}

/// E10 — head-to-head on active time: minimal-feasible orders vs LP
/// rounding vs exact.
pub fn e10() -> ExperimentReport {
    let mut grid = Vec::new();
    for seed in 0..10u64 {
        for (g, slack) in [(2usize, 0.5f64), (3, 1.0), (4, 2.0)] {
            grid.push((seed, g, slack));
        }
    }
    let rows = parallel_map(grid, |(seed, g, slack)| {
        let cfg = RandomConfig {
            n: 10,
            g,
            horizon: 16,
            max_len: 4,
            slack_factor: slack,
        };
        let inst = random_active_feasible(&cfg, seed);
        let exact = exact_active_time(&inst, Some(20_000_000)).ok()?.slots.len() as i64;
        let round = lp_rounding(&inst).ok()?.cost;
        let mut minimal_best = i64::MAX;
        let mut minimal_worst = 0i64;
        for order in [
            ClosingOrder::LeftToRight,
            ClosingOrder::RightToLeft,
            ClosingOrder::OutsideIn,
            ClosingOrder::CenterOut,
            ClosingOrder::Shuffled(seed),
        ] {
            let c = minimal_feasible(&inst, order).ok()?.slots.len() as i64;
            minimal_best = minimal_best.min(c);
            minimal_worst = minimal_worst.max(c);
        }
        Some((exact, round, minimal_best, minimal_worst))
    });
    let mut table = Table::new([
        "metric",
        "LP rounding",
        "minimal (best order)",
        "minimal (worst order)",
    ]);
    let data: Vec<_> = rows.into_iter().flatten().collect();
    let mean = |f: &dyn Fn(&(i64, i64, i64, i64)) -> f64| -> f64 {
        data.iter().map(f).sum::<f64>() / data.len() as f64
    };
    table.row([
        "mean cost / OPT".to_string(),
        format!("{:.4}", mean(&|r| r.1 as f64 / r.0 as f64)),
        format!("{:.4}", mean(&|r| r.2 as f64 / r.0 as f64)),
        format!("{:.4}", mean(&|r| r.3 as f64 / r.0 as f64)),
    ]);
    let max = |f: &dyn Fn(&(i64, i64, i64, i64)) -> f64| -> f64 {
        data.iter().map(f).fold(0.0, f64::max)
    };
    table.row([
        "max cost / OPT".to_string(),
        format!("{:.4}", max(&|r| r.1 as f64 / r.0 as f64)),
        format!("{:.4}", max(&|r| r.2 as f64 / r.0 as f64)),
        format!("{:.4}", max(&|r| r.3 as f64 / r.0 as f64)),
    ]);
    let wins = data.iter().filter(|r| r.1 < r.2).count();
    let notes = vec![
        format!("{} instances solved to optimality for reference", data.len()),
        format!("LP rounding strictly beats the best minimal order on {wins} of {} instances", data.len()),
        "rounding stays ≤ 2·OPT, minimal stays ≤ 3·OPT, matching Theorems 1–2; in the mean both are far better".into(),
    ];
    ExperimentReport {
        id: "e10",
        busy: Vec::new(),
        speedup: None,
        title: "Active time head-to-head (random feasible families)".into(),
        claim: "LP rounding (≤2) dominates minimal-feasible (≤3) in the worst case".into(),
        table,
        notes,
    }
}

/// E11 — head-to-head on busy time: the four interval algorithms across
/// families and traces.
pub fn e11() -> ExperimentReport {
    struct Family {
        name: &'static str,
        instances: Vec<Instance>,
    }
    let mut families = Vec::new();
    families.push(Family {
        name: "uniform interval",
        instances: (0..8)
            .map(|s| {
                random_interval(
                    &RandomConfig {
                        n: 40,
                        g: 3,
                        horizon: 120,
                        max_len: 20,
                        slack_factor: 0.0,
                    },
                    s,
                )
            })
            .collect(),
    });
    families.push(Family {
        name: "proper",
        instances: (0..8)
            .map(|s| {
                random_proper(
                    &RandomConfig {
                        n: 30,
                        g: 3,
                        horizon: 90,
                        max_len: 12,
                        slack_factor: 0.0,
                    },
                    s,
                )
            })
            .collect(),
    });
    families.push(Family {
        name: "clique",
        instances: (0..8)
            .map(|s| {
                random_clique(
                    &RandomConfig {
                        n: 30,
                        g: 3,
                        horizon: 80,
                        max_len: 0,
                        slack_factor: 0.0,
                    },
                    s,
                )
            })
            .collect(),
    });
    families.push(Family {
        name: "laminar",
        instances: (0..8)
            .map(|s| {
                random_laminar(
                    &RandomConfig {
                        n: 24,
                        g: 3,
                        horizon: 96,
                        max_len: 0,
                        slack_factor: 0.0,
                    },
                    s,
                )
            })
            .collect(),
    });
    families.push(Family {
        name: "optical trace",
        instances: (0..8)
            .map(|s| optical_trace(&OpticalTraceConfig::default(), s))
            .collect(),
    });
    families.push(Family {
        name: "VM trace (flexible)",
        instances: (0..6)
            .map(|s| {
                vm_trace(
                    &VmTraceConfig {
                        n: 40,
                        ..Default::default()
                    },
                    s,
                )
            })
            .collect(),
    });

    let mut table = Table::new(["family", "algorithm", "mean cost/LB", "max cost/LB", "wins"]);
    let mut notes: Vec<String> = Vec::new();
    for fam in families {
        let algos = IntervalAlgo::all();
        // cost matrix: per instance per algo.
        let costs: Vec<Vec<i64>> = parallel_map(fam.instances.clone(), |inst| {
            algos
                .iter()
                .map(|algo| {
                    let out = solve_flexible(&inst, *algo).unwrap();
                    out.schedule.validate(&inst).unwrap();
                    out.schedule.total_busy_time(&inst)
                })
                .collect()
        });
        let lbs: Vec<i64> = fam
            .instances
            .iter()
            .map(|inst| {
                if inst.is_interval_instance() {
                    busy_lower_bounds(inst).best()
                } else {
                    let p = span_place(inst);
                    busy_lower_bounds(inst).mass.max(p.cost)
                }
            })
            .collect();
        for (ai, algo) in algos.iter().enumerate() {
            let ratios: Vec<f64> = costs
                .iter()
                .zip(&lbs)
                .map(|(c, &lb)| c[ai] as f64 / lb.max(1) as f64)
                .collect();
            let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
            let max = ratios.iter().fold(0.0f64, |a, &b| a.max(b));
            let wins = costs
                .iter()
                .filter(|c| c[ai] == *c.iter().min().unwrap())
                .count();
            table.row([
                fam.name.to_string(),
                algo.name().to_string(),
                format!("{mean:.4}"),
                format!("{max:.4}"),
                wins.to_string(),
            ]);
        }
    }
    notes.push(
        "LB = max(mass, span/OPT∞, profile); ratios stay within each algorithm's factor".into(),
    );
    notes.push("KR/AB (factor 2) usually win on interval families; GreedyTracking is competitive and wins on track-friendly (laminar/optical) inputs".into());
    ExperimentReport {
        id: "e11",
        busy: Vec::new(),
        speedup: None,
        title: "Busy time head-to-head across families and traces".into(),
        claim: "who wins where: factor-2 algorithms vs GreedyTracking vs FirstFit".into(),
        table,
        notes,
    }
}

/// E12 — §4.4: preemptive busy time (exact unbounded, 2-approx bounded).
pub fn e12() -> ExperimentReport {
    let mut grid = Vec::new();
    for seed in 0..12u64 {
        for g in [2usize, 4, 8] {
            grid.push((seed, g));
        }
    }
    let rows = parallel_map(grid, |(seed, g)| {
        let cfg = RandomConfig {
            n: 25,
            g,
            horizon: 80,
            max_len: 10,
            slack_factor: 1.0,
        };
        let inst = abt_workloads::random_flexible(&cfg, seed);
        let unbounded = preemptive_unbounded(&inst);
        let bounded = preemptive_bounded(&inst);
        bounded.validate(&inst).unwrap();
        let lb = preemptive_lower_bound(&inst);
        (g, unbounded.cost, bounded.total_busy_time(), lb)
    });
    let mut table = Table::new(["g", "OPT∞ (exact)", "bounded cost", "LB", "cost/LB"]);
    let mut worst = 0.0f64;
    for (g, unb, bnd, lb) in rows {
        let r = bnd as f64 / lb as f64;
        worst = worst.max(r);
        table.row([
            g.to_string(),
            unb.to_string(),
            bnd.to_string(),
            lb.to_string(),
            format!("{r:.4}"),
        ]);
    }
    let notes = vec![
        format!("worst bounded/LB ratio observed: {worst:.4} (Theorem 7 guarantees ≤ 2)"),
        "the unbounded greedy is exact (Theorem 6); cross-validated against the rightmost-covering oracle in unit tests".into(),
    ];
    ExperimentReport {
        id: "e12",
        busy: Vec::new(),
        speedup: None,
        title: "§4.4 — preemptive busy time".into(),
        claim: "exact greedy for unbounded g; 2-approximation for bounded g".into(),
        table,
        notes,
    }
}

/// E13 — footnote 1 special cases: proper and clique instances.
pub fn e13() -> ExperimentReport {
    let mut table = Table::new([
        "family",
        "FirstFit(len)",
        "FirstFit(release)",
        "GreedyTracking",
        "KR",
        "LB",
    ]);
    let mut notes = Vec::new();
    let mut worst_release_proper = 0f64;
    for (name, instances) in [
        (
            "proper",
            (0..10)
                .map(|s| {
                    random_proper(
                        &RandomConfig {
                            n: 24,
                            g: 3,
                            horizon: 80,
                            max_len: 10,
                            slack_factor: 0.0,
                        },
                        s,
                    )
                })
                .collect::<Vec<_>>(),
        ),
        (
            "clique",
            (0..10)
                .map(|s| {
                    random_clique(
                        &RandomConfig {
                            n: 24,
                            g: 3,
                            horizon: 60,
                            max_len: 0,
                            slack_factor: 0.0,
                        },
                        s,
                    )
                })
                .collect::<Vec<_>>(),
        ),
    ] {
        for inst in &instances {
            let lb = busy_lower_bounds(inst).best();
            let ff_len = first_fit(inst, FirstFitOrder::LengthDesc)
                .unwrap()
                .total_busy_time(inst);
            let ff_rel = first_fit(inst, FirstFitOrder::ByRelease)
                .unwrap()
                .total_busy_time(inst);
            let gt = greedy_tracking(inst).unwrap().total_busy_time(inst);
            let kr = kumar_rudra_run(inst)
                .unwrap()
                .schedule
                .total_busy_time(inst);
            if name == "proper" {
                worst_release_proper = worst_release_proper.max(ff_rel as f64 / lb as f64);
                assert!(
                    within_factor(ff_rel, 2, lb),
                    "release order must be ≤2 on proper"
                );
            }
            table.row([
                name.to_string(),
                ff_len.to_string(),
                ff_rel.to_string(),
                gt.to_string(),
                kr.to_string(),
                lb.to_string(),
            ]);
        }
    }
    notes.push(format!(
        "order-by-release FirstFit stays within 2×LB on every proper instance (worst {worst_release_proper:.4}), matching footnote 1"
    ));
    ExperimentReport {
        id: "e13",
        busy: Vec::new(),
        speedup: None,
        title: "Footnote 1 — special instance classes".into(),
        claim: "FirstFit by release is 2-approximate on proper instances; cliques behave like the greedy special case".into(),
        table,
        notes,
    }
}

/// E14 — ablation: how much the closing order of the minimal-feasible
/// algorithm matters, per instance family (the knob Theorem 1 makes
/// irrelevant in the worst case but not in practice).
pub fn e14() -> ExperimentReport {
    let orders = [
        ("LeftToRight", ClosingOrder::LeftToRight),
        ("RightToLeft", ClosingOrder::RightToLeft),
        ("OutsideIn", ClosingOrder::OutsideIn),
        ("CenterOut", ClosingOrder::CenterOut),
        ("Shuffled", ClosingOrder::Shuffled(12345)),
    ];
    struct Fam {
        name: &'static str,
        instances: Vec<Instance>,
    }
    let fams = vec![
        Fam {
            name: "loose windows",
            instances: (0..10)
                .map(|s| {
                    random_active_feasible(
                        &RandomConfig {
                            n: 12,
                            g: 3,
                            horizon: 24,
                            max_len: 4,
                            slack_factor: 2.0,
                        },
                        s,
                    )
                })
                .collect(),
        },
        Fam {
            name: "tight windows",
            instances: (0..10)
                .map(|s| {
                    random_active_feasible(
                        &RandomConfig {
                            n: 12,
                            g: 3,
                            horizon: 24,
                            max_len: 4,
                            slack_factor: 0.3,
                        },
                        s,
                    )
                })
                .collect(),
        },
        Fam {
            name: "fig3 gadget (g=6)",
            instances: vec![fig3_minimal_tight(6).instance],
        },
    ];
    let mut table = Table::new(["family", "order", "mean cost", "max cost"]);
    let mut notes = Vec::new();
    for fam in fams {
        let mut best_mean = f64::INFINITY;
        let mut best_name = "";
        for (name, order) in orders {
            let costs: Vec<i64> = fam
                .instances
                .iter()
                .filter_map(|inst| minimal_feasible(inst, order).ok())
                .map(|r| r.slots.len() as i64)
                .collect();
            let mean = costs.iter().sum::<i64>() as f64 / costs.len() as f64;
            if mean < best_mean {
                best_mean = mean;
                best_name = name;
            }
            table.row([
                fam.name.to_string(),
                name.to_string(),
                format!("{mean:.2}"),
                costs.iter().max().unwrap().to_string(),
            ]);
        }
        notes.push(format!("{}: best order is {best_name}", fam.name));
    }
    notes.push(
        "every order is guaranteed ≤ 3·OPT (Theorem 1); the spread below 3 is pure heuristics"
            .into(),
    );
    ExperimentReport {
        id: "e14",
        busy: Vec::new(),
        speedup: None,
        title: "Ablation — closing orders for minimal-feasible".into(),
        claim: "Theorem 1 holds for any order; the constant in practice depends on it".into(),
        table,
        notes,
    }
}

/// E15 — ablation: GreedyTracking's tie-breaking on the Fig. 6 gadget.
/// The 3-approximation is tie-break independent; the realized constant is
/// not — randomized tie-breaks interpolate between the aligned (good) and
/// the paper's mixed (bad) track extraction.
pub fn e15() -> ExperimentReport {
    let gs = vec![2usize, 3, 4];
    let rows = parallel_map(gs, |g| {
        let f = fig6_greedy_tracking_tight(g, 10);
        let fixed = f.instance.fix_starts(&f.adversarial_starts).unwrap();
        let mut costs: Vec<i64> = Vec::new();
        for seed in 0..16u64 {
            let run = abt_busy::greedy_tracking_seeded(&fixed, seed).unwrap();
            run.schedule.validate(&fixed).unwrap();
            costs.push(run.schedule.total_busy_time(&fixed));
        }
        costs.sort_unstable();
        (g, f.opt_upper, costs)
    });
    let mut table = Table::new([
        "g",
        "OPT upper",
        "min over seeds",
        "median",
        "max",
        "max/OPT",
    ]);
    for (g, opt, costs) in rows {
        let median = costs[costs.len() / 2];
        table.row([
            g.to_string(),
            opt.to_string(),
            costs[0].to_string(),
            median.to_string(),
            costs.last().unwrap().to_string(),
            ratio(*costs.last().unwrap(), opt),
        ]);
    }
    ExperimentReport {
        id: "e15",
        busy: Vec::new(),
        speedup: None,
        title: "Ablation — GreedyTracking tie-breaking on the Fig. 6 gadget".into(),
        claim: "all tie-breaks stay ≤ 3×; the spread shows how the gadget exploits them".into(),
        table,
        notes: vec![
            "16 seeded tie-break permutations per g; every output validated and within the factor-3 guarantee".into(),
        ],
    }
}

/// E16 — the online setting (§1.3 related work): release-ordered
/// irrevocable assignment vs the offline algorithms.
pub fn e16() -> ExperimentReport {
    let mut table = Table::new([
        "family",
        "online FF",
        "offline FF(len)",
        "offline GT",
        "LB",
        "online/LB",
    ]);
    let mut worst = 0f64;
    for seed in 0..8u64 {
        let inst = random_interval(
            &RandomConfig {
                n: 30,
                g: 3,
                horizon: 90,
                max_len: 15,
                slack_factor: 0.0,
            },
            seed,
        );
        let online = abt_busy::online_first_fit(&inst).unwrap();
        online.validate(&inst).unwrap();
        let on = online.total_busy_time(&inst);
        let ff = first_fit(&inst, FirstFitOrder::LengthDesc)
            .unwrap()
            .total_busy_time(&inst);
        let gt = greedy_tracking(&inst).unwrap().total_busy_time(&inst);
        let lb = busy_lower_bounds(&inst).best();
        worst = worst.max(on as f64 / lb as f64);
        table.row([
            format!("uniform (seed {seed})"),
            on.to_string(),
            ff.to_string(),
            gt.to_string(),
            lb.to_string(),
            ratio(on, lb),
        ]);
    }
    ExperimentReport {
        id: "e16",
        busy: Vec::new(),
        speedup: None,
        title: "Online busy time — release-ordered FirstFit".into(),
        claim: "irrevocable online assignment pays a premium over the offline algorithms but stays modest on non-adversarial inputs".into(),
        table,
        notes: vec![format!(
            "worst online/LB observed: {worst:.4}; deterministic online algorithms cannot beat g-competitive in the worst case (Shalom et al.)"
        )],
    }
}

/// E17 — the width-demand generalization (Khandekar et al., discussed in
/// §1): the narrow/wide FirstFit 5-approximation.
pub fn e17() -> ExperimentReport {
    use abt_busy::{width_first_fit, WideJob, WidthInstance};
    use rand_free::XorShift;
    let mut table = Table::new(["g", "n", "cost", "LB (mass/span)", "cost/LB"]);
    let mut worst = 0f64;
    for (g, n, seed) in [
        (4usize, 30usize, 1u64),
        (8, 60, 2),
        (8, 60, 3),
        (16, 120, 4),
    ] {
        let mut rng = XorShift::new(seed);
        let mut jobs = Vec::new();
        for _ in 0..n {
            let r = rng.next(200) as i64;
            let len = 1 + rng.next(25) as i64;
            let w = 1 + rng.next(g as u64) as usize;
            jobs.push(WideJob {
                job: abt_core::Job::interval(r, r + len),
                width: w,
            });
        }
        let inst = WidthInstance::new(jobs, g).unwrap();
        let s = width_first_fit(&inst);
        s.validate(&inst).unwrap();
        let cost = s.total_busy_time(&inst);
        let lb = inst.mass_bound().max(inst.span_bound());
        worst = worst.max(cost as f64 / lb as f64);
        table.row([
            g.to_string(),
            n.to_string(),
            cost.to_string(),
            lb.to_string(),
            ratio(cost, lb),
        ]);
    }
    ExperimentReport {
        id: "e17",
        busy: Vec::new(),
        speedup: None,
        title: "Width-demand generalization — narrow/wide FirstFit".into(),
        claim: "the Khandekar split stays within 5x of max(mass, span)".into(),
        table,
        notes: vec![format!("worst cost/LB observed: {worst:.4} (guarantee 5)")],
    }
}

/// E18 — the Mertzios et al. maximization dual: throughput within a
/// busy-time budget.
pub fn e18() -> ExperimentReport {
    use abt_busy::{budgeted_exact, budgeted_greedy};
    let mut table = Table::new([
        "budget",
        "greedy accepted",
        "exact accepted",
        "greedy/exact",
    ]);
    let mut worst = 1.0f64;
    let inst = random_interval(
        &RandomConfig {
            n: 8,
            g: 2,
            horizon: 24,
            max_len: 6,
            slack_factor: 0.0,
        },
        5,
    );
    let full_cost = solve_flexible(&inst, IntervalAlgo::GreedyTracking)
        .unwrap()
        .schedule
        .total_busy_time(&inst);
    for frac in [4i64, 2, 1] {
        let budget = full_cost / frac;
        let greedy = budgeted_greedy(&inst, budget).unwrap();
        greedy.validate(&inst, budget).unwrap();
        let exact = budgeted_exact(&inst, budget, 50_000_000).unwrap();
        if exact > 0 {
            worst = worst.min(greedy.accepted() as f64 / exact as f64);
        }
        table.row([
            budget.to_string(),
            greedy.accepted().to_string(),
            exact.to_string(),
            if exact > 0 {
                ratio(greedy.accepted() as i64, exact as i64)
            } else {
                "-".into()
            },
        ]);
    }
    ExperimentReport {
        id: "e18",
        busy: Vec::new(),
        speedup: None,
        title: "Maximization dual — throughput within a busy-time budget".into(),
        claim: "greedy admission tracks the exact optimum as the budget tightens".into(),
        table,
        notes: vec![format!("worst greedy/exact ratio: {worst:.4}")],
    }
}

/// E19 — LP1 solver scaling: the VUB-aware revised simplex vs the PR-2
/// revised solver with explicit `x ≤ Y` rows, and vs the PR-1 dense
/// hybrid as `n` grows. Exact objectives must agree bit for bit; the PR-1
/// baseline is skipped at `n = 1000` where the dense exact verification
/// is no longer practical to time. All columns run **monolithically**
/// (`DecomposeMode::Off`) so the comparison isolates the solver
/// generations — the shipping default additionally shards by
/// interval-graph components, measured separately by E21.
pub fn e19() -> ExperimentReport {
    use crate::stats::time_best_ms;
    use abt_active::{lp_telemetry, solve_active_lp_with, LpOptions};

    let mut table = Table::new([
        "n",
        "g",
        "horizon",
        "vub_implicit ms",
        "PR-2 revised ms",
        "vs PR-2",
        "PR-1 hybrid ms",
        "vs PR-1",
        "objective",
        "fallbacks",
    ]);
    let mut notes = Vec::new();
    let mut all_match = true;
    let mut any_fallback = false;
    for (n, g, horizon, reps, run_pr1) in [
        (40usize, 4usize, 100i64, 3usize, true),
        (200, 4, 400, 2, true),
        (1000, 4, 2000, 1, false),
    ] {
        let cfg = RandomConfig {
            n,
            g,
            horizon,
            max_len: 5,
            slack_factor: 1.0,
        };
        let inst = random_active_feasible(&cfg, 7);
        let before = lp_telemetry();
        let (vub_ms, vub) = time_best_ms(reps, || {
            solve_active_lp_with(&inst, &LpOptions::pr3_monolithic())
                .expect("feasible by construction")
        });
        let after = lp_telemetry();
        any_fallback |= after.fallbacks > before.fallbacks;
        let (pr2_ms, pr2) = time_best_ms(reps, || {
            solve_active_lp_with(&inst, &LpOptions::pr2_revised_bounds())
                .expect("feasible by construction")
        });
        all_match &= pr2.objective == vub.objective;
        let pr1 = run_pr1.then(|| {
            time_best_ms(reps, || {
                solve_active_lp_with(&inst, &LpOptions::pr1_hybrid())
                    .expect("feasible by construction")
            })
        });
        let (pr1_cell, pr1_speedup_cell) = match &pr1 {
            Some((pr1_ms, base)) => {
                all_match &= base.objective == vub.objective;
                (format!("{pr1_ms:.1}"), format!("{:.2}x", pr1_ms / vub_ms))
            }
            None => ("-".into(), "-".into()),
        };
        table.row([
            n.to_string(),
            g.to_string(),
            horizon.to_string(),
            format!("{vub_ms:.1}"),
            format!("{pr2_ms:.1}"),
            format!("{:.2}x", pr2_ms / vub_ms),
            pr1_cell,
            pr1_speedup_cell,
            vub.objective.to_string(),
            (after.fallbacks - before.fallbacks).to_string(),
        ]);
    }
    notes.push(format!(
        "exact objectives bit-identical across solver generations wherever they ran: {}",
        if all_match { "yes" } else { "NO" }
    ));
    notes.push(format!(
        "exact fallbacks on this family: {}",
        if any_fallback {
            "YES (unexpected)"
        } else {
            "none"
        }
    ));
    notes.push(
        "n = 1000 skips the PR-1 dense hybrid; its dense exact verification is O(m²·cols) and no longer practical there".into(),
    );
    ExperimentReport {
        id: "e19",
        busy: Vec::new(),
        speedup: None,
        title: "LP1 solver scaling — VUB-aware revised simplex vs PR-2/PR-1".into(),
        claim: "eliminating the O(n²) x ≤ Y rows keeps LP1 solvable at n in the thousands".into(),
        table,
        notes,
    }
}

/// E20 — VUB-heavy stress sweep: nested windows with high per-window job
/// fan-in (after Cao et al., arXiv:2207.12507) maximize the number of
/// `x_{I,j} ≤ Y_I` caps per interval. Compares the VUB-aware default
/// against the PR-2 encoding (caps as rows) and records the iteration
/// telemetry of the VUB runs. The independent LP1 solves of the grid run
/// through [`parallel_map`].
pub fn e20() -> ExperimentReport {
    use crate::stats::time_best_ms;
    use abt_active::{lp_telemetry, solve_active_lp_with, LpOptions};
    use abt_workloads::{vub_heavy, VubHeavyConfig};

    let grid: Vec<(usize, usize, usize, i64)> = vec![
        // (n, g, fan_in, horizon)
        (48, 4, 4, 96),
        (96, 4, 6, 192),
        (192, 6, 8, 384),
        (384, 8, 12, 768),
        (768, 8, 16, 1536),
    ];
    let instances: Vec<_> = grid
        .into_iter()
        .map(|(n, g, fan_in, horizon)| {
            let cfg = VubHeavyConfig {
                n,
                g,
                horizon,
                max_len: 4,
                fan_in,
            };
            (n, fan_in, vub_heavy(&cfg, 11))
        })
        .collect();
    // Two homogeneous parallel phases with one telemetry window each: the
    // counters are process-global atomics, so a per-cell delta taken
    // inside `parallel_map` would absorb the concurrent cells' work — an
    // aggregate delta around a phase that runs only one configuration is
    // exact (it is the sum of that configuration's per-solve
    // contributions).
    let before = lp_telemetry();
    let vub_runs = parallel_map(instances.clone(), |(_, _, inst)| {
        time_best_ms(2, || {
            solve_active_lp_with(&inst, &LpOptions::default()).expect("feasible by construction")
        })
    });
    let vub_telemetry = lp_telemetry().delta(&before);
    let rows_runs = parallel_map(instances.clone(), |(_, _, inst)| {
        time_best_ms(2, || {
            solve_active_lp_with(&inst, &LpOptions::pr2_revised_bounds())
                .expect("feasible by construction")
        })
    });
    let mut table = Table::new([
        "n (target)",
        "fan-in",
        "jobs",
        "vub_implicit ms",
        "x≤Y rows ms",
        "speedup",
        "objective",
    ]);
    let mut notes = Vec::new();
    let mut all_match = true;
    for (((n, fan_in, inst), (vub_ms, vub)), (rows_ms, rows_lp)) in
        instances.iter().zip(&vub_runs).zip(&rows_runs)
    {
        all_match &= vub.objective == rows_lp.objective;
        table.row([
            n.to_string(),
            fan_in.to_string(),
            inst.len().to_string(),
            format!("{vub_ms:.1}"),
            format!("{rows_ms:.1}"),
            format!("{:.2}x", rows_ms / vub_ms),
            vub.objective.to_string(),
        ]);
    }
    notes.push(format!(
        "objectives bit-identical between the VUB and row encodings on every instance: {}",
        if all_match { "yes" } else { "NO" }
    ));
    notes.push(format!(
        "exact fallbacks during the VUB runs: {}",
        if vub_telemetry.fallbacks == 0 {
            "none".to_string()
        } else {
            format!("{} (unexpected)", vub_telemetry.fallbacks)
        }
    ));
    notes.push(format!(
        "VUB-run telemetry across the sweep: {} pivots, {} bound/VUB flips, {} LU refactorizations, {:.1} ms exact certification",
        vub_telemetry.pivots,
        vub_telemetry.bound_flips,
        vub_telemetry.refactorizations,
        vub_telemetry.certify_nanos as f64 / 1e6
    ));
    notes.push(
        "nested windows put every deep interval inside all ancestor windows, so the row encoding carries one cap row per (job, interval) pair while the VUB encoding keeps the basis at one row per interval + one per job".into(),
    );
    ExperimentReport {
        id: "e20",
        busy: Vec::new(),
        speedup: None,
        title: "VUB-heavy nested-window sweep — implicit VUB families vs cap rows".into(),
        claim: "Schrage-style VUB pivoting removes the O(n²) cap rows from the working basis"
            .into(),
        table,
        notes,
    }
}

/// E21 — decomposition scaling: block-diagonal `many_components`
/// instances solved as one monolithic LP1 (`DecomposeMode::Off`) vs
/// sharded along the connected components of the job-window interval
/// graph (`DecomposeMode::Auto`, the default), which fans the per-component
/// sub-LPs through `parallel_map` and reuses per-thread scratch via the
/// `abt-lp` slab arena. Objectives must agree bit for bit — the blocks
/// share nothing, so the stitched rational sum *is* the monolithic
/// optimum. The Auto-vs-Off speedup at the largest size is the headline
/// recorded into `BENCH_lp.json`; the pivot/refactorization counts of the
/// Auto phase are deterministic per instance and gated by CI.
pub fn e21() -> ExperimentReport {
    use crate::stats::time_best_ms;
    use abt_active::{lp_telemetry, solve_active_lp_with, LpOptions};
    use abt_workloads::{many_components, ManyComponentsConfig};

    let grid: Vec<(usize, usize, usize)> = vec![
        // (components, jobs_per_component, reps)
        (16, 5, 3),
        (64, 5, 2),
        (256, 5, 2),
    ];
    let instances: Vec<_> = grid
        .into_iter()
        .map(|(k, jpc, reps)| {
            let cfg = ManyComponentsConfig {
                components: k,
                jobs_per_component: jpc,
                g: 3,
                span: 16,
                gap: 4,
                max_len: 4,
                slack_factor: 1.0,
            };
            (k, reps, many_components(&cfg, 13))
        })
        .collect();
    // One telemetry window around the Auto phase: the sharding counters
    // (components solved, largest component, fallbacks) are scoped to the
    // decomposed runs only. The Auto solves parallelize *internally*
    // (components through `parallel_map`), so the grid itself runs
    // sequentially — no nested-pool skew in the timings.
    let before = lp_telemetry();
    let auto_runs: Vec<_> = instances
        .iter()
        .map(|(_, reps, inst)| {
            time_best_ms(*reps, || {
                solve_active_lp_with(inst, &LpOptions::default()).expect("feasible by construction")
            })
        })
        .collect();
    let auto_telemetry = lp_telemetry().delta(&before);
    let off_runs: Vec<_> = instances
        .iter()
        .map(|(_, reps, inst)| {
            time_best_ms(*reps, || {
                solve_active_lp_with(inst, &LpOptions::pr3_monolithic())
                    .expect("feasible by construction")
            })
        })
        .collect();
    let mut table = Table::new([
        "components",
        "jobs",
        "auto ms",
        "monolithic ms",
        "speedup",
        "objective",
    ]);
    let mut headline = None;
    for (((k, _, inst), (auto_ms, auto)), (off_ms, off)) in
        instances.iter().zip(&auto_runs).zip(&off_runs)
    {
        assert_eq!(
            auto.objective, off.objective,
            "sharded LP1 must reproduce the monolithic objective exactly"
        );
        let speedup = off_ms / auto_ms;
        headline = Some(speedup); // the grid ascends: keep the largest size
        table.row([
            k.to_string(),
            inst.len().to_string(),
            format!("{auto_ms:.1}"),
            format!("{off_ms:.1}"),
            format!("{speedup:.2}x"),
            auto.objective.to_string(),
        ]);
    }
    let notes = vec![
        "objectives bit-identical between Auto and Off on every instance (asserted)".into(),
        format!(
            "exact fallbacks during the Auto runs: {}",
            if auto_telemetry.fallbacks == 0 {
                "none".to_string()
            } else {
                format!("{} (unexpected)", auto_telemetry.fallbacks)
            }
        ),
        format!(
            "Auto-phase telemetry: {} sharded solves over {} component sub-LPs (largest component {} LP variables), {} pivots, {} LU refactorizations",
            auto_telemetry.sharded_solves,
            auto_telemetry.components,
            auto_telemetry.max_component_vars,
            auto_telemetry.pivots,
            auto_telemetry.refactorizations,
        ),
        "LP1 is block-diagonal across interval-graph components: the monolith pays superlinear simplex cost on one big basis, the sharded solve pays it on many small ones and runs them on all cores".into(),
    ];
    ExperimentReport {
        id: "e21",
        busy: Vec::new(),
        speedup: headline,
        title: "Decomposition scaling — component-sharded LP1 vs the monolith".into(),
        claim: "sharding LP1 along interval-graph components preserves the exact optimum and wins wall-clock at scale".into(),
        table,
        notes,
    }
}

/// E22 — warm-start effort: the `online_arrivals` family solved cold
/// (`WarmMode::Off`, the default) vs warm-batched (`WarmMode::Batch` —
/// shape-signature grouping, one cold representative per group, siblings
/// resumed from a snapshot pool), plus an incremental replay of the
/// arrival stream through `IncrementalSolver` vs from-scratch re-solves
/// per arrival. The gated headline is **solve effort** (pivot counts,
/// deterministic per instance); objectives are asserted bit-identical —
/// warm answers are certified in exact rationals like cold ones.
pub fn e22() -> ExperimentReport {
    use crate::stats::time_best_ms;
    use abt_active::{lp_telemetry, solve_active_lp_with, IncrementalSolver, LpOptions};
    use abt_workloads::{online_arrivals, OnlineArrivalsConfig};

    let grid: Vec<(usize, usize)> = vec![
        // (clusters, reps)
        (8, 3),
        (32, 2),
        (128, 2),
    ];
    let mut table = Table::new([
        "clusters",
        "jobs",
        "cold ms",
        "warm ms",
        "cold pivots",
        "warm pivots",
        "effort ratio",
        "warm hits",
        "objective",
    ]);
    let mut notes = Vec::new();
    let mut headline = None;
    let mut fallbacks = 0u64;
    for (clusters, reps) in grid {
        let cfg = OnlineArrivalsConfig {
            clusters,
            jobs_per_cluster: 4,
            templates: 2,
            g: 3,
            span: 16,
            gap: 4,
            max_len: 4,
        };
        let oa = online_arrivals(&cfg, 17);
        let inst = oa.instance();
        let before = lp_telemetry();
        let (cold_ms, cold) = time_best_ms(reps, || {
            solve_active_lp_with(&inst, &LpOptions::default()).expect("feasible by construction")
        });
        let cold_t = lp_telemetry().delta(&before);
        let before = lp_telemetry();
        let (warm_ms, warm) = time_best_ms(reps, || {
            solve_active_lp_with(&inst, &LpOptions::warm_batched())
                .expect("feasible by construction")
        });
        let warm_t = lp_telemetry().delta(&before);
        assert_eq!(
            cold.objective, warm.objective,
            "warm-batched LP1 must reproduce the cold objective exactly"
        );
        fallbacks += cold_t.fallbacks + warm_t.fallbacks;
        let ratio = cold_t.pivots as f64 / warm_t.pivots.max(1) as f64;
        headline = Some(ratio); // the grid ascends: keep the largest size
        table.row([
            clusters.to_string(),
            inst.len().to_string(),
            format!("{cold_ms:.1}"),
            format!("{warm_ms:.1}"),
            cold_t.pivots.to_string(),
            warm_t.pivots.to_string(),
            format!("{ratio:.2}x"),
            format!("{}/{}", warm_t.warm_hits, warm_t.warm_attempts),
            warm.objective.to_string(),
        ]);
    }
    // Incremental replay at the middle size: every arrival re-solves only
    // its dirty component (warm where the shape echoes an earlier one);
    // the from-scratch driver re-solves the whole prefix cold each time.
    let cfg = OnlineArrivalsConfig {
        clusters: 32,
        jobs_per_cluster: 4,
        templates: 2,
        g: 3,
        span: 16,
        gap: 4,
        max_len: 4,
    };
    let oa = online_arrivals(&cfg, 17);
    let before = lp_telemetry();
    let mut solver = IncrementalSolver::new(oa.g).expect("g ≥ 1");
    let mut last = None;
    for job in &oa.jobs {
        solver.add_job(*job);
        last = Some(solver.solve().expect("prefixes are feasible"));
    }
    let inc_t = lp_telemetry().delta(&before);
    let before = lp_telemetry();
    let mut scratch_obj = None;
    for k in 1..=oa.jobs.len() {
        let prefix = oa.prefix_instance(k);
        let lp =
            solve_active_lp_with(&prefix, &LpOptions::default()).expect("prefixes are feasible");
        scratch_obj = Some(lp.objective);
    }
    let scratch_t = lp_telemetry().delta(&before);
    let last = last.expect("at least one arrival");
    assert_eq!(
        last.lp.objective,
        scratch_obj.expect("at least one prefix"),
        "the incremental replay must end at the from-scratch objective"
    );
    fallbacks += inc_t.fallbacks + scratch_t.fallbacks;
    let inc_ratio = scratch_t.pivots as f64 / inc_t.pivots.max(1) as f64;
    notes.push(format!(
        "incremental replay of {} arrivals: {} pivots total vs {} for from-scratch re-solves per arrival ({inc_ratio:.1}x less effort), {} warm hits / {} attempts, final objectives bit-identical (asserted)",
        oa.jobs.len(),
        inc_t.pivots,
        scratch_t.pivots,
        inc_t.warm_hits,
        inc_t.warm_attempts,
    ));
    notes.push(
        "objectives bit-identical between Off and Batch on every grid point (asserted): warm answers are certified in exact rationals like cold ones".into(),
    );
    notes.push(format!(
        "exact fallbacks across the sweep: {}",
        if fallbacks == 0 {
            "none".to_string()
        } else {
            format!("{fallbacks} (unexpected)")
        }
    ));
    notes.push(
        "the effort ratio (cold/warm pivot counts, deterministic per instance) is the gated headline; wall time additionally reflects the planner's wave batching".into(),
    );
    ExperimentReport {
        id: "e22",
        busy: Vec::new(),
        speedup: headline,
        title: "Warm-start effort — online arrivals, batched siblings and incremental re-solves"
            .into(),
        claim: "warm-started sibling/incremental solves cut pivot effort ≥1.5x versus cold re-solves, at unchanged exact objectives".into(),
        table,
        notes,
    }
}

/// E23 — durable-state recovery: crash-restart replay, corrupt-state
/// absorption, the restart-storm guard, and admission control, all at
/// bit-identical objectives.
pub fn e23() -> ExperimentReport {
    use abt_active::{
        admission_precheck, lp_telemetry, solve_active_lp, IncrementalSolver, SolveError,
        MAX_RECOVERY_ATTEMPTS,
    };
    use abt_core::Job;
    use abt_workloads::{online_arrivals, OnlineArrivalsConfig};

    fn state_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("abt-e23-{tag}-{}-{n}", std::process::id()))
    }

    let cfg = OnlineArrivalsConfig {
        clusters: 12,
        jobs_per_cluster: 4,
        templates: 2,
        g: 3,
        span: 16,
        gap: 4,
        max_len: 4,
    };
    let oa = online_arrivals(&cfg, 23);
    let scratch = solve_active_lp(&oa.instance()).expect("feasible by construction");
    let mut table = Table::new([
        "scenario",
        "arrivals",
        "resumed",
        "replayed ops",
        "corruption",
        "objective",
        "bit-identical",
    ]);
    let mut notes = Vec::new();
    let before = lp_telemetry();

    // Scenario 1 — crash-restart mid-stream: journal every arrival, drop
    // the solver at the halfway point (no checkpoint of the tail), then
    // recover and finish the trace.
    let dir = state_dir("crash");
    let half = oa.jobs.len() / 2;
    let tail = 4; // arrivals journaled after the last solve's checkpoint
    {
        let mut solver = IncrementalSolver::new(oa.g).expect("g ≥ 1");
        solver.attach_store(&dir).expect("fresh state dir");
        for job in &oa.jobs[..half - tail] {
            solver.add_job(*job);
        }
        solver.solve().expect("prefixes are feasible");
        for job in &oa.jobs[half - tail..half] {
            solver.add_job(*job);
        }
        // Dropped here without checkpoint_now: the journal tail is the
        // only record of the last arrivals — the crash the WAL exists for.
    }
    let mut solver = IncrementalSolver::new(oa.g).expect("g ≥ 1");
    let rec = solver.attach_store(&dir).expect("recoverable state dir");
    assert_eq!(rec.resumed_jobs, half, "every journaled arrival recovered");
    assert_eq!(rec.replayed_ops, tail, "the un-checkpointed tail replayed");
    for job in &oa.jobs[half..] {
        solver.add_job(*job);
    }
    let resumed = solver.solve().expect("feasible by construction");
    table.row([
        "crash + journal replay".into(),
        oa.jobs.len().to_string(),
        rec.resumed_jobs.to_string(),
        rec.replayed_ops.to_string(),
        rec.corruption_events.to_string(),
        resumed.lp.objective.to_string(),
        (resumed.lp.objective == scratch.objective).to_string(),
    ]);
    assert_eq!(resumed.lp.objective, scratch.objective);
    std::fs::remove_dir_all(&dir).ok();

    // Scenario 2 — checkpointed warm resume: a clean shutdown's state
    // comes back with its content cache, so the resumed solve is pure
    // cache hits.
    let dir = state_dir("warm");
    {
        let mut solver = IncrementalSolver::new(oa.g).expect("g ≥ 1");
        solver.attach_store(&dir).expect("fresh state dir");
        for job in &oa.jobs {
            solver.add_job(*job);
        }
        solver.solve().expect("feasible");
        solver.checkpoint_now();
    }
    let mut solver = IncrementalSolver::new(oa.g).expect("g ≥ 1");
    let rec = solver.attach_store(&dir).expect("recoverable state dir");
    let warm = solver.solve().expect("feasible");
    table.row([
        "checkpointed warm resume".into(),
        oa.jobs.len().to_string(),
        rec.resumed_jobs.to_string(),
        rec.replayed_ops.to_string(),
        rec.corruption_events.to_string(),
        warm.lp.objective.to_string(),
        (warm.lp.objective == scratch.objective).to_string(),
    ]);
    assert_eq!(warm.lp.objective, scratch.objective);
    notes.push(format!(
        "warm resume re-solved {} components with {} cache reuses (restored blocks: {})",
        warm.components, warm.reused, rec.restored_blocks
    ));
    std::fs::remove_dir_all(&dir).ok();

    // Scenario 3 — corrupt checkpoint: bit rot is detected, the state is
    // discarded, and a cold rebuild lands on the same objective.
    let dir = state_dir("rot");
    {
        let mut solver = IncrementalSolver::new(oa.g).expect("g ≥ 1");
        solver.attach_store(&dir).expect("fresh state dir");
        for job in &oa.jobs {
            solver.add_job(*job);
        }
        solver.solve().expect("feasible");
        solver.checkpoint_now();
    }
    let ckpt = dir.join("checkpoint.abt");
    let mut bytes = std::fs::read(&ckpt).expect("checkpoint written");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&ckpt, &bytes).expect("rewrite");
    let mut solver = IncrementalSolver::new(oa.g).expect("g ≥ 1");
    let rec = solver
        .attach_store(&dir)
        .expect("corruption is absorbed, not returned");
    assert!(rec.cold_start && rec.corruption_events > 0);
    for job in &oa.jobs {
        solver.add_job(*job);
    }
    let rebuilt = solver.solve().expect("feasible");
    table.row([
        "corrupt checkpoint → cold".into(),
        oa.jobs.len().to_string(),
        rec.resumed_jobs.to_string(),
        rec.replayed_ops.to_string(),
        rec.corruption_events.to_string(),
        rebuilt.lp.objective.to_string(),
        (rebuilt.lp.objective == scratch.objective).to_string(),
    ]);
    assert_eq!(rebuilt.lp.objective, scratch.objective);
    std::fs::remove_dir_all(&dir).ok();

    // Scenario 4 — restart storm: recovery that keeps dying trips the
    // guard, quarantines the state files, and starts cold without a
    // crash loop.
    let dir = state_dir("storm");
    {
        let mut solver = IncrementalSolver::new(oa.g).expect("g ≥ 1");
        solver.attach_store(&dir).expect("fresh state dir");
        solver.add_job(oa.jobs[0]);
        solver.checkpoint_now();
    }
    let sd = abt_core::StateDir::open(&dir).expect("state dir");
    for _ in 0..MAX_RECOVERY_ATTEMPTS {
        sd.bump_recovery_attempts().expect("counter writable");
    }
    let mut solver = IncrementalSolver::new(oa.g).expect("g ≥ 1");
    let rec = solver.attach_store(&dir).expect("storm guard absorbs");
    assert!(rec.storm_quarantined && solver.is_empty());
    table.row([
        "restart storm → quarantine".into(),
        "1".into(),
        rec.resumed_jobs.to_string(),
        rec.replayed_ops.to_string(),
        rec.corruption_events.to_string(),
        "-".into(),
        "n/a (cold start)".into(),
    ]);
    notes.push(format!(
        "storm guard quarantined the state into {:?} after {MAX_RECOVERY_ATTEMPTS} dead recoveries — service continued cold",
        dir.join("quarantined-0").file_name().unwrap_or_default()
    ));
    std::fs::remove_dir_all(&dir).ok();

    // Scenario 5 — admission control: an overload burst bounces with a
    // witness before any LP is built; dropping it restores service.
    let mut solver = IncrementalSolver::new(1).expect("g ≥ 1");
    let ok_id = solver.add_job(Job::new(0, 4, 2));
    let ok_obj = solver.solve().expect("feasible").lp.objective;
    let burst: Vec<_> = (0..3).map(|_| solver.add_job(Job::new(0, 2, 2))).collect();
    let rejected = matches!(solver.try_solve(), Err(SolveError::Rejected(_)));
    assert!(rejected, "the overload burst must bounce at admission");
    for id in burst {
        solver.remove_job(id).expect("live handle");
    }
    let after = solver.solve().expect("feasible again");
    assert_eq!(after.lp.objective, ok_obj);
    let _ = ok_id;
    table.row([
        "admission-reject burst".into(),
        "4".into(),
        "-".into(),
        "-".into(),
        "0".into(),
        after.lp.objective.to_string(),
        (after.lp.objective == ok_obj).to_string(),
    ]);
    // And the precheck is sound on the full trace (never bounces feasible).
    assert!(admission_precheck(&oa.instance()).is_ok());

    let d = lp_telemetry().delta(&before);
    notes.push(format!(
        "persist telemetry: {} restores, {} recoveries, {} corruption detections, {} admission rejects",
        d.persist_restores, d.recoveries, d.state_corrupt, d.admission_rejects
    ));
    notes.push(
        "every corruption detection is matched by a recovery (state_corrupt ≤ recoveries) — the perf gate fails otherwise".into(),
    );
    assert!(
        d.state_corrupt <= d.recoveries,
        "a corruption without a matching recovery means the absorption path broke"
    );
    ExperimentReport {
        id: "e23",
        busy: Vec::new(),
        speedup: None,
        title: "Durable state — crash recovery, corruption absorption, and admission control"
            .into(),
        claim: "kill-and-restart replay resumes bit-identically; every injected corruption demotes to a cold rebuild with the exact objective intact; provably-infeasible bursts bounce at admission".into(),
        table,
        notes,
    }
}

/// E24 — busy head-to-head with the LP-rounding solver: the four
/// combinatorial algorithms plus LP rounding vs the exact optimum,
/// across the busy workload families.
pub fn e24() -> ExperimentReport {
    struct Family {
        name: &'static str,
        instances: Vec<Instance>,
    }
    let families = vec![
        Family {
            name: "uniform interval",
            instances: (0..6)
                .map(|s| {
                    random_interval(
                        &RandomConfig {
                            n: 10,
                            g: 3,
                            horizon: 30,
                            max_len: 8,
                            slack_factor: 0.0,
                        },
                        s,
                    )
                })
                .collect(),
        },
        Family {
            name: "laminar nested",
            instances: (0..6)
                .map(|s| {
                    busy_laminar_nested(
                        &BusyLaminarConfig {
                            n: 10,
                            g: 3,
                            horizon: 32,
                            fan_in: 3,
                        },
                        s,
                    )
                })
                .collect(),
        },
        Family {
            name: "release stream",
            instances: (0..6)
                .map(|s| {
                    busy_release_stream(
                        &BusyStreamConfig {
                            n: 10,
                            g: 3,
                            max_gap: 3,
                            max_len: 8,
                        },
                        s,
                    )
                })
                .collect(),
        },
    ];

    let lp_before = busy_lp_telemetry();
    let mut table = Table::new(["family", "algorithm", "mean cost/OPT", "max cost/OPT"]);
    let mut totals: Vec<(String, u64, f64)> = IntervalAlgo::all()
        .iter()
        .map(|a| (a.name().to_string(), 0u64, 0f64))
        .collect();
    for fam in &families {
        let exacts: Vec<i64> = fam
            .instances
            .iter()
            .map(|inst| exact_busy_time(inst, Some(50_000_000)).unwrap().cost)
            .collect();
        for (ai, algo) in IntervalAlgo::all().iter().enumerate() {
            let mut sum = 0.0;
            let mut max = 0.0f64;
            for (inst, &opt) in fam.instances.iter().zip(&exacts) {
                let s = algo.run(inst).unwrap();
                s.validate(inst).unwrap();
                let c = s.total_busy_time(inst);
                let factor = match algo {
                    IntervalAlgo::FirstFit => 4,
                    IntervalAlgo::GreedyTracking => 3,
                    _ => 2,
                };
                assert!(
                    within_factor(c, factor, opt),
                    "{} cost {c} > {factor}×OPT {opt}",
                    algo.name()
                );
                assert!(c >= opt, "{} undercut the optimum", algo.name());
                let r = c as f64 / opt as f64;
                sum += r;
                max = max.max(r);
                totals[ai].1 += c as u64;
                totals[ai].2 = totals[ai].2.max(r);
            }
            table.row([
                fam.name.to_string(),
                algo.name().to_string(),
                format!("{:.4}", sum / fam.instances.len() as f64),
                format!("{max:.4}"),
            ]);
        }
    }
    let d = busy_lp_telemetry().delta(&lp_before);
    let notes = vec![
        "every algorithm stays within its proven factor of the exact optimum on all instances"
            .into(),
        "LP rounding coincides with Kumar–Rudra's padding (⌈z*⌉ = ⌈D/g⌉), so its integral costs match KR's".into(),
        format!(
            "busy LP telemetry: {} solves, {} pivots, {} bound flips, {:.3} ms certify ({} interval accepts, {} escalations), {} demotions",
            d.solves,
            d.pivots,
            d.bound_flips,
            d.certify_nanos as f64 / 1e6,
            d.interval_accepts,
            d.interval_escalations,
            d.demotions
        ),
    ];
    ExperimentReport {
        id: "e24",
        busy: totals
            .into_iter()
            .map(|(algo, cost, ratio)| BusyAlgoSummary { algo, cost, ratio })
            .collect(),
        speedup: None,
        title: "Busy head-to-head — LP rounding vs the combinatorial zoo vs exact".into(),
        claim: "LP rounding (≤2 vs profile, ≤4 vs its LP value) and the four combinatorial algorithms all stay within factor of the exact optimum".into(),
        table,
        notes,
    }
}

/// E25 — busy `g`-sweep scaling: one fixed interval job set instantiated
/// at every capacity, every algorithm's cost/lower-bound ratio per `g`.
pub fn e25() -> ExperimentReport {
    let cfg = RandomConfig {
        n: 40,
        g: 1, // ignored by the sweep
        horizon: 120,
        max_len: 20,
        slack_factor: 0.0,
    };
    let gs = [1usize, 2, 4, 8, 16];
    let seeds: Vec<u64> = (0..4).collect();
    let lp_before = busy_lp_telemetry();
    let mut table = Table::new([
        "g",
        "algorithm",
        "mean cost/LB",
        "max cost/LB",
        "total cost",
    ]);
    let mut totals: Vec<(String, u64, f64)> = IntervalAlgo::all()
        .iter()
        .map(|a| (a.name().to_string(), 0u64, 0f64))
        .collect();
    for &g in &gs {
        for (ai, algo) in IntervalAlgo::all().iter().enumerate() {
            let mut sum = 0.0;
            let mut max = 0.0f64;
            let mut cost_g = 0u64;
            for &seed in &seeds {
                let sweep = busy_g_sweep(&cfg, &[g], seed);
                let (_, inst) = &sweep[0];
                let lb = busy_lower_bounds(inst).best();
                let s = algo.run(inst).unwrap();
                s.validate(inst).unwrap();
                let c = s.total_busy_time(inst);
                let factor = match algo {
                    IntervalAlgo::FirstFit => 4,
                    IntervalAlgo::GreedyTracking => 3,
                    _ => 2,
                };
                assert!(
                    within_factor(c, factor, lb),
                    "{} at g={g}: cost {c} > {factor}×LB {lb}",
                    algo.name()
                );
                let r = c as f64 / lb as f64;
                sum += r;
                max = max.max(r);
                cost_g += c as u64;
                totals[ai].1 += c as u64;
                totals[ai].2 = totals[ai].2.max(r);
            }
            table.row([
                g.to_string(),
                algo.name().to_string(),
                format!("{:.4}", sum / seeds.len() as f64),
                format!("{max:.4}"),
                cost_g.to_string(),
            ]);
        }
    }
    let d = busy_lp_telemetry().delta(&lp_before);
    let notes = vec![
        "the same 40-job interval set at every g: busy time falls as capacity grows, while the cost/LB ratio stays within each algorithm's factor".into(),
        format!(
            "busy LP telemetry: {} solves, {} pivots, {:.3} ms certify, {} demotions, {} quarantined",
            d.solves,
            d.pivots,
            d.certify_nanos as f64 / 1e6,
            d.demotions,
            d.quarantined
        ),
    ];
    ExperimentReport {
        id: "e25",
        busy: totals
            .into_iter()
            .map(|(algo, cost, ratio)| BusyAlgoSummary { algo, cost, ratio })
            .collect(),
        speedup: None,
        title: "Busy g-sweep — cost and approximation ratio vs machine capacity".into(),
        claim: "every algorithm's cost/lower-bound ratio stays within its factor across g ∈ {1, 2, 4, 8, 16}".into(),
        table,
        notes,
    }
}

/// Tiny xorshift for experiment-local randomness.
mod rand_free {
    pub struct XorShift(u64);
    impl XorShift {
        pub fn new(seed: u64) -> Self {
            XorShift(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
        }
        pub fn next(&mut self, m: u64) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0 % m
        }
    }
}

/// Runs all experiments in order.
pub fn all_reports() -> Vec<ExperimentReport> {
    vec![
        e1(),
        e2(),
        e3(),
        e4(),
        e5(),
        e6(),
        e7(),
        e8(),
        e9(),
        e10(),
        e11(),
        e12(),
        e13(),
        e14(),
        e15(),
        e16(),
        e17(),
        e18(),
        e19(),
        e20(),
        e21(),
        e22(),
        e23(),
        e24(),
        e25(),
    ]
}

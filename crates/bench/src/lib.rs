//! # abt-bench
//!
//! The experiment harness: regenerates every figure-level artifact of the
//! paper (see DESIGN.md §4 for the experiment index) and hosts the
//! Criterion runtime benches. `cargo run -p abt-bench --release --bin
//! experiments` prints the Markdown recorded in `EXPERIMENTS.md`.

#![warn(missing_docs)]

pub mod bench_record;
pub mod experiments;
pub mod parallel;
pub mod stats;
pub mod table;

pub use bench_record::{BenchRecord, ExperimentRecord, LpSimplexRecord};
pub use experiments::{all_reports, ExperimentReport};
pub use parallel::parallel_map;
pub use stats::{ratio_summary, time_best_ms, Summary};
pub use table::{ratio, Table};

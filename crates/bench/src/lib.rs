//! # abt-bench
//!
//! The experiment harness: regenerates every figure-level artifact of the
//! paper (see DESIGN.md §4 for the experiment index) and hosts the
//! Criterion runtime benches. `cargo run -p abt-bench --release --bin
//! experiments` prints the Markdown recorded in `EXPERIMENTS.md` and
//! writes `BENCH_lp.json` ([`bench_record`] documents the full lp-v2
//! schema), which the `perf_gate` binary compares field-by-field in CI.
//! See the repo-root `ARCHITECTURE.md` for the whole pipeline.
//!
//! # Example
//!
//! The `BENCH_lp.json` writer/parser round-trips through the typed record
//! — CI gates on *fields*, never on text diffs:
//!
//! ```
//! use abt_bench::bench_record::{BenchRecord, SCHEMA};
//!
//! let committed = r#"{ "schema": "abt-bench/lp-v2",
//!     "lp_simplex": {"n": 1000, "g": 4, "horizon": 2000, "seed": 7,
//!         "objective": "1337/2", "baseline": "revised_bounds",
//!         "baseline_ms": 1378.0, "candidate": "vub_implicit",
//!         "candidate_ms": 407.0, "speedup": 3.39, "fallback": false},
//!     "experiments": [
//!         {"id": "e21", "wall_ms": 900.0, "lp_solves": 1216,
//!          "fallback_rate": 0.0, "lp_components": 1216,
//!          "lp_max_component_vars": 32, "speedup": 19.5}
//!     ] }"#;
//! let rec = BenchRecord::from_json(committed).unwrap();
//! assert_eq!(rec.schema, SCHEMA);
//! assert_eq!(rec.lp_simplex.candidate, "vub_implicit");
//! assert_eq!(rec.experiments[0].lp_components, 1216);
//! assert_eq!(rec.experiments[0].speedup, Some(19.5));
//! // The canonical writer re-emits a parseable document.
//! assert_eq!(BenchRecord::from_json(&rec.to_json()).unwrap(), rec);
//! ```

#![warn(missing_docs)]

pub mod bench_record;
pub mod experiments;
pub mod parallel;
pub mod stats;
pub mod table;

pub use bench_record::{BenchRecord, ExperimentRecord, LpSimplexRecord};
pub use experiments::{all_reports, ExperimentReport};
pub use parallel::parallel_map;
pub use stats::{ratio_summary, time_best_ms, Summary};
pub use table::{ratio, Table};

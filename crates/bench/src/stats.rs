//! Small summary-statistics helpers for the experiment tables.

/// Summary of a sample of ratios/costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a non-empty sample; `None` for an empty one.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Some(Summary {
            n,
            mean,
            stddev: var.sqrt(),
            min,
            max,
        })
    }

    /// Formats as `mean ± stddev [min, max]`.
    pub fn display(&self) -> String {
        format!(
            "{:.4} ± {:.4} [{:.4}, {:.4}]",
            self.mean, self.stddev, self.min, self.max
        )
    }
}

/// Integer-cost convenience: summarizes `cost/base` ratios.
pub fn ratio_summary(costs: &[i64], bases: &[i64]) -> Option<Summary> {
    assert_eq!(costs.len(), bases.len());
    let ratios: Vec<f64> = costs
        .iter()
        .zip(bases)
        .filter(|&(_, &b)| b > 0)
        .map(|(&c, &b)| c as f64 / b as f64)
        .collect();
    Summary::of(&ratios)
}

/// Wall-times `f` (best of `reps` runs) and returns `(milliseconds,
/// result)`. Best-of damps scheduler noise; the perf-gated `lp_simplex`
/// record and the E19 scaling experiment share this helper so the gated
/// artifact and the bench always measure the same way.
pub fn time_best_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let started = std::time::Instant::now();
        let v = f();
        best = best.min(started.elapsed().as_secs_f64() * 1e3);
        out = Some(v);
    }
    (best, out.expect("reps >= 1"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.stddev - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!(s.display().starts_with("2.5000"));
    }

    #[test]
    fn empty_sample() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn ratio_summary_skips_zero_bases() {
        let s = ratio_summary(&[2, 4, 9], &[1, 2, 0]).unwrap();
        assert_eq!(s.n, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }
}

//! CI perf/fallback gate over `BENCH_lp.json`.
//!
//! Usage: `perf_gate <committed.json> <fresh.json> [--min-speedup-ratio R]`
//!
//! Compares a freshly measured record against the committed one and fails
//! (exit 1) when:
//!
//! * the exact `lp_simplex` objective strings differ (a correctness
//!   regression — the exact optimum must never move), or
//! * the fresh `speedup` regresses more than 30% below the committed value
//!   (override the 0.7 factor with `--min-speedup-ratio`), or
//! * the fresh candidate solve needed the exact fallback, or
//! * any experiment (all current workloads are non-adversarial) reports a
//!   `fallback_rate > 0`.
//!
//! Comparison is field-by-field through [`abt_bench::bench_record`], not
//! text diffing, so timing noise in unrelated fields never trips the gate.

use abt_bench::bench_record::BenchRecord;

fn load(path: &str) -> BenchRecord {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("perf_gate: cannot read {path}: {e}");
        std::process::exit(2);
    });
    BenchRecord::from_json(&text).unwrap_or_else(|e| {
        eprintln!("perf_gate: cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut min_ratio = 0.7f64;
    let mut paths: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--min-speedup-ratio" {
            let v = it.next().unwrap_or_else(|| {
                eprintln!("perf_gate: --min-speedup-ratio needs a value");
                std::process::exit(2);
            });
            min_ratio = v.parse().unwrap_or_else(|e| {
                eprintln!("perf_gate: bad ratio {v:?}: {e}");
                std::process::exit(2);
            });
        } else {
            paths.push(a);
        }
    }
    let [committed_path, fresh_path] = paths[..] else {
        eprintln!("usage: perf_gate <committed.json> <fresh.json> [--min-speedup-ratio R]");
        std::process::exit(2);
    };
    let committed = load(committed_path);
    let fresh = load(fresh_path);

    let mut failures: Vec<String> = Vec::new();
    let (c, f) = (&committed.lp_simplex, &fresh.lp_simplex);
    if c.objective != f.objective {
        failures.push(format!(
            "exact objective changed: committed {:?}, fresh {:?}",
            c.objective, f.objective
        ));
    }
    let floor = c.speedup * min_ratio;
    if f.speedup < floor {
        failures.push(format!(
            "speedup regressed: fresh {:.2}x < {:.2}x ({}% of committed {:.2}x)",
            f.speedup,
            floor,
            (min_ratio * 100.0).round(),
            c.speedup
        ));
    }
    if f.fallback {
        failures.push("lp_simplex candidate solve hit the exact fallback".into());
    }
    for e in &fresh.experiments {
        if e.fallback_rate > 0.0 {
            failures.push(format!(
                "experiment {} reports fallback_rate {:.4} over {} LP solves (must be 0 on non-adversarial workloads)",
                e.id, e.fallback_rate, e.lp_solves
            ));
        }
    }

    println!(
        "perf_gate: objective {} (committed {}), speedup {:.2}x (committed {:.2}x, floor {:.2}x), {} experiments checked",
        f.objective,
        c.objective,
        f.speedup,
        c.speedup,
        floor,
        fresh.experiments.len()
    );
    if failures.is_empty() {
        println!("perf_gate: PASS");
    } else {
        for msg in &failures {
            eprintln!("perf_gate: FAIL: {msg}");
        }
        std::process::exit(1);
    }
}

//! CI perf/fallback gate over `BENCH_lp.json`.
//!
//! Usage: `perf_gate <committed.json> <fresh.json> [--min-speedup-ratio R]
//! [--max-effort-ratio R] [--min-interval-accept-rate R]
//! [--max-certify-ratio R] [--max-busy-ratio R] [--max-p99-ratio R]`
//! (`--max-e20-ratio` is the legacy spelling of `--max-effort-ratio`)
//!
//! Compares a freshly measured record against the committed one and fails
//! (exit 1) when:
//!
//! * the exact `lp_simplex` objective strings differ (a correctness
//!   regression — the exact optimum must never move), or
//! * the committed and fresh records gate different baseline/candidate
//!   configurations (a silent cross-generation comparison), or
//! * the fresh `speedup` regresses more than 30% below the committed value
//!   (override the 0.7 factor with `--min-speedup-ratio`), or
//! * the fresh candidate solve needed the exact fallback, or
//! * any experiment (all current workloads are non-adversarial) reports a
//!   `fallback_rate > 0`, or
//! * any fresh experiment reports `quarantined > 0` — a fault-free
//!   benchmark run must never abandon a component; a quarantine here means
//!   the supervision ladder's dense rungs failed on a clean workload, or
//! * any fresh experiment reports `state_corrupt > recoveries` — `e23`
//!   injects persisted-state corruption deliberately, but every detection
//!   must be matched by a completed recovery (cold rebuild); an excess
//!   means a corruption was detected and the absorption path died, the
//!   one durability failure mode that could cost answers, or
//! * the VUB-heavy sweep (`e20`), the decomposition-scaling sweep
//!   (`e21`), or the warm-start sweep (`e22`) appears in both records and
//!   its fresh *solve effort* — pivot or LU-refactorization counts, which
//!   are deterministic per instance and machine-independent, unlike wall
//!   time under `parallel_map` — regresses more than 30% above the
//!   committed one (override the 1.3 factor with `--max-e20-ratio`). A
//!   refactor blow-up is exactly how a broken glue-eta path shows up; an
//!   e21 pivot blow-up is how a broken component split shows up (a wrong
//!   merge sends whole clusters back into one basis); an e22 pivot
//!   blow-up is how a broken snapshot install shows up (every sibling
//!   silently re-solving cold), or
//! * the decomposition-scaling sweep (`e21`) or the warm-start sweep
//!   (`e22`) reports a fresh interval accept rate — `interval_accepts /
//!   (interval_accepts + interval_escalations)` — below
//!   `--min-interval-accept-rate` (default 0.9). The directed-rounding
//!   certification tier is expected to discharge nearly every
//!   dual-feasibility proof on these non-adversarial workloads; a rate
//!   collapse means the interval sweep started straddling (e.g. a
//!   widening bug in the `Iv` arithmetic) and every solve is silently
//!   paying for both tiers. Skipped when both counters are 0 — the run
//!   was under `CertifyMode::Exact`, or the row predates the field — or
//! * the certify-time sweeps (`e19`, `e22`) appear in both records and
//!   the fresh `lp_certify_ms` exceeds `--max-certify-ratio` (default
//!   1.5) × the committed value. Certification wall time is the one
//!   timing field stable enough to gate loosely: a broken interval tier
//!   (everything escalating to the exact sweep) multiplies it well past
//!   1.5×, while machine noise stays far under. Skipped when the
//!   committed value is 0 (the row predates the field), or
//! * a busy experiment (`e24`, `e25`) appears in both records and any
//!   algorithm present in both rows' `busy_algos` reports a fresh
//!   cost/lower-bound ratio above `--max-busy-ratio` (default 1.05) ×
//!   the committed one. Busy costs are exact integers on seeded instance
//!   streams, so the ratios are bit-deterministic: any excess is an
//!   approximation-quality regression in that algorithm (or in the
//!   LP-rounding pipeline feeding `LpRounding`), never noise, or
//! * a latency-gated sweep (`e19`, `e21`, `e22`) appears in both records
//!   and the fresh `lp_p99_ms` — the 99th-percentile per-solve LP latency
//!   from the `lp.solve_latency_us` histogram delta — exceeds
//!   `--max-p99-ratio` (default 3.0) × the committed value. The bound is
//!   deliberately loose (tail latency is the noisiest gated field; the
//!   log-bucket histogram quantizes it to the bucket edge), catching only
//!   the order-of-magnitude blow-ups a lost warm path or a
//!   certify-everything-exactly bug produces. Skipped when the committed
//!   value is 0 (the row predates the field, or the run solved nothing).
//!
//! Comparison is field-by-field through [`abt_bench::bench_record`], not
//! text diffing, so timing noise in unrelated fields never trips the gate.

use abt_bench::bench_record::BenchRecord;

fn load(path: &str) -> BenchRecord {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("perf_gate: cannot read {path}: {e}");
        std::process::exit(2);
    });
    BenchRecord::from_json(&text).unwrap_or_else(|e| {
        eprintln!("perf_gate: cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut min_ratio = 0.7f64;
    let mut max_e20_ratio = 1.3f64;
    let mut min_accept_rate = 0.9f64;
    let mut max_certify_ratio = 1.5f64;
    let mut max_busy_ratio = 1.05f64;
    let mut max_p99_ratio = 3.0f64;
    let mut paths: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--min-speedup-ratio"
            || a == "--max-effort-ratio"
            || a == "--max-e20-ratio"
            || a == "--min-interval-accept-rate"
            || a == "--max-certify-ratio"
            || a == "--max-busy-ratio"
            || a == "--max-p99-ratio"
        {
            let v = it.next().unwrap_or_else(|| {
                eprintln!("perf_gate: {a} needs a value");
                std::process::exit(2);
            });
            let parsed = v.parse().unwrap_or_else(|e| {
                eprintln!("perf_gate: bad ratio {v:?}: {e}");
                std::process::exit(2);
            });
            match a.as_str() {
                "--min-speedup-ratio" => min_ratio = parsed,
                "--min-interval-accept-rate" => min_accept_rate = parsed,
                "--max-certify-ratio" => max_certify_ratio = parsed,
                "--max-busy-ratio" => max_busy_ratio = parsed,
                "--max-p99-ratio" => max_p99_ratio = parsed,
                _ => max_e20_ratio = parsed,
            }
        } else {
            paths.push(a);
        }
    }
    let [committed_path, fresh_path] = paths[..] else {
        eprintln!(
            "usage: perf_gate <committed.json> <fresh.json> [--min-speedup-ratio R] [--max-effort-ratio R] [--min-interval-accept-rate R] [--max-certify-ratio R] [--max-busy-ratio R] [--max-p99-ratio R]"
        );
        std::process::exit(2);
    };
    let committed = load(committed_path);
    let fresh = load(fresh_path);

    let mut failures: Vec<String> = Vec::new();
    let (c, f) = (&committed.lp_simplex, &fresh.lp_simplex);
    if c.objective != f.objective {
        failures.push(format!(
            "exact objective changed: committed {:?}, fresh {:?}",
            c.objective, f.objective
        ));
    }
    if (c.baseline.as_str(), c.candidate.as_str()) != (f.baseline.as_str(), f.candidate.as_str()) {
        failures.push(format!(
            "gated configurations changed: committed {}→{}, fresh {}→{}",
            c.baseline, c.candidate, f.baseline, f.candidate
        ));
    }
    let floor = c.speedup * min_ratio;
    if f.speedup < floor {
        failures.push(format!(
            "speedup regressed: fresh {:.2}x < {:.2}x ({}% of committed {:.2}x)",
            f.speedup,
            floor,
            (min_ratio * 100.0).round(),
            c.speedup
        ));
    }
    if f.fallback {
        failures.push("lp_simplex candidate solve hit the exact fallback".into());
    }
    for e in &fresh.experiments {
        if e.fallback_rate > 0.0 {
            failures.push(format!(
                "experiment {} reports fallback_rate {:.4} over {} LP solves (must be 0 on non-adversarial workloads)",
                e.id, e.fallback_rate, e.lp_solves
            ));
        }
        if e.quarantined > 0 {
            failures.push(format!(
                "experiment {} reports {} quarantined components (must be 0: a fault-free run must never abandon a component)",
                e.id, e.quarantined
            ));
        }
        // Every persisted-state corruption detection must be matched by a
        // completed recovery (e23 injects corruption deliberately; other
        // experiments must report 0 of both). An excess means a corruption
        // was detected but the cold-rebuild absorption never finished —
        // the one durability failure mode that could cost answers.
        if e.state_corrupt > e.recoveries {
            failures.push(format!(
                "experiment {} reports {} corruption detections but only {} recoveries (every StateCorrupt must be absorbed by a completed recovery)",
                e.id, e.state_corrupt, e.recoveries
            ));
        }
    }
    // The VUB-heavy (e20), decomposition-scaling (e21), and warm-start
    // (e22) sweeps are solve-effort gated when both records carry them:
    // pivot/refactorization counts are deterministic per instance, so any
    // excess is an algorithmic regression, never machine noise.
    for gated_id in ["e20", "e21", "e22"] {
        let row = |rec: &BenchRecord| rec.experiments.iter().find(|e| e.id == gated_id).cloned();
        let (Some(ce), Some(fe)) = (row(&committed), row(&fresh)) else {
            continue;
        };
        for (what, committed_n, fresh_n) in [
            ("pivots", ce.lp_pivots, fe.lp_pivots),
            (
                "refactorizations",
                ce.lp_refactorizations,
                fe.lp_refactorizations,
            ),
        ] {
            let ceiling = committed_n as f64 * max_e20_ratio;
            if fresh_n as f64 > ceiling {
                failures.push(format!(
                    "{gated_id} solve effort regressed: fresh {fresh_n} {what} > {ceiling:.0} ({}% of committed {committed_n})",
                    (max_e20_ratio * 100.0).round(),
                ));
            }
        }
    }
    // The interval certification tier must keep discharging the
    // dual-feasibility proofs on the sweep workloads: a rate collapse
    // means every solve silently pays for both tiers.
    for gated_id in ["e21", "e22"] {
        let Some(fe) = fresh.experiments.iter().find(|e| e.id == gated_id) else {
            continue;
        };
        let attempts = fe.interval_accepts + fe.interval_escalations;
        if attempts == 0 {
            // Exact-mode run, or a record predating the field.
            continue;
        }
        let rate = fe.interval_accepts as f64 / attempts as f64;
        if rate < min_accept_rate {
            failures.push(format!(
                "{gated_id} interval accept rate collapsed: {} accepts / {} attempts = {rate:.3} < {min_accept_rate}",
                fe.interval_accepts, attempts
            ));
        }
    }
    // Certification wall time on the certify-heavy sweeps: loosely gated
    // (a broken interval tier multiplies it; machine noise does not).
    for gated_id in ["e19", "e22"] {
        let row = |rec: &BenchRecord| rec.experiments.iter().find(|e| e.id == gated_id).cloned();
        let (Some(ce), Some(fe)) = (row(&committed), row(&fresh)) else {
            continue;
        };
        if ce.lp_certify_ms <= 0.0 {
            continue;
        }
        let ceiling = ce.lp_certify_ms * max_certify_ratio;
        if fe.lp_certify_ms > ceiling {
            failures.push(format!(
                "{gated_id} certify time regressed: fresh {:.3} ms > {ceiling:.3} ms ({}% of committed {:.3} ms)",
                fe.lp_certify_ms,
                (max_certify_ratio * 100.0).round(),
                ce.lp_certify_ms
            ));
        }
    }

    // Tail solve latency on the latency-gated sweeps: loosely gated — a
    // lost warm path or a certify-everything bug multiplies p99 well past
    // 3×, while machine noise and bucket quantization stay far under.
    for gated_id in ["e19", "e21", "e22"] {
        let row = |rec: &BenchRecord| rec.experiments.iter().find(|e| e.id == gated_id).cloned();
        let (Some(ce), Some(fe)) = (row(&committed), row(&fresh)) else {
            continue;
        };
        if ce.lp_p99_ms <= 0.0 {
            continue; // a record predating the field, or an empty run
        }
        let ceiling = ce.lp_p99_ms * max_p99_ratio;
        if fe.lp_p99_ms > ceiling {
            failures.push(format!(
                "{gated_id} p99 solve latency regressed: fresh {:.3} ms > {ceiling:.3} ms ({}% of committed {:.3} ms)",
                fe.lp_p99_ms,
                (max_p99_ratio * 100.0).round(),
                ce.lp_p99_ms
            ));
        }
    }

    // The busy sweeps: each algorithm's cost/lower-bound ratio is exact
    // and deterministic, so a fresh ratio creeping past the committed one
    // is an approximation-quality regression in that algorithm.
    for gated_id in ["e24", "e25"] {
        let row = |rec: &BenchRecord| rec.experiments.iter().find(|e| e.id == gated_id).cloned();
        let (Some(ce), Some(fe)) = (row(&committed), row(&fresh)) else {
            continue;
        };
        for cb in &ce.busy_algos {
            let Some(fb) = fe.busy_algos.iter().find(|b| b.algo == cb.algo) else {
                failures.push(format!(
                    "{gated_id} busy sweep dropped algorithm {}: committed records it, fresh does not",
                    cb.algo
                ));
                continue;
            };
            if cb.ratio <= 0.0 {
                continue; // a row predating the field
            }
            let ceiling = cb.ratio * max_busy_ratio;
            if fb.ratio > ceiling {
                failures.push(format!(
                    "{gated_id} {} approximation ratio regressed: fresh {:.4} > {ceiling:.4} ({}% of committed {:.4})",
                    cb.algo,
                    fb.ratio,
                    (max_busy_ratio * 100.0).round(),
                    cb.ratio
                ));
            }
        }
    }

    println!(
        "perf_gate: objective {} (committed {}), speedup {:.2}x (committed {:.2}x, floor {:.2}x), {} experiments checked",
        f.objective,
        c.objective,
        f.speedup,
        c.speedup,
        floor,
        fresh.experiments.len()
    );
    if failures.is_empty() {
        println!("perf_gate: PASS");
    } else {
        for msg in &failures {
            eprintln!("perf_gate: FAIL: {msg}");
        }
        std::process::exit(1);
    }
}

//! Regenerates the paper's figures/claims as Markdown tables, and records
//! the solve-time trajectory in `BENCH_lp.json`.
//!
//! Usage: `experiments [--no-json] [--expect-demotions]
//! [--trace-out PATH] [e1 e5 ...]` — no experiment ids runs everything.
//! `--trace-out PATH` arms solve-pipeline tracing (`abt_core::obs`) and
//! writes the flight-recorder JSONL dump to `PATH` when the run finishes.
//! Unless `--no-json` is given, the run writes `BENCH_lp.json`
//! (path overridable via the `BENCH_LP_PATH` environment variable) in the
//! `abt-bench/lp-v2` schema (see [`abt_bench::bench_record`]): the wall
//! time and LP telemetry (fallback rate plus pivot/flip/refactorization/
//! certify counters and the decomposition sharding counters, with `e21`'s
//! Auto-vs-Off speedup) of every experiment that ran — active-side
//! (`abt_active::lp_telemetry`) and busy-side (`abt_busy::busy_lp_telemetry`)
//! deltas merged per row, with `e24`/`e25` additionally carrying
//! per-algorithm busy cost/ratio entries — plus a dedicated
//! `lp_simplex` measurement — `solve_active_lp` on a
//! `random_active_feasible` instance (n = 1000, g = 4) under the PR-2
//! configuration (`revised_bounds`: bounded revised simplex with the
//! `x ≤ Y` caps as rows) and the current default (`vub_implicit`: the
//! VUB-aware revised simplex, no cap rows at all), with the shared exact
//! objective and the resulting speedup. CI's `perf-gate` job re-runs this
//! record and compares it field-by-field against the committed file.
//!
//! Under the `fault-injection` cargo feature, the run first seeds the
//! failpoint registry from the `ABT_FAULTPOINTS` environment variable
//! (see [`abt_core::faultinject`]), and `--expect-demotions` turns the run
//! into a smoke assertion: it exits nonzero unless the supervision ladder
//! recorded at least one demotion and **zero** quarantines — i.e. the
//! injected faults actually fired and were all absorbed below the
//! quarantine line, with every exact objective intact.

use abt_active::{
    component_vars_window, lp_telemetry, solve_active_lp_with, solve_latency_snapshot, LpOptions,
};
use abt_bench::bench_record::{
    BenchRecord, BusyAlgoRecord, ExperimentRecord, LpSimplexRecord, SCHEMA,
};
use abt_bench::experiments;
use abt_bench::time_best_ms;
use abt_busy::{busy_lp_telemetry, busy_solve_latency_snapshot};
use abt_core::obs;
use abt_workloads::{random_active_feasible, RandomConfig};

/// Sum of closed-span nanoseconds for `name` in a `span_rollups` listing.
fn rollup_nanos(rollups: &[(String, u64, u64)], name: &str) -> u64 {
    rollups
        .iter()
        .find(|(n, _, _)| n == name)
        .map(|&(_, _, nanos)| nanos)
        .unwrap_or(0)
}

/// The headline measurement: PR-2 `revised_bounds` baseline vs the
/// VUB-aware `vub_implicit` solver, at the scale where the `x ≤ Y` rows
/// dominate. The candidate runs **monolithically**
/// ([`LpOptions::pr3_monolithic`]): the shipping default additionally
/// shards by interval-graph components, but its wall-clock gain scales
/// with the runner's core count, and the headline gate must compare
/// solver generations, not CI hardware — the sharding speedup is recorded
/// (and solve-effort gated) by the dedicated `e21` row instead.
fn lp_simplex_record() -> LpSimplexRecord {
    let cfg = RandomConfig {
        n: 1000,
        g: 4,
        horizon: 2000,
        max_len: 5,
        slack_factor: 1.0,
    };
    let inst = random_active_feasible(&cfg, 7);
    let (baseline_ms, baseline_lp) = time_best_ms(3, || {
        solve_active_lp_with(&inst, &LpOptions::pr2_revised_bounds())
            .expect("feasible by construction")
    });
    let before = lp_telemetry();
    let (candidate_ms, candidate_lp) = time_best_ms(3, || {
        solve_active_lp_with(&inst, &LpOptions::pr3_monolithic()).expect("feasible by construction")
    });
    let after = lp_telemetry();
    assert_eq!(
        baseline_lp.objective, candidate_lp.objective,
        "VUB-aware LP1 must reproduce the row-encoded objective exactly"
    );
    LpSimplexRecord {
        n: cfg.n as u64,
        g: cfg.g as u64,
        horizon: cfg.horizon,
        seed: 7,
        objective: candidate_lp.objective.to_string(),
        baseline: "revised_bounds".into(),
        baseline_ms,
        candidate: "vub_implicit".into(),
        candidate_ms,
        speedup: baseline_ms / candidate_ms,
        fallback: after.fallbacks > before.fallbacks,
    }
}

fn write_bench_json(experiments: Vec<ExperimentRecord>) {
    let path = std::env::var("BENCH_LP_PATH").unwrap_or_else(|_| "BENCH_lp.json".to_string());
    let record = BenchRecord {
        schema: SCHEMA.to_string(),
        lp_simplex: lp_simplex_record(),
        experiments,
    };
    match std::fs::write(&path, record.to_json()) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

fn main() {
    #[cfg(feature = "fault-injection")]
    {
        abt_core::faultinject::configure_from_env();
        if std::env::var_os("ABT_FAULTPOINTS").is_some() {
            // Injected panics are expected by the thousands in a smoke
            // run; printing each backtrace would drown the CI log. Real
            // (non-injected) panics still print.
            std::panic::set_hook(Box::new(|info| {
                let msg = info
                    .payload()
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| info.payload().downcast_ref::<String>().cloned())
                    .unwrap_or_default();
                if !msg.contains("faultinject:") {
                    eprintln!("{info}");
                }
            }));
        }
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let write_json = !args.iter().any(|a| a == "--no-json");
    let expect_demotions = args.iter().any(|a| a == "--expect-demotions");
    let trace_out = args.iter().position(|a| a == "--trace-out").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--trace-out requires a path argument");
            std::process::exit(2);
        })
    });
    if trace_out.is_some() {
        obs::set_tracing(true);
    }
    let mut skip_next = false;
    let selected: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--trace-out" {
                skip_next = true;
            }
            !a.starts_with("--")
        })
        .collect();
    let run_all = selected.is_empty();
    type ExperimentFn = fn() -> experiments::ExperimentReport;
    let fns: Vec<(&str, ExperimentFn)> = vec![
        ("e1", experiments::e1),
        ("e2", experiments::e2),
        ("e3", experiments::e3),
        ("e4", experiments::e4),
        ("e5", experiments::e5),
        ("e6", experiments::e6),
        ("e7", experiments::e7),
        ("e8", experiments::e8),
        ("e9", experiments::e9),
        ("e10", experiments::e10),
        ("e11", experiments::e11),
        ("e12", experiments::e12),
        ("e13", experiments::e13),
        ("e14", experiments::e14),
        ("e15", experiments::e15),
        ("e16", experiments::e16),
        ("e17", experiments::e17),
        ("e18", experiments::e18),
        ("e19", experiments::e19),
        ("e20", experiments::e20),
        ("e21", experiments::e21),
        ("e22", experiments::e22),
        ("e23", experiments::e23),
        ("e24", experiments::e24),
        ("e25", experiments::e25),
    ];
    let mut records: Vec<ExperimentRecord> = Vec::new();
    for (id, f) in fns {
        if run_all || selected.contains(&id) {
            let before = lp_telemetry();
            let busy_before = busy_lp_telemetry();
            // An exact in-experiment high-water mark for the component-vars
            // gauge (the cumulative delta is 0 unless the mark was raised).
            let vars_window = component_vars_window();
            let lat_before = solve_latency_snapshot().merge(&busy_solve_latency_snapshot());
            let rollups_before = obs::span_rollups();
            let started = std::time::Instant::now();
            let report = f();
            let elapsed = started.elapsed();
            let d = lp_telemetry().delta(&before);
            let lat = solve_latency_snapshot()
                .merge(&busy_solve_latency_snapshot())
                .delta(&lat_before);
            let rollups = obs::span_rollups();
            let phase_ms = |name: &str| {
                rollup_nanos(&rollups, name).saturating_sub(rollup_nanos(&rollups_before, name))
                    as f64
                    / 1e6
            };
            // Busy-time LP solves keep their own counters (abt-busy cannot
            // depend on abt-active); merge the two deltas so the fallback,
            // quarantine, and `--expect-demotions` gates cover both sides.
            let bd = busy_lp_telemetry().delta(&busy_before);
            println!("{}", report.to_markdown());
            println!("_(regenerated in {elapsed:.2?})_\n");
            let solves = d.solves + bd.solves;
            let fallback_rate = if solves == 0 {
                0.0
            } else {
                (d.fallbacks + bd.fallbacks) as f64 / solves as f64
            };
            let headline_busy = report
                .busy
                .iter()
                .find(|b| b.algo == "LpRounding")
                .map(|b| (b.cost, b.ratio))
                .unwrap_or((0, 0.0));
            records.push(ExperimentRecord {
                id: id.to_string(),
                wall_ms: elapsed.as_secs_f64() * 1e3,
                lp_solves: solves,
                fallback_rate,
                lp_pivots: d.pivots + bd.pivots,
                lp_bound_flips: d.bound_flips + bd.bound_flips,
                lp_refactorizations: d.refactorizations + bd.refactorizations,
                lp_certify_ms: (d.certify_nanos + bd.certify_nanos) as f64 / 1e6,
                lp_components: d.components,
                lp_max_component_vars: vars_window.value(),
                warm_hits: d.warm_hits,
                warm_pivots_saved: d.warm_pivots_saved,
                demotions: d.demotions + bd.demotions,
                budget_trips: d.budget_trips,
                quarantined: d.quarantined + bd.quarantined,
                interval_accepts: d.interval_accepts + bd.interval_accepts,
                interval_escalations: d.interval_escalations + bd.interval_escalations,
                persist_restores: d.persist_restores,
                recoveries: d.recoveries,
                state_corrupt: d.state_corrupt,
                admission_rejects: d.admission_rejects,
                lp_p50_ms: lat.percentile(0.50) as f64 / 1e3,
                lp_p90_ms: lat.percentile(0.90) as f64 / 1e3,
                lp_p99_ms: lat.percentile(0.99) as f64 / 1e3,
                phase_decompose_ms: phase_ms("solve.decompose"),
                phase_warm_ms: phase_ms("solve.warm"),
                phase_pivot_ms: phase_ms("solve.pivot"),
                phase_certify_ms: phase_ms("solve.certify"),
                phase_stitch_ms: phase_ms("solve.stitch"),
                speedup: report.speedup,
                busy_cost: headline_busy.0,
                busy_ratio: headline_busy.1,
                busy_algos: report
                    .busy
                    .iter()
                    .map(|b| BusyAlgoRecord {
                        algo: b.algo.clone(),
                        cost: b.cost,
                        ratio: b.ratio,
                    })
                    .collect(),
            });
        }
    }
    if records.is_empty() {
        eprintln!("unknown experiment ids {selected:?}; available: e1..e25");
        std::process::exit(2);
    }
    if expect_demotions {
        let demotions: u64 = records.iter().map(|r| r.demotions).sum();
        let quarantined: u64 = records.iter().map(|r| r.quarantined).sum();
        if demotions == 0 {
            eprintln!("--expect-demotions: no supervision-ladder demotions recorded — the configured faults never fired");
            std::process::exit(1);
        }
        if quarantined > 0 {
            eprintln!("--expect-demotions: {quarantined} components quarantined — injected faults must demote, never quarantine");
            std::process::exit(1);
        }
        eprintln!("--expect-demotions: {demotions} demotions, 0 quarantines — all injected faults absorbed");
    }
    if write_json {
        write_bench_json(records);
    }
    if let Some(path) = trace_out {
        match obs::dump_to_file(std::path::Path::new(&path)) {
            Ok(()) => eprintln!("wrote flight-recorder dump {path}"),
            Err(e) => {
                eprintln!("could not write flight-recorder dump {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

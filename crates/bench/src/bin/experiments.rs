//! Regenerates the paper's figures/claims as Markdown tables, and records
//! the solve-time trajectory in `BENCH_lp.json`.
//!
//! Usage: `experiments [--no-json] [e1 e5 ...]` — no experiment ids runs
//! everything. Unless `--no-json` is given, the run writes `BENCH_lp.json`
//! (path overridable via the `BENCH_LP_PATH` environment variable) with
//! the wall time of every experiment that ran plus a dedicated
//! `lp_simplex` measurement: `solve_active_lp` on a
//! `random_active_feasible` instance (n = 40, g = 4) under the seed
//! configuration (per-slot model, pure exact-rational simplex) and the
//! current default (coalesced model, hybrid solve), with their exact
//! objectives and the resulting speedup.

#![allow(clippy::type_complexity)] // the dispatch table type is self-explanatory

use abt_active::{solve_active_lp_with, LpOptions};
use abt_bench::experiments;
use abt_workloads::{random_active_feasible, RandomConfig};
use std::time::Instant;

/// Wall-times `f` (best of `reps` runs) and returns (seconds, result).
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let started = Instant::now();
        let v = f();
        best = best.min(started.elapsed().as_secs_f64());
        out = Some(v);
    }
    (best, out.expect("reps >= 1"))
}

/// The PR-1 headline measurement: seed LP configuration vs the default.
fn lp_simplex_record() -> String {
    let cfg = RandomConfig {
        n: 40,
        g: 4,
        ..RandomConfig::default()
    };
    let inst = random_active_feasible(&cfg, 7);
    let (seed_s, seed_lp) = time_best(3, || {
        solve_active_lp_with(&inst, &LpOptions::seed_exact()).expect("feasible by construction")
    });
    let (hybrid_s, hybrid_lp) = time_best(3, || {
        solve_active_lp_with(&inst, &LpOptions::default()).expect("feasible by construction")
    });
    assert_eq!(
        seed_lp.objective, hybrid_lp.objective,
        "hybrid/coalesced LP1 must reproduce the seed objective exactly"
    );
    format!(
        concat!(
            "{{\"bench\": \"solve_active_lp\", \"family\": \"random_active_feasible\", ",
            "\"n\": {}, \"g\": {}, \"horizon\": {}, \"seed\": 7, ",
            "\"objective\": \"{}\", ",
            "\"seed_exact_perslot_ms\": {:.3}, \"hybrid_coalesced_ms\": {:.3}, ",
            "\"speedup\": {:.2}}}"
        ),
        cfg.n,
        cfg.g,
        cfg.horizon,
        seed_lp.objective,
        seed_s * 1e3,
        hybrid_s * 1e3,
        seed_s / hybrid_s,
    )
}

fn write_bench_json(experiment_times: &[(&str, f64)]) {
    let path = std::env::var("BENCH_LP_PATH").unwrap_or_else(|_| "BENCH_lp.json".to_string());
    let mut json = String::from("{\n  \"schema\": \"abt-bench/lp-v1\",\n");
    json.push_str("  \"lp_simplex\": ");
    json.push_str(&lp_simplex_record());
    json.push_str(",\n  \"experiments\": [\n");
    for (i, (id, secs)) in experiment_times.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"id\": \"{id}\", \"wall_ms\": {:.3}}}{}\n",
            secs * 1e3,
            if i + 1 < experiment_times.len() {
                ","
            } else {
                ""
            }
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let write_json = !args.iter().any(|a| a == "--no-json");
    let selected: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| !a.starts_with("--"))
        .collect();
    let run_all = selected.is_empty();
    let fns: Vec<(&str, fn() -> experiments::ExperimentReport)> = vec![
        ("e1", experiments::e1),
        ("e2", experiments::e2),
        ("e3", experiments::e3),
        ("e4", experiments::e4),
        ("e5", experiments::e5),
        ("e6", experiments::e6),
        ("e7", experiments::e7),
        ("e8", experiments::e8),
        ("e9", experiments::e9),
        ("e10", experiments::e10),
        ("e11", experiments::e11),
        ("e12", experiments::e12),
        ("e13", experiments::e13),
        ("e14", experiments::e14),
        ("e15", experiments::e15),
        ("e16", experiments::e16),
        ("e17", experiments::e17),
        ("e18", experiments::e18),
    ];
    let mut times: Vec<(&str, f64)> = Vec::new();
    for (id, f) in fns {
        if run_all || selected.contains(&id) {
            let started = std::time::Instant::now();
            let report = f();
            let elapsed = started.elapsed();
            println!("{}", report.to_markdown());
            println!("_(regenerated in {elapsed:.2?})_\n");
            times.push((id, elapsed.as_secs_f64()));
        }
    }
    if times.is_empty() {
        eprintln!("unknown experiment ids {selected:?}; available: e1..e18");
        std::process::exit(2);
    }
    if write_json {
        write_bench_json(&times);
    }
}

//! Regenerates the paper's figures/claims as Markdown tables.
//!
//! Usage: `experiments [e1 e5 ...]` — no arguments runs everything.

#![allow(clippy::type_complexity)] // the dispatch table type is self-explanatory

use abt_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selected: Vec<&str> = args.iter().map(String::as_str).collect();
    let run_all = selected.is_empty();
    let fns: Vec<(&str, fn() -> experiments::ExperimentReport)> = vec![
        ("e1", experiments::e1),
        ("e2", experiments::e2),
        ("e3", experiments::e3),
        ("e4", experiments::e4),
        ("e5", experiments::e5),
        ("e6", experiments::e6),
        ("e7", experiments::e7),
        ("e8", experiments::e8),
        ("e9", experiments::e9),
        ("e10", experiments::e10),
        ("e11", experiments::e11),
        ("e12", experiments::e12),
        ("e13", experiments::e13),
        ("e14", experiments::e14),
        ("e15", experiments::e15),
        ("e16", experiments::e16),
        ("e17", experiments::e17),
        ("e18", experiments::e18),
    ];
    let mut ran = 0;
    for (id, f) in fns {
        if run_all || selected.contains(&id) {
            let started = std::time::Instant::now();
            let report = f();
            println!("{}", report.to_markdown());
            println!("_(regenerated in {:.2?})_\n", started.elapsed());
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("unknown experiment ids {selected:?}; available: e1..e18");
        std::process::exit(2);
    }
}

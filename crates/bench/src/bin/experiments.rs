//! Regenerates the paper's figures/claims as Markdown tables, and records
//! the solve-time trajectory in `BENCH_lp.json`.
//!
//! Usage: `experiments [--no-json] [e1 e5 ...]` — no experiment ids runs
//! everything. Unless `--no-json` is given, the run writes `BENCH_lp.json`
//! (path overridable via the `BENCH_LP_PATH` environment variable) in the
//! `abt-bench/lp-v2` schema (see [`abt_bench::bench_record`]): the wall
//! time and LP fallback telemetry of every experiment that ran, plus a
//! dedicated `lp_simplex` measurement — `solve_active_lp` on a
//! `random_active_feasible` instance (n = 200, g = 4) under the PR-1
//! configuration (coalesced model, explicit bound rows, dense hybrid) and
//! the current default (coalesced, implicit bounds, bounded revised
//! simplex with sparse exact-LU verification), with the shared exact
//! objective and the resulting speedup. CI's `perf-gate` job re-runs this
//! record and compares it field-by-field against the committed file.

use abt_active::{lp_telemetry, solve_active_lp_with, LpOptions};
use abt_bench::bench_record::{BenchRecord, ExperimentRecord, LpSimplexRecord, SCHEMA};
use abt_bench::experiments;
use abt_bench::time_best_ms;
use abt_workloads::{random_active_feasible, RandomConfig};

/// The headline measurement: PR-1 baseline vs the bounded revised default.
fn lp_simplex_record() -> LpSimplexRecord {
    let cfg = RandomConfig {
        n: 200,
        g: 4,
        horizon: 400,
        max_len: 5,
        slack_factor: 1.0,
    };
    let inst = random_active_feasible(&cfg, 7);
    let (baseline_ms, baseline_lp) = time_best_ms(3, || {
        solve_active_lp_with(&inst, &LpOptions::pr1_hybrid()).expect("feasible by construction")
    });
    let (_, fb0) = lp_telemetry();
    let (candidate_ms, candidate_lp) = time_best_ms(3, || {
        solve_active_lp_with(&inst, &LpOptions::default()).expect("feasible by construction")
    });
    let (_, fb1) = lp_telemetry();
    assert_eq!(
        baseline_lp.objective, candidate_lp.objective,
        "revised/implicit-bounds LP1 must reproduce the PR-1 objective exactly"
    );
    LpSimplexRecord {
        n: cfg.n as u64,
        g: cfg.g as u64,
        horizon: cfg.horizon,
        seed: 7,
        objective: candidate_lp.objective.to_string(),
        baseline_ms,
        candidate_ms,
        speedup: baseline_ms / candidate_ms,
        fallback: fb1 > fb0,
    }
}

fn write_bench_json(experiments: Vec<ExperimentRecord>) {
    let path = std::env::var("BENCH_LP_PATH").unwrap_or_else(|_| "BENCH_lp.json".to_string());
    let record = BenchRecord {
        schema: SCHEMA.to_string(),
        lp_simplex: lp_simplex_record(),
        experiments,
    };
    match std::fs::write(&path, record.to_json()) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let write_json = !args.iter().any(|a| a == "--no-json");
    let selected: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| !a.starts_with("--"))
        .collect();
    let run_all = selected.is_empty();
    type ExperimentFn = fn() -> experiments::ExperimentReport;
    let fns: Vec<(&str, ExperimentFn)> = vec![
        ("e1", experiments::e1),
        ("e2", experiments::e2),
        ("e3", experiments::e3),
        ("e4", experiments::e4),
        ("e5", experiments::e5),
        ("e6", experiments::e6),
        ("e7", experiments::e7),
        ("e8", experiments::e8),
        ("e9", experiments::e9),
        ("e10", experiments::e10),
        ("e11", experiments::e11),
        ("e12", experiments::e12),
        ("e13", experiments::e13),
        ("e14", experiments::e14),
        ("e15", experiments::e15),
        ("e16", experiments::e16),
        ("e17", experiments::e17),
        ("e18", experiments::e18),
        ("e19", experiments::e19),
    ];
    let mut records: Vec<ExperimentRecord> = Vec::new();
    for (id, f) in fns {
        if run_all || selected.contains(&id) {
            let (solves0, fallbacks0) = lp_telemetry();
            let started = std::time::Instant::now();
            let report = f();
            let elapsed = started.elapsed();
            let (solves1, fallbacks1) = lp_telemetry();
            println!("{}", report.to_markdown());
            println!("_(regenerated in {elapsed:.2?})_\n");
            let lp_solves = solves1 - solves0;
            let fallback_rate = if lp_solves == 0 {
                0.0
            } else {
                (fallbacks1 - fallbacks0) as f64 / lp_solves as f64
            };
            records.push(ExperimentRecord {
                id: id.to_string(),
                wall_ms: elapsed.as_secs_f64() * 1e3,
                lp_solves,
                fallback_rate,
            });
        }
    }
    if records.is_empty() {
        eprintln!("unknown experiment ids {selected:?}; available: e1..e19");
        std::process::exit(2);
    }
    if write_json {
        write_bench_json(records);
    }
}

//! The `BENCH_lp.json` schema (`abt-bench/lp-v2`): a typed writer/parser
//! pair so the CI perf gate compares *fields*, not eyeballed artifacts.
//! This module doc is the schema's reference: every field, its optionality
//! rule, and how the `perf_gate` binary consumes it.
//!
//! # Document layout
//!
//! The document is a single JSON object with exactly three keys:
//!
//! | key          | type   | meaning                                      |
//! |--------------|--------|----------------------------------------------|
//! | `schema`     | string | must equal [`SCHEMA`] (`"abt-bench/lp-v2"`); any other value is rejected on parse |
//! | `lp_simplex` | object | the headline baseline-vs-candidate measurement ([`LpSimplexRecord`]) |
//! | `experiments`| array  | one object per experiment that ran ([`ExperimentRecord`]) |
//!
//! # `lp_simplex` — the headline record
//!
//! `solve_active_lp` timed on one fixed `random_active_feasible` instance
//! under a named *baseline* configuration and the named current-default
//! *candidate*. Fields:
//!
//! | field          | type   | optional? | gate semantics                  |
//! |----------------|--------|-----------|---------------------------------|
//! | `bench`, `family` | string | written, ignored on parse | human context only |
//! | `n`, `g`, `horizon`, `seed` | number | required | instance identity; not gated directly |
//! | `objective`    | string | required  | exact rational optimum (e.g. `"797/4"`); **any change fails the gate** — the exact optimum must never move |
//! | `baseline`     | string | optional, default `"unnamed"` | gated: committed and fresh must name the *same* baseline, or the comparison is cross-generation and fails |
//! | `baseline_ms`  | number | required  | wall time; informational        |
//! | `candidate`    | string | optional, default `"unnamed"` | gated like `baseline` |
//! | `candidate_ms` | number | required  | wall time; informational        |
//! | `speedup`      | number | required  | `baseline_ms / candidate_ms`; fails the gate when it regresses below `--min-speedup-ratio` (default 0.7) × the committed value |
//! | `fallback`     | bool   | required  | `true` fails the gate: the candidate must never need the exact fallback on the headline family |
//!
//! # `experiments[]` — per-experiment rows
//!
//! Wall time plus the LP telemetry delta ([`abt_active::lp_telemetry`])
//! scoped to that experiment's run. All counter fields after
//! `fallback_rate` are **optional on parse and default to 0/absent**, so
//! every earlier `lp-v2` document remains readable; the writer always
//! emits the current full set.
//!
//! | field            | type   | optional? | gate semantics                |
//! |------------------|--------|-----------|-------------------------------|
//! | `id`             | string | required  | experiment id (`e1`…); rows are matched by id across records |
//! | `wall_ms`        | number | required  | informational (machine-dependent; never gated) |
//! | `lp_solves`      | number | required  | hybrid-style LP solves during the experiment; under `DecomposeMode::Auto` each component sub-LP counts once |
//! | `fallback_rate`  | number | required  | `lp_fallbacks / lp_solves`; **any nonzero value fails the gate** — every current workload is non-adversarial |
//! | `lp_pivots`      | number | optional (0) | solve effort; for `e20`/`e21` the gate fails when the fresh count exceeds `--max-effort-ratio` (default 1.3) × committed — deterministic per instance, so regressions are algorithmic, never machine noise |
//! | `lp_bound_flips` | number | optional (0) | informational              |
//! | `lp_refactorizations` | number | optional (0) | solve effort, gated for `e20`/`e21` like `lp_pivots` |
//! | `lp_certify_ms`  | number | optional (0) | exact-certification wall time; informational |
//! | `lp_components`  | number | optional (0) | component sub-LPs solved by sharded (`DecomposeMode::Auto`) solves during the experiment |
//! | `lp_max_component_vars` | number | optional (0) | largest component sub-LP's variable count: 0 when the experiment sharded nothing (`lp_components` = 0), otherwise the process-wide high-water mark at snapshot time |
//! | `warm_hits`      | number | optional (0) | warm-start attempts that installed and certified warm (batched siblings + incremental re-solves); 0 for experiments that never warm-start. Informational — the warm *benefit* is gated through `e22`'s `lp_pivots` |
//! | `warm_pivots_saved` | number | optional (0) | pivots saved by those hits versus each hit's cold reference solve (floored at zero per solve); informational |
//! | `demotions`      | number | optional (0) | failure-driven supervision-ladder demotions (see `abt-active`'s `supervise` module). Nonzero only under fault injection or solve budgets; informational in the record (CI asserts it separately in the fault-injection smoke) |
//! | `budget_trips`   | number | optional (0) | solve attempts that tripped a pivot/refactorization/wall-time budget (a subset of `demotions`); informational |
//! | `quarantined`    | number | optional (0) | components whose whole supervision ladder failed; **any nonzero value fails the gate** — a fault-free benchmark run must never quarantine |
//! | `interval_accepts` | number | optional (0) | solves whose dual-feasibility proof was discharged by the directed-rounding interval tier alone (no exact reduced-cost sweep); for `e21`/`e22` the gate fails when `interval_accepts / (interval_accepts + interval_escalations)` drops below `--min-interval-accept-rate` (default 0.9) — skipped when both counters are 0 (e.g. a `CertifyMode::Exact` run) |
//! | `interval_escalations` | number | optional (0) | solves whose interval sweep was inconclusive and escalated to the exact sweep; the accept-rate denominator above |
//! | `persist_restores` | number | optional (0) | cache blocks + basis snapshots restored from persisted state by `attach_store` recoveries; informational |
//! | `recoveries`     | number | optional (0) | completed recovery events (journal-resume attaches, corruption absorptions, storm-guard quarantines); the denominator of the `e23` corruption gate |
//! | `state_corrupt`  | number | optional (0) | persisted-state corruption detections; for `e23` the gate **fails when `state_corrupt > recoveries`** — a detection without a matching recovery means the absorption path itself broke |
//! | `admission_rejects` | number | optional (0) | requests bounced by the Hall-condition admission precheck before any solver work; informational |
//! | `lp_p50_ms`      | number | optional (0) | median per-solve LP latency during the experiment, from the `lp.solve_latency_us` histogram delta (`abt_core::obs`); 0 when the experiment solved nothing |
//! | `lp_p90_ms`      | number | optional (0) | 90th-percentile per-solve LP latency; informational |
//! | `lp_p99_ms`      | number | optional (0) | 99th-percentile per-solve LP latency; for `e19`/`e21`/`e22` the gate fails when the fresh value exceeds `--max-p99-ratio` (default 3.0) × committed — skipped when the committed value is 0 (older record or empty run) |
//! | `phase_decompose_ms` | number | optional (0) | total wall time inside `solve.decompose` spans during the experiment (span rollup delta); informational |
//! | `phase_warm_ms`  | number | optional (0) | total wall time inside `solve.warm` spans; informational |
//! | `phase_pivot_ms` | number | optional (0) | total wall time inside `solve.pivot` spans (every cold float pass); informational |
//! | `phase_certify_ms` | number | optional (0) | total wall time inside `solve.certify` spans (exact + interval certification); informational |
//! | `phase_stitch_ms` | number | optional (0) | total wall time inside `solve.stitch` spans; informational |
//! | `speedup`        | number | optional (absent) | an experiment-defined headline ratio — `e21` records its Auto-vs-Off LP1 wall-clock speedup, `e22` its cold/warm pivot-effort ratio; absent for experiments without one. Informational (the deterministic effort counters are what CI gates) |
//! | `busy_cost`      | number | optional (0) | total busy time of the row's headline busy algorithm (`LpRounding`) summed over the experiment's instances; exact integer costs on seeded instance streams, so bit-deterministic across runs |
//! | `busy_ratio`     | number | optional (0) | that algorithm's worst observed cost/lower-bound ratio; for rows carrying busy entries (`e24`/`e25`) the gate fails when the fresh value exceeds `--max-busy-ratio` (default 1.05) × committed |
//! | `busy_algos`     | array  | optional (empty) | per-algorithm objects `{"algo", "cost", "ratio"}` ([`BusyAlgoRecord`]) covering the whole zoo; every algorithm present in both committed and fresh records is ratio-gated like `busy_ratio` |
//!
//! # Parsing
//!
//! The JSON subset used here (objects, arrays, UTF-8 strings with the
//! common escapes, numbers, booleans) is parsed by a tiny recursive
//! scanner — the offline dependency set has no serde, and the perf gate
//! must not depend on a `jq` binary being installed on the runner.
//! Unknown keys are ignored on parse (forward compatibility); missing
//! *required* keys are hard errors.

use std::collections::BTreeMap;

/// Schema tag written/accepted by this module.
pub const SCHEMA: &str = "abt-bench/lp-v2";

/// The headline `lp_simplex` measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSimplexRecord {
    /// Instance family parameters.
    pub n: u64,
    /// Capacity `g`.
    pub g: u64,
    /// Horizon length.
    pub horizon: i64,
    /// Generator seed.
    pub seed: u64,
    /// Exact LP optimum, rendered as a rational string (e.g. `"797/4"`).
    pub objective: String,
    /// Name of the baseline configuration (e.g. `"revised_bounds"`).
    pub baseline: String,
    /// Baseline wall time, ms.
    pub baseline_ms: f64,
    /// Name of the candidate configuration (e.g. `"vub_implicit"`).
    pub candidate: String,
    /// Candidate wall time, ms.
    pub candidate_ms: f64,
    /// `baseline_ms / candidate_ms`.
    pub speedup: f64,
    /// Whether the candidate solve needed the exact fallback.
    pub fallback: bool,
}

/// One experiment's wall time and LP telemetry. See the module docs for
/// the per-field optionality and gating rules.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRecord {
    /// Experiment id (`e1`…).
    pub id: String,
    /// Wall time, ms.
    pub wall_ms: f64,
    /// Hybrid-style LP solves performed while the experiment ran.
    pub lp_solves: u64,
    /// Fraction of those that fell back to the exact solver.
    pub fallback_rate: f64,
    /// Basis-changing pivots across those solves.
    pub lp_pivots: u64,
    /// Bound/VUB flips across those solves.
    pub lp_bound_flips: u64,
    /// LU refactorizations across those solves.
    pub lp_refactorizations: u64,
    /// Exact-certification wall time across those solves, ms.
    pub lp_certify_ms: f64,
    /// Component sub-LPs solved by sharded (`DecomposeMode::Auto`) solves.
    pub lp_components: u64,
    /// High-water mark of the largest component sub-LP's variable count.
    pub lp_max_component_vars: u64,
    /// Warm-start attempts that installed and certified warm during the
    /// experiment (0 for experiments that never warm-start).
    pub warm_hits: u64,
    /// Pivots saved by those warm hits versus their cold reference solves.
    pub warm_pivots_saved: u64,
    /// Failure-driven supervision-ladder demotions during the experiment
    /// (0 on fault-free runs).
    pub demotions: u64,
    /// Solve attempts that tripped a pivot/refactorization/wall-time
    /// budget (a subset of `demotions`).
    pub budget_trips: u64,
    /// Components whose whole supervision ladder failed (gated: must be 0
    /// on fault-free benchmark runs).
    pub quarantined: u64,
    /// Solves whose dual-feasibility proof was discharged by the
    /// directed-rounding interval tier alone (gated for `e21`/`e22`: the
    /// accept rate must stay above `--min-interval-accept-rate`).
    pub interval_accepts: u64,
    /// Solves whose interval sweep was inconclusive and escalated to the
    /// exact reduced-cost sweep.
    pub interval_escalations: u64,
    /// Cache blocks and basis snapshots restored from persisted state
    /// (`attach_store` recoveries; 0 for experiments without durability).
    pub persist_restores: u64,
    /// Completed recovery events: journal-resume attaches, corruption
    /// absorptions, and storm-guard quarantines.
    pub recoveries: u64,
    /// Persisted-state corruption detections (each absorbed by a cold
    /// rebuild; gated for `e23`: must never exceed `recoveries`).
    pub state_corrupt: u64,
    /// Requests bounced by the Hall-condition admission precheck.
    pub admission_rejects: u64,
    /// Median per-solve LP latency (ms) from the solve-latency histogram
    /// delta scoped to the experiment; 0 when nothing solved.
    pub lp_p50_ms: f64,
    /// 90th-percentile per-solve LP latency (ms); informational.
    pub lp_p90_ms: f64,
    /// 99th-percentile per-solve LP latency (ms); gated for `e19`/`e21`/
    /// `e22` via `--max-p99-ratio` (skipped when the committed value is 0).
    pub lp_p99_ms: f64,
    /// Wall time inside `solve.decompose` spans during the experiment, ms.
    pub phase_decompose_ms: f64,
    /// Wall time inside `solve.warm` spans, ms.
    pub phase_warm_ms: f64,
    /// Wall time inside `solve.pivot` spans, ms.
    pub phase_pivot_ms: f64,
    /// Wall time inside `solve.certify` spans, ms.
    pub phase_certify_ms: f64,
    /// Wall time inside `solve.stitch` spans, ms.
    pub phase_stitch_ms: f64,
    /// Experiment-defined headline ratio (e.g. `e21`'s Auto-vs-Off LP1
    /// speedup, `e22`'s cold/warm pivot-effort ratio); `None` for
    /// experiments without one.
    pub speedup: Option<f64>,
    /// Total busy time of the headline busy algorithm (`LpRounding`)
    /// across the experiment's instances (0 for non-busy experiments).
    pub busy_cost: u64,
    /// The headline busy algorithm's worst cost/lower-bound ratio
    /// (gated for `e24`/`e25` via `--max-busy-ratio`; 0 otherwise).
    pub busy_ratio: f64,
    /// Per-algorithm busy summaries (empty for non-busy experiments).
    pub busy_algos: Vec<BusyAlgoRecord>,
}

/// One busy algorithm's aggregate inside an experiment row (`busy_algos`).
#[derive(Debug, Clone, PartialEq)]
pub struct BusyAlgoRecord {
    /// Algorithm name (`IntervalAlgo::name()`).
    pub algo: String,
    /// Total busy time across the experiment's instances.
    pub cost: u64,
    /// Worst observed cost/lower-bound ratio.
    pub ratio: f64,
}

/// The whole `BENCH_lp.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Headline measurement.
    pub lp_simplex: LpSimplexRecord,
    /// Per-experiment rows.
    pub experiments: Vec<ExperimentRecord>,
}

/// JSON string escaping for the writer (`"`, `\\`, and control bytes; the
/// strings here are rational literals and experiment ids, but the writer
/// must never emit invalid JSON whatever it is handed).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl BenchRecord {
    /// Serializes to the canonical JSON layout.
    pub fn to_json(&self) -> String {
        let s = &self.lp_simplex;
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", esc(&self.schema)));
        out.push_str(&format!(
            concat!(
                "  \"lp_simplex\": {{\"bench\": \"solve_active_lp\", ",
                "\"family\": \"random_active_feasible\", ",
                "\"n\": {}, \"g\": {}, \"horizon\": {}, \"seed\": {}, ",
                "\"objective\": \"{}\", ",
                "\"baseline\": \"{}\", \"baseline_ms\": {:.3}, ",
                "\"candidate\": \"{}\", \"candidate_ms\": {:.3}, ",
                "\"speedup\": {:.2}, \"fallback\": {}}},\n"
            ),
            s.n,
            s.g,
            s.horizon,
            s.seed,
            esc(&s.objective),
            esc(&s.baseline),
            s.baseline_ms,
            esc(&s.candidate),
            s.candidate_ms,
            s.speedup,
            s.fallback
        ));
        out.push_str("  \"experiments\": [\n");
        for (i, e) in self.experiments.iter().enumerate() {
            let speedup = e
                .speedup
                .map(|s| format!(", \"speedup\": {s:.2}"))
                .unwrap_or_default();
            let busy = if e.busy_algos.is_empty() {
                String::new()
            } else {
                let entries: Vec<String> = e
                    .busy_algos
                    .iter()
                    .map(|b| {
                        format!(
                            "{{\"algo\": \"{}\", \"cost\": {}, \"ratio\": {:.4}}}",
                            esc(&b.algo),
                            b.cost,
                            b.ratio
                        )
                    })
                    .collect();
                format!(
                    ", \"busy_cost\": {}, \"busy_ratio\": {:.4}, \"busy_algos\": [{}]",
                    e.busy_cost,
                    e.busy_ratio,
                    entries.join(", ")
                )
            };
            out.push_str(&format!(
                concat!(
                    "    {{\"id\": \"{}\", \"wall_ms\": {:.3}, \"lp_solves\": {}, ",
                    "\"fallback_rate\": {:.4}, \"lp_pivots\": {}, \"lp_bound_flips\": {}, ",
                    "\"lp_refactorizations\": {}, \"lp_certify_ms\": {:.3}, ",
                    "\"lp_components\": {}, \"lp_max_component_vars\": {}, ",
                    "\"warm_hits\": {}, \"warm_pivots_saved\": {}, ",
                    "\"demotions\": {}, \"budget_trips\": {}, \"quarantined\": {}, ",
                    "\"interval_accepts\": {}, \"interval_escalations\": {}, ",
                    "\"persist_restores\": {}, \"recoveries\": {}, ",
                    "\"state_corrupt\": {}, \"admission_rejects\": {}, ",
                    "\"lp_p50_ms\": {:.3}, \"lp_p90_ms\": {:.3}, \"lp_p99_ms\": {:.3}, ",
                    "\"phase_decompose_ms\": {:.3}, \"phase_warm_ms\": {:.3}, ",
                    "\"phase_pivot_ms\": {:.3}, \"phase_certify_ms\": {:.3}, ",
                    "\"phase_stitch_ms\": {:.3}{}{}}}{}\n"
                ),
                esc(&e.id),
                e.wall_ms,
                e.lp_solves,
                e.fallback_rate,
                e.lp_pivots,
                e.lp_bound_flips,
                e.lp_refactorizations,
                e.lp_certify_ms,
                e.lp_components,
                e.lp_max_component_vars,
                e.warm_hits,
                e.warm_pivots_saved,
                e.demotions,
                e.budget_trips,
                e.quarantined,
                e.interval_accepts,
                e.interval_escalations,
                e.persist_restores,
                e.recoveries,
                e.state_corrupt,
                e.admission_rejects,
                e.lp_p50_ms,
                e.lp_p90_ms,
                e.lp_p99_ms,
                e.phase_decompose_ms,
                e.phase_warm_ms,
                e.phase_pivot_ms,
                e.phase_certify_ms,
                e.phase_stitch_ms,
                speedup,
                busy,
                if i + 1 < self.experiments.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a `BENCH_lp.json` document (schema `abt-bench/lp-v2`).
    pub fn from_json(text: &str) -> Result<BenchRecord, String> {
        let value = Json::parse(text)?;
        let top = value.as_object("top level")?;
        let schema = get(top, "schema")?.as_str("schema")?.to_string();
        if schema != SCHEMA {
            return Err(format!("unsupported schema {schema:?}, want {SCHEMA:?}"));
        }
        let lp = get(top, "lp_simplex")?.as_object("lp_simplex")?;
        // Optional string/number fields keep earlier lp-v2 documents
        // (which lacked them) parseable.
        let opt_str = |obj: &BTreeMap<String, Json>, key: &str, default: &str| -> String {
            obj.get(key)
                .and_then(|v| v.as_str(key).ok().map(str::to_string))
                .unwrap_or_else(|| default.to_string())
        };
        let opt_num = |obj: &BTreeMap<String, Json>, key: &str| -> f64 {
            obj.get(key).and_then(|v| v.as_f64(key).ok()).unwrap_or(0.0)
        };
        let lp_simplex = LpSimplexRecord {
            n: get(lp, "n")?.as_f64("n")? as u64,
            g: get(lp, "g")?.as_f64("g")? as u64,
            horizon: get(lp, "horizon")?.as_f64("horizon")? as i64,
            seed: get(lp, "seed")?.as_f64("seed")? as u64,
            objective: get(lp, "objective")?.as_str("objective")?.to_string(),
            baseline: opt_str(lp, "baseline", "unnamed"),
            baseline_ms: get(lp, "baseline_ms")?.as_f64("baseline_ms")?,
            candidate: opt_str(lp, "candidate", "unnamed"),
            candidate_ms: get(lp, "candidate_ms")?.as_f64("candidate_ms")?,
            speedup: get(lp, "speedup")?.as_f64("speedup")?,
            fallback: get(lp, "fallback")?.as_bool("fallback")?,
        };
        let mut experiments = Vec::new();
        for (i, e) in get(top, "experiments")?
            .as_array("experiments")?
            .iter()
            .enumerate()
        {
            let e = e.as_object(&format!("experiments[{i}]"))?;
            experiments.push(ExperimentRecord {
                id: get(e, "id")?.as_str("id")?.to_string(),
                wall_ms: get(e, "wall_ms")?.as_f64("wall_ms")?,
                lp_solves: get(e, "lp_solves")?.as_f64("lp_solves")? as u64,
                fallback_rate: get(e, "fallback_rate")?.as_f64("fallback_rate")?,
                lp_pivots: opt_num(e, "lp_pivots") as u64,
                lp_bound_flips: opt_num(e, "lp_bound_flips") as u64,
                lp_refactorizations: opt_num(e, "lp_refactorizations") as u64,
                lp_certify_ms: opt_num(e, "lp_certify_ms"),
                lp_components: opt_num(e, "lp_components") as u64,
                lp_max_component_vars: opt_num(e, "lp_max_component_vars") as u64,
                warm_hits: opt_num(e, "warm_hits") as u64,
                warm_pivots_saved: opt_num(e, "warm_pivots_saved") as u64,
                demotions: opt_num(e, "demotions") as u64,
                budget_trips: opt_num(e, "budget_trips") as u64,
                quarantined: opt_num(e, "quarantined") as u64,
                interval_accepts: opt_num(e, "interval_accepts") as u64,
                interval_escalations: opt_num(e, "interval_escalations") as u64,
                persist_restores: opt_num(e, "persist_restores") as u64,
                recoveries: opt_num(e, "recoveries") as u64,
                state_corrupt: opt_num(e, "state_corrupt") as u64,
                admission_rejects: opt_num(e, "admission_rejects") as u64,
                lp_p50_ms: opt_num(e, "lp_p50_ms"),
                lp_p90_ms: opt_num(e, "lp_p90_ms"),
                lp_p99_ms: opt_num(e, "lp_p99_ms"),
                phase_decompose_ms: opt_num(e, "phase_decompose_ms"),
                phase_warm_ms: opt_num(e, "phase_warm_ms"),
                phase_pivot_ms: opt_num(e, "phase_pivot_ms"),
                phase_certify_ms: opt_num(e, "phase_certify_ms"),
                phase_stitch_ms: opt_num(e, "phase_stitch_ms"),
                speedup: e.get("speedup").and_then(|v| v.as_f64("speedup").ok()),
                busy_cost: opt_num(e, "busy_cost") as u64,
                busy_ratio: opt_num(e, "busy_ratio"),
                busy_algos: match e.get("busy_algos") {
                    None => Vec::new(),
                    Some(v) => {
                        let mut out = Vec::new();
                        for (k, b) in v.as_array("busy_algos")?.iter().enumerate() {
                            let b = b.as_object(&format!("busy_algos[{k}]"))?;
                            out.push(BusyAlgoRecord {
                                algo: get(b, "algo")?.as_str("algo")?.to_string(),
                                cost: opt_num(b, "cost") as u64,
                                ratio: opt_num(b, "ratio"),
                            });
                        }
                        out
                    }
                },
            });
        }
        Ok(BenchRecord {
            schema,
            lp_simplex,
            experiments,
        })
    }
}

fn get<'a>(obj: &'a BTreeMap<String, Json>, key: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("missing key {key:?}"))
}

/// A minimal JSON value (the subset `BENCH_lp.json` uses).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Object(BTreeMap<String, Json>),
    Array(Vec<Json>),
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

impl Json {
    fn as_object(&self, what: &str) -> Result<&BTreeMap<String, Json>, String> {
        match self {
            Json::Object(m) => Ok(m),
            other => Err(format!("{what}: expected object, got {other:?}")),
        }
    }
    fn as_array(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Array(v) => Ok(v),
            other => Err(format!("{what}: expected array, got {other:?}")),
        }
    }
    fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("{what}: expected string, got {other:?}")),
        }
    }
    fn as_f64(&self, what: &str) -> Result<f64, String> {
        match self {
            Json::Num(v) => Ok(*v),
            other => Err(format!("{what}: expected number, got {other:?}")),
        }
    }
    fn as_bool(&self, what: &str) -> Result<bool, String> {
        match self {
            Json::Bool(v) => Ok(*v),
            other => Err(format!("{what}: expected bool, got {other:?}")),
        }
    }

    fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(v)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", ch as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut out = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(out));
            }
            loop {
                out.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(out));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            s.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number {s:?} at byte {start}: {e}"))
        }
        None => Err("unexpected end of input".into()),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    // Accumulate raw bytes and decode as UTF-8 at the end, so multi-byte
    // characters survive the round trip.
    let mut out: Vec<u8> = Vec::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => {
                return String::from_utf8(out).map_err(|e| format!("invalid UTF-8 in string: {e}"))
            }
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|e| format!("bad \\u escape {hex:?}: {e}"))?;
                        *pos += 4;
                        // Surrogate pairs are outside this subset.
                        let ch = char::from_u32(code)
                            .ok_or_else(|| format!("unsupported \\u codepoint {code:#x}"))?;
                        out.extend_from_slice(ch.to_string().as_bytes());
                    }
                    other => return Err(format!("unsupported escape \\{}", other as char)),
                }
            }
            other => out.push(other),
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchRecord {
        BenchRecord {
            schema: SCHEMA.to_string(),
            lp_simplex: LpSimplexRecord {
                n: 200,
                g: 4,
                horizon: 400,
                seed: 7,
                objective: "797/4".into(),
                baseline: "revised_bounds".into(),
                baseline_ms: 288.505,
                candidate: "vub_implicit".into(),
                candidate_ms: 46.811,
                speedup: 6.16,
                fallback: false,
            },
            experiments: vec![
                ExperimentRecord {
                    id: "e1".into(),
                    wall_ms: 0.091,
                    lp_solves: 0,
                    fallback_rate: 0.0,
                    lp_pivots: 0,
                    lp_bound_flips: 0,
                    lp_refactorizations: 0,
                    lp_certify_ms: 0.0,
                    lp_components: 0,
                    lp_max_component_vars: 0,
                    warm_hits: 0,
                    warm_pivots_saved: 0,
                    demotions: 0,
                    budget_trips: 0,
                    quarantined: 0,
                    interval_accepts: 0,
                    interval_escalations: 0,
                    persist_restores: 0,
                    recoveries: 0,
                    state_corrupt: 0,
                    admission_rejects: 0,
                    lp_p50_ms: 0.0,
                    lp_p90_ms: 0.0,
                    lp_p99_ms: 0.0,
                    phase_decompose_ms: 0.0,
                    phase_warm_ms: 0.0,
                    phase_pivot_ms: 0.0,
                    phase_certify_ms: 0.0,
                    phase_stitch_ms: 0.0,
                    speedup: None,
                    busy_cost: 0,
                    busy_ratio: 0.0,
                    busy_algos: Vec::new(),
                },
                ExperimentRecord {
                    id: "e3".into(),
                    wall_ms: 3.351,
                    lp_solves: 16,
                    fallback_rate: 0.0,
                    lp_pivots: 420,
                    lp_bound_flips: 31,
                    lp_refactorizations: 12,
                    lp_certify_ms: 1.25,
                    lp_components: 24,
                    lp_max_component_vars: 96,
                    warm_hits: 7,
                    warm_pivots_saved: 120,
                    demotions: 2,
                    budget_trips: 1,
                    quarantined: 0,
                    interval_accepts: 14,
                    interval_escalations: 2,
                    persist_restores: 9,
                    recoveries: 3,
                    state_corrupt: 2,
                    admission_rejects: 1,
                    lp_p50_ms: 0.5,
                    lp_p90_ms: 1.25,
                    lp_p99_ms: 2.75,
                    phase_decompose_ms: 0.125,
                    phase_warm_ms: 0.25,
                    phase_pivot_ms: 1.5,
                    phase_certify_ms: 0.75,
                    phase_stitch_ms: 0.0625,
                    speedup: Some(3.75),
                    busy_cost: 321,
                    busy_ratio: 1.25,
                    busy_algos: vec![
                        BusyAlgoRecord {
                            algo: "LpRounding".into(),
                            cost: 321,
                            ratio: 1.25,
                        },
                        BusyAlgoRecord {
                            algo: "FirstFit".into(),
                            cost: 400,
                            ratio: 2.5,
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn roundtrips() {
        let rec = sample();
        let json = rec.to_json();
        let back = BenchRecord::from_json(&json).unwrap();
        assert_eq!(back.schema, rec.schema);
        assert_eq!(back.lp_simplex.objective, rec.lp_simplex.objective);
        assert_eq!(back.lp_simplex.n, 200);
        assert_eq!(back.lp_simplex.baseline, "revised_bounds");
        assert_eq!(back.lp_simplex.candidate, "vub_implicit");
        assert!(!back.lp_simplex.fallback);
        assert_eq!(back.experiments.len(), 2);
        assert_eq!(back.experiments[1].lp_solves, 16);
        assert_eq!(back.experiments[1].lp_pivots, 420);
        assert_eq!(back.experiments[1].lp_bound_flips, 31);
        assert_eq!(back.experiments[1].lp_refactorizations, 12);
        assert!((back.experiments[1].lp_certify_ms - 1.25).abs() < 1e-9);
        assert!((back.experiments[1].wall_ms - 3.351).abs() < 1e-9);
        assert_eq!(back.experiments[1].lp_components, 24);
        assert_eq!(back.experiments[1].lp_max_component_vars, 96);
        assert_eq!(back.experiments[1].warm_hits, 7);
        assert_eq!(back.experiments[1].warm_pivots_saved, 120);
        assert_eq!(back.experiments[1].demotions, 2);
        assert_eq!(back.experiments[1].budget_trips, 1);
        assert_eq!(back.experiments[1].quarantined, 0);
        assert_eq!(back.experiments[1].interval_accepts, 14);
        assert_eq!(back.experiments[1].interval_escalations, 2);
        assert_eq!(back.experiments[0].speedup, None);
        assert!((back.experiments[1].speedup.unwrap() - 3.75).abs() < 1e-9);
        assert!((back.experiments[1].lp_p50_ms - 0.5).abs() < 1e-9);
        assert!((back.experiments[1].lp_p90_ms - 1.25).abs() < 1e-9);
        assert!((back.experiments[1].lp_p99_ms - 2.75).abs() < 1e-9);
        assert!((back.experiments[1].phase_decompose_ms - 0.125).abs() < 1e-9);
        assert!((back.experiments[1].phase_warm_ms - 0.25).abs() < 1e-9);
        assert!((back.experiments[1].phase_pivot_ms - 1.5).abs() < 1e-9);
        assert!((back.experiments[1].phase_certify_ms - 0.75).abs() < 1e-9);
        assert!((back.experiments[1].phase_stitch_ms - 0.062).abs() < 1e-3);
        assert_eq!(back.experiments[0].busy_cost, 0);
        assert!(back.experiments[0].busy_algos.is_empty());
        assert_eq!(back.experiments[1].busy_cost, 321);
        assert!((back.experiments[1].busy_ratio - 1.25).abs() < 1e-9);
        assert_eq!(
            back.experiments[1].busy_algos,
            rec.experiments[1].busy_algos
        );
    }

    #[test]
    fn parses_records_without_telemetry_fields() {
        // An earlier lp-v2 document (no counter fields, no
        // baseline/candidate names, no sharding fields) still parses, with
        // defaults.
        let txt = r#"{ "schema": "abt-bench/lp-v2",
            "lp_simplex": {"n": 1, "g": 1, "horizon": 2, "seed": 0,
                "objective": "0", "baseline_ms": 1.0, "candidate_ms": 0.5,
                "speedup": 2.0, "fallback": false},
            "experiments": [
                {"id": "e1", "wall_ms": 3.0, "lp_solves": 4,
                 "fallback_rate": 0.0}
            ] }"#;
        let rec = BenchRecord::from_json(txt).unwrap();
        assert_eq!(rec.lp_simplex.baseline, "unnamed");
        assert_eq!(rec.experiments[0].lp_pivots, 0);
        assert_eq!(rec.experiments[0].lp_certify_ms, 0.0);
        assert_eq!(rec.experiments[0].lp_solves, 4);
        assert_eq!(rec.experiments[0].lp_components, 0);
        assert_eq!(rec.experiments[0].lp_max_component_vars, 0);
        assert_eq!(rec.experiments[0].warm_hits, 0);
        assert_eq!(rec.experiments[0].warm_pivots_saved, 0);
        assert_eq!(rec.experiments[0].demotions, 0);
        assert_eq!(rec.experiments[0].budget_trips, 0);
        assert_eq!(rec.experiments[0].quarantined, 0);
        assert_eq!(rec.experiments[0].interval_accepts, 0);
        assert_eq!(rec.experiments[0].interval_escalations, 0);
        assert_eq!(rec.experiments[0].speedup, None);
        assert_eq!(rec.experiments[0].busy_cost, 0);
        assert_eq!(rec.experiments[0].busy_ratio, 0.0);
        assert!(rec.experiments[0].busy_algos.is_empty());
        assert_eq!(rec.experiments[0].lp_p50_ms, 0.0);
        assert_eq!(rec.experiments[0].lp_p99_ms, 0.0);
        assert_eq!(rec.experiments[0].phase_pivot_ms, 0.0);
    }

    #[test]
    fn rejects_wrong_schema_and_garbage() {
        let mut rec = sample();
        rec.schema = "abt-bench/lp-v1".into();
        assert!(BenchRecord::from_json(&rec.to_json()).is_err());
        assert!(BenchRecord::from_json("{").is_err());
        assert!(BenchRecord::from_json("not json").is_err());
        assert!(BenchRecord::from_json("{\"schema\": \"abt-bench/lp-v2\"}").is_err());
    }

    #[test]
    fn escapes_and_utf8_roundtrip() {
        let mut rec = sample();
        rec.experiments[0].id = "e\"1\\π".into();
        rec.lp_simplex.objective = "7/4 µs".into();
        let back = BenchRecord::from_json(&rec.to_json()).unwrap();
        assert_eq!(back.experiments[0].id, rec.experiments[0].id);
        assert_eq!(back.lp_simplex.objective, rec.lp_simplex.objective);
    }

    #[test]
    fn parses_whitespace_and_empty_collections() {
        let txt = r#"{ "schema": "abt-bench/lp-v2",
            "lp_simplex": {"n": 1, "g": 1, "horizon": 2, "seed": 0,
                "objective": "0", "baseline_ms": 1.0, "candidate_ms": 0.5,
                "speedup": 2.0, "fallback": false},
            "experiments": [] }"#;
        let rec = BenchRecord::from_json(txt).unwrap();
        assert!(rec.experiments.is_empty());
        assert_eq!(rec.lp_simplex.speedup, 2.0);
    }
}

//! Minimal fixed-width table rendering for the experiment reports
//! (EXPERIMENTS.md is generated from this output).

/// A simple text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a GitHub-flavored Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let body: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", body.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|", sep.join("-|-")));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio with 4 decimals.
pub fn ratio(cost: i64, base: i64) -> String {
    if base == 0 {
        "∞".into()
    } else {
        format!("{:.4}", cost as f64 / base as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new(["a", "long header"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        let md = t.to_markdown();
        assert!(md.contains("| a   | long header |"));
        assert!(md.lines().count() == 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic]
    fn arity_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(3, 2), "1.5000");
        assert_eq!(ratio(1, 0), "∞");
    }
}

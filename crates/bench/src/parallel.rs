//! Re-export of [`abt_core::parallel`].
//!
//! `parallel_map` started life here; it moved down to `abt-core` when the
//! LP decomposition layer in `abt-active::lp_model` needed the same
//! scoped-thread fan-out for the connected components of a single instance
//! (`abt-active` cannot depend on `abt-bench` — the dependency points the
//! other way). This module keeps the historical `abt_bench::parallel_map`
//! path working for the experiment suite.

pub use abt_core::parallel::parallel_map;

//! Deterministic parallel sweeps over parameter grids, following the
//! hpc-parallel guides: data-parallel map with no shared mutable state,
//! results gathered in input order.

use crossbeam::thread;

/// Applies `f` to every item on a scoped worker pool, returning results in
/// input order. Falls back to sequential execution for tiny inputs.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len());
    let n = items.len();
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let jobs: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let queue = crossbeam::queue::SegQueue::new();
    for job in jobs {
        queue.push(job);
    }
    let results = crossbeam::queue::SegQueue::new();
    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| {
                while let Some((idx, item)) = queue.pop() {
                    results.push((idx, f(item)));
                }
            });
        }
    })
    .expect("worker panicked during parallel sweep");
    while let Some((idx, r)) = results.pop() {
        slots[idx] = Some(r);
    }
    slots.into_iter().map(|s| s.expect("every slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), |x: i32| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(parallel_map(Vec::<i32>::new(), |x| x), Vec::<i32>::new());
        assert_eq!(parallel_map(vec![7], |x| x + 1), vec![8]);
    }
}

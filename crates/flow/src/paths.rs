//! Decomposition of an integral flow into source–sink paths.
//!
//! The Alicherry–Bhatia busy-time algorithm (Appendix A.2) repeatedly
//! extracts a 2-unit flow over the event graph and needs the two unit paths
//! explicitly: each path visits a set of job arcs that forms a *track*
//! (pairwise-disjoint intervals).

use crate::graph::{EdgeId, FlowGraph, NodeId};

/// One unit flow path: the forward edge ids traversed from source to sink.
pub type FlowPath = Vec<EdgeId>;

/// Decomposes the current (integral) flow on `g` into unit `s → t` paths.
///
/// Consumes the flow (edge flows are decremented as paths are peeled), so
/// call it once after the flow computation. Cycles of flow (which carry no
/// `s→t` value) are left in place and ignored.
pub fn decompose_unit_paths(g: &mut FlowGraph, s: NodeId, t: NodeId) -> Vec<FlowPath> {
    let mut paths = Vec::new();
    loop {
        // Walk greedily along edges with positive flow.
        let mut path = Vec::new();
        let mut v = s;
        let mut seen = vec![false; g.node_count()];
        seen[s] = true;
        while v != t {
            let mut next = None;
            for &e in g.out_edges(v) {
                // Forward edges are even; flow(e) > 0 means it carries flow.
                if e % 2 == 0 && g.flow(e) > 0 && !seen[g.edge(e).to] {
                    next = Some(e);
                    break;
                }
            }
            match next {
                Some(e) => {
                    path.push(e);
                    v = g.edge(e).to;
                    seen[v] = true;
                }
                None => break,
            }
        }
        if v != t || path.is_empty() {
            return paths;
        }
        // Peel one unit along the path.
        for &e in &path {
            g.edge_mut(e).cap += 1;
            g.edge_mut(e ^ 1).cap -= 1;
        }
        paths.push(path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dinic::max_flow;

    #[test]
    fn decomposes_into_expected_number_of_paths() {
        let mut g = FlowGraph::new(4);
        g.add_edge(0, 1, 1);
        g.add_edge(0, 2, 1);
        g.add_edge(1, 3, 1);
        g.add_edge(2, 3, 1);
        let f = max_flow(&mut g, 0, 3);
        assert_eq!(f.value, 2);
        let paths = decompose_unit_paths(&mut g, 0, 3);
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(p.len(), 2);
        }
        // All flow consumed.
        assert!(decompose_unit_paths(&mut g, 0, 3).is_empty());
    }

    #[test]
    fn shared_middle_edge() {
        // Two paths forced through one capacity-2 edge.
        let mut g = FlowGraph::new(6);
        g.add_edge(0, 1, 1);
        g.add_edge(0, 2, 1);
        g.add_edge(1, 3, 1);
        g.add_edge(2, 3, 1);
        g.add_edge(3, 4, 2);
        g.add_edge(4, 5, 2);
        assert_eq!(max_flow(&mut g, 0, 5).value, 2);
        let paths = decompose_unit_paths(&mut g, 0, 5);
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(g.edge(*p.last().unwrap()).to, 5);
        }
    }

    #[test]
    fn zero_flow_gives_no_paths() {
        let mut g = FlowGraph::new(3);
        g.add_edge(0, 1, 1);
        let paths = decompose_unit_paths(&mut g, 0, 2);
        assert!(paths.is_empty());
    }
}

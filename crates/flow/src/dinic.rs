//! Dinic's max-flow algorithm.
//!
//! Used as the feasibility oracle of the active-time model (the `G_feas`
//! network of Fig. 2 is bipartite with unit job–slot edges, where Dinic runs
//! in `O(E √V)`), and to extract the repeated 2-flows of the
//! Alicherry–Bhatia busy-time algorithm.

use crate::graph::{EdgeId, FlowGraph, NodeId};
use std::collections::VecDeque;

/// Result of a max-flow computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxFlow {
    /// The max-flow value.
    pub value: i64,
}

/// Runs Dinic's algorithm from `s` to `t`, mutating the residual graph.
/// `limit` optionally caps the amount of flow pushed (useful for extracting
/// exactly-2-unit flows).
pub fn max_flow_limited(g: &mut FlowGraph, s: NodeId, t: NodeId, limit: Option<i64>) -> MaxFlow {
    assert_ne!(s, t, "source equals sink");
    let n = g.node_count();
    let mut total = 0i64;
    let cap_left = |total: i64| limit.map_or(i64::MAX, |l| l - total);
    let mut level = vec![-1i32; n];
    let mut it = vec![0usize; n];
    while cap_left(total) > 0 {
        // BFS phase: build level graph.
        level.iter_mut().for_each(|l| *l = -1);
        level[s] = 0;
        let mut q = VecDeque::new();
        q.push_back(s);
        while let Some(v) = q.pop_front() {
            for &e in g.out_edges(v) {
                let edge = g.edge(e);
                if edge.cap > 0 && level[edge.to] < 0 {
                    level[edge.to] = level[v] + 1;
                    q.push_back(edge.to);
                }
            }
        }
        if level[t] < 0 {
            break;
        }
        // DFS phase: blocking flow.
        it.iter_mut().for_each(|i| *i = 0);
        loop {
            let pushed = dfs(g, s, t, cap_left(total), &level, &mut it);
            if pushed == 0 {
                break;
            }
            total += pushed;
            if cap_left(total) == 0 {
                break;
            }
        }
    }
    MaxFlow { value: total }
}

/// Runs Dinic's algorithm from `s` to `t` with no flow cap.
pub fn max_flow(g: &mut FlowGraph, s: NodeId, t: NodeId) -> MaxFlow {
    max_flow_limited(g, s, t, None)
}

fn dfs(
    g: &mut FlowGraph,
    v: NodeId,
    t: NodeId,
    limit: i64,
    level: &[i32],
    it: &mut [usize],
) -> i64 {
    if v == t || limit == 0 {
        return limit;
    }
    while it[v] < g.out_edges(v).len() {
        let e = g.out_edges(v)[it[v]];
        let (to, cap) = {
            let edge = g.edge(e);
            (edge.to, edge.cap)
        };
        if cap > 0 && level[to] == level[v] + 1 {
            let pushed = dfs(g, to, t, limit.min(cap), level, it);
            if pushed > 0 {
                g.edge_mut(e).cap -= pushed;
                g.edge_mut(e ^ 1).cap += pushed;
                return pushed;
            }
        }
        it[v] += 1;
    }
    0
}

/// After a max-flow run, returns the source side of a minimum cut.
pub fn min_cut_source_side(g: &FlowGraph, s: NodeId) -> Vec<bool> {
    let mut seen = vec![false; g.node_count()];
    let mut q = VecDeque::new();
    seen[s] = true;
    q.push_back(s);
    while let Some(v) = q.pop_front() {
        for &e in g.out_edges(v) {
            let edge = g.edge(e);
            if edge.cap > 0 && !seen[edge.to] {
                seen[edge.to] = true;
                q.push_back(edge.to);
            }
        }
    }
    seen
}

/// A naive O(VE²) Edmonds–Karp implementation, kept as a differential-test
/// oracle for Dinic.
pub fn max_flow_naive(g: &mut FlowGraph, s: NodeId, t: NodeId) -> MaxFlow {
    let mut total = 0i64;
    loop {
        // BFS for any augmenting path.
        let n = g.node_count();
        let mut pred: Vec<Option<EdgeId>> = vec![None; n];
        let mut seen = vec![false; n];
        seen[s] = true;
        let mut q = VecDeque::new();
        q.push_back(s);
        'bfs: while let Some(v) = q.pop_front() {
            for &e in g.out_edges(v) {
                let edge = g.edge(e);
                if edge.cap > 0 && !seen[edge.to] {
                    seen[edge.to] = true;
                    pred[edge.to] = Some(e);
                    if edge.to == t {
                        break 'bfs;
                    }
                    q.push_back(edge.to);
                }
            }
        }
        if !seen[t] {
            break;
        }
        // Find bottleneck and augment.
        let mut bottleneck = i64::MAX;
        let mut v = t;
        while v != s {
            let e = pred[v].unwrap();
            bottleneck = bottleneck.min(g.edge(e).cap);
            v = g.edge(e ^ 1).to;
        }
        let mut v = t;
        while v != s {
            let e = pred[v].unwrap();
            g.edge_mut(e).cap -= bottleneck;
            g.edge_mut(e ^ 1).cap += bottleneck;
            v = g.edge(e ^ 1).to;
        }
        total += bottleneck;
    }
    MaxFlow { value: total }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> FlowGraph {
        // s=0, t=3; two disjoint paths of capacity 2 and 3, plus a cross edge.
        let mut g = FlowGraph::new(4);
        g.add_edge(0, 1, 2);
        g.add_edge(0, 2, 3);
        g.add_edge(1, 3, 3);
        g.add_edge(2, 3, 2);
        g.add_edge(1, 2, 1);
        g
    }

    #[test]
    fn simple_max_flow() {
        let mut g = diamond();
        assert_eq!(max_flow(&mut g, 0, 3).value, 4);
    }

    #[test]
    fn limited_flow_stops_early() {
        let mut g = diamond();
        assert_eq!(max_flow_limited(&mut g, 0, 3, Some(2)).value, 2);
        // Continue to the rest.
        assert_eq!(max_flow(&mut g, 0, 3).value, 2);
    }

    #[test]
    fn min_cut_separates_and_matches_value() {
        let mut g = diamond();
        let f = max_flow(&mut g, 0, 3);
        let side = min_cut_source_side(&g, 0);
        assert!(side[0] && !side[3]);
        // Cut capacity equals flow value.
        let mut cut = 0i64;
        for v in 0..g.node_count() {
            if !side[v] {
                continue;
            }
            for &e in g.out_edges(v) {
                if e % 2 == 0 && !side[g.edge(e).to] {
                    cut += g.edge(e).orig_cap;
                }
            }
        }
        assert_eq!(cut, f.value);
    }

    #[test]
    fn disconnected_is_zero() {
        let mut g = FlowGraph::new(4);
        g.add_edge(0, 1, 5);
        g.add_edge(2, 3, 5);
        assert_eq!(max_flow(&mut g, 0, 3).value, 0);
    }

    #[test]
    fn bipartite_matching_shape() {
        // 3 jobs, 2 slots of capacity 2: max assignment is 4 units.
        // s=0, jobs 1..=3, slots 4..=5, t=6.
        let mut g = FlowGraph::new(7);
        for j in 1..=3 {
            g.add_edge(0, j, 2);
        }
        for j in 1..=3 {
            for t in 4..=5 {
                g.add_edge(j, t, 1);
            }
        }
        for t in 4..=5 {
            g.add_edge(t, 6, 2);
        }
        assert_eq!(max_flow(&mut g, 0, 6).value, 4);
    }

    #[test]
    fn reset_allows_reuse() {
        let mut g = diamond();
        assert_eq!(max_flow(&mut g, 0, 3).value, 4);
        g.reset();
        assert_eq!(max_flow(&mut g, 0, 3).value, 4);
    }
}

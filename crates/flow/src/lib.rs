//! # abt-flow
//!
//! Max-flow substrate for the `active-busy-time` workspace: a residual
//! flow-graph representation, Dinic's algorithm (with an optional flow
//! limit), minimum-cut extraction, a naive Edmonds–Karp oracle for
//! differential testing, and integral path decomposition.
//!
//! Consumers: the active-time feasibility oracle (`G_feas`, Fig. 2 of the
//! paper) and the Alicherry–Bhatia 2-approximation (Appendix A.2).

#![warn(missing_docs)]

pub mod dinic;
pub mod graph;
pub mod paths;

pub use dinic::{max_flow, max_flow_limited, max_flow_naive, min_cut_source_side, MaxFlow};
pub use graph::{Edge, EdgeId, FlowGraph, NodeId};
pub use paths::{decompose_unit_paths, FlowPath};

//! A compact residual-graph representation for max-flow.

/// Index of a node in a [`FlowGraph`].
pub type NodeId = usize;

/// Index of a *directed* edge (its residual twin is `e ^ 1`).
pub type EdgeId = usize;

/// One directed edge of the residual graph.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Head of the edge.
    pub to: NodeId,
    /// Remaining residual capacity.
    pub cap: i64,
    /// Original capacity (before any flow was pushed).
    pub orig_cap: i64,
}

/// A flow network stored as paired forward/backward residual edges.
///
/// Edges are appended in pairs, so the reverse of edge `e` is always
/// `e ^ 1`; `flow(e) = orig_cap(e) − cap(e)`.
#[derive(Debug, Clone, Default)]
pub struct FlowGraph {
    edges: Vec<Edge>,
    /// `adj[v]` = ids of edges leaving `v` (both forward and residual).
    adj: Vec<Vec<EdgeId>>,
}

impl FlowGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        FlowGraph {
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Adds a fresh node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Adds a directed edge `u → v` with capacity `cap ≥ 0`; returns the
    /// forward edge id.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, cap: i64) -> EdgeId {
        assert!(cap >= 0, "negative capacity");
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "node out of range"
        );
        let id = self.edges.len();
        self.edges.push(Edge {
            to: v,
            cap,
            orig_cap: cap,
        });
        self.edges.push(Edge {
            to: u,
            cap: 0,
            orig_cap: 0,
        });
        self.adj[u].push(id);
        self.adj[v].push(id + 1);
        id
    }

    /// The edge ids leaving `v`.
    pub fn out_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.adj[v]
    }

    /// Immutable edge access.
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e]
    }

    /// Mutable edge access (used by the solvers).
    pub(crate) fn edge_mut(&mut self, e: EdgeId) -> &mut Edge {
        &mut self.edges[e]
    }

    /// Flow currently on (forward) edge `e`.
    pub fn flow(&self, e: EdgeId) -> i64 {
        self.edges[e].orig_cap - self.edges[e].cap
    }

    /// Number of directed residual edges (2 × added edges).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Resets all flow to zero.
    pub fn reset(&mut self) {
        for e in &mut self.edges {
            e.cap = e.orig_cap;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_pairing_invariant() {
        let mut g = FlowGraph::new(3);
        let e0 = g.add_edge(0, 1, 5);
        let e1 = g.add_edge(1, 2, 3);
        assert_eq!(e0, 0);
        assert_eq!(e1, 2);
        assert_eq!(g.edge(e0 ^ 1).to, 0);
        assert_eq!(g.edge(e1 ^ 1).to, 1);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn add_node_grows_graph() {
        let mut g = FlowGraph::new(1);
        let v = g.add_node();
        assert_eq!(v, 1);
        assert_eq!(g.node_count(), 2);
        g.add_edge(0, v, 1);
        assert_eq!(g.out_edges(0).len(), 1);
        assert_eq!(g.out_edges(v).len(), 1); // the residual twin
    }

    #[test]
    fn flow_accounting_and_reset() {
        let mut g = FlowGraph::new(2);
        let e = g.add_edge(0, 1, 4);
        g.edge_mut(e).cap -= 3;
        g.edge_mut(e ^ 1).cap += 3;
        assert_eq!(g.flow(e), 3);
        g.reset();
        assert_eq!(g.flow(e), 0);
    }
}

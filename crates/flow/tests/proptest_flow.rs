#![allow(clippy::needless_range_loop)] // index loops mirror the math

//! Differential property tests: Dinic vs naive Edmonds–Karp on random
//! graphs, plus flow-conservation and min-cut invariants.

use abt_flow::{max_flow, max_flow_naive, min_cut_source_side, FlowGraph};
use proptest::prelude::*;

/// A random graph description: n nodes, edges (u, v, cap).
fn graph_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize, i64)>)> {
    (2usize..10).prop_flat_map(|n| {
        let edge = (0..n, 0..n, 0i64..20);
        (Just(n), proptest::collection::vec(edge, 0..30))
    })
}

fn build(n: usize, edges: &[(usize, usize, i64)]) -> FlowGraph {
    let mut g = FlowGraph::new(n);
    for &(u, v, c) in edges {
        if u != v {
            g.add_edge(u, v, c);
        }
    }
    g
}

proptest! {
    #[test]
    fn dinic_matches_naive((n, edges) in graph_strategy()) {
        let mut g1 = build(n, &edges);
        let mut g2 = build(n, &edges);
        let f1 = max_flow(&mut g1, 0, n - 1);
        let f2 = max_flow_naive(&mut g2, 0, n - 1);
        prop_assert_eq!(f1.value, f2.value);
    }

    #[test]
    fn flow_conservation_holds((n, edges) in graph_strategy()) {
        let mut g = build(n, &edges);
        let f = max_flow(&mut g, 0, n - 1);
        // Net flow out of each internal node is zero; out of source is f.
        let mut net = vec![0i64; n];
        for v in 0..n {
            for &e in g.out_edges(v) {
                if e % 2 == 0 {
                    net[v] -= g.flow(e);
                    net[g.edge(e).to] += g.flow(e);
                }
            }
        }
        prop_assert_eq!(net[0], -f.value);
        prop_assert_eq!(net[n - 1], f.value);
        for v in 1..n - 1 {
            prop_assert_eq!(net[v], 0);
        }
    }

    #[test]
    fn min_cut_value_equals_flow((n, edges) in graph_strategy()) {
        let mut g = build(n, &edges);
        let f = max_flow(&mut g, 0, n - 1);
        let side = min_cut_source_side(&g, 0);
        prop_assert!(side[0]);
        prop_assert!(!side[n - 1]);
        let mut cut = 0i64;
        for v in 0..n {
            if !side[v] { continue; }
            for &e in g.out_edges(v) {
                if e % 2 == 0 && !side[g.edge(e).to] {
                    cut += g.edge(e).orig_cap;
                }
            }
        }
        prop_assert_eq!(cut, f.value);
    }

    #[test]
    fn path_decomposition_accounts_for_all_flow((n, edges) in graph_strategy()) {
        let mut g = build(n, &edges);
        let f = max_flow(&mut g, 0, n - 1);
        let paths = abt_flow::decompose_unit_paths(&mut g, 0, n - 1);
        prop_assert_eq!(paths.len() as i64, f.value);
        for p in &paths {
            // Each path starts at source, ends at sink, is edge-connected.
            prop_assert_eq!(g.edge(p[0] ^ 1).to, 0);
            prop_assert_eq!(g.edge(*p.last().unwrap()).to, n - 1);
            for w in p.windows(2) {
                prop_assert_eq!(g.edge(w[0]).to, g.edge(w[1] ^ 1).to);
            }
        }
    }
}

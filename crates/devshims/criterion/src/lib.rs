//! Offline stand-in for the `criterion` API subset this workspace uses:
//! `criterion_group!`/`criterion_main!`, benchmark groups with
//! `sample_size`, `bench_function`/`bench_with_input`, and
//! `Bencher::iter`. Each benchmark reports min/median/mean wall time to
//! stdout; there is no statistics engine and no HTML report.
//!
//! `CRITERION_SAMPLE_SIZE` overrides every group's sample size (handy for
//! CI smoke runs).

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// Times closures; handed to every benchmark body.
pub struct Bencher {
    samples: usize,
    /// Measured per-iteration times, one per sample.
    times: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` repeatedly, recording one timing sample per run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up run.
        std::hint::black_box(f());
        self.times.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            self.times.push(start.elapsed());
        }
    }
}

fn env_samples(default: usize) -> usize {
    std::env::var("CRITERION_SAMPLE_SIZE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
        .max(1)
}

fn report(label: &str, times: &mut [Duration]) {
    if times.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    times.sort_unstable();
    let min = times[0];
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    println!(
        "{label:<48} min {min:>12.2?}  median {median:>12.2?}  mean {mean:>12.2?}  ({} samples)",
        times.len()
    );
}

/// The benchmark driver (constructed by [`criterion_main!`]).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            samples: env_samples(20),
        }
    }

    /// Benchmarks a single closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: env_samples(20),
            times: Vec::new(),
        };
        f(&mut b);
        report(&id.0, &mut b.times);
        self
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = env_samples(n);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            times: Vec::new(),
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.0), &mut b.times);
        self
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            times: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.0), &mut b.times);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            samples: 5,
            times: Vec::new(),
        };
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            n
        });
        assert_eq!(b.times.len(), 5);
        assert_eq!(n, 6); // warm-up + 5 samples
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &x| {
            b.iter(|| x * x)
        });
        g.bench_function(BenchmarkId::new("sq", 4), |b| b.iter(|| 4u64 * 4));
        g.finish();
        c.bench_function("top", |b| b.iter(|| 1 + 1));
    }
}

//! Offline stand-in for the `proptest` API subset this workspace uses.
//!
//! Differences from upstream: no shrinking (a failing case prints its
//! generated inputs and the deterministic per-test seed instead), and
//! strategies are simple uniform generators. Supported surface:
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in strat, ..) {..} }`
//! * `prop_assert!`, `prop_assert_eq!`
//! * range strategies (`0i64..10`, `1usize..4`), tuples up to arity 6,
//!   [`strategy::Just`], [`collection::vec`], `prop_map`, `prop_flat_map`
//!
//! Case count: `ProptestConfig::with_cases(n)`, default 256, overridable
//! via the `PROPTEST_CASES` environment variable.

#![warn(missing_docs)]

/// Runner configuration and failure type.
pub mod test_runner {
    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Resolves the effective case count (`PROPTEST_CASES` wins).
    pub fn effective_cases(cfg: &ProptestConfig) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(cfg.cases)
    }

    /// A failed property (carries the assertion message).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-test RNG (SplitMix64 seeded from the test path,
    /// or from `PROPTEST_SEED` when set).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for the named test.
        pub fn for_test(name: &str) -> Self {
            if let Ok(seed) = std::env::var("PROPTEST_SEED") {
                if let Ok(s) = seed.parse() {
                    return TestRng { state: s };
                }
            }
            // FNV-1a over the test path: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next uniform `u64`.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// A generator of test-case values.
    pub trait Strategy {
        /// The generated value type.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<B: Debug, F: Fn(Self::Value) -> B>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, B: Debug, F: Fn(S::Value) -> B> Strategy for Map<S, F> {
        type Value = B;
        fn generate(&self, rng: &mut TestRng) -> B {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            let a = self.source.generate(rng);
            (self.f)(a).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i64, i32, u64, u32, usize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Sizes accepted by [`vec()`]: a fixed `usize` or a `usize` range.
    pub trait IntoSizeRange {
        /// Lower/upper (exclusive) bounds of the size.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy for `Vec`s of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty vec size range");
        VecStrategy { element, lo, hi }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.lo + rng.below((self.hi - self.lo) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Declares property tests. See the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr;) => {};
    ($cfg:expr; #[test] fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        #[test]
        fn $name() {
            let __config = $cfg;
            let __cases = $crate::test_runner::effective_cases(&__config);
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let __strategy = ($($strat,)+);
            for __case in 0..__cases {
                let __vals = $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                let __repr = format!("{:?}", __vals);
                let ($($pat,)+) = __vals;
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}\n  (rerun with PROPTEST_SEED to reproduce a specific run)",
                        __case + 1, __cases, e, __repr
                    );
                }
            }
        }
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
}

/// `assert!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+));
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_in_bounds(x in 3i64..9, n in 1usize..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn flat_map_dependent((lo, hi) in (0i64..5).prop_flat_map(|lo| (Just(lo), (lo + 1)..10))) {
            prop_assert!(lo < hi, "{} !< {}", lo, hi);
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec((0i64..3, 0usize..2), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(v.len(), v.iter().filter(|_| true).count());
        }
    }

    #[test]
    fn prop_assert_failures_carry_inputs() {
        // The closure mirrors what `proptest!` wraps around a test body.
        let res: Result<(), TestCaseError> = (|| -> Result<(), TestCaseError> {
            let x = 5i64;
            prop_assert!(x > 100, "x was {}", x);
            Ok(())
        })();
        let e = res.expect_err("assertion must fail");
        assert!(e.to_string().contains("x was 5"), "{e}");
        let res: Result<(), TestCaseError> = (|| -> Result<(), TestCaseError> {
            prop_assert_eq!(2 + 2, 5);
            Ok(())
        })();
        assert!(res
            .expect_err("eq must fail")
            .to_string()
            .contains("4 != 5"));
    }
}

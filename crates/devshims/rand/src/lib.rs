//! Offline stand-in for the tiny `rand` API subset this workspace uses:
//! `SmallRng::seed_from_u64`, `Rng::gen_range` over integer/float ranges,
//! and `Rng::gen_bool`. Deterministic per seed; sampling uses simple
//! modulo/scaling (the bias is irrelevant for synthetic workloads).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Minimal core-RNG trait: a source of uniform `u64`s.
pub trait RngCore {
    /// The next pseudo-random 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed` (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 uniform mantissa bits, compared against p.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to sample itself.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i64, i32, u64, u32, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

/// The generators this shim provides.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_hit_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v = rng.gen_range(0i64..=2);
            assert!((0..=2).contains(&v));
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}

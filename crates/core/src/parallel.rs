//! Deterministic parallel map: data-parallel sweeps with no shared mutable
//! state, results gathered in input order.
//!
//! This lives in `abt-core` (rather than the experiment harness, where it
//! started) because two layers above need it: `abt-bench` fans experiment
//! grids of *independent instances* through it, and `abt-active`'s LP
//! decomposition layer fans the *connected components of a single
//! instance* through it (`DecomposeMode::Auto` in `abt-active::lp_model`).
//!
//! Built on `std::thread::scope` only — no external dependencies. Work is
//! handed out dynamically (a mutex-guarded iterator, cheap next to the
//! per-item work here), each worker collects its own `(index, result)`
//! vector, and results are placed directly into their output slots when
//! workers are joined. A panic inside `f` is re-raised on the caller with
//! its original payload.

use crate::error::SolveFailure;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Mutex, PoisonError};

/// Applies `f` to every item on a scoped worker pool, returning results in
/// input order. Falls back to sequential execution for tiny inputs.
///
/// # Panics
///
/// Propagates the first panic raised by `f` on any worker (remaining
/// workers finish draining the queue first).
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map(|w| w.get())
        .unwrap_or(4)
        .min(n);
    let queue = Mutex::new(items.into_iter().enumerate());
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let f = &f;
    let queue = &queue;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move || {
                    let mut done: Vec<(usize, R)> = Vec::new();
                    loop {
                        // Keep the queue usable even after another worker
                        // panicked while holding the lock.
                        let next = queue.lock().unwrap_or_else(PoisonError::into_inner).next();
                        match next {
                            Some((idx, item)) => done.push((idx, f(item))),
                            None => return done,
                        }
                    }
                })
            })
            .collect();
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            match h.join() {
                Ok(done) => {
                    for (idx, r) in done {
                        slots[idx] = Some(r);
                    }
                }
                Err(payload) => {
                    panic.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// The supervised variant of [`parallel_map`]: applies the fallible `f` to
/// every item on the same scoped worker pool, but **catches unwinds per
/// work item** instead of letting one panicking item abort the whole sweep.
/// A panic inside `f` becomes [`SolveFailure::Panicked`] (carrying the
/// payload message) in that item's slot; every other item keeps its own
/// result. This is the trust boundary of the component fan-out in
/// `abt-active` — a poisoned component LP must never take down its
/// siblings.
///
/// `f` itself returns `Result<R, SolveFailure>` so callers can layer their
/// own failure taxonomy (budget trips, numerical stalls) under the same
/// supervision; the unwind catch is a backstop for whatever the ladder did
/// not already convert into a typed failure.
///
/// Per-item state that `f` checks out of thread-local pools (the `abt-lp`
/// `SolveArena`) must be unwind-safe by construction — the arena's
/// checkout/giveback discipline recycles buffers on drop, so catching the
/// unwind here never poisons or leaks the pool.
pub fn supervised_map<T, R, F>(items: Vec<T>, f: F) -> Vec<std::result::Result<R, SolveFailure>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> std::result::Result<R, SolveFailure> + Sync,
{
    parallel_map(items, |item| {
        catch_unwind(AssertUnwindSafe(|| f(item)))
            .unwrap_or_else(|payload| Err(SolveFailure::Panicked(panic_message(payload.as_ref()))))
    })
}

/// Best-effort extraction of a panic payload's message (`&str` and `String`
/// payloads cover `panic!`/`assert!`/`expect`; anything else is opaque).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), |x: i32| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(parallel_map(Vec::<i32>::new(), |x| x), Vec::<i32>::new());
        assert_eq!(parallel_map(vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Heterogeneous per-item cost exercises the dynamic hand-out.
        let out = parallel_map((0..64u64).collect(), |x| {
            let mut acc = x;
            for _ in 0..(x % 7) * 10_000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(i as u64, *x);
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map((0..32).collect(), |x: i32| {
                if x == 17 {
                    panic!("boom at {x}");
                }
                x
            })
        });
        let payload = caught.expect_err("panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("boom at 17"), "unexpected payload: {msg}");
    }

    #[test]
    fn supervised_map_isolates_panics_per_item() {
        let out = supervised_map((0..32).collect(), |x: i32| {
            if x % 11 == 5 {
                panic!("injected at {x}");
            }
            Ok(x * 2)
        });
        assert_eq!(out.len(), 32);
        for (i, r) in out.iter().enumerate() {
            if i % 11 == 5 {
                match r {
                    Err(SolveFailure::Panicked(msg)) => {
                        assert!(msg.contains(&format!("injected at {i}")));
                    }
                    other => panic!("item {i}: expected Panicked, got {other:?}"),
                }
            } else {
                assert_eq!(*r, Ok(i as i32 * 2));
            }
        }
    }

    #[test]
    fn supervised_map_passes_typed_failures_through() {
        let out = supervised_map(vec![1u64, 2, 3], |x| {
            if x == 2 {
                Err(SolveFailure::NumericalStall)
            } else {
                Ok(x)
            }
        });
        assert_eq!(out, vec![Ok(1), Err(SolveFailure::NumericalStall), Ok(3)]);
    }
}

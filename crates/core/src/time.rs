//! Integer time ("ticks"), half-open intervals, and interval-set measure.
//!
//! The busy-time model of the paper allows real-valued release times,
//! deadlines and start times. Every construction in the paper, however, only
//! ever distinguishes the O(2n) *interesting intervals* between consecutive
//! job endpoints, so an exact integer representation loses nothing: we scale
//! all inputs to integer **ticks** (`Time = i64`). Gadgets that use an
//! infinitesimal ε (Figs. 6–12) are generated with ε = 1 tick and the unit
//! length = some large `SCALE`, keeping all arithmetic exact.

/// A point in time, measured in integer ticks.
pub type Time = i64;

/// A half-open time interval `[start, end)`.
///
/// The paper (Definition 9) writes intervals as `I = [a, b)` with length
/// `ℓ(I) = b − a`; we keep exactly that convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Interval {
    /// Inclusive left endpoint.
    pub start: Time,
    /// Exclusive right endpoint.
    pub end: Time,
}

impl Interval {
    /// Creates `[start, end)`. Panics if `end < start` (empty intervals with
    /// `end == start` are allowed and have length 0).
    #[inline]
    pub fn new(start: Time, end: Time) -> Self {
        assert!(end >= start, "interval end {end} precedes start {start}");
        Interval { start, end }
    }

    /// Length `ℓ(I) = end − start` (the paper's Definition 9; for a single
    /// interval the span equals the length).
    #[inline]
    pub fn len(&self) -> i64 {
        self.end - self.start
    }

    /// Whether the interval is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether time point `t` lies in `[start, end)`.
    #[inline]
    pub fn contains(&self, t: Time) -> bool {
        self.start <= t && t < self.end
    }

    /// Whether `self` fully contains `other`.
    #[inline]
    pub fn contains_interval(&self, other: &Interval) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Whether the two intervals overlap on a set of positive measure.
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Intersection `self ∩ other`, or `None` if it has measure zero.
    #[inline]
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let s = self.start.max(other.start);
        let e = self.end.min(other.end);
        if s < e {
            Some(Interval { start: s, end: e })
        } else {
            None
        }
    }

    /// Length of the intersection (0 if disjoint).
    #[inline]
    pub fn overlap_len(&self, other: &Interval) -> i64 {
        (self.end.min(other.end) - self.start.max(other.start)).max(0)
    }

    /// The smallest interval containing both (the "hull").
    #[inline]
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Shifts the interval by `delta` ticks.
    #[inline]
    pub fn shift(&self, delta: i64) -> Interval {
        Interval {
            start: self.start + delta,
            end: self.end + delta,
        }
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// A set of disjoint, sorted, non-adjacent half-open intervals.
///
/// This is the workhorse for busy-time bookkeeping: the busy time of a
/// machine is the measure of the union of its jobs' intervals
/// (`Sp(S)` in Definition 10), and the span of an instance is the measure of
/// the union of all job intervals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalSet {
    parts: Vec<Interval>,
}

impl IntervalSet {
    /// The empty set.
    pub fn new() -> Self {
        IntervalSet { parts: Vec::new() }
    }

    /// Builds the union of arbitrary (possibly overlapping, unsorted)
    /// intervals, merging touching pieces.
    pub fn from_intervals<I: IntoIterator<Item = Interval>>(iter: I) -> Self {
        let mut v: Vec<Interval> = iter.into_iter().filter(|i| !i.is_empty()).collect();
        v.sort_unstable();
        let mut parts: Vec<Interval> = Vec::with_capacity(v.len());
        for iv in v {
            match parts.last_mut() {
                Some(last) if iv.start <= last.end => last.end = last.end.max(iv.end),
                _ => parts.push(iv),
            }
        }
        IntervalSet { parts }
    }

    /// Inserts one interval, keeping the canonical merged form.
    pub fn insert(&mut self, iv: Interval) {
        if iv.is_empty() {
            return;
        }
        // Find the insertion window of intervals that touch `iv`.
        let lo = self.parts.partition_point(|p| p.end < iv.start);
        let hi = self.parts.partition_point(|p| p.start <= iv.end);
        if lo == hi {
            self.parts.insert(lo, iv);
        } else {
            let start = self.parts[lo].start.min(iv.start);
            let end = self.parts[hi - 1].end.max(iv.end);
            self.parts
                .splice(lo..hi, std::iter::once(Interval { start, end }));
        }
    }

    /// Total measure of the set (`Sp` of the underlying union).
    pub fn measure(&self) -> i64 {
        self.parts.iter().map(Interval::len).sum()
    }

    /// Number of maximal disjoint components.
    pub fn component_count(&self) -> usize {
        self.parts.len()
    }

    /// The maximal disjoint components, sorted.
    pub fn components(&self) -> &[Interval] {
        &self.parts
    }

    /// Whether `t` is covered.
    pub fn contains(&self, t: Time) -> bool {
        let i = self.parts.partition_point(|p| p.end <= t);
        i < self.parts.len() && self.parts[i].contains(t)
    }

    /// Whether the whole interval `iv` is covered.
    pub fn covers(&self, iv: &Interval) -> bool {
        if iv.is_empty() {
            return true;
        }
        let i = self.parts.partition_point(|p| p.end <= iv.start);
        i < self.parts.len() && self.parts[i].contains_interval(iv)
    }

    /// Measure of the intersection with `iv`.
    pub fn measure_within(&self, iv: &Interval) -> i64 {
        self.parts.iter().map(|p| p.overlap_len(iv)).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

impl FromIterator<Interval> for IntervalSet {
    fn from_iter<I: IntoIterator<Item = Interval>>(iter: I) -> Self {
        IntervalSet::from_intervals(iter)
    }
}

/// Span of a collection of intervals: the measure of their union
/// (Definition 10, "projection onto the time axis").
pub fn span<I: IntoIterator<Item = Interval>>(iter: I) -> i64 {
    IntervalSet::from_intervals(iter).measure()
}

/// Sum of interval lengths (the paper's "mass" / `ℓ(S)`, Definition 10).
pub fn mass<'a, I: IntoIterator<Item = &'a Interval>>(iter: I) -> i64 {
    iter.into_iter().map(Interval::len).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_basics() {
        let a = Interval::new(2, 7);
        assert_eq!(a.len(), 5);
        assert!(a.contains(2));
        assert!(!a.contains(7));
        assert!(!a.is_empty());
        assert!(Interval::new(3, 3).is_empty());
    }

    #[test]
    fn interval_overlap_and_intersection() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 15);
        let c = Interval::new(10, 20);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c)); // half-open: touching is not overlapping
        assert_eq!(a.intersect(&b), Some(Interval::new(5, 10)));
        assert_eq!(a.intersect(&c), None);
        assert_eq!(a.overlap_len(&b), 5);
        assert_eq!(a.overlap_len(&c), 0);
        assert_eq!(a.hull(&c), Interval::new(0, 20));
    }

    #[test]
    #[should_panic]
    fn interval_rejects_reversed_endpoints() {
        let _ = Interval::new(5, 4);
    }

    #[test]
    fn union_merges_overlapping_and_touching() {
        let s = IntervalSet::from_intervals([
            Interval::new(0, 3),
            Interval::new(2, 5),
            Interval::new(5, 7), // touching: merged
            Interval::new(9, 12),
        ]);
        assert_eq!(s.components(), &[Interval::new(0, 7), Interval::new(9, 12)]);
        assert_eq!(s.measure(), 10);
        assert_eq!(s.component_count(), 2);
    }

    #[test]
    fn insert_matches_bulk_union() {
        let ivs = [
            Interval::new(10, 20),
            Interval::new(0, 5),
            Interval::new(4, 11),
            Interval::new(30, 31),
            Interval::new(19, 30),
        ];
        let bulk = IntervalSet::from_intervals(ivs);
        let mut inc = IntervalSet::new();
        for iv in ivs {
            inc.insert(iv);
        }
        assert_eq!(bulk, inc);
        assert_eq!(inc.measure(), 31);
        assert_eq!(inc.component_count(), 1);
    }

    #[test]
    fn insert_between_components() {
        let mut s = IntervalSet::from_intervals([Interval::new(0, 2), Interval::new(10, 12)]);
        s.insert(Interval::new(5, 6));
        assert_eq!(s.component_count(), 3);
        s.insert(Interval::new(1, 11));
        assert_eq!(s.component_count(), 1);
        assert_eq!(s.measure(), 12);
    }

    #[test]
    fn coverage_queries() {
        let s = IntervalSet::from_intervals([Interval::new(0, 5), Interval::new(8, 12)]);
        assert!(s.contains(0));
        assert!(!s.contains(5));
        assert!(s.contains(11));
        assert!(s.covers(&Interval::new(1, 4)));
        assert!(!s.covers(&Interval::new(4, 9)));
        assert_eq!(s.measure_within(&Interval::new(3, 10)), 2 + 2);
    }

    #[test]
    fn span_and_mass() {
        let ivs = [
            Interval::new(0, 4),
            Interval::new(2, 6),
            Interval::new(10, 11),
        ];
        assert_eq!(span(ivs), 7);
        assert_eq!(mass(ivs.iter()), 9);
    }

    #[test]
    fn span_of_pair_matches_definition_10() {
        // Sp({I, I'}) = ℓ(I) + Sp(I') − ℓ(I ∩ I')
        let i1 = Interval::new(0, 6);
        let i2 = Interval::new(4, 9);
        let lhs = span([i1, i2]);
        let rhs = i1.len() + i2.len() - i1.overlap_len(&i2);
        assert_eq!(lhs, rhs);
    }
}

//! Schedules for the **preemptive busy time** model (§4.4 of the paper).
//!
//! A job `j` must receive `p_j` total time units inside `[r_j, d_j)`, split
//! into arbitrarily many pieces, possibly across machines — but at most one
//! machine works on `j` at any instant. Each machine still runs at most `g`
//! jobs simultaneously; the cost is the summed measure of each machine's
//! busy (union) time.

use crate::error::{Error, Result};
use crate::instance::Instance;
use crate::jobs::JobId;
use crate::time::{Interval, IntervalSet};

/// A piece of a job on some machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Piece {
    /// Which job the piece belongs to.
    pub job: JobId,
    /// When the piece runs.
    pub interval: Interval,
}

/// A preemptive busy-time schedule: per machine, the pieces it executes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PreemptiveSchedule {
    /// `machines[m]` = pieces run by machine `m`.
    pub machines: Vec<Vec<Piece>>,
}

impl PreemptiveSchedule {
    /// Empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total busy time: sum over machines of the measure of the union of its
    /// pieces.
    pub fn total_busy_time(&self) -> i64 {
        self.machines
            .iter()
            .map(|pieces| IntervalSet::from_intervals(pieces.iter().map(|p| p.interval)).measure())
            .sum()
    }

    /// Number of machines with at least one piece.
    pub fn machine_count(&self) -> usize {
        self.machines.iter().filter(|m| !m.is_empty()).count()
    }

    /// Full validation:
    /// * every piece lies in its job's window;
    /// * each job receives exactly `p_j` units;
    /// * no two pieces of the same job overlap in time (even across machines);
    /// * every machine runs at most `g` jobs at any instant.
    pub fn validate(&self, inst: &Instance) -> Result<()> {
        // Per-job totals and self-overlap.
        let mut per_job: Vec<Vec<Interval>> = vec![Vec::new(); inst.len()];
        for pieces in &self.machines {
            for p in pieces {
                if p.job >= inst.len() {
                    return Err(Error::InvalidSchedule(format!("unknown job id {}", p.job)));
                }
                if p.interval.is_empty() {
                    continue;
                }
                let j = inst.job(p.job);
                if p.interval.start < j.release || p.interval.end > j.deadline {
                    return Err(Error::InvalidSchedule(format!(
                        "piece {} of job {} leaves window [{}, {})",
                        p.interval, p.job, j.release, j.deadline
                    )));
                }
                per_job[p.job].push(p.interval);
            }
        }
        for (id, pieces) in per_job.iter_mut().enumerate() {
            pieces.sort_unstable();
            for w in pieces.windows(2) {
                if w[0].end > w[1].start {
                    return Err(Error::InvalidSchedule(format!(
                        "job {id} runs on two machines simultaneously ({} and {})",
                        w[0], w[1]
                    )));
                }
            }
            let total: i64 = pieces.iter().map(Interval::len).sum();
            if total != inst.job(id).length {
                return Err(Error::InvalidSchedule(format!(
                    "job {id} receives {total} units, needs {}",
                    inst.job(id).length
                )));
            }
        }
        // Machine capacity via sweep.
        for (m, pieces) in self.machines.iter().enumerate() {
            let mut events: Vec<(i64, i32)> = Vec::with_capacity(pieces.len() * 2);
            for p in pieces {
                if !p.interval.is_empty() {
                    events.push((p.interval.start, 1));
                    events.push((p.interval.end, -1));
                }
            }
            events.sort_unstable();
            let mut cur = 0i32;
            for (_, d) in events {
                cur += d;
                if cur as usize > inst.g() {
                    return Err(Error::InvalidSchedule(format!(
                        "machine {m} exceeds capacity {}",
                        inst.g()
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> Instance {
        Instance::from_triples([(0, 10, 4), (0, 6, 3)], 1).unwrap()
    }

    fn piece(job: JobId, s: i64, e: i64) -> Piece {
        Piece {
            job,
            interval: Interval::new(s, e),
        }
    }

    #[test]
    fn valid_preemptive_schedule() {
        // Job 0 split across two machines, job 1 contiguous. g = 1.
        let s = PreemptiveSchedule {
            machines: vec![vec![piece(0, 0, 2), piece(0, 5, 7)], vec![piece(1, 2, 5)]],
        };
        s.validate(&inst()).unwrap();
        assert_eq!(s.total_busy_time(), 4 + 3);
        assert_eq!(s.machine_count(), 2);
    }

    #[test]
    fn job_self_overlap_across_machines_rejected() {
        let s = PreemptiveSchedule {
            machines: vec![vec![piece(0, 0, 3)], vec![piece(0, 2, 3), piece(1, 3, 6)]],
        };
        assert!(s.validate(&inst()).is_err());
    }

    #[test]
    fn wrong_total_rejected() {
        let s = PreemptiveSchedule {
            machines: vec![vec![piece(0, 0, 3)], vec![piece(1, 0, 3)]],
        };
        assert!(s.validate(&inst()).is_err());
    }

    #[test]
    fn window_violation_rejected() {
        let s = PreemptiveSchedule {
            machines: vec![vec![piece(0, 0, 4)], vec![piece(1, 4, 7)]],
        };
        assert!(s.validate(&inst()).is_err());
    }

    #[test]
    fn capacity_respected() {
        // Two jobs on one machine with g=1, overlapping: invalid.
        let s = PreemptiveSchedule {
            machines: vec![vec![piece(0, 0, 4), piece(1, 2, 5)]],
        };
        assert!(s.validate(&inst()).is_err());
        // Same with g=2: valid.
        let inst2 = inst().with_g(2).unwrap();
        s.validate(&inst2).unwrap();
        // Busy time counts the union once.
        assert_eq!(s.total_busy_time(), 5);
    }
}

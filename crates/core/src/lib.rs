//! # abt-core
//!
//! Shared substrate for the `active-busy-time` workspace: the instance
//! model, integer-tick time algebra, schedule representations with full
//! validators, demand profiles, and lower bounds, for the two scheduling
//! models of
//!
//! > Chang, Khuller, Mukherjee — *LP Rounding and Combinatorial Algorithms
//! > for Minimizing Active and Busy Time* (SPAA 2014).
//!
//! **Active time** (§2–3): one machine, slotted time, at most `g` job-units
//! per active slot, preemption at integer points; minimize the number of
//! active slots. **Busy time** (§4): unboundedly many machines of capacity
//! `g`, non-preemptive jobs; minimize summed busy (union) time.
//!
//! See the algorithm crates `abt-active` and `abt-busy` for the solvers, and
//! `abt-workloads` for generators of every gadget in the paper.

#![warn(missing_docs)]

pub mod active_schedule;
pub mod bounds;
pub mod busy_schedule;
pub mod error;
pub mod faultinject;
pub mod instance;
pub mod io;
pub mod jobs;
pub mod obs;
pub mod parallel;
pub mod persist;
pub mod preemptive_schedule;
pub mod profile;
pub mod ratio;
pub mod time;

pub use active_schedule::ActiveSchedule;
pub use bounds::{active_lower_bound, busy_lower_bounds, BusyBounds};
pub use busy_schedule::{Bundle, BusySchedule};
pub use error::{BudgetKind, Error, Result, SolveFailure};
pub use instance::Instance;
pub use jobs::{Job, JobId};
pub use parallel::{panic_message, parallel_map, supervised_map};
pub use persist::{PersistError, StateDir};
pub use preemptive_schedule::{Piece, PreemptiveSchedule};
pub use profile::DemandProfile;
pub use ratio::{within_factor, within_frac_factor, Frac};
pub use time::{mass, span, Interval, IntervalSet, Time};

//! A minimal line-oriented text format for instances.
//!
//! ```text
//! # comment
//! g 3
//! job 0 10 4        # release deadline length
//! job 2 8 3
//! ```
//!
//! The format is deliberately dependency-free (we avoid pulling a JSON
//! parser into the workspace) and stable for CLI round-trips.

use crate::error::{Error, Result};
use crate::instance::Instance;
use crate::jobs::Job;

/// Serializes an instance to the text format.
pub fn write_instance(inst: &Instance) -> String {
    let mut out = String::new();
    out.push_str(&format!("g {}\n", inst.g()));
    for j in inst.jobs() {
        out.push_str(&format!("job {} {} {}\n", j.release, j.deadline, j.length));
    }
    out
}

/// Parses an instance from the text format.
pub fn read_instance(text: &str) -> Result<Instance> {
    let mut g: Option<usize> = None;
    let mut jobs = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        // Defensive: `line` is non-empty here, so a first token must
        // exist, but malformed/truncated input must never panic a parser.
        let Some(tag) = parts.next() else {
            return Err(Error::Parse {
                line: lineno + 1,
                reason: "missing directive".into(),
            });
        };
        let parse = |s: Option<&str>, what: &str| -> Result<i64> {
            s.ok_or_else(|| Error::Parse {
                line: lineno + 1,
                reason: format!("missing {what}"),
            })?
            .parse::<i64>()
            .map_err(|e| Error::Parse {
                line: lineno + 1,
                reason: format!("bad {what}: {e}"),
            })
        };
        match tag {
            "g" => {
                let v = parse(parts.next(), "capacity")?;
                if v < 1 {
                    return Err(Error::Parse {
                        line: lineno + 1,
                        reason: "capacity must be >= 1".into(),
                    });
                }
                g = Some(v as usize);
            }
            "job" => {
                let r = parse(parts.next(), "release")?;
                let d = parse(parts.next(), "deadline")?;
                let p = parse(parts.next(), "length")?;
                let job = Job::try_new(r, d, p).ok_or_else(|| Error::Parse {
                    line: lineno + 1,
                    reason: format!("inconsistent job r={r} d={d} p={p}"),
                })?;
                jobs.push(job);
            }
            other => {
                return Err(Error::Parse {
                    line: lineno + 1,
                    reason: format!("unknown directive '{other}'"),
                })
            }
        }
        if parts.next().is_some() {
            return Err(Error::Parse {
                line: lineno + 1,
                reason: "trailing tokens".into(),
            });
        }
    }
    let g = g.ok_or(Error::Parse {
        line: 0,
        reason: "missing 'g' line".into(),
    })?;
    Instance::new(jobs, g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let inst = Instance::from_triples([(0, 10, 4), (2, 8, 3), (5, 6, 1)], 3).unwrap();
        let text = write_instance(&inst);
        let back = read_instance(&text).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn comments_and_blank_lines() {
        let text = "# a demo\n\ng 2   # capacity\njob 0 5 2 # first\n";
        let inst = read_instance(text).unwrap();
        assert_eq!(inst.g(), 2);
        assert_eq!(inst.len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        match read_instance("g 2\njob 0 5\n") {
            Err(Error::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(read_instance("job 0 5 2\n").is_err()); // missing g
        assert!(read_instance("g 0\n").is_err());
        assert!(read_instance("g 2\njob 0 5 9\n").is_err()); // p > window
        assert!(read_instance("g 2\nfrob 1 2 3\n").is_err());
        assert!(read_instance("g 2 7\n").is_err()); // trailing token
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        // Inputs cut off mid-line (a partial write, a torn download) must
        // surface as parse errors with a line number, never a panic.
        for text in ["g", "job", "g 2\njob", "g 2\njob 0", "g 2\njob 0 5"] {
            match read_instance(text) {
                Err(Error::Parse { line, .. }) => assert!(line >= 1, "input {text:?}"),
                other => panic!("input {text:?}: expected parse error, got {other:?}"),
            }
        }
    }
}

//! Problem instances: a set of jobs plus the parallelism bound `g`.

use crate::error::{Error, Result};
use crate::jobs::{Job, JobId};
use crate::time::{Interval, IntervalSet, Time};

/// A scheduling instance for either model: jobs `J` and the machine
/// capacity / parallelism parameter `g` (at most `g` jobs run concurrently
/// on one machine).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Instance {
    jobs: Vec<Job>,
    g: usize,
}

impl Instance {
    /// Creates an instance, validating every job and `g ≥ 1`.
    pub fn new(jobs: Vec<Job>, g: usize) -> Result<Self> {
        if g == 0 {
            return Err(Error::InvalidInstance(
                "capacity g must be at least 1".into(),
            ));
        }
        for (idx, j) in jobs.iter().enumerate() {
            if j.length < 1 {
                return Err(Error::InvalidJob {
                    job: idx,
                    reason: format!("length {} must be positive", j.length),
                });
            }
            if j.release + j.length > j.deadline {
                return Err(Error::InvalidJob {
                    job: idx,
                    reason: format!(
                        "window [{}, {}) too short for length {}",
                        j.release, j.deadline, j.length
                    ),
                });
            }
        }
        Ok(Instance { jobs, g })
    }

    /// Builds an instance from `(release, deadline, length)` triples.
    pub fn from_triples<I: IntoIterator<Item = (Time, Time, i64)>>(
        iter: I,
        g: usize,
    ) -> Result<Self> {
        Instance::new(
            iter.into_iter()
                .map(|(r, d, p)| Job {
                    release: r,
                    deadline: d,
                    length: p,
                })
                .collect(),
            g,
        )
    }

    /// The jobs, indexed by [`JobId`].
    #[inline]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Job by id.
    #[inline]
    pub fn job(&self, id: JobId) -> &Job {
        &self.jobs[id]
    }

    /// Number of jobs `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the instance has no jobs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The parallelism bound `g`.
    #[inline]
    pub fn g(&self) -> usize {
        self.g
    }

    /// Returns a copy with a different capacity.
    pub fn with_g(&self, g: usize) -> Result<Self> {
        Instance::new(self.jobs.clone(), g)
    }

    /// Total processing mass `P = Σ_j p_j`.
    pub fn total_length(&self) -> i64 {
        self.jobs.iter().map(|j| j.length).sum()
    }

    /// Earliest release time (0 for an empty instance).
    pub fn min_release(&self) -> Time {
        self.jobs.iter().map(|j| j.release).min().unwrap_or(0)
    }

    /// Latest deadline `T = max_j d_j` (0 for an empty instance).
    pub fn max_deadline(&self) -> Time {
        self.jobs.iter().map(|j| j.deadline).max().unwrap_or(0)
    }

    /// The horizon `[min_release, max_deadline)`.
    pub fn horizon(&self) -> Interval {
        Interval::new(
            self.min_release(),
            self.max_deadline().max(self.min_release()),
        )
    }

    /// Whether every job is an interval job (`p_j = d_j − r_j`).
    pub fn is_interval_instance(&self) -> bool {
        self.jobs.iter().all(Job::is_interval)
    }

    /// Union of all job *windows*.
    pub fn window_union(&self) -> IntervalSet {
        self.jobs.iter().map(|j| j.window()).collect()
    }

    /// For an interval instance: the span `Sp(J)` of the (fixed) job
    /// intervals — the paper's `OPT_∞(J)` for interval jobs
    /// (Observation 3 discussion). Errors on flexible jobs.
    pub fn interval_span(&self) -> Result<i64> {
        if !self.is_interval_instance() {
            return Err(Error::Unsupported(
                "interval_span requires an instance of interval jobs".into(),
            ));
        }
        Ok(self.window_union().measure())
    }

    /// Converts a flexible instance into an instance of interval jobs given a
    /// start time for every job (the "fix the positions" step used after the
    /// unbounded-`g` placement, §4.3). Validates the starts.
    pub fn fix_starts(&self, starts: &[Time]) -> Result<Instance> {
        if starts.len() != self.jobs.len() {
            return Err(Error::InvalidInstance(format!(
                "got {} start times for {} jobs",
                starts.len(),
                self.jobs.len()
            )));
        }
        let mut jobs = Vec::with_capacity(self.jobs.len());
        for (idx, (j, &s)) in self.jobs.iter().zip(starts).enumerate() {
            let run = j.run_at(s).ok_or_else(|| Error::InvalidJob {
                job: idx,
                reason: format!(
                    "start {s} outside window [{}, {}]",
                    j.release,
                    j.latest_start()
                ),
            })?;
            jobs.push(Job::interval(run.start, run.end));
        }
        Instance::new(jobs, self.g)
    }

    /// Job ids sorted by non-increasing length, ties broken by release then id
    /// (the deterministic order used by FirstFit).
    pub fn ids_by_length_desc(&self) -> Vec<JobId> {
        let mut ids: Vec<JobId> = (0..self.jobs.len()).collect();
        ids.sort_by_key(|&i| {
            let j = &self.jobs[i];
            (std::cmp::Reverse(j.length), j.release, i)
        });
        ids
    }

    /// Job ids sorted by deadline, ties by release then id (EDF order).
    pub fn ids_by_deadline(&self) -> Vec<JobId> {
        let mut ids: Vec<JobId> = (0..self.jobs.len()).collect();
        ids.sort_by_key(|&i| {
            let j = &self.jobs[i];
            (j.deadline, j.release, i)
        });
        ids
    }

    /// Appends a job, returning its id.
    pub fn push(&mut self, job: Job) -> JobId {
        self.jobs.push(job);
        self.jobs.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Instance {
        Instance::from_triples([(0, 4, 2), (1, 3, 2), (2, 8, 3)], 2).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let inst = demo();
        assert_eq!(inst.len(), 3);
        assert_eq!(inst.g(), 2);
        assert_eq!(inst.total_length(), 7);
        assert_eq!(inst.min_release(), 0);
        assert_eq!(inst.max_deadline(), 8);
        assert_eq!(inst.horizon(), Interval::new(0, 8));
        assert!(!inst.is_interval_instance());
    }

    #[test]
    fn rejects_invalid() {
        assert!(Instance::from_triples([(0, 4, 2)], 0).is_err());
        assert!(Instance::from_triples([(0, 4, 5)], 1).is_err());
        assert!(Instance::from_triples([(0, 4, 0)], 1).is_err());
    }

    #[test]
    fn interval_detection_and_span() {
        let inst = Instance::new(
            vec![
                Job::interval(0, 3),
                Job::interval(2, 6),
                Job::interval(10, 12),
            ],
            2,
        )
        .unwrap();
        assert!(inst.is_interval_instance());
        assert_eq!(inst.interval_span().unwrap(), 6 + 2);
        assert!(demo().interval_span().is_err());
    }

    #[test]
    fn fix_starts_converts_to_interval_jobs() {
        let inst = demo();
        let fixed = inst.fix_starts(&[1, 1, 4]).unwrap();
        assert!(fixed.is_interval_instance());
        assert_eq!(fixed.job(0).window(), Interval::new(1, 3));
        assert_eq!(fixed.job(2).window(), Interval::new(4, 7));
        assert!(inst.fix_starts(&[3, 1, 4]).is_err()); // job 0 can start at 2 the latest
        assert!(inst.fix_starts(&[1, 1]).is_err());
    }

    #[test]
    fn orderings() {
        let inst = demo();
        assert_eq!(inst.ids_by_length_desc(), vec![2, 0, 1]);
        assert_eq!(inst.ids_by_deadline(), vec![1, 0, 2]);
    }
}

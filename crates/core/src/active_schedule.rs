//! Schedules for the **active time** model (§2 of the paper).
//!
//! Time is slotted: slot `t` denotes the unit of time `[t−1, t)`, so a job
//! with release `r` and deadline `d` may use exactly the slots
//! `{r+1, …, d}` — its *window*. A feasible solution is a set `A` of
//! active slots together with an assignment of each job `j` to `p_j`
//! distinct active slots in its window, at most `g` job-units per slot.
//! The cost is `|A|`, the number of active slots.

use crate::error::{Error, Result};
use crate::instance::Instance;
use crate::jobs::JobId;
use crate::time::Time;
use std::collections::{BTreeMap, BTreeSet};

/// The inclusive slot range `{r+1, …, d}` of a job's window.
pub fn window_slots(release: Time, deadline: Time) -> std::ops::RangeInclusive<Time> {
    (release + 1)..=deadline
}

/// Whether job `job` of `inst` may be scheduled in slot `t`.
pub fn job_feasible_in_slot(inst: &Instance, job: JobId, t: Time) -> bool {
    let j = inst.job(job);
    j.release < t && t <= j.deadline
}

/// All slots of the instance's horizon: `{r_min+1, …, T}`.
pub fn horizon_slots(inst: &Instance) -> Vec<Time> {
    (inst.min_release() + 1..=inst.max_deadline()).collect()
}

/// A (candidate) active-time schedule: which slots are active, and which
/// slots each job occupies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveSchedule {
    /// Active (open) slots `A`.
    active: BTreeSet<Time>,
    /// `assignment[j]` = the slots in which one unit of job `j` runs.
    assignment: Vec<Vec<Time>>,
}

impl ActiveSchedule {
    /// Creates a schedule from the active-slot set and per-job slot lists.
    /// Per-job slot lists are sorted and deduplicated (a duplicate would be
    /// invalid anyway and is caught by [`ActiveSchedule::validate`]).
    pub fn new(active: impl IntoIterator<Item = Time>, assignment: Vec<Vec<Time>>) -> Self {
        let mut assignment = assignment;
        for slots in &mut assignment {
            slots.sort_unstable();
        }
        ActiveSchedule {
            active: active.into_iter().collect(),
            assignment,
        }
    }

    /// The set of active slots.
    pub fn active_slots(&self) -> &BTreeSet<Time> {
        &self.active
    }

    /// The slots assigned to job `j`.
    pub fn job_slots(&self, j: JobId) -> &[Time] {
        &self.assignment[j]
    }

    /// The cost `|A|`: the machine's total active time.
    pub fn cost(&self) -> i64 {
        self.active.len() as i64
    }

    /// Load (number of scheduled job-units) per slot.
    pub fn slot_loads(&self) -> BTreeMap<Time, usize> {
        let mut loads: BTreeMap<Time, usize> = self.active.iter().map(|&t| (t, 0)).collect();
        for slots in &self.assignment {
            for &t in slots {
                *loads.entry(t).or_insert(0) += 1;
            }
        }
        loads
    }

    /// Checks full feasibility against `inst`:
    /// every job gets exactly `p_j` distinct slots, all inside its window and
    /// inside `A`; no slot holds more than `g` units.
    pub fn validate(&self, inst: &Instance) -> Result<()> {
        if self.assignment.len() != inst.len() {
            return Err(Error::InvalidSchedule(format!(
                "{} assignment rows for {} jobs",
                self.assignment.len(),
                inst.len()
            )));
        }
        let mut load: BTreeMap<Time, i64> = BTreeMap::new();
        for (id, slots) in self.assignment.iter().enumerate() {
            let j = inst.job(id);
            if slots.len() as i64 != j.length {
                return Err(Error::InvalidSchedule(format!(
                    "job {id} got {} units, needs {}",
                    slots.len(),
                    j.length
                )));
            }
            let mut prev: Option<Time> = None;
            for &t in slots {
                if prev == Some(t) {
                    return Err(Error::InvalidSchedule(format!(
                        "job {id} scheduled twice in slot {t}"
                    )));
                }
                prev = Some(t);
                if !job_feasible_in_slot(inst, id, t) {
                    return Err(Error::InvalidSchedule(format!(
                        "job {id} assigned slot {t} outside window ({}, {}]",
                        j.release, j.deadline
                    )));
                }
                if !self.active.contains(&t) {
                    return Err(Error::InvalidSchedule(format!(
                        "job {id} assigned inactive slot {t}"
                    )));
                }
                *load.entry(t).or_insert(0) += 1;
            }
        }
        let g = inst.g() as i64;
        for (&t, &l) in &load {
            if l > g {
                return Err(Error::InvalidSchedule(format!(
                    "slot {t} carries {l} units, capacity is {g}"
                )));
            }
        }
        Ok(())
    }

    /// Slots that are active and *full* (exactly `g` units) / *non-full*
    /// (Definition 3). Returns `(full, non_full)`.
    pub fn full_and_nonfull(&self, inst: &Instance) -> (Vec<Time>, Vec<Time>) {
        let loads = self.slot_loads();
        let mut full = Vec::new();
        let mut non_full = Vec::new();
        for &t in &self.active {
            if loads.get(&t).copied().unwrap_or(0) >= inst.g() {
                full.push(t);
            } else {
                non_full.push(t);
            }
        }
        (full, non_full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> Instance {
        // Jobs: (r, d, p); g = 2.
        Instance::from_triples([(0, 3, 2), (0, 2, 1), (1, 4, 2)], 2).unwrap()
    }

    #[test]
    fn window_slot_arithmetic() {
        // Paper's example: a unit job with r=1, d=2 can be scheduled in slot
        // t=2 but not t=1.
        let i = Instance::from_triples([(1, 2, 1)], 1).unwrap();
        assert!(!job_feasible_in_slot(&i, 0, 1));
        assert!(job_feasible_in_slot(&i, 0, 2));
        assert_eq!(window_slots(1, 2).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn valid_schedule_passes() {
        let s = ActiveSchedule::new([1, 2, 3], vec![vec![1, 2], vec![1], vec![2, 3]]);
        s.validate(&inst()).unwrap();
        assert_eq!(s.cost(), 3);
    }

    #[test]
    fn capacity_violation_detected() {
        // slot 2 would carry 3 units with g = 2
        let s = ActiveSchedule::new([1, 2, 3], vec![vec![2, 3], vec![2], vec![2, 3]]);
        let e = s.validate(&inst()).unwrap_err();
        assert!(matches!(e, Error::InvalidSchedule(_)), "{e}");
    }

    #[test]
    fn window_violation_detected() {
        let s = ActiveSchedule::new([1, 2, 3, 4], vec![vec![1, 4], vec![2], vec![2, 3]]);
        assert!(s.validate(&inst()).is_err());
    }

    #[test]
    fn inactive_slot_detected() {
        let s = ActiveSchedule::new([1, 2], vec![vec![1, 2], vec![2], vec![2, 3]]);
        assert!(s.validate(&inst()).is_err());
    }

    #[test]
    fn wrong_unit_count_detected() {
        let s = ActiveSchedule::new([1, 2, 3], vec![vec![1], vec![2], vec![2, 3]]);
        assert!(s.validate(&inst()).is_err());
    }

    #[test]
    fn duplicate_slot_detected() {
        let s = ActiveSchedule::new([1, 2, 3], vec![vec![2, 2], vec![1], vec![2, 3]]);
        assert!(s.validate(&inst()).is_err());
    }

    #[test]
    fn full_nonfull_partition() {
        let s = ActiveSchedule::new([1, 2, 3], vec![vec![1, 2], vec![2], vec![2, 3]]);
        // slot2 is... loads: slot1:1, slot2:3? no — job0:{1,2}, job1:{2}, job2:{2,3}
        // slot 2 load = 3 > g; use a valid one instead:
        let s2 = ActiveSchedule::new([1, 2, 3], vec![vec![1, 2], vec![1], vec![2, 3]]);
        s2.validate(&inst()).unwrap();
        let (full, non_full) = s2.full_and_nonfull(&inst());
        assert_eq!(full, vec![1, 2]);
        assert_eq!(non_full, vec![3]);
        drop(s);
    }
}

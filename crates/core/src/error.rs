//! Error types shared across the `active-busy-time` workspace.

use std::fmt;

/// Errors produced while constructing or validating instances and schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A job's parameters are internally inconsistent (e.g. `r + p > d`, or
    /// a non-positive length).
    InvalidJob {
        /// Index of the offending job in the instance.
        job: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// The instance as a whole is malformed (e.g. `g = 0`).
    InvalidInstance(String),
    /// A schedule failed validation against its instance.
    InvalidSchedule(String),
    /// An instance file could not be parsed.
    Parse {
        /// 1-based line number where parsing failed.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// The requested computation does not apply to this instance
    /// (e.g. an interval-job algorithm invoked on flexible jobs).
    Unsupported(String),
    /// No feasible solution exists (active-time model only; the busy-time
    /// model is always feasible).
    Infeasible(String),
    /// A supervised solve quarantined part of the work after every rung of
    /// its degradation ladder failed. The message summarizes which parts
    /// were lost; callers needing the healthy partial result use the typed
    /// error of the fallible entry points in `abt-active` instead.
    Quarantined(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidJob { job, reason } => write!(f, "invalid job #{job}: {reason}"),
            Error::InvalidInstance(r) => write!(f, "invalid instance: {r}"),
            Error::InvalidSchedule(r) => write!(f, "invalid schedule: {r}"),
            Error::Parse { line, reason } => write!(f, "parse error on line {line}: {reason}"),
            Error::Unsupported(r) => write!(f, "unsupported: {r}"),
            Error::Infeasible(r) => write!(f, "infeasible: {r}"),
            Error::Quarantined(r) => write!(f, "quarantined: {r}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Which solve budget was exhausted (see [`SolveFailure::BudgetExceeded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// The basis-changing pivot budget.
    Pivots,
    /// The wall-clock budget.
    Time,
    /// The LU-refactorization budget.
    Refactorizations,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetKind::Pivots => write!(f, "pivot"),
            BudgetKind::Time => write!(f, "wall-time"),
            BudgetKind::Refactorizations => write!(f, "refactorization"),
        }
    }
}

/// Why one supervised solve attempt failed.
///
/// This is the error half of [`crate::parallel::supervised_map`] and of the
/// budgeted solve entry points in `abt-lp`: a failure is scoped to a single
/// work item (one component LP, one ladder rung), never to the whole
/// process, so supervisors can retry the item down a degradation ladder or
/// quarantine it while every other item keeps its result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveFailure {
    /// The solve panicked; the payload message is preserved for diagnostics.
    Panicked(String),
    /// The solve exhausted one of its budgets (see [`BudgetKind`]) before
    /// reaching a verdict.
    BudgetExceeded(BudgetKind),
    /// The float pass stalled (iteration cap, singular refactorization) or
    /// its terminal basis failed exact certification — the attempt is
    /// inconclusive, not a verdict.
    NumericalStall,
    /// A warm-start snapshot did not fit the problem's shape (and no other
    /// candidate installed), so the warm rung has nothing to run.
    ShapeDrift,
    /// The float pass believes the problem is infeasible. Float-level
    /// infeasibility is *not* a verdict: supervisors demote to an exact
    /// tier, whose infeasibility becomes the real [`Error::Infeasible`].
    Infeasible,
    /// Persisted solver state failed validation on load (bad checksum,
    /// version or shape drift, or a malformed payload — see
    /// `abt_core::persist`). Never a correctness risk: the reject-don't-
    /// trust invariant discards the state and rebuilds cold, so this
    /// failure only ever costs warm capital, exactly like a demotion.
    StateCorrupt(String),
}

impl fmt::Display for SolveFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveFailure::Panicked(msg) => write!(f, "solve panicked: {msg}"),
            SolveFailure::BudgetExceeded(k) => write!(f, "solve exceeded its {k} budget"),
            SolveFailure::NumericalStall => write!(f, "solve stalled numerically"),
            SolveFailure::ShapeDrift => write!(f, "no warm-start snapshot fits this shape"),
            SolveFailure::Infeasible => write!(f, "float pass reports infeasible (unverified)"),
            SolveFailure::StateCorrupt(r) => write!(f, "persisted state rejected: {r}"),
        }
    }
}

impl std::error::Error for SolveFailure {}

//! Error types shared across the `active-busy-time` workspace.

use std::fmt;

/// Errors produced while constructing or validating instances and schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A job's parameters are internally inconsistent (e.g. `r + p > d`, or
    /// a non-positive length).
    InvalidJob {
        /// Index of the offending job in the instance.
        job: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// The instance as a whole is malformed (e.g. `g = 0`).
    InvalidInstance(String),
    /// A schedule failed validation against its instance.
    InvalidSchedule(String),
    /// An instance file could not be parsed.
    Parse {
        /// 1-based line number where parsing failed.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// The requested computation does not apply to this instance
    /// (e.g. an interval-job algorithm invoked on flexible jobs).
    Unsupported(String),
    /// No feasible solution exists (active-time model only; the busy-time
    /// model is always feasible).
    Infeasible(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidJob { job, reason } => write!(f, "invalid job #{job}: {reason}"),
            Error::InvalidInstance(r) => write!(f, "invalid instance: {r}"),
            Error::InvalidSchedule(r) => write!(f, "invalid schedule: {r}"),
            Error::Parse { line, reason } => write!(f, "parse error on line {line}: {reason}"),
            Error::Unsupported(r) => write!(f, "unsupported: {r}"),
            Error::Infeasible(r) => write!(f, "infeasible: {r}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

//! Interesting intervals and the demand profile (Definitions 11–13).
//!
//! For a set of *placed* intervals (interval jobs, or flexible jobs whose
//! start times have been fixed), an **interesting interval** is a maximal
//! interval in which no job begins or ends. The **raw demand** `|A(t)|` is
//! constant over an interesting interval; the **demand** is
//! `D(t) = ⌈|A(t)|/g⌉`. The **demand profile** is the sequence of
//! `(interesting interval, raw demand)` pairs, and
//! `Σ_i D(I_i)·ℓ(I_i)` lower-bounds the optimal busy time (Observation 4):
//! any feasible solution keeps `⌈|A(I_i)|/g⌉` machines busy throughout
//! `I_i`.

use crate::time::{Interval, Time};

/// The demand profile of a collection of placed intervals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DemandProfile {
    /// `(interesting interval, raw demand over it)`, sorted by time, with
    /// zero-demand gaps included between the min and max breakpoints.
    segments: Vec<(Interval, usize)>,
}

impl DemandProfile {
    /// Builds the profile of `intervals` (empty intervals are ignored).
    pub fn new(intervals: &[Interval]) -> Self {
        let mut events: Vec<(Time, i32)> = Vec::with_capacity(intervals.len() * 2);
        for iv in intervals {
            if !iv.is_empty() {
                events.push((iv.start, 1));
                events.push((iv.end, -1));
            }
        }
        events.sort_unstable();
        let mut segments = Vec::new();
        let mut cur = 0i32;
        let mut idx = 0;
        while idx < events.len() {
            let t = events[idx].0;
            // Close the previous segment at t.
            if let Some(&(prev_t, _)) = events.get(idx.wrapping_sub(1)).filter(|_| idx > 0) {
                if prev_t < t && cur != 0 {
                    segments.push((Interval::new(prev_t, t), cur as usize));
                } else if prev_t < t {
                    segments.push((Interval::new(prev_t, t), 0));
                }
            }
            while idx < events.len() && events[idx].0 == t {
                cur += events[idx].1;
                idx += 1;
            }
        }
        DemandProfile { segments }
    }

    /// The `(interesting interval, raw demand)` segments, including
    /// zero-demand gaps interior to the horizon.
    pub fn segments(&self) -> &[(Interval, usize)] {
        &self.segments
    }

    /// Raw demand `|A(t)|` at a time point (0 outside the horizon).
    pub fn raw_demand_at(&self, t: Time) -> usize {
        self.segments
            .iter()
            .find(|(iv, _)| iv.contains(t))
            .map(|&(_, d)| d)
            .unwrap_or(0)
    }

    /// Demand `D(t) = ⌈|A(t)|/g⌉`.
    pub fn demand_at(&self, t: Time, g: usize) -> usize {
        div_ceil(self.raw_demand_at(t), g)
    }

    /// The profile lower bound `Σ_i ⌈|A(I_i)|/g⌉ · ℓ(I_i)` on optimal busy
    /// time (Observation 4).
    pub fn cost(&self, g: usize) -> i64 {
        self.segments
            .iter()
            .map(|&(iv, d)| div_ceil(d, g) as i64 * iv.len())
            .sum()
    }

    /// Σ over segments of raw demand × length = total mass of the intervals.
    pub fn mass(&self) -> i64 {
        self.segments
            .iter()
            .map(|&(iv, d)| d as i64 * iv.len())
            .sum()
    }

    /// Measure of `{t : |A(t)| ≥ 1}` — the span of the placed intervals.
    pub fn span(&self) -> i64 {
        self.segments
            .iter()
            .filter(|&&(_, d)| d > 0)
            .map(|&(iv, _)| iv.len())
            .sum()
    }

    /// Maximum raw demand over the horizon.
    pub fn max_raw_demand(&self) -> usize {
        self.segments.iter().map(|&(_, d)| d).max().unwrap_or(0)
    }

    /// Dummy intervals that raise every positive-demand segment's raw demand
    /// to the next multiple of `g` without changing the demand `D`
    /// (the padding step of Kumar–Rudra / Alicherry–Bhatia, Appendix A:
    /// adding `(c+1)g − |A(I_i)|` jobs spanning `I_i` when
    /// `cg < |A(I_i)| ≤ (c+1)g`).
    pub fn padding_to_multiple(&self, g: usize) -> Vec<Interval> {
        let mut dummies = Vec::new();
        for &(iv, d) in &self.segments {
            if d == 0 {
                continue;
            }
            let target = div_ceil(d, g) * g;
            for _ in d..target {
                dummies.push(iv);
            }
        }
        dummies
    }
}

#[inline]
fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ivs() -> Vec<Interval> {
        vec![
            Interval::new(0, 4),
            Interval::new(2, 6),
            Interval::new(2, 6),
            Interval::new(8, 10),
        ]
    }

    #[test]
    fn segments_partition_horizon() {
        let p = DemandProfile::new(&ivs());
        let segs = p.segments();
        assert_eq!(
            segs,
            &[
                (Interval::new(0, 2), 1),
                (Interval::new(2, 4), 3),
                (Interval::new(4, 6), 2),
                (Interval::new(6, 8), 0),
                (Interval::new(8, 10), 1),
            ]
        );
        // At most 2n interesting intervals (Definition 12 discussion).
        assert!(segs.len() <= 2 * ivs().len());
    }

    #[test]
    fn demand_queries() {
        let p = DemandProfile::new(&ivs());
        assert_eq!(p.raw_demand_at(0), 1);
        assert_eq!(p.raw_demand_at(3), 3);
        assert_eq!(p.raw_demand_at(7), 0);
        assert_eq!(p.raw_demand_at(-1), 0);
        assert_eq!(p.raw_demand_at(10), 0);
        assert_eq!(p.demand_at(3, 2), 2);
        assert_eq!(p.demand_at(3, 3), 1);
    }

    #[test]
    fn profile_cost_and_mass_and_span() {
        let p = DemandProfile::new(&ivs());
        // g = 2: ceil demands are 1,2,1,0,1 over lengths 2,2,2,2,2
        assert_eq!(p.cost(2), (2 + 4 + 2) + 2);
        assert_eq!(p.mass(), 4 + 4 + 4 + 2);
        assert_eq!(p.span(), 6 + 2);
        assert_eq!(p.max_raw_demand(), 3);
    }

    #[test]
    fn profile_cost_with_g1_is_mass() {
        let p = DemandProfile::new(&ivs());
        assert_eq!(p.cost(1), p.mass());
    }

    #[test]
    fn padding_makes_multiples_without_changing_demand() {
        let p = DemandProfile::new(&ivs());
        let g = 2;
        let dummies = p.padding_to_multiple(g);
        let mut all = ivs();
        all.extend(dummies);
        let padded = DemandProfile::new(&all);
        for &(iv, d) in padded.segments() {
            if d > 0 {
                assert_eq!(d % g, 0, "segment {iv} has non-multiple demand {d}");
            }
        }
        assert_eq!(
            padded.cost(g),
            p.cost(g),
            "padding must not change the profile bound"
        );
    }

    #[test]
    fn empty_profile() {
        let p = DemandProfile::new(&[]);
        assert!(p.segments().is_empty());
        assert_eq!(p.cost(3), 0);
        assert_eq!(p.span(), 0);
        assert_eq!(p.max_raw_demand(), 0);
    }
}

//! Deterministic fault injection (a `failpoints`-style registry).
//!
//! Production solver code marks **hit sites** with [`hit`]:
//!
//! ```
//! abt_core::faultinject::hit("panic_in_ftran");
//! ```
//!
//! With the `fault-injection` cargo feature **off** (the default), `hit`
//! is an empty inline function — the call compiles to nothing, so the
//! pivot loop and certifier pay zero cost in production builds. With the
//! feature **on**, each call consults a process-global registry: tests and
//! CI `configure` a site with a [`FaultSpec`] (an action plus a
//! deterministic counter-based trigger) and the site then panics or sleeps
//! on exactly the configured hits, reproducibly — there is no randomness
//! anywhere, only per-site hit counters.
//!
//! The workspace's standard sites, one per supervised layer:
//!
//! | site             | layer                               | typical action |
//! |------------------|-------------------------------------|----------------|
//! | `fail_nth_solve` | component-solve entry (`abt-active`)| `Panic`        |
//! | `panic_in_pivot` | revised pivot loop (`abt-lp`)       | `Panic`        |
//! | `panic_in_ftran` | FTRAN (`abt-lp`)                    | `Panic`        |
//! | `slow_certify`   | exact `Rat` certifier (`abt-lp`)    | `DelayMillis`  |
//! | `torn_write`     | state-file write (`abt-core::persist`) | `Io(TornWrite)` |
//! | `corrupt_read`   | state-file load (`abt-core::persist`)  | `Io(CorruptRead)` |
//!
//! The two I/O sites are **query-style**: the registry cannot reach the
//! caller's buffers, so [`io_fault`] returns the fired [`IoFault`] and the
//! persist layer applies the corruption itself (truncating the written
//! file, flipping a loaded byte). Both must surface as
//! `SolveFailure::StateCorrupt` on the next load — never a panic, never a
//! wrong answer.
//!
//! Because the registry is process-global and the site names are fixed,
//! concurrently running tests would race each other's configurations:
//! every test that configures a failpoint must hold the `exclusive`
//! guard for its whole body. The guard also swaps in a silent panic hook
//! (injected panics are expected and would otherwise spray backtraces
//! over the test output) and `reset`s the registry when dropped.
//!
//! CI smoke runs seed the registry through the `ABT_FAULTPOINTS`
//! environment variable (see `configure_from_env`), e.g.
//! `ABT_FAULTPOINTS="panic_in_pivot=panic@every:97;slow_certify=delay:10@nth:3"`.

/// When a configured site actually fires, in terms of that site's
/// 1-based hit counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fire on the `n`-th hit only (one-shot).
    Nth(u64),
    /// Fire on every `k`-th hit (`k ≥ 1`; `Every(1)` fires always).
    Every(u64),
}

/// What a firing site does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with a message naming the site — exercises the unwind paths
    /// (arena recycling, `supervised_map`, ladder demotion).
    Panic,
    /// Sleep for the given number of milliseconds — exercises wall-time
    /// budgets without panicking.
    DelayMillis(u64),
    /// Report a data-corrupting I/O fault to the caller (see [`io_fault`]);
    /// only meaningful at the persist layer's I/O sites.
    Io(IoFault),
}

/// A data-corrupting I/O fault, applied by the persist layer itself (the
/// registry cannot reach the caller's buffers — see [`io_fault`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// Truncate the state file just written — a disk that acknowledged a
    /// write it did not complete.
    TornWrite,
    /// Flip one byte of the bytes just read — bit rot under the checksum.
    CorruptRead,
}

/// A configured failpoint: fire `action` whenever `trigger` matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// When to fire.
    pub trigger: Trigger,
    /// What to do.
    pub action: FaultAction,
}

impl FaultSpec {
    /// Panic on every `k`-th hit.
    pub fn panic_every(k: u64) -> FaultSpec {
        FaultSpec {
            trigger: Trigger::Every(k.max(1)),
            action: FaultAction::Panic,
        }
    }

    /// Panic on the `n`-th hit only.
    pub fn panic_nth(n: u64) -> FaultSpec {
        FaultSpec {
            trigger: Trigger::Nth(n.max(1)),
            action: FaultAction::Panic,
        }
    }

    /// Sleep `millis` on the `n`-th hit only.
    pub fn delay_nth(n: u64, millis: u64) -> FaultSpec {
        FaultSpec {
            trigger: Trigger::Nth(n.max(1)),
            action: FaultAction::DelayMillis(millis),
        }
    }

    /// Fire the given I/O fault on every `k`-th hit.
    pub fn io_every(fault: IoFault, k: u64) -> FaultSpec {
        FaultSpec {
            trigger: Trigger::Every(k.max(1)),
            action: FaultAction::Io(fault),
        }
    }

    /// Fire the given I/O fault on the `n`-th hit only.
    pub fn io_nth(fault: IoFault, n: u64) -> FaultSpec {
        FaultSpec {
            trigger: Trigger::Nth(n.max(1)),
            action: FaultAction::Io(fault),
        }
    }
}

/// Marks a fault-injection site. A no-op unless the `fault-injection`
/// feature is enabled *and* the site has been `configure`d with a
/// matching trigger.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn hit(_site: &str) {}

/// Queries an I/O fault-injection site: `Some(fault)` when the site is
/// configured with a matching [`FaultAction::Io`] and its trigger fires —
/// the caller then applies the corruption itself. A site configured with
/// `Panic`/`DelayMillis` fires those as [`hit`] would. A no-op returning
/// `None` unless the `fault-injection` feature is enabled.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn io_fault(_site: &str) -> Option<IoFault> {
    None
}

#[cfg(feature = "fault-injection")]
pub use enabled::{configure, configure_from_env, exclusive, hit, io_fault, reset, ExclusiveGuard};

#[cfg(feature = "fault-injection")]
mod enabled {
    use super::{FaultAction, FaultSpec, IoFault, Trigger};
    use std::collections::HashMap;
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

    struct SiteState {
        spec: FaultSpec,
        hits: u64,
    }

    fn registry() -> &'static Mutex<HashMap<String, SiteState>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, SiteState>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn lock_registry() -> MutexGuard<'static, HashMap<String, SiteState>> {
        // Injected panics unwind while this lock is *not* held (the guard
        // is dropped before firing, below), but a stray poison must never
        // wedge the harness.
        registry().lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Arms `site` with `spec`, resetting the site's hit counter.
    pub fn configure(site: &str, spec: FaultSpec) {
        lock_registry().insert(site.to_string(), SiteState { spec, hits: 0 });
    }

    /// Disarms every site and clears every hit counter.
    pub fn reset() {
        lock_registry().clear();
    }

    /// Marks a fault-injection site: bumps the site's hit counter and, when
    /// the configured trigger matches, fires the configured action
    /// (panicking or sleeping). Unconfigured sites only pay the registry
    /// lookup.
    pub fn hit(site: &str) {
        match fired_action(site) {
            None => {}
            Some(FaultAction::Panic) => panic!("faultinject: injected panic at '{site}'"),
            Some(FaultAction::DelayMillis(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            // An I/O action at a plain hit site has no buffer to corrupt;
            // only `io_fault` callers can apply it.
            Some(FaultAction::Io(_)) => {}
        }
    }

    /// Queries an I/O site (see the module docs): returns the fired
    /// [`IoFault`] for the caller to apply; `Panic`/`DelayMillis` actions
    /// fire here exactly as at a [`hit`] site.
    pub fn io_fault(site: &str) -> Option<IoFault> {
        match fired_action(site) {
            None => None,
            Some(FaultAction::Panic) => panic!("faultinject: injected panic at '{site}'"),
            Some(FaultAction::DelayMillis(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                None
            }
            Some(FaultAction::Io(f)) => Some(f),
        }
    }

    /// Bumps `site`'s hit counter and returns the action to fire, if any.
    /// The registry lock is released before the caller fires it.
    fn fired_action(site: &str) -> Option<FaultAction> {
        let mut reg = lock_registry();
        let state = reg.get_mut(site)?;
        state.hits += 1;
        let fires = match state.spec.trigger {
            Trigger::Nth(n) => state.hits == n,
            Trigger::Every(k) => state.hits % k.max(1) == 0,
        };
        fires.then_some(state.spec.action)
    }

    /// Seeds the registry from the `ABT_FAULTPOINTS` environment variable
    /// (used by CI smoke runs, where the test harness is not in control).
    /// Format: `;`-separated `site=action[@trigger]` entries, with action
    /// `panic`, `delay:MS`, `torn`, or `corrupt` and trigger `every:N` or
    /// `nth:N` (default
    /// `every:1`). Malformed entries are ignored with a warning on stderr
    /// — a smoke harness must not abort over a typo'd knob.
    pub fn configure_from_env() {
        let Ok(raw) = std::env::var("ABT_FAULTPOINTS") else {
            return;
        };
        for entry in raw.split(';').filter(|e| !e.trim().is_empty()) {
            match parse_entry(entry.trim()) {
                Some((site, spec)) => {
                    eprintln!("faultinject: arming '{site}' with {spec:?}");
                    configure(&site, spec);
                }
                None => eprintln!("faultinject: ignoring malformed entry {entry:?}"),
            }
        }
    }

    fn parse_entry(entry: &str) -> Option<(String, FaultSpec)> {
        let (site, rest) = entry.split_once('=')?;
        let (action_s, trigger_s) = match rest.split_once('@') {
            Some((a, t)) => (a, Some(t)),
            None => (rest, None),
        };
        let action = if action_s == "panic" {
            FaultAction::Panic
        } else if let Some(ms) = action_s.strip_prefix("delay:") {
            FaultAction::DelayMillis(ms.parse().ok()?)
        } else if action_s == "torn" {
            FaultAction::Io(IoFault::TornWrite)
        } else if action_s == "corrupt" {
            FaultAction::Io(IoFault::CorruptRead)
        } else {
            return None;
        };
        let trigger = match trigger_s {
            None => Trigger::Every(1),
            Some(t) => {
                if let Some(n) = t.strip_prefix("every:") {
                    Trigger::Every(n.parse::<u64>().ok()?.max(1))
                } else if let Some(n) = t.strip_prefix("nth:") {
                    Trigger::Nth(n.parse::<u64>().ok()?.max(1))
                } else {
                    return None;
                }
            }
        };
        Some((site.to_string(), FaultSpec { trigger, action }))
    }

    /// Serializes failpoint tests: the registry and its site names are
    /// process-global, so concurrent tests would clobber each other's
    /// configurations. Hold the returned guard for the whole test body.
    /// While held, the process panic hook is silenced (injected panics are
    /// expected — their backtraces are noise); dropping the guard restores
    /// the hook and [`reset`]s the registry.
    pub fn exclusive() -> ExclusiveGuard {
        static TEST_LOCK: Mutex<()> = Mutex::new(());
        let lock = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        ExclusiveGuard {
            _lock: lock,
            prev_hook: Some(prev_hook),
        }
    }

    /// The process panic hook, as [`std::panic::take_hook`] returns it.
    type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;

    /// See [`exclusive`].
    pub struct ExclusiveGuard {
        _lock: MutexGuard<'static, ()>,
        prev_hook: Option<PanicHook>,
    }

    impl Drop for ExclusiveGuard {
        fn drop(&mut self) {
            reset();
            if let Some(hook) = self.prev_hook.take() {
                // `set_hook` panics on a panicking thread, which inside
                // this destructor would escalate a plain test failure into
                // a process abort. Leave the hook silenced in that case —
                // the next `exclusive()` replaces it anyway.
                if !std::thread::panicking() {
                    std::panic::set_hook(hook);
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn triggers_fire_deterministically() {
            let _guard = exclusive();
            configure("t_nth", FaultSpec::panic_nth(3));
            hit("t_nth");
            hit("t_nth"); // hits 1 and 2: armed but silent
            let caught = std::panic::catch_unwind(|| hit("t_nth"));
            assert!(caught.is_err(), "3rd hit must fire");
            hit("t_nth"); // one-shot: 4th hit is silent again

            configure("t_every", FaultSpec::panic_every(2));
            hit("t_every");
            assert!(std::panic::catch_unwind(|| hit("t_every")).is_err());
            hit("t_every");
            assert!(std::panic::catch_unwind(|| hit("t_every")).is_err());
        }

        #[test]
        fn unconfigured_sites_are_silent() {
            let _guard = exclusive();
            for _ in 0..100 {
                hit("never_configured");
            }
        }

        #[test]
        fn env_entries_parse() {
            assert_eq!(
                parse_entry("panic_in_pivot=panic@every:97"),
                Some((
                    "panic_in_pivot".into(),
                    FaultSpec {
                        trigger: Trigger::Every(97),
                        action: FaultAction::Panic,
                    }
                ))
            );
            assert_eq!(
                parse_entry("slow_certify=delay:10@nth:3"),
                Some((
                    "slow_certify".into(),
                    FaultSpec {
                        trigger: Trigger::Nth(3),
                        action: FaultAction::DelayMillis(10),
                    }
                ))
            );
            assert_eq!(
                parse_entry("fail_nth_solve=panic"),
                Some((
                    "fail_nth_solve".into(),
                    FaultSpec {
                        trigger: Trigger::Every(1),
                        action: FaultAction::Panic,
                    }
                ))
            );
            assert_eq!(
                parse_entry("torn_write=torn@every:3"),
                Some((
                    "torn_write".into(),
                    FaultSpec {
                        trigger: Trigger::Every(3),
                        action: FaultAction::Io(IoFault::TornWrite),
                    }
                ))
            );
            assert_eq!(
                parse_entry("corrupt_read=corrupt"),
                Some((
                    "corrupt_read".into(),
                    FaultSpec {
                        trigger: Trigger::Every(1),
                        action: FaultAction::Io(IoFault::CorruptRead),
                    }
                ))
            );
            assert_eq!(parse_entry("bad"), None);
            assert_eq!(parse_entry("s=frob"), None);
            assert_eq!(parse_entry("s=panic@often"), None);
        }

        #[test]
        fn io_faults_are_query_style() {
            let _guard = exclusive();
            configure("t_io", FaultSpec::io_every(IoFault::CorruptRead, 2));
            assert_eq!(io_fault("t_io"), None, "1st hit is silent");
            assert_eq!(io_fault("t_io"), Some(IoFault::CorruptRead));
            // A plain `hit` at an Io site is a no-op (nothing to corrupt).
            hit("t_io"); // hit 3
            assert_eq!(io_fault("t_io"), Some(IoFault::CorruptRead), "hit 4");
            // Unconfigured sites answer None.
            assert_eq!(io_fault("t_io_other"), None);
        }
    }
}

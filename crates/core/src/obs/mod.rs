//! # Unified observability layer
//!
//! Generation-10 substrate shared by the whole workspace: one
//! process-global [`metrics`] registry (counters, high-water gauges,
//! log-bucket histograms), an RAII span/event [`trace`] API over the
//! solve pipeline, and a bounded ring-buffer flight [`recorder`] that
//! dumps JSONL on demand.
//!
//! The three pieces compose into a single reporting path:
//!
//! * **Metrics** are the always-on truth. The legacy telemetry facades
//!   (`abt_active::lp_telemetry`, `abt_busy::busy_lp_telemetry`, the
//!   persistence counters) are views over registry counters/gauges, and
//!   solve latencies land in histograms with deterministic
//!   p50/p90/p99 extraction.
//! * **Spans** time the pipeline phases (`solve.decompose` →
//!   `solve.warm` → `solve.pivot` → `solve.certify` → `solve.stitch`,
//!   with `solve.component` wrapping each supervised component solve).
//!   Closing a span always feeds a per-name duration rollup in the
//!   registry; when tracing is armed it also appends to the flight
//!   recorder.
//! * **Events** mark the exceptional transitions — supervision
//!   demotions and quarantines, admission rejects, persistence
//!   restores/recoveries/corruption detections — so a flight-recorder
//!   dump explains *why* a solve took the path it did.
//!
//! Arm/disarm at runtime with [`trace::set_tracing`]; dump with
//! [`recorder::dump_jsonl`] / [`recorder::dump_to_file`]; validate a
//! dump with [`recorder::validate_jsonl`].

pub mod metrics;
pub mod recorder;
pub mod trace;

pub use metrics::{counter, gauge, histogram, Counter, Gauge, Histogram, HistogramSnapshot};
pub use recorder::{dump_jsonl, dump_to_file, validate_jsonl, DumpSummary, TraceEntry};
pub use trace::{event, set_tracing, span, span_rollups, span_with, tracing_enabled, Span};

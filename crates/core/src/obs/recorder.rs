//! Bounded ring-buffer flight recorder.
//!
//! While tracing is armed ([`crate::obs::trace::set_tracing`]), every
//! span close and [`crate::obs::trace::event`] emission appends a
//! [`TraceEntry`] here. The buffer is bounded ([`set_capacity`],
//! default [`DEFAULT_CAPACITY`]): on overflow the **oldest** entries are
//! evicted and counted in [`dropped`], so a dump after an incident
//! always holds the most recent window — the flight-recorder contract.
//!
//! # Dump format (JSONL)
//!
//! [`dump_jsonl`] renders one JSON object per line, in append (`seq`)
//! order:
//!
//! ```json
//! {"seq":17,"kind":"span","name":"solve.pivot","thread":3,"span":12,"parent":11,"start_us":8123,"dur_us":455,"fields":{"vars":"120"}}
//! {"seq":18,"kind":"event","name":"supervise.demotion","thread":3,"parent":12,"start_us":8600,"fields":{"failure":"numerical stall","from":"warm","to":"cold revised"}}
//! ```
//!
//! * `seq` — global append order (events interleave with span *closes*;
//!   a parent span therefore appears after its children).
//! * `span` / `parent` — span ids; `parent` 0 means a root. Events
//!   carry only `parent` (the innermost span open on their thread).
//! * `start_us` / `dur_us` — microseconds since the process
//!   observability epoch / span duration.
//!
//! [`validate_jsonl`] re-parses a dump and tallies span/event kinds —
//! the CI smoke check and `abt trace --check` run on it.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Mutex, OnceLock};

/// Default ring capacity (entries), sized to hold the full span/event
/// stream of a mid-size experiment sweep.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Whether a [`TraceEntry`] is a closed span or a point-in-time event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// A closed [`crate::obs::trace::Span`] with a duration.
    Span,
    /// A point-in-time structured event.
    Event,
}

/// One flight-recorder entry (see the module docs for the dump format).
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Global append order.
    pub seq: u64,
    /// Span close or event.
    pub kind: EntryKind,
    /// Span/event name (`solve.pivot`, `supervise.demotion`, …).
    pub name: &'static str,
    /// Dense ordinal of the emitting thread.
    pub thread: u64,
    /// Span id (0 for events).
    pub span: u64,
    /// Parent span id (0 = root / no open span).
    pub parent: u64,
    /// Microseconds since the process observability epoch.
    pub start_us: u64,
    /// Span duration in microseconds (0 for events).
    pub dur_us: u64,
    /// Structured `key=value` payload.
    pub fields: Vec<(&'static str, String)>,
}

struct Ring {
    buf: VecDeque<TraceEntry>,
    cap: usize,
    dropped: u64,
    next_seq: u64,
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring {
            buf: VecDeque::new(),
            cap: DEFAULT_CAPACITY,
            dropped: 0,
            next_seq: 1,
        })
    })
}

fn push(mut entry: TraceEntry) {
    let mut ring = ring().lock().expect("flight recorder poisoned");
    entry.seq = ring.next_seq;
    ring.next_seq += 1;
    if ring.buf.len() >= ring.cap {
        ring.buf.pop_front();
        ring.dropped += 1;
    }
    ring.buf.push_back(entry);
}

/// Appends a closed span (called by the span guard's `Drop`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn push_span(
    name: &'static str,
    span: u64,
    parent: u64,
    thread: u64,
    start_us: u64,
    dur_us: u64,
    fields: Vec<(&'static str, String)>,
) {
    push(TraceEntry {
        seq: 0,
        kind: EntryKind::Span,
        name,
        thread,
        span,
        parent,
        start_us,
        dur_us,
        fields,
    });
}

/// Appends a point-in-time event.
pub(crate) fn push_event(
    name: &'static str,
    parent: u64,
    thread: u64,
    start_us: u64,
    fields: Vec<(&'static str, String)>,
) {
    push(TraceEntry {
        seq: 0,
        kind: EntryKind::Event,
        name,
        thread,
        span: 0,
        parent,
        start_us,
        dur_us: 0,
        fields,
    });
}

/// Resizes the ring (evicting oldest entries if shrinking below the
/// current length).
pub fn set_capacity(cap: usize) {
    let mut ring = ring().lock().expect("flight recorder poisoned");
    ring.cap = cap.max(1);
    while ring.buf.len() > ring.cap {
        ring.buf.pop_front();
        ring.dropped += 1;
    }
}

/// Number of entries evicted by the bound so far.
pub fn dropped() -> u64 {
    ring().lock().expect("flight recorder poisoned").dropped
}

/// Number of entries currently buffered.
pub fn len() -> usize {
    ring().lock().expect("flight recorder poisoned").buf.len()
}

/// Clears the buffer (the eviction counter is kept).
pub fn clear() {
    ring().lock().expect("flight recorder poisoned").buf.clear();
}

/// Copies the buffered entries out in append order.
pub fn entries() -> Vec<TraceEntry> {
    ring()
        .lock()
        .expect("flight recorder poisoned")
        .buf
        .iter()
        .cloned()
        .collect()
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn render_line(out: &mut String, e: &TraceEntry) {
    out.push_str(&format!(
        "{{\"seq\":{},\"kind\":\"{}\",\"name\":\"",
        e.seq,
        match e.kind {
            EntryKind::Span => "span",
            EntryKind::Event => "event",
        }
    ));
    escape_into(out, e.name);
    out.push_str(&format!("\",\"thread\":{}", e.thread));
    if e.kind == EntryKind::Span {
        out.push_str(&format!(",\"span\":{}", e.span));
    }
    out.push_str(&format!(
        ",\"parent\":{},\"start_us\":{}",
        e.parent, e.start_us
    ));
    if e.kind == EntryKind::Span {
        out.push_str(&format!(",\"dur_us\":{}", e.dur_us));
    }
    if !e.fields.is_empty() {
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in e.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(out, k);
            out.push_str("\":\"");
            escape_into(out, v);
            out.push('"');
        }
        out.push('}');
    }
    out.push_str("}\n");
}

/// Renders the buffered entries as JSONL (see the module docs).
pub fn dump_jsonl() -> String {
    let mut out = String::new();
    for e in entries() {
        render_line(&mut out, &e);
    }
    out
}

/// Writes [`dump_jsonl`] to `path`.
pub fn dump_to_file(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, dump_jsonl())
}

/// Per-kind tallies of a parsed dump (see [`validate_jsonl`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DumpSummary {
    /// Parsed line count.
    pub lines: usize,
    /// Span close count per span name.
    pub span_kinds: BTreeMap<String, u64>,
    /// Event count per event name.
    pub event_kinds: BTreeMap<String, u64>,
}

/// Parses a flight-recorder JSONL dump back, checking each line is a
/// well-formed flat JSON object with the required `seq`/`kind`/`name`
/// keys, and tallies span/event kinds. Errors name the first offending
/// line. Empty input is valid (an empty recorder dumps nothing).
pub fn validate_jsonl(text: &str) -> Result<DumpSummary, String> {
    let mut summary = DumpSummary::default();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let obj = parse_object(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let kind = match obj.get("kind") {
            Some(JsonValue::Str(s)) => s.clone(),
            _ => return Err(format!("line {}: missing string key \"kind\"", i + 1)),
        };
        let name = match obj.get("name") {
            Some(JsonValue::Str(s)) => s.clone(),
            _ => return Err(format!("line {}: missing string key \"name\"", i + 1)),
        };
        if !matches!(obj.get("seq"), Some(JsonValue::Num(_))) {
            return Err(format!("line {}: missing numeric key \"seq\"", i + 1));
        }
        match kind.as_str() {
            "span" => *summary.span_kinds.entry(name).or_insert(0) += 1,
            "event" => *summary.event_kinds.entry(name).or_insert(0) += 1,
            other => return Err(format!("line {}: unknown kind {other:?}", i + 1)),
        }
        summary.lines += 1;
    }
    Ok(summary)
}

/// Minimal JSON value for [`validate_jsonl`] (strings, numbers, and one
/// level of object nesting for `fields`).
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Str(String),
    Num(f64),
    Obj(BTreeMap<String, JsonValue>),
}

fn parse_object(s: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let obj = p.object()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(obj)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn object(&mut self) -> Result<BTreeMap<String, JsonValue>, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            out.insert(key, value);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'{') => Ok(JsonValue::Obj(self.object()?)),
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.pos += 1;
                }
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .ok()
                    .and_then(|t| t.parse::<f64>().ok())
                    .map(JsonValue::Num)
                    .ok_or_else(|| format!("bad number at offset {start}"))
            }
            _ => Err(format!("unexpected value at offset {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str,
                    // so boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_roundtrips_through_the_validator() {
        let mut out = String::new();
        render_line(
            &mut out,
            &TraceEntry {
                seq: 1,
                kind: EntryKind::Span,
                name: "solve.pivot",
                thread: 2,
                span: 10,
                parent: 9,
                start_us: 100,
                dur_us: 55,
                fields: vec![("vars", "12".into()), ("note", "a \"quoted\"\nline".into())],
            },
        );
        render_line(
            &mut out,
            &TraceEntry {
                seq: 2,
                kind: EntryKind::Event,
                name: "supervise.demotion",
                thread: 2,
                span: 0,
                parent: 10,
                start_us: 120,
                dur_us: 0,
                fields: vec![("failure", "numerical stall".into())],
            },
        );
        let summary = validate_jsonl(&out).expect("dump must validate");
        assert_eq!(summary.lines, 2);
        assert_eq!(summary.span_kinds.get("solve.pivot"), Some(&1));
        assert_eq!(summary.event_kinds.get("supervise.demotion"), Some(&1));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_jsonl("{\"seq\":1}").is_err(), "missing kind/name");
        assert!(validate_jsonl("not json").is_err());
        assert!(validate_jsonl("{\"seq\":1,\"kind\":\"span\",\"name\":\"x\"} trailing").is_err());
        assert_eq!(validate_jsonl("").unwrap(), DumpSummary::default());
    }

    #[test]
    fn ring_bound_evicts_oldest() {
        // The ring is process-global; exercise the bound through the
        // internal push with a scratch capacity, then restore.
        let original_cap = {
            let r = ring().lock().unwrap();
            r.cap
        };
        set_capacity(4);
        clear();
        for _ in 0..10 {
            push_event("test.recorder.evict", 0, 0, 0, Vec::new());
        }
        assert!(len() <= 4);
        let tail = entries();
        // Entries are the most recent ones, in seq order.
        for pair in tail.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
        }
        set_capacity(original_cap);
        clear();
    }
}

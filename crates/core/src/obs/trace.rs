//! Span/event tracing over the solve pipeline.
//!
//! A [`Span`] is an RAII guard ([`span`] / [`span_with`] / the
//! [`obs_span!`](crate::obs_span) macro) timing one named phase of work
//! — `solve.decompose`, `solve.warm`, `solve.pivot`, `solve.certify`,
//! `solve.stitch`, `solve.component`, … Guards nest per thread: a span
//! opened while another is live on the same thread records it as its
//! parent, so a flight-recorder dump reconstructs the per-thread span
//! tree of a solve.
//!
//! Two cost tiers, switched at runtime:
//!
//! * **Rollups — always on.** Every span close adds its duration to a
//!   per-name `(count, total nanoseconds)` pair in the metrics registry
//!   ([`span_rollups`]); this is a couple of relaxed atomic adds plus
//!   two monotonic clock reads per span, which is noise next to the LP
//!   work a span wraps and never perturbs solver decisions (pivot
//!   counts are bit-identical with tracing on or off). The CLI's
//!   per-phase time breakdown reads these.
//! * **Flight recording — off by default.** When the runtime switch
//!   ([`set_tracing`]) is armed, span closes and [`event`] emissions
//!   additionally append structured entries to the bounded ring buffer
//!   in [`crate::obs::recorder`]. Disabled, a span pays one relaxed
//!   atomic load for the check and allocates nothing for its fields.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use super::{metrics, recorder};

static TRACING: AtomicBool = AtomicBool::new(false);

/// Arms or disarms the flight recorder at runtime. Disarmed (the
/// default), spans still feed the always-on rollups but nothing is
/// appended to the ring buffer and span fields are never materialized.
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// Whether the flight recorder is currently armed.
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Monotonic process clock origin shared by every span and event.
fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed since the first observability call of the
/// process (the timestamp base of flight-recorder entries).
pub fn now_micros() -> u64 {
    process_epoch().elapsed().as_micros() as u64
}

/// Small dense integer id of the calling thread (assigned on first use;
/// stable for the thread's lifetime). Flight-recorder entries carry it
/// so per-thread span trees can be reassembled from a dump.
pub fn thread_ordinal() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ORDINAL: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORDINAL.with(|t| *t)
}

thread_local! {
    /// Stack of open span ids on this thread (parent linkage).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// The span id of the innermost open span on this thread (0 = none).
/// Events attach to it as their parent.
pub fn current_span() -> u64 {
    SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

/// An RAII guard timing one named phase. Created by [`span`] /
/// [`span_with`]; closing (dropping) the guard feeds the per-name
/// rollup and — when tracing is armed — appends a flight-recorder
/// entry.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    id: u64,
    parent: u64,
    start_us: u64,
    started: Instant,
    fields: Vec<(&'static str, String)>,
}

impl Span {
    /// Attaches a `key=value` field to the span's flight-recorder entry.
    /// A no-op while tracing is disarmed, so values are only formatted
    /// when a recorder is listening.
    pub fn field(&mut self, key: &'static str, value: impl std::fmt::Display) {
        if tracing_enabled() {
            self.fields.push((key, value.to_string()));
        }
    }
}

/// Opens a span named `name` on the current thread.
pub fn span(name: &'static str) -> Span {
    let id = next_span_id();
    let parent = current_span();
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
    Span {
        name,
        id,
        parent,
        start_us: now_micros(),
        started: Instant::now(),
        fields: Vec::new(),
    }
}

/// [`span`] with initial fields. The `make_fields` closure runs only
/// when tracing is armed.
pub fn span_with(
    name: &'static str,
    make_fields: impl FnOnce() -> Vec<(&'static str, String)>,
) -> Span {
    let mut s = span(name);
    if tracing_enabled() {
        s.fields = make_fields();
    }
    s
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur = self.started.elapsed();
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop our own id; tolerate (skip) nothing else — guards are
            // strictly nested by construction, but a leaked guard
            // crossing threads must not corrupt another thread's stack.
            if stack.last() == Some(&self.id) {
                stack.pop();
            }
        });
        rollup(self.name, dur.as_nanos() as u64);
        if tracing_enabled() {
            recorder::push_span(
                self.name,
                self.id,
                self.parent,
                thread_ordinal(),
                self.start_us,
                dur.as_micros() as u64,
                std::mem::take(&mut self.fields),
            );
        }
    }
}

/// Emits a structured point-in-time event (`supervise.demotion`,
/// `persist.recovery`, …) into the flight recorder, parented to the
/// innermost open span of the calling thread. A no-op while tracing is
/// disarmed; the `make_fields` closure runs only when armed.
pub fn event(name: &'static str, make_fields: impl FnOnce() -> Vec<(&'static str, String)>) {
    if !tracing_enabled() {
        return;
    }
    recorder::push_event(
        name,
        current_span(),
        thread_ordinal(),
        now_micros(),
        make_fields(),
    );
}

/// Per-span-name duration rollup handles, resolved once per name.
fn rollup(name: &'static str, nanos: u64) {
    type Handles = (&'static metrics::Counter, &'static metrics::Counter);
    static ROLLUPS: OnceLock<Mutex<std::collections::BTreeMap<&'static str, Handles>>> =
        OnceLock::new();
    let map = ROLLUPS.get_or_init(|| Mutex::new(std::collections::BTreeMap::new()));
    let (count, total) = {
        let mut map = map.lock().expect("span rollup lock poisoned");
        *map.entry(name).or_insert_with(|| {
            // Leak the two derived names once per distinct span name.
            let count: &'static str = Box::leak(format!("span.{name}.count").into_boxed_str());
            let nanos: &'static str = Box::leak(format!("span.{name}.nanos").into_boxed_str());
            (metrics::counter(count), metrics::counter(nanos))
        })
    };
    count.inc();
    total.add(nanos);
}

/// Cumulative span rollups: `(span name, close count, total
/// nanoseconds)` per distinct span name seen so far, sorted by name.
/// Diff two calls to scope rollups to a region (all values are
/// monotone).
pub fn span_rollups() -> Vec<(String, u64, u64)> {
    // Rollup metric names are `span.<name>.count` / `span.<name>.nanos`;
    // read them back through the registry's text exposition to avoid a
    // second bookkeeping structure.
    let mut out = Vec::new();
    let mut counts: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    let mut nanos: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for line in metrics::render().lines() {
        let Some((name, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(value) = value.parse::<u64>() else {
            continue;
        };
        if let Some(core) = name
            .strip_prefix("span.")
            .and_then(|n| n.strip_suffix(".count"))
        {
            counts.insert(core.to_string(), value);
        } else if let Some(core) = name
            .strip_prefix("span.")
            .and_then(|n| n.strip_suffix(".nanos"))
        {
            nanos.insert(core.to_string(), value);
        }
    }
    for (name, count) in counts {
        let total = nanos.get(&name).copied().unwrap_or(0);
        out.push((name, count, total));
    }
    out
}

/// Opens an RAII span guard: `obs_span!("solve.pivot")` or
/// `obs_span!("solve.component", vars = lp.num_vars())`. Field values
/// are formatted only when tracing is armed.
#[macro_export]
macro_rules! obs_span {
    ($name:expr) => {
        $crate::obs::trace::span($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::obs::trace::span_with($name, || {
            vec![$((stringify!($key), $value.to_string())),+]
        })
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_roll_up() {
        let before: std::collections::BTreeMap<String, (u64, u64)> = span_rollups()
            .into_iter()
            .map(|(n, c, t)| (n, (c, t)))
            .collect();
        {
            let _outer = span("test.trace.outer");
            assert_ne!(current_span(), 0);
            let outer_id = current_span();
            {
                let inner = span("test.trace.inner");
                assert_eq!(inner.parent, outer_id);
                assert_eq!(current_span(), inner.id);
            }
            assert_eq!(current_span(), outer_id);
        }
        assert_eq!(current_span(), 0);
        let after: std::collections::BTreeMap<String, (u64, u64)> = span_rollups()
            .into_iter()
            .map(|(n, c, t)| (n, (c, t)))
            .collect();
        for name in ["test.trace.outer", "test.trace.inner"] {
            let b = before.get(name).copied().unwrap_or((0, 0));
            let a = after.get(name).copied().unwrap_or((0, 0));
            assert_eq!(a.0 - b.0, 1, "{name} closed once");
        }
    }

    #[test]
    fn fields_are_skipped_while_disarmed() {
        // Tracing is process-global; this test only checks the disarmed
        // path, so it must not arm it.
        let mut s = span("test.trace.fields");
        if !tracing_enabled() {
            s.field("k", "v");
            assert!(s.fields.is_empty());
        }
    }

    #[test]
    fn thread_ordinals_are_stable_and_distinct() {
        let here = thread_ordinal();
        assert_eq!(here, thread_ordinal());
        let other = std::thread::spawn(thread_ordinal).join().unwrap();
        assert_ne!(here, other);
    }
}

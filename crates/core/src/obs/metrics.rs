//! Process-global metrics registry: typed counters, high-water gauges,
//! and lock-free fixed-log-bucket histograms.
//!
//! Every metric is registered under a stable string name the first time
//! it is requested ([`counter`] / [`gauge`] / [`histogram`]) and lives
//! for the rest of the process. Handles are `&'static`, so hot paths pay
//! one registry lookup at initialization and plain relaxed atomics per
//! update afterwards. All update paths are wait-free atomic adds /
//! maxes, which makes the registry **concurrency-exact** under
//! [`crate::parallel_map`] / [`crate::supervised_map`]: a delta across a
//! parallel region equals the sum of the per-thread contributions.
//!
//! Telemetry facades elsewhere in the workspace (`lp_telemetry()` in
//! `abt-active`, `busy_lp_telemetry()` in `abt-busy`) are thin views
//! over these metrics — the registry is the single source of truth.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock, Weak};

/// A monotone event counter. Updates are single relaxed atomic adds, so
/// concurrent increments from a parallel fan-out are counted exactly.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current cumulative value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A high-water gauge: records the maximum value ever observed, counts
/// the strict raises of that maximum, and feeds every live
/// [`HighWaterWindow`] so callers can read an **exact** max over an
/// arbitrary region even though the cumulative cell never resets.
///
/// Two read paths, with different precision:
///
/// * [`Gauge::window`] — exact max-over-window. The window cell starts
///   at zero and every `record_max` call lands in it, so its value is
///   the true maximum recorded while the window was alive, regardless
///   of what the process-wide high water was beforehand.
/// * the (`max`, `raises`) snapshot pair — for pure snapshot-delta
///   consumers. If `raises` advanced across a region, the region set a
///   new process-wide high water and `max` *is* the exact region
///   maximum (the record that produced the final `max` happened inside
///   the region). If `raises` did not advance, the region's maximum is
///   unknown — it recorded nothing, or only values at or below the old
///   high water — and delta consumers report 0 rather than carrying a
///   stale process-wide value forward.
#[derive(Debug, Default)]
pub struct Gauge {
    max: AtomicU64,
    raises: AtomicU64,
    windows: RwLock<Vec<Weak<AtomicU64>>>,
}

impl Gauge {
    /// Records an observation: raises the cumulative high water (and the
    /// raise count, when strict) and folds `v` into every live window.
    pub fn record_max(&self, v: u64) {
        let mut cur = self.max.load(Ordering::Relaxed);
        while v > cur {
            match self
                .max
                .compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.raises.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Err(seen) => cur = seen,
            }
        }
        let windows = self.windows.read().expect("gauge window lock poisoned");
        for w in windows.iter() {
            if let Some(cell) = w.upgrade() {
                cell.fetch_max(v, Ordering::Relaxed);
            }
        }
    }

    /// Cumulative (process-lifetime) high water.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Number of strict raises of the cumulative high water.
    pub fn raises(&self) -> u64 {
        self.raises.load(Ordering::Relaxed)
    }

    /// Opens a high-water window over this gauge. The returned handle's
    /// [`HighWaterWindow::value`] is the exact maximum of every
    /// `record_max` observation made while the handle is alive (0 when
    /// none were). Dead windows are pruned lazily on the next `window`
    /// call.
    pub fn window(&self) -> HighWaterWindow {
        let cell = Arc::new(AtomicU64::new(0));
        let mut windows = self.windows.write().expect("gauge window lock poisoned");
        windows.retain(|w| w.strong_count() > 0);
        windows.push(Arc::downgrade(&cell));
        HighWaterWindow { cell }
    }
}

/// An open max-over-window region of a [`Gauge`] (see [`Gauge::window`]).
#[derive(Debug)]
pub struct HighWaterWindow {
    cell: Arc<AtomicU64>,
}

impl HighWaterWindow {
    /// Exact maximum recorded into the parent gauge since this window
    /// opened; 0 when nothing was recorded.
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Number of buckets of a [`Histogram`]: values 0–3 get exact unit
/// buckets, every later power-of-two octave is split into 4 linear
/// sub-buckets (≤ 25% relative bucket width), covering the full `u64`
/// range.
pub const HISTOGRAM_BUCKETS: usize = 252;

/// Bucket index of value `v` (see [`HISTOGRAM_BUCKETS`]).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < 4 {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros() as usize; // >= 2
        let sub = ((v >> (octave - 2)) & 3) as usize;
        4 * (octave - 1) + sub
    }
}

/// Inclusive upper edge of bucket `idx` — the deterministic
/// representative value percentile extraction reports.
pub fn bucket_hi(idx: usize) -> u64 {
    if idx < 4 {
        idx as u64
    } else {
        let octave = idx / 4 + 1;
        let sub = (idx % 4) as u64;
        let width = 1u64 << (octave - 2);
        let lo = (1u64 << octave) + sub * width;
        lo.saturating_add(width - 1)
    }
}

/// A lock-free fixed-log-bucket histogram. [`Histogram::record`] is one
/// relaxed atomic add into the value's bucket, so concurrent recordings
/// under a parallel fan-out are counted exactly; percentile extraction
/// ([`HistogramSnapshot::percentile`]) is a pure, deterministic function
/// of the bucket counts, reporting the inclusive upper edge of the
/// bucket holding the requested rank (≤ 25% relative quantization).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one observation of `v`.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the current bucket counts out as a snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]'s bucket counts. Counts are
/// cumulative and monotone; diff two snapshots with
/// [`HistogramSnapshot::delta`] to scope percentiles to a region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Bucket-wise `self − earlier`.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.counts[i] - earlier.counts[i]),
        }
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The raw bucket counts (index ↦ count; see [`HISTOGRAM_BUCKETS`]).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bucket-wise `self + other` — merges two histograms with the shared
    /// bucket layout into one population (e.g. active-side and busy-side
    /// solve latencies for a combined percentile).
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.counts[i] + other.counts[i]),
        }
    }

    /// Deterministic percentile extraction: the inclusive upper edge of
    /// the bucket containing rank `⌈q·count⌉` (0 when the histogram is
    /// empty). `q` is clamped to `[0, 1]`.
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_hi(i);
            }
        }
        unreachable!("rank {rank} exceeds total {total}")
    }
}

/// One registered metric (see [`render`]).
enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

fn registry() -> &'static Mutex<BTreeMap<&'static str, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Returns the process-global counter registered under `name`, creating
/// it on first use.
///
/// # Panics
///
/// If `name` is already registered as a different metric type.
pub fn counter(name: &'static str) -> &'static Counter {
    let got = {
        let mut reg = registry().lock().expect("metrics registry poisoned");
        match reg
            .entry(name)
            .or_insert_with(|| Metric::Counter(Box::leak(Box::default())))
        {
            Metric::Counter(c) => Some(*c),
            _ => None,
        }
        // The lock is released here so a type-mismatch panic below
        // cannot poison the registry for the rest of the process.
    };
    got.unwrap_or_else(|| panic!("metric {name:?} is not a counter"))
}

/// Returns the process-global gauge registered under `name`, creating it
/// on first use.
///
/// # Panics
///
/// If `name` is already registered as a different metric type.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let got = {
        let mut reg = registry().lock().expect("metrics registry poisoned");
        match reg
            .entry(name)
            .or_insert_with(|| Metric::Gauge(Box::leak(Box::default())))
        {
            Metric::Gauge(g) => Some(*g),
            _ => None,
        }
    };
    got.unwrap_or_else(|| panic!("metric {name:?} is not a gauge"))
}

/// Returns the process-global histogram registered under `name`, creating
/// it on first use.
///
/// # Panics
///
/// If `name` is already registered as a different metric type.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let got = {
        let mut reg = registry().lock().expect("metrics registry poisoned");
        match reg
            .entry(name)
            .or_insert_with(|| Metric::Histogram(Box::leak(Box::new(Histogram::new()))))
        {
            Metric::Histogram(h) => Some(*h),
            _ => None,
        }
    };
    got.unwrap_or_else(|| panic!("metric {name:?} is not a histogram"))
}

/// Renders every registered metric as `name value` lines (sorted by
/// name): counters as their cumulative count, gauges as
/// `name_max` / `name_raises`, histograms as `name_count` plus
/// deterministic `name_p50` / `name_p90` / `name_p99` extractions. This
/// is the plain-text exposition surface behind the CLI's `--metrics`
/// flag.
pub fn render() -> String {
    let reg = registry().lock().expect("metrics registry poisoned");
    let mut out = String::new();
    for (name, metric) in reg.iter() {
        match metric {
            Metric::Counter(c) => {
                out.push_str(&format!("{name} {}\n", c.get()));
            }
            Metric::Gauge(g) => {
                out.push_str(&format!("{name}_max {}\n", g.max()));
                out.push_str(&format!("{name}_raises {}\n", g.raises()));
            }
            Metric::Histogram(h) => {
                let snap = h.snapshot();
                out.push_str(&format!("{name}_count {}\n", snap.count()));
                for (label, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
                    out.push_str(&format!("{name}_{label} {}\n", snap.percentile(q)));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = counter("test.metrics.counter_accumulates");
        let before = c.get();
        c.inc();
        c.add(9);
        assert_eq!(c.get() - before, 10);
    }

    #[test]
    fn registry_returns_the_same_handle() {
        let a = counter("test.metrics.same_handle");
        let b = counter("test.metrics.same_handle");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    #[should_panic(expected = "is not a gauge")]
    fn type_mismatch_panics() {
        counter("test.metrics.type_mismatch");
        gauge("test.metrics.type_mismatch");
    }

    #[test]
    fn bucket_mapping_is_contiguous_and_monotone() {
        // Every value maps into a bucket whose upper edge is >= it, and
        // bucket upper edges are strictly increasing.
        for v in (0..4096u64).chain([u64::MAX / 2, u64::MAX - 1, u64::MAX]) {
            let idx = bucket_index(v);
            assert!(idx < HISTOGRAM_BUCKETS, "v={v} idx={idx}");
            assert!(bucket_hi(idx) >= v, "v={v} hi={}", bucket_hi(idx));
        }
        for idx in 1..HISTOGRAM_BUCKETS {
            assert!(bucket_hi(idx) > bucket_hi(idx - 1), "idx={idx}");
        }
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_hi(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_percentiles_are_deterministic_bucket_edges() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 4);
        // rank ceil(0.5*4)=2 -> the bucket holding the second value (2).
        assert_eq!(snap.percentile(0.50), 2);
        // rank 4 -> the bucket holding 100: octave 6, sub 1, hi = 111.
        assert_eq!(snap.percentile(0.99), bucket_hi(bucket_index(100)));
        assert_eq!(snap.percentile(0.0), 1);
        let empty = HistogramSnapshot {
            counts: std::array::from_fn(|_| 0),
        };
        assert_eq!(empty.percentile(0.99), 0);
        assert_eq!(snap.delta(&empty), snap);
    }

    #[test]
    fn gauge_windows_are_exact_over_their_lifetime() {
        let g = gauge("test.metrics.gauge_window");
        g.record_max(100);
        let w = g.window();
        assert_eq!(w.value(), 0, "a fresh window has seen nothing");
        g.record_max(7);
        // The cumulative high water keeps the stale 100; the window
        // reports the exact in-window maximum.
        assert_eq!(w.value(), 7);
        assert!(g.max() >= 100);
        let raises_before = g.raises();
        g.record_max(3);
        assert_eq!(g.raises(), raises_before, "3 raises nothing");
        assert_eq!(w.value(), 7);
    }

    #[test]
    fn gauge_raises_advance_only_on_strict_raises() {
        let g = gauge("test.metrics.gauge_raises");
        let r0 = g.raises();
        g.record_max(10);
        assert_eq!(g.raises(), r0 + 1);
        g.record_max(10);
        assert_eq!(g.raises(), r0 + 1);
        g.record_max(11);
        assert_eq!(g.raises(), r0 + 2);
    }
}

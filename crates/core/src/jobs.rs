//! Jobs: the common input object for both the active-time and busy-time
//! models.
//!
//! A job `j` has a release time `r_j`, a deadline `d_j` and a processing
//! length `p_j` with `r_j + p_j ≤ d_j`. In the **active-time** model these
//! are integral and the job occupies `p_j` (not necessarily consecutive)
//! unit slots inside its window. In the **busy-time** model the job runs
//! non-preemptively as the interval `[s_j, s_j + p_j)` for a chosen start
//! `s_j ∈ [r_j, d_j − p_j]`.

use crate::time::{Interval, Time};

/// Identifier of a job: its index in the owning [`crate::Instance`].
pub type JobId = usize;

/// A single job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Job {
    /// Release time `r_j`: the job cannot run before this.
    pub release: Time,
    /// Deadline `d_j`: the job must finish by this.
    pub deadline: Time,
    /// Processing length `p_j > 0`.
    pub length: i64,
}

impl Job {
    /// Creates a job; panics if parameters are inconsistent. Use
    /// [`Job::try_new`] for fallible construction.
    pub fn new(release: Time, deadline: Time, length: i64) -> Self {
        Job::try_new(release, deadline, length).expect("invalid job parameters")
    }

    /// Fallible constructor enforcing `p ≥ 1` and `r + p ≤ d`.
    pub fn try_new(release: Time, deadline: Time, length: i64) -> Option<Self> {
        if length < 1 || release.checked_add(length)? > deadline {
            return None;
        }
        Some(Job {
            release,
            deadline,
            length,
        })
    }

    /// Convenience constructor for an **interval job** (`d = r + p`,
    /// Definition 8): the job has no slack and must run as `[r, d)`.
    pub fn interval(release: Time, end: Time) -> Self {
        Job::new(release, end, end - release)
    }

    /// The job's window `[r_j, d_j)`.
    #[inline]
    pub fn window(&self) -> Interval {
        Interval::new(self.release, self.deadline)
    }

    /// Window length `d_j − r_j`.
    #[inline]
    pub fn window_len(&self) -> i64 {
        self.deadline - self.release
    }

    /// Scheduling slack `d_j − r_j − p_j` (0 for interval jobs).
    #[inline]
    pub fn slack(&self) -> i64 {
        self.deadline - self.release - self.length
    }

    /// Whether this is an interval job (`p_j = d_j − r_j`).
    #[inline]
    pub fn is_interval(&self) -> bool {
        self.slack() == 0
    }

    /// Latest feasible non-preemptive start time `d_j − p_j`.
    #[inline]
    pub fn latest_start(&self) -> Time {
        self.deadline - self.length
    }

    /// The run interval `[s, s + p_j)` for start time `s`; `None` if `s`
    /// violates the window.
    pub fn run_at(&self, start: Time) -> Option<Interval> {
        if start < self.release || start > self.latest_start() {
            return None;
        }
        Some(Interval::new(start, start + self.length))
    }

    /// For an interval job, its fixed run interval.
    pub fn fixed_interval(&self) -> Option<Interval> {
        if self.is_interval() {
            Some(self.window())
        } else {
            None
        }
    }

    /// Whether the job is *live* at time `t` in the busy-time sense:
    /// `t ∈ [r_j, d_j)` (Definition 11 uses this for interval jobs).
    #[inline]
    pub fn live_at(&self, t: Time) -> bool {
        self.release <= t && t < self.deadline
    }
}

impl std::fmt::Display for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "r={} d={} p={}",
            self.release, self.deadline, self.length
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_construction_and_accessors() {
        let j = Job::new(2, 10, 3);
        assert_eq!(j.window(), Interval::new(2, 10));
        assert_eq!(j.window_len(), 8);
        assert_eq!(j.slack(), 5);
        assert_eq!(j.latest_start(), 7);
        assert!(!j.is_interval());
    }

    #[test]
    fn try_new_rejects_bad_jobs() {
        assert!(Job::try_new(0, 5, 0).is_none());
        assert!(Job::try_new(0, 5, -1).is_none());
        assert!(Job::try_new(0, 5, 6).is_none());
        assert!(Job::try_new(3, 3, 1).is_none());
        assert!(Job::try_new(0, 5, 5).is_some());
        assert!(Job::try_new(i64::MAX - 1, i64::MAX, 2).is_none()); // overflow-safe
    }

    #[test]
    fn interval_jobs() {
        let j = Job::interval(4, 9);
        assert!(j.is_interval());
        assert_eq!(j.length, 5);
        assert_eq!(j.fixed_interval(), Some(Interval::new(4, 9)));
        assert_eq!(Job::new(0, 10, 5).fixed_interval(), None);
    }

    #[test]
    fn run_at_respects_window() {
        let j = Job::new(2, 10, 3);
        assert_eq!(j.run_at(2), Some(Interval::new(2, 5)));
        assert_eq!(j.run_at(7), Some(Interval::new(7, 10)));
        assert_eq!(j.run_at(1), None);
        assert_eq!(j.run_at(8), None);
    }

    #[test]
    fn liveness() {
        let j = Job::new(2, 10, 3);
        assert!(!j.live_at(1));
        assert!(j.live_at(2));
        assert!(j.live_at(9));
        assert!(!j.live_at(10));
    }
}

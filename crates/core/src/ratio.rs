//! Exact fractions over `i128`, used for approximation-ratio bookkeeping.
//!
//! Tests and the experiment harness must compare quantities like
//! `cost ≤ 3 · OPT` or report `cost/OPT → 3` exactly; doing this in `f64`
//! would make tight gadget assertions flaky. All costs in the workspace are
//! `i64` ticks, so ratios fit comfortably in `i128` cross-multiplication.

use std::cmp::Ordering;
use std::fmt;

/// An exact non-negative fraction `num/den` with `den > 0`, normalized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Frac {
    num: i128,
    den: i128,
}

impl Frac {
    /// Creates `num/den`; panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "zero denominator");
        let (mut num, mut den) = if den < 0 { (-num, -den) } else { (num, den) };
        let g = gcd(num.unsigned_abs(), den.unsigned_abs());
        if g > 1 {
            num /= g as i128;
            den /= g as i128;
        }
        Frac { num, den }
    }

    /// The ratio `a/b` of two integer costs.
    pub fn ratio(a: i64, b: i64) -> Self {
        Frac::new(a as i128, b as i128)
    }

    /// Numerator (after normalization).
    pub fn num(&self) -> i128 {
        self.num
    }

    /// Denominator (after normalization, always positive).
    pub fn den(&self) -> i128 {
        self.den
    }

    /// Integer `n` as a fraction.
    pub fn int(n: i64) -> Self {
        Frac {
            num: n as i128,
            den: 1,
        }
    }

    /// Lossy conversion for reporting.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// `self + other`.
    pub fn add(&self, other: Frac) -> Frac {
        Frac::new(
            self.num * other.den + other.num * self.den,
            self.den * other.den,
        )
    }

    /// `self * other`.
    pub fn mul(&self, other: Frac) -> Frac {
        Frac::new(self.num * other.num, self.den * other.den)
    }

    /// Whether `self ≤ k · other` exactly.
    pub fn le_times(&self, k: i64, other: Frac) -> bool {
        // self.num/self.den ≤ k * other.num/other.den
        self.num * other.den <= k as i128 * other.num * self.den
    }
}

/// Whether `a ≤ factor · b` exactly, for integer costs (the standard
/// approximation-guarantee check, e.g. `minimal ≤ 3·OPT`).
pub fn within_factor(a: i64, factor: i64, b: i64) -> bool {
    (a as i128) <= (factor as i128) * (b as i128)
}

/// Whether `a · q ≤ p · b` exactly, i.e. `a ≤ (p/q) · b` — for fractional
/// guarantee factors such as `2g/(g+1)`.
pub fn within_frac_factor(a: i64, p: i64, q: i64, b: i64) -> bool {
    (a as i128) * (q as i128) <= (p as i128) * (b as i128)
}

impl PartialOrd for Frac {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Frac {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl fmt::Display for Frac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Frac::new(6, 4), Frac::new(3, 2));
        assert_eq!(Frac::new(-6, -4), Frac::new(3, 2));
        assert_eq!(Frac::new(6, -4), Frac::new(-3, 2));
        assert_eq!(Frac::new(0, 7), Frac::new(0, 1));
    }

    #[test]
    fn ordering_and_arith() {
        assert!(Frac::new(2, 3) < Frac::new(3, 4));
        assert_eq!(Frac::new(1, 2).add(Frac::new(1, 3)), Frac::new(5, 6));
        assert_eq!(Frac::new(2, 3).mul(Frac::new(3, 4)), Frac::new(1, 2));
        assert_eq!(Frac::int(2), Frac::new(4, 2));
    }

    #[test]
    fn factor_checks() {
        assert!(within_factor(29, 3, 10));
        assert!(within_factor(30, 3, 10));
        assert!(!within_factor(31, 3, 10));
        // 2g/(g+1) with g=3 is 3/2: 15 ≤ (3/2)·10
        assert!(within_frac_factor(15, 3, 2, 10));
        assert!(!within_frac_factor(16, 3, 2, 10));
    }

    #[test]
    fn le_times() {
        assert!(Frac::new(5, 2).le_times(3, Frac::new(5, 6)));
        assert!(!Frac::new(5, 2).le_times(2, Frac::new(5, 6)));
    }
}

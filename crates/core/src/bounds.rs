//! Lower bounds on optimal cost, for both models.
//!
//! Busy time (Observations 2–4): the **mass bound** `ℓ(J)/g`, the **span
//! bound** `OPT_∞(J)`, and — for placed/interval jobs — the strictly
//! stronger **demand-profile bound** `Σ_i ⌈|A(I_i)|/g⌉·ℓ(I_i)`.
//!
//! Active time: `⌈P/g⌉` (every active slot holds at most `g` units) and the
//! span of the minimal slot cover required by window containment.

use crate::instance::Instance;
use crate::profile::DemandProfile;

/// Lower bounds for the busy-time objective on an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusyBounds {
    /// `⌈ℓ(J)/g⌉` (Observation 2, rounded up — costs are integer ticks).
    pub mass: i64,
    /// For interval instances: the span `Sp(J) = OPT_∞` (Observation 3).
    /// For flexible instances this field is the span of the *window union*,
    /// which is a valid but weaker bound; use the span solvers in `abt-busy`
    /// for the true `OPT_∞`.
    pub span: i64,
    /// For interval instances: the demand-profile bound (Observation 4).
    /// 0 for flexible instances (profile undefined before placement).
    pub profile: i64,
}

impl BusyBounds {
    /// The best (largest) of the bounds.
    pub fn best(&self) -> i64 {
        self.mass.max(self.span).max(self.profile)
    }
}

/// Computes the busy-time lower bounds for `inst`.
pub fn busy_lower_bounds(inst: &Instance) -> BusyBounds {
    let g = inst.g() as i64;
    let mass = div_ceil_i64(inst.total_length(), g);
    if inst.is_interval_instance() {
        let ivs: Vec<_> = inst.jobs().iter().map(|j| j.window()).collect();
        let profile = DemandProfile::new(&ivs).cost(inst.g());
        let span = inst.window_union().measure();
        BusyBounds {
            mass,
            span,
            profile,
        }
    } else {
        // Window union over-covers what jobs can occupy, but every busy
        // instant lies inside some window, and OPT_∞ ≥ ... is NOT implied by
        // the window union; the only always-valid cheap bounds here are mass
        // and the largest single job length.
        let longest = inst.jobs().iter().map(|j| j.length).max().unwrap_or(0);
        BusyBounds {
            mass,
            span: longest,
            profile: 0,
        }
    }
}

/// Lower bound for the active-time objective: `max(⌈P/g⌉, c)` where `c` is
/// the interval-covering bound — for every window interval `[a, b]` of
/// slots, at least `⌈(Σ of p_j over jobs with window ⊆ [a,b])/g⌉` slots of
/// `[a, b]` must be active.
pub fn active_lower_bound(inst: &Instance) -> i64 {
    let g = inst.g() as i64;
    let mut best = div_ceil_i64(inst.total_length(), g);
    // Covering bound over all O(n²) window-endpoint pairs.
    let mut lefts: Vec<i64> = inst.jobs().iter().map(|j| j.release).collect();
    let mut rights: Vec<i64> = inst.jobs().iter().map(|j| j.deadline).collect();
    lefts.sort_unstable();
    lefts.dedup();
    rights.sort_unstable();
    rights.dedup();
    for &a in &lefts {
        for &b in &rights {
            if b <= a {
                continue;
            }
            let inside: i64 = inst
                .jobs()
                .iter()
                .filter(|j| j.release >= a && j.deadline <= b)
                .map(|j| j.length)
                .sum();
            if inside > 0 {
                best = best.max(div_ceil_i64(inside, g));
            }
        }
    }
    best
}

#[inline]
fn div_ceil_i64(a: i64, b: i64) -> i64 {
    (a + b - 1).div_euclid(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::Job;

    #[test]
    fn mass_bound_can_be_weak() {
        // g disjoint unit interval jobs (the paper's example after Obs. 3):
        // mass bound is 1 (with g = 4), optimal is 4.
        let g = 4usize;
        let jobs: Vec<Job> = (0..g as i64)
            .map(|i| Job::interval(2 * i, 2 * i + 1))
            .collect();
        let inst = Instance::new(jobs, g).unwrap();
        let b = busy_lower_bounds(&inst);
        assert_eq!(b.mass, 1);
        assert_eq!(b.span, g as i64); // span bound is tight here
        assert_eq!(b.profile, g as i64);
    }

    #[test]
    fn span_bound_can_be_weak() {
        // g² identical unit interval jobs: span bound is 1, optimal is g.
        let g = 4usize;
        let jobs: Vec<Job> = (0..g * g).map(|_| Job::interval(0, 1)).collect();
        let inst = Instance::new(jobs, g).unwrap();
        let b = busy_lower_bounds(&inst);
        assert_eq!(b.span, 1);
        assert_eq!(b.mass, g as i64); // mass bound is tight here
        assert_eq!(b.profile, g as i64); // profile bound matches
        assert_eq!(b.best(), g as i64);
    }

    #[test]
    fn profile_dominates_both_weak_bounds() {
        // Mixed instance where profile > max(mass, span).
        let jobs = vec![
            Job::interval(0, 2),
            Job::interval(0, 2),
            Job::interval(0, 2),
            Job::interval(10, 11),
        ];
        let inst = Instance::new(jobs, 2).unwrap();
        let b = busy_lower_bounds(&inst);
        assert_eq!(b.mass, 4); // ceil(7/2)
        assert_eq!(b.span, 3);
        assert_eq!(b.profile, 2 * 2 + 1); // ceil(3/2)*2 + 1
        assert_eq!(b.best(), 5);
    }

    #[test]
    fn active_bound_combines_mass_and_covering() {
        // 3 unit jobs all confined to slots {1,2} with g = 1: covering bound 3... but
        // only 2 slots exist so that instance is infeasible; use g=2:
        // ceil(3/2) = 2 from the window [0,2].
        let inst = Instance::from_triples([(0, 2, 1), (0, 2, 1), (0, 2, 1), (0, 9, 1)], 2).unwrap();
        assert_eq!(active_lower_bound(&inst), 2);
        // Mass bound dominates when windows are loose.
        let inst2 = Instance::from_triples([(0, 100, 30), (0, 100, 30)], 1).unwrap();
        assert_eq!(active_lower_bound(&inst2), 60);
    }
}

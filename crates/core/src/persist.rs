//! Crash-safe persistence substrate: a versioned, checksummed binary
//! codec plus atomic file replacement, an append-only journal, and the
//! state-directory lifecycle (recovery-attempt accounting and the
//! restart-storm quarantine).
//!
//! # The reject-don't-trust invariant
//!
//! Everything above this module (snapshot pools, component cache blocks,
//! quarantine keys — see `abt-active`'s store) treats persisted bytes as
//! an **untrusted hint**: any drift — wrong magic, wrong format version,
//! wrong frame kind, checksum mismatch, or a payload that decodes to an
//! out-of-shape value — is a [`PersistError`] that the caller converts to
//! [`SolveFailure::StateCorrupt`](crate::SolveFailure) and absorbs by
//! discarding the state and rebuilding cold. Persistence can therefore
//! cost warm capital but never correctness: no decoded value is acted on
//! before it re-passes the same validation a freshly computed one would.
//!
//! # Frame format
//!
//! Every state file is one **frame**:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "ABTS"
//! 4       2     format version (little-endian u16)
//! 6       2     frame kind (caller-chosen u16; e.g. checkpoint vs journal)
//! 8       8     payload length (little-endian u64)
//! 16      len   payload
//! 16+len  8     FNV-1a 64 checksum of bytes [0, 16+len)
//! ```
//!
//! [`seal`] produces a frame, [`open_frame`] validates one. The payload
//! itself is written with [`Enc`] and read back with [`Dec`] — a
//! little-endian, length-prefixed primitive codec whose decoder never
//! panics and never allocates more than the input could justify (every
//! count is capped by the bytes remaining).
//!
//! # Durability protocol
//!
//! [`write_atomic`] writes `<file>.tmp`, fsyncs it, renames it over the
//! target, and fsyncs the directory — a crash at any point leaves either
//! the old frame or the new one, never a torn hybrid. The [`Journal`] is
//! the complementary append-only half: records are individually
//! checksummed and fsynced, and [`Journal::replay`] stops cleanly at a
//! torn tail (the expected shape of a crash mid-append) while reporting a
//! mid-stream checksum mismatch as corruption.
//!
//! # Fault injection
//!
//! Under the `fault-injection` feature the two I/O failpoints of
//! [`crate::faultinject`] fire here: `torn_write` truncates a just-written
//! state file (modelling a lying disk that acknowledged a partial write),
//! and `corrupt_read` flips one payload byte on load (bit rot). Both must
//! surface as [`PersistError`]s on the next load — the fault-injection
//! suite asserts that every injected corruption demotes to a cold rebuild
//! with bit-identical objectives.

use crate::faultinject;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// First bytes of every state file.
pub const MAGIC: [u8; 4] = *b"ABTS";

/// Current on-disk format version. Bump on any layout change: old files
/// then fail [`open_frame`] with [`PersistError::BadVersion`] and are
/// rebuilt cold, which is always safe.
pub const FORMAT_VERSION: u16 = 1;

/// Size of the fixed frame header (magic + version + kind + length).
const HEADER_LEN: usize = 16;

/// Size of the trailing checksum.
const TRAILER_LEN: usize = 8;

/// Why persisted bytes were rejected. Every variant is terminal for the
/// file that produced it: callers discard the state and rebuild cold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// An operating-system I/O error (message preserved).
    Io(String),
    /// The input ended before a declared field.
    Truncated {
        /// Bytes the decoder needed.
        need: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    BadVersion {
        /// Version found in the header.
        found: u16,
        /// Version this build writes and reads.
        expected: u16,
    },
    /// The frame kind does not match what the caller expected (e.g. a
    /// journal file where a checkpoint should be).
    BadKind {
        /// Kind tag found in the header.
        found: u16,
        /// Kind tag the caller expected.
        expected: u16,
    },
    /// The trailing FNV-1a checksum does not match the frame bytes.
    ChecksumMismatch,
    /// The payload decoded to a structurally invalid value (bad tag,
    /// impossible count, shape drift, non-UTF-8 string, ...).
    Malformed(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(m) => write!(f, "i/o error: {m}"),
            PersistError::Truncated { need, have } => {
                write!(f, "truncated: needed {need} bytes, {have} remain")
            }
            PersistError::BadMagic => write!(f, "bad magic (not an abt state file)"),
            PersistError::BadVersion { found, expected } => {
                write!(f, "format version {found} (this build reads {expected})")
            }
            PersistError::BadKind { found, expected } => {
                write!(f, "frame kind {found} where kind {expected} was expected")
            }
            PersistError::ChecksumMismatch => write!(f, "checksum mismatch"),
            PersistError::Malformed(m) => write!(f, "malformed payload: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> PersistError {
        PersistError::Io(e.to_string())
    }
}

impl From<PersistError> for crate::SolveFailure {
    fn from(e: PersistError) -> crate::SolveFailure {
        crate::SolveFailure::StateCorrupt(e.to_string())
    }
}

/// FNV-1a 64-bit checksum — the same hash family `bench_record` and the
/// workload generators use; collision resistance is irrelevant here (the
/// threat model is accidental corruption, not adversaries).
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Little-endian primitive encoder. All multi-byte integers are
/// little-endian; counts and lengths are `u64`; strings are
/// length-prefixed UTF-8.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i128`.
    pub fn put_i128(&mut self, v: i128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a little-endian `u64` (the on-disk format is
    /// width-independent).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a bool as one byte (`0`/`1`).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Little-endian primitive decoder over a borrowed byte slice. Every
/// accessor returns a typed [`PersistError`] instead of panicking, and
/// [`Dec::count`] caps declared element counts by the bytes remaining, so
/// arbitrarily mutated or truncated input can neither panic the decoder
/// nor trick it into an absurd allocation.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    /// Fails with [`PersistError::Malformed`] unless every byte was
    /// consumed — trailing garbage means the payload is not what the
    /// encoder wrote.
    pub fn finish(&self) -> Result<(), PersistError> {
        if self.is_done() {
            Ok(())
        } else {
            Err(PersistError::Malformed(format!(
                "{} trailing bytes",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, PersistError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, PersistError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, PersistError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, PersistError> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Reads a little-endian `i128`.
    pub fn i128(&mut self) -> Result<i128, PersistError> {
        let b = self.take(16)?;
        Ok(i128::from_le_bytes(b.try_into().expect("16-byte slice")))
    }

    /// Reads a `usize` written by [`Enc::put_usize`]; fails on values that
    /// do not fit the platform's `usize`.
    pub fn usize(&mut self) -> Result<usize, PersistError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| PersistError::Malformed(format!("usize overflow: {v}")))
    }

    /// Reads a bool; any byte other than `0`/`1` is malformed.
    pub fn bool(&mut self) -> Result<bool, PersistError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(PersistError::Malformed(format!("bad bool byte {b}"))),
        }
    }

    /// Reads an element count for a collection whose elements occupy at
    /// least `min_elem_bytes` each, rejecting counts the remaining input
    /// could not possibly hold — the guard that makes `Vec::with_capacity`
    /// on decoded counts safe against corrupted length fields.
    pub fn count(&mut self, min_elem_bytes: usize) -> Result<usize, PersistError> {
        let n = self.usize()?;
        let cap = self.remaining() / min_elem_bytes.max(1);
        if n > cap {
            return Err(PersistError::Malformed(format!(
                "count {n} exceeds what {} remaining bytes can hold",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string written by [`Enc::put_str`].
    pub fn str_(&mut self) -> Result<String, PersistError> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PersistError::Malformed("non-UTF-8 string".into()))
    }
}

/// Wraps `payload` in a checksummed frame of the given `kind` (see the
/// module docs for the layout).
pub fn seal(kind: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = checksum(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Validates a frame (magic, version, expected `kind`, declared length,
/// checksum) and returns its payload slice. Any drift is a typed
/// [`PersistError`] — the caller rebuilds cold.
pub fn open_frame(kind: u16, bytes: &[u8]) -> Result<&[u8], PersistError> {
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(PersistError::Truncated {
            need: HEADER_LEN + TRAILER_LEN,
            have: bytes.len(),
        });
    }
    if bytes[..4] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != FORMAT_VERSION {
        return Err(PersistError::BadVersion {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let found_kind = u16::from_le_bytes([bytes[6], bytes[7]]);
    if found_kind != kind {
        return Err(PersistError::BadKind {
            found: found_kind,
            expected: kind,
        });
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
    let expected_total = (HEADER_LEN + TRAILER_LEN) as u64 + len;
    if expected_total != bytes.len() as u64 {
        return Err(PersistError::Truncated {
            need: expected_total as usize,
            have: bytes.len(),
        });
    }
    let body = &bytes[..bytes.len() - TRAILER_LEN];
    let stored = u64::from_le_bytes(
        bytes[bytes.len() - TRAILER_LEN..]
            .try_into()
            .expect("8-byte slice"),
    );
    if checksum(body) != stored {
        return Err(PersistError::ChecksumMismatch);
    }
    Ok(&body[HEADER_LEN..])
}

/// Best-effort fsync of a file's parent directory (makes the rename of
/// [`write_atomic`] itself durable). Errors are swallowed: some
/// filesystems refuse directory fsyncs, and the worst case is the
/// pre-rename state after a power cut — exactly what the recovery path
/// already handles.
fn sync_parent_dir(path: &Path) {
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

/// Atomically replaces `path` with a sealed frame of `kind` around
/// `payload`: write `<path>.tmp`, fsync, rename over `path`, fsync the
/// directory. A crash at any point leaves the old frame or the new one.
///
/// The `torn_write` failpoint fires after the rename and truncates the
/// final file — modelling a disk that acknowledged a write it did not
/// complete, the failure mode the atomic protocol cannot rule out. The
/// torn frame fails validation on the next load.
pub fn write_atomic(path: &Path, kind: u16, payload: &[u8]) -> Result<(), PersistError> {
    let framed = seal(kind, payload);
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&framed)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    sync_parent_dir(path);
    if faultinject::io_fault("torn_write") == Some(faultinject::IoFault::TornWrite) {
        let f = fs::OpenOptions::new().write(true).open(path)?;
        f.set_len((framed.len() / 2) as u64)?;
    }
    Ok(())
}

/// Reads and validates the frame at `path`, returning its payload.
/// `Ok(None)` when the file does not exist (a fresh state dir, not an
/// error); every other deviation is a typed [`PersistError`].
///
/// The `corrupt_read` failpoint flips one mid-file byte before
/// validation — modelling bit rot, which the checksum must catch.
pub fn read_frame(path: &Path, kind: u16) -> Result<Option<Vec<u8>>, PersistError> {
    let mut bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    if faultinject::io_fault("corrupt_read") == Some(faultinject::IoFault::CorruptRead)
        && !bytes.is_empty()
    {
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
    }
    Ok(Some(open_frame(kind, &bytes)?.to_vec()))
}

/// Append-only write-ahead journal. The file starts with a bare frame
/// header (magic, version, kind, zero length — no trailing checksum,
/// since the file grows); each appended record is
/// `u32 payload-length · u64 FNV-1a of the payload · payload`, fsynced.
pub struct Journal {
    file: fs::File,
    kind: u16,
}

/// What [`Journal::replay`] recovered.
pub struct JournalReplay {
    /// The record payloads, in append order, up to the first torn record.
    pub records: Vec<Vec<u8>>,
    /// Whether a torn tail was dropped (a partial final record — the
    /// expected shape of a crash mid-append, not corruption).
    pub torn_tail: bool,
}

impl Journal {
    fn header(kind: u16) -> [u8; HEADER_LEN] {
        let mut h = [0u8; HEADER_LEN];
        h[..4].copy_from_slice(&MAGIC);
        h[4..6].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        h[6..8].copy_from_slice(&kind.to_le_bytes());
        // Length stays zero: journals grow; records are self-delimiting.
        h
    }

    /// Creates (or truncates) the journal at `path`.
    pub fn create(path: &Path, kind: u16) -> Result<Journal, PersistError> {
        let mut file = fs::File::create(path)?;
        file.write_all(&Journal::header(kind))?;
        file.sync_all()?;
        sync_parent_dir(path);
        Ok(Journal { file, kind })
    }

    /// Opens the journal at `path` for appending, creating it when
    /// missing. The existing header must validate; a corrupt header is a
    /// [`PersistError`] (the caller discards the journal).
    pub fn open_append(path: &Path, kind: u16) -> Result<Journal, PersistError> {
        match fs::read(path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Journal::create(path, kind),
            Err(e) => Err(e.into()),
            Ok(bytes) => {
                Journal::check_header(kind, &bytes)?;
                let file = fs::OpenOptions::new().append(true).open(path)?;
                Ok(Journal { file, kind })
            }
        }
    }

    fn check_header(kind: u16, bytes: &[u8]) -> Result<(), PersistError> {
        if bytes.len() < HEADER_LEN {
            return Err(PersistError::Truncated {
                need: HEADER_LEN,
                have: bytes.len(),
            });
        }
        if bytes[..4] != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != FORMAT_VERSION {
            return Err(PersistError::BadVersion {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let found_kind = u16::from_le_bytes([bytes[6], bytes[7]]);
        if found_kind != kind {
            return Err(PersistError::BadKind {
                found: found_kind,
                expected: kind,
            });
        }
        Ok(())
    }

    /// Appends one record and fsyncs it — the WAL discipline: the record
    /// is durable before the in-memory mutation it describes is acted on.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), PersistError> {
        let mut rec = Vec::with_capacity(12 + payload.len());
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&checksum(payload).to_le_bytes());
        rec.extend_from_slice(payload);
        self.file.write_all(&rec)?;
        self.file.sync_data()?;
        Ok(())
    }

    /// The frame kind this journal was opened with.
    pub fn kind(&self) -> u16 {
        self.kind
    }

    /// Replays the journal at `path`. `Ok(None)` when the file does not
    /// exist. A partial final record is a torn tail (dropped, flagged,
    /// not an error); a mid-stream checksum mismatch or a bad header is
    /// corruption and fails the whole replay.
    ///
    /// The `corrupt_read` failpoint flips one mid-file byte before
    /// parsing, like [`read_frame`].
    pub fn replay(path: &Path, kind: u16) -> Result<Option<JournalReplay>, PersistError> {
        let mut bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        if faultinject::io_fault("corrupt_read") == Some(faultinject::IoFault::CorruptRead)
            && bytes.len() > HEADER_LEN
        {
            // Flip a byte past the header: header corruption is the less
            // interesting failure (whole-journal reject), record corruption
            // exercises the mid-stream checksum path.
            let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
            bytes[mid] ^= 0x40;
        }
        Journal::check_header(kind, &bytes)?;
        let mut records = Vec::new();
        let mut pos = HEADER_LEN;
        let mut torn_tail = false;
        while pos < bytes.len() {
            if bytes.len() - pos < 12 {
                torn_tail = true;
                break;
            }
            let len =
                u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4-byte slice")) as usize;
            let stored =
                u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8-byte slice"));
            if bytes.len() - pos - 12 < len {
                torn_tail = true;
                break;
            }
            let payload = &bytes[pos + 12..pos + 12 + len];
            if checksum(payload) != stored {
                // A full-length record with a wrong checksum is bit rot,
                // not a crash artifact: fail the replay.
                return Err(PersistError::ChecksumMismatch);
            }
            records.push(payload.to_vec());
            pos += 12 + len;
        }
        Ok(Some(JournalReplay { records, torn_tail }))
    }
}

/// Name of the recovery-attempt counter file inside a state directory.
const ATTEMPTS_FILE: &str = "recovery.attempts";

/// A solver state directory: path bookkeeping, the recovery-attempt
/// counter behind the restart-storm guard, and the quarantine move-aside.
///
/// The attempt counter is deliberately plain text (not framed): it must
/// survive — and be inspectable — precisely when the framed files are the
/// problem.
pub struct StateDir {
    root: PathBuf,
}

impl StateDir {
    /// Opens (creating if needed) the state directory at `root`.
    pub fn open(root: impl AsRef<Path>) -> Result<StateDir, PersistError> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(StateDir { root })
    }

    /// The directory path.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of a file inside the directory.
    pub fn file(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    /// The current recovery-attempt count (0 when the counter file is
    /// missing or unreadable — an unreadable counter must not block
    /// recovery, it only weakens the storm guard by one cycle).
    pub fn recovery_attempts(&self) -> u32 {
        fs::read_to_string(self.file(ATTEMPTS_FILE))
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0)
    }

    /// Increments and persists the recovery-attempt counter, returning
    /// the new value. Called at the *start* of recovery; a recovery that
    /// completes calls [`StateDir::clear_recovery_attempts`], so a
    /// counter that keeps climbing means recovery itself is crashing —
    /// the restart storm the guard exists for.
    pub fn bump_recovery_attempts(&self) -> Result<u32, PersistError> {
        let next = self.recovery_attempts() + 1;
        // Plain (non-atomic) write: a torn counter reads as 0, which only
        // grants the storm guard one extra cycle.
        fs::write(self.file(ATTEMPTS_FILE), format!("{next}\n"))?;
        Ok(next)
    }

    /// Removes the recovery-attempt counter (recovery completed).
    pub fn clear_recovery_attempts(&self) {
        let _ = fs::remove_file(self.file(ATTEMPTS_FILE));
    }

    /// Moves the named files (those that exist) into a fresh
    /// `quarantined-N` subdirectory and returns its path — the
    /// restart-storm guard's move-aside: the state is preserved for
    /// offline inspection, the directory is clean for a cold start, and
    /// the process never crash-loops on a poisoned file.
    pub fn quarantine(&self, names: &[&str]) -> Result<PathBuf, PersistError> {
        let dir = (0u32..)
            .map(|n| self.root.join(format!("quarantined-{n}")))
            .find(|p| !p.exists())
            .expect("some quarantine index is free");
        fs::create_dir_all(&dir)?;
        for name in names {
            let src = self.file(name);
            if src.exists() {
                fs::rename(&src, dir.join(name))?;
            }
        }
        self.clear_recovery_attempts();
        Ok(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("abt-persist-{tag}-{}-{n}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn enc_dec_roundtrip() {
        let mut e = Enc::new();
        e.put_u8(7);
        e.put_u16(1234);
        e.put_u32(u32::MAX);
        e.put_u64(u64::MAX - 1);
        e.put_i64(-42);
        e.put_i128(-(1i128 << 100));
        e.put_usize(99);
        e.put_bool(true);
        e.put_str("héllo");
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 1234);
        assert_eq!(d.u32().unwrap(), u32::MAX);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.i128().unwrap(), -(1i128 << 100));
        assert_eq!(d.usize().unwrap(), 99);
        assert!(d.bool().unwrap());
        assert_eq!(d.str_().unwrap(), "héllo");
        d.finish().unwrap();
    }

    #[test]
    fn dec_rejects_truncation_bad_bools_and_greedy_counts() {
        let mut d = Dec::new(&[1, 2]);
        assert!(matches!(d.u64(), Err(PersistError::Truncated { .. })));
        let mut d = Dec::new(&[7]);
        assert!(matches!(d.bool(), Err(PersistError::Malformed(_))));
        // A count field claiming more elements than the input holds.
        let mut e = Enc::new();
        e.put_usize(1_000_000);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(matches!(d.count(8), Err(PersistError::Malformed(_))));
        // Trailing garbage is rejected by finish().
        let d = Dec::new(&[0]);
        assert!(d.finish().is_err());
    }

    #[test]
    fn frame_roundtrip_and_rejections() {
        let framed = seal(3, b"payload");
        assert_eq!(open_frame(3, &framed).unwrap(), b"payload");
        // Wrong kind.
        assert!(matches!(
            open_frame(4, &framed),
            Err(PersistError::BadKind {
                found: 3,
                expected: 4
            })
        ));
        // Any single flipped payload byte breaks the checksum.
        let mut bad = framed.clone();
        bad[HEADER_LEN + 2] ^= 1;
        assert!(matches!(
            open_frame(3, &bad),
            Err(PersistError::ChecksumMismatch)
        ));
        // Truncation at every prefix is a typed reject, never a panic.
        for cut in 0..framed.len() {
            assert!(open_frame(3, &framed[..cut]).is_err());
        }
        // Wrong magic and wrong version.
        let mut bad = framed.clone();
        bad[0] = b'X';
        assert!(matches!(open_frame(3, &bad), Err(PersistError::BadMagic)));
        let mut bad = framed;
        bad[4] = FORMAT_VERSION as u8 + 1;
        assert!(matches!(
            open_frame(3, &bad),
            Err(PersistError::BadVersion { .. })
        ));
    }

    #[test]
    fn write_atomic_read_frame_roundtrip() {
        let dir = tmpdir("atomic");
        let path = dir.join("state.abt");
        assert_eq!(read_frame(&path, 1).unwrap(), None, "missing file is None");
        write_atomic(&path, 1, b"hello").unwrap();
        assert_eq!(read_frame(&path, 1).unwrap().unwrap(), b"hello");
        // Overwrite is atomic and leaves no .tmp behind.
        write_atomic(&path, 1, b"world").unwrap();
        assert_eq!(read_frame(&path, 1).unwrap().unwrap(), b"world");
        assert!(!dir.join("state.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_append_replay_and_torn_tail() {
        let dir = tmpdir("journal");
        let path = dir.join("journal.abt");
        assert!(Journal::replay(&path, 2).unwrap().is_none());
        let mut j = Journal::create(&path, 2).unwrap();
        j.append(b"one").unwrap();
        j.append(b"two").unwrap();
        drop(j);
        // Re-open for append, like a restarted process.
        let mut j = Journal::open_append(&path, 2).unwrap();
        j.append(b"three").unwrap();
        drop(j);
        let rep = Journal::replay(&path, 2).unwrap().unwrap();
        assert_eq!(
            rep.records,
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
        );
        assert!(!rep.torn_tail);
        // Tear the tail mid-record: replay keeps the durable prefix.
        let len = fs::metadata(&path).unwrap().len();
        let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 2).unwrap();
        drop(f);
        let rep = Journal::replay(&path, 2).unwrap().unwrap();
        assert_eq!(rep.records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(rep.torn_tail);
        // Mid-stream bit rot (not a tear) fails the whole replay.
        let mut bytes = fs::read(&path).unwrap();
        let mid = HEADER_LEN + 12 + 1; // inside record "one"'s payload
        bytes[mid] ^= 1;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Journal::replay(&path, 2),
            Err(PersistError::ChecksumMismatch)
        ));
        // Wrong kind on open_append is rejected too.
        assert!(Journal::open_append(&path, 9).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn statedir_attempts_and_quarantine() {
        let dir = tmpdir("statedir");
        let sd = StateDir::open(&dir).unwrap();
        assert_eq!(sd.recovery_attempts(), 0);
        assert_eq!(sd.bump_recovery_attempts().unwrap(), 1);
        assert_eq!(sd.bump_recovery_attempts().unwrap(), 2);
        assert_eq!(sd.recovery_attempts(), 2);
        sd.clear_recovery_attempts();
        assert_eq!(sd.recovery_attempts(), 0);
        // Quarantine moves the named files aside and resets the counter.
        fs::write(sd.file("checkpoint.abt"), b"x").unwrap();
        fs::write(sd.file("journal.abt"), b"y").unwrap();
        sd.bump_recovery_attempts().unwrap();
        let q = sd
            .quarantine(&["checkpoint.abt", "journal.abt", "absent.abt"])
            .unwrap();
        assert!(q.join("checkpoint.abt").exists());
        assert!(q.join("journal.abt").exists());
        assert!(!sd.file("checkpoint.abt").exists());
        assert_eq!(sd.recovery_attempts(), 0);
        // A second quarantine lands in a fresh numbered dir.
        fs::write(sd.file("checkpoint.abt"), b"z").unwrap();
        let q2 = sd.quarantine(&["checkpoint.abt"]).unwrap();
        assert_ne!(q, q2);
        fs::remove_dir_all(&dir).unwrap();
    }
}

//! Schedules for the **busy time** model (§4 of the paper).
//!
//! Jobs are partitioned into *bundles*; each bundle runs on its own machine,
//! which may process at most `g` jobs simultaneously. Each job runs
//! non-preemptively as `[s_j, s_j + p_j)`. A machine's busy time is the
//! measure of the union of its jobs' run intervals (`Sp` of the bundle),
//! and the schedule's cost is the sum over machines.

use crate::error::{Error, Result};
use crate::instance::Instance;
use crate::jobs::JobId;
use crate::time::{Interval, IntervalSet, Time};

/// One machine's worth of jobs: `(job id, start time)` pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bundle {
    /// The jobs on this machine with their chosen start times.
    pub items: Vec<(JobId, Time)>,
}

impl Bundle {
    /// Empty bundle.
    pub fn new() -> Self {
        Bundle { items: Vec::new() }
    }

    /// The run intervals of the bundle's jobs under `inst`.
    pub fn run_intervals(&self, inst: &Instance) -> Vec<Interval> {
        self.items
            .iter()
            .map(|&(id, s)| Interval::new(s, s + inst.job(id).length))
            .collect()
    }

    /// Busy time of this machine: `Sp` of its run intervals.
    pub fn busy_time(&self, inst: &Instance) -> i64 {
        IntervalSet::from_intervals(self.run_intervals(inst)).measure()
    }

    /// Maximum number of simultaneously running jobs in this bundle.
    pub fn peak_parallelism(&self, inst: &Instance) -> usize {
        let mut events: Vec<(Time, i32)> = Vec::with_capacity(self.items.len() * 2);
        for &(id, s) in &self.items {
            events.push((s, 1));
            events.push((s + inst.job(id).length, -1));
        }
        events.sort_unstable();
        let mut cur = 0i32;
        let mut peak = 0i32;
        for (_, delta) in events {
            cur += delta;
            peak = peak.max(cur);
        }
        peak.max(0) as usize
    }
}

/// A complete busy-time schedule: a partition of (a subset of) the jobs into
/// bundles with start times.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BusySchedule {
    /// The machines.
    pub bundles: Vec<Bundle>,
}

impl BusySchedule {
    /// Empty schedule.
    pub fn new() -> Self {
        BusySchedule {
            bundles: Vec::new(),
        }
    }

    /// Builds a schedule for an *interval* instance from a partition of job
    /// ids into bundles (start times are forced to the releases).
    pub fn from_interval_partition(inst: &Instance, parts: Vec<Vec<JobId>>) -> Self {
        BusySchedule {
            bundles: parts
                .into_iter()
                .map(|ids| Bundle {
                    items: ids
                        .into_iter()
                        .map(|id| (id, inst.job(id).release))
                        .collect(),
                })
                .collect(),
        }
    }

    /// Total busy time `Σ_k Sp(B_k)`.
    pub fn total_busy_time(&self, inst: &Instance) -> i64 {
        self.bundles.iter().map(|b| b.busy_time(inst)).sum()
    }

    /// Number of non-empty machines opened.
    pub fn machine_count(&self) -> usize {
        self.bundles.iter().filter(|b| !b.items.is_empty()).count()
    }

    /// The start time chosen for every job (errors if a job is missing or
    /// duplicated).
    pub fn start_times(&self, inst: &Instance) -> Result<Vec<Time>> {
        let mut starts: Vec<Option<Time>> = vec![None; inst.len()];
        for b in &self.bundles {
            for &(id, s) in &b.items {
                if id >= inst.len() {
                    return Err(Error::InvalidSchedule(format!("unknown job id {id}")));
                }
                if starts[id].replace(s).is_some() {
                    return Err(Error::InvalidSchedule(format!(
                        "job {id} scheduled on more than one machine"
                    )));
                }
            }
        }
        starts
            .into_iter()
            .enumerate()
            .map(|(id, s)| s.ok_or_else(|| Error::InvalidSchedule(format!("job {id} unscheduled"))))
            .collect()
    }

    /// Full validation: every job appears exactly once, starts respect
    /// windows, and every machine's parallelism stays within `g`.
    pub fn validate(&self, inst: &Instance) -> Result<()> {
        let starts = self.start_times(inst)?;
        for (id, &s) in starts.iter().enumerate() {
            if inst.job(id).run_at(s).is_none() {
                return Err(Error::InvalidSchedule(format!(
                    "job {id} start {s} violates window [{}, {}]",
                    inst.job(id).release,
                    inst.job(id).latest_start()
                )));
            }
        }
        for (m, b) in self.bundles.iter().enumerate() {
            let peak = b.peak_parallelism(inst);
            if peak > inst.g() {
                return Err(Error::InvalidSchedule(format!(
                    "machine {m} runs {peak} jobs simultaneously, capacity is {}",
                    inst.g()
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval_inst() -> Instance {
        Instance::new(
            vec![
                crate::jobs::Job::interval(0, 4),
                crate::jobs::Job::interval(2, 6),
                crate::jobs::Job::interval(5, 9),
                crate::jobs::Job::interval(0, 2),
            ],
            2,
        )
        .unwrap()
    }

    #[test]
    fn bundle_busy_time_is_span() {
        let inst = interval_inst();
        let b = Bundle {
            items: vec![(0, 0), (1, 2), (2, 5)],
        };
        assert_eq!(b.busy_time(&inst), 9); // [0,4)∪[2,6)∪[5,9) = [0,9)
        assert_eq!(b.peak_parallelism(&inst), 2);
    }

    #[test]
    fn schedule_cost_sums_over_machines() {
        let inst = interval_inst();
        let s = BusySchedule::from_interval_partition(&inst, vec![vec![0, 1], vec![2, 3]]);
        s.validate(&inst).unwrap();
        assert_eq!(s.total_busy_time(&inst), 6 + (4 + 2));
        assert_eq!(s.machine_count(), 2);
    }

    #[test]
    fn missing_job_detected() {
        let inst = interval_inst();
        let s = BusySchedule::from_interval_partition(&inst, vec![vec![0, 1], vec![2]]);
        assert!(s.validate(&inst).is_err());
    }

    #[test]
    fn duplicate_job_detected() {
        let inst = interval_inst();
        let s = BusySchedule::from_interval_partition(&inst, vec![vec![0, 1, 3], vec![2, 3]]);
        assert!(s.validate(&inst).is_err());
    }

    #[test]
    fn capacity_violation_detected() {
        let inst = interval_inst();
        // jobs 0, 1 overlap on [2,4) and job 3 overlaps job 0 — all three on one
        // machine peaks at... 0:[0,4), 1:[2,6), 3:[0,2): peak 2 at [2,4) and 2 at [0,2).
        // That is fine; force a violation with g=1.
        let inst1 = inst.with_g(1).unwrap();
        let s = BusySchedule::from_interval_partition(&inst1, vec![vec![0, 1], vec![2], vec![3]]);
        assert!(s.validate(&inst1).is_err());
    }

    #[test]
    fn window_violation_detected() {
        let inst = Instance::from_triples([(0, 10, 3)], 1).unwrap();
        let s = BusySchedule {
            bundles: vec![Bundle {
                items: vec![(0, 8)],
            }],
        };
        assert!(s.validate(&inst).is_err());
        let ok = BusySchedule {
            bundles: vec![Bundle {
                items: vec![(0, 7)],
            }],
        };
        ok.validate(&inst).unwrap();
    }

    #[test]
    fn flexible_starts_roundtrip() {
        let inst = Instance::from_triples([(0, 10, 3), (2, 9, 4)], 2).unwrap();
        let s = BusySchedule {
            bundles: vec![Bundle {
                items: vec![(0, 4), (1, 3)],
            }],
        };
        s.validate(&inst).unwrap();
        assert_eq!(s.start_times(&inst).unwrap(), vec![4, 3]);
        assert_eq!(s.total_busy_time(&inst), 4); // [4,7) ∪ [3,7) = [3,7)
    }
}

//! Concurrency-exactness properties of the `abt_core::obs` metrics
//! registry: counters, histograms, and gauge high-water windows must be
//! *exact* under concurrent recording — the registry serves `parallel_map`
//! workers, and a lost update would silently corrupt the benchmark record.
//!
//! Each case records through 8 threads into freshly named metrics (the
//! registry is process-global and append-only, so a unique name per case
//! gives an isolated metric without any reset hook) and compares against
//! a sequentially computed model.

use abt_core::obs;
use abt_core::obs::metrics::{bucket_index, HISTOGRAM_BUCKETS};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

const THREADS: usize = 8;

/// A fresh `&'static str` metric name (the registry keys on `'static`
/// names; one short leak per proptest case is bounded by the case count).
fn fresh_name(prefix: &str) -> &'static str {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    Box::leak(format!("test.obs.{prefix}.{n}").into_boxed_str())
}

/// Splits `values` round-robin across `THREADS` threads and runs `f`
/// over each thread's share.
fn fan_out(values: &[u64], f: impl Fn(u64) + Sync) {
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let shard: Vec<u64> = values.iter().copied().skip(t).step_by(THREADS).collect();
            let f = &f;
            s.spawn(move || {
                for v in shard {
                    f(v);
                }
            });
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // 8 threads adding into one counter lose nothing: the final value is
    // the exact sequential sum.
    #[test]
    fn counter_adds_are_exact_across_threads(
        values in proptest::collection::vec(0u64..1_000_000, 1..200)
    ) {
        let c = obs::counter(fresh_name("counter"));
        fan_out(&values, |v| c.add(v));
        prop_assert_eq!(c.get(), values.iter().sum::<u64>());
    }

    // 8 threads recording into one histogram produce exactly the bucket
    // counts of a sequential model — total count, per-bucket counts, and
    // the deterministic percentiles all match.
    #[test]
    fn histogram_buckets_are_exact_across_threads(
        values in proptest::collection::vec(0u64..u64::MAX, 1..200)
    ) {
        let h = obs::histogram(fresh_name("hist"));
        fan_out(&values, |v| h.record(v));
        let snap = h.snapshot();
        let mut model = vec![0u64; HISTOGRAM_BUCKETS];
        for &v in &values {
            model[bucket_index(v)] += 1;
        }
        prop_assert_eq!(snap.count(), values.len() as u64);
        prop_assert_eq!(snap.counts(), &model[..]);
        // Percentiles are pure functions of the bucket counts, so they
        // are identical however the recording interleaved.
        let again = h.snapshot();
        for q in [0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(snap.percentile(q), again.percentile(q));
        }
    }

    // A gauge's cumulative max and a window opened before the recording
    // both see the exact maximum under concurrent `record_max` calls.
    #[test]
    fn gauge_high_water_is_exact_across_threads(
        values in proptest::collection::vec(0u64..u64::MAX, 1..200)
    ) {
        let g = obs::gauge(fresh_name("gauge"));
        let window = g.window();
        fan_out(&values, |v| g.record_max(v));
        let expected = values.iter().copied().max().unwrap_or(0);
        prop_assert_eq!(g.max(), expected);
        prop_assert_eq!(window.value(), expected);
        // A window opened after the fact has seen nothing.
        prop_assert_eq!(g.window().value(), 0);
    }
}

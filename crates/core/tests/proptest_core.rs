#![allow(clippy::needless_range_loop)] // index loops mirror the models

//! Model-based property tests for the core substrate: the interval-set
//! union against a boolean-array model, the demand profile against naive
//! per-tick counting, exact fractions against `f64` ordering, and the
//! instance text format round-trip.

use abt_core::{io, DemandProfile, Frac, Instance, Interval, IntervalSet, Job};
use proptest::prelude::*;

const HORIZON: usize = 64;

fn interval_strategy() -> impl Strategy<Value = Interval> {
    (0i64..HORIZON as i64 - 1).prop_flat_map(|s| {
        (Just(s), (s + 1)..HORIZON as i64).prop_map(|(s, e)| Interval::new(s, e))
    })
}

proptest! {
    #[test]
    fn interval_set_matches_boolean_model(
        ivs in proptest::collection::vec(interval_strategy(), 0..20)
    ) {
        let set = IntervalSet::from_intervals(ivs.iter().copied());
        // Boolean-array model over unit ticks.
        let mut model = [false; HORIZON];
        for iv in &ivs {
            for t in iv.start..iv.end {
                model[t as usize] = true;
            }
        }
        prop_assert_eq!(set.measure(), model.iter().filter(|&&b| b).count() as i64);
        for t in 0..HORIZON {
            prop_assert_eq!(set.contains(t as i64), model[t], "tick {}", t);
        }
        // Components are disjoint, sorted, non-adjacent.
        for w in set.components().windows(2) {
            prop_assert!(w[0].end < w[1].start);
        }
        // Incremental insertion builds the same set.
        let mut inc = IntervalSet::new();
        for iv in &ivs {
            inc.insert(*iv);
        }
        prop_assert_eq!(inc, set);
    }

    #[test]
    fn demand_profile_matches_tick_counting(
        ivs in proptest::collection::vec(interval_strategy(), 0..16),
        g in 1usize..5,
    ) {
        let profile = DemandProfile::new(&ivs);
        let mut count = [0usize; HORIZON];
        for iv in &ivs {
            for t in iv.start..iv.end {
                count[t as usize] += 1;
            }
        }
        for t in 0..HORIZON {
            prop_assert_eq!(profile.raw_demand_at(t as i64), count[t], "tick {}", t);
        }
        let naive_cost: i64 = count.iter().map(|&c| c.div_ceil(g) as i64).sum();
        prop_assert_eq!(profile.cost(g), naive_cost);
        let naive_mass: i64 = count.iter().map(|&c| c as i64).sum();
        prop_assert_eq!(profile.mass(), naive_mass);
        let naive_span: i64 = count.iter().filter(|&&c| c > 0).count() as i64;
        prop_assert_eq!(profile.span(), naive_span);
        // Padding invariant.
        let mut padded = ivs.clone();
        padded.extend(profile.padding_to_multiple(g));
        let pp = DemandProfile::new(&padded);
        prop_assert_eq!(pp.cost(g), profile.cost(g));
        for &(_, d) in pp.segments() {
            prop_assert_eq!(d % g, 0);
        }
    }

    #[test]
    fn frac_ordering_is_consistent_with_floats(
        a in 1i64..1000, b in 1i64..1000, c in 1i64..1000, d in 1i64..1000
    ) {
        let x = Frac::ratio(a, b);
        let y = Frac::ratio(c, d);
        // Exact comparison must agree with the (here exactly representable)
        // float comparison direction whenever the floats differ clearly.
        if (x.to_f64() - y.to_f64()).abs() > 1e-9 {
            prop_assert_eq!(x < y, x.to_f64() < y.to_f64());
        }
        // Cross-multiplication identity.
        let lhs_smaller = (a as i128 * d as i128) < (c as i128 * b as i128);
        prop_assert_eq!(x < y, lhs_smaller);
    }

    #[test]
    fn instance_text_roundtrip(
        jobs in proptest::collection::vec((0i64..50, 1i64..10, 0i64..10), 1..20),
        g in 1usize..8,
    ) {
        let inst = Instance::new(
            jobs.iter().map(|&(r, p, s)| Job::new(r, r + p + s, p)).collect(),
            g,
        ).unwrap();
        let text = io::write_instance(&inst);
        let back = io::read_instance(&text).unwrap();
        prop_assert_eq!(inst, back);
    }

    #[test]
    fn schedule_validator_accepts_its_own_trivial_schedule(
        jobs in proptest::collection::vec((0i64..20, 1i64..5), 1..8),
    ) {
        // One machine per job is always a valid busy schedule.
        let inst = Instance::new(
            jobs.iter().map(|&(r, p)| Job::interval(r, r + p)).collect(),
            1,
        ).unwrap();
        let parts: Vec<Vec<usize>> = (0..inst.len()).map(|j| vec![j]).collect();
        let sched = abt_core::BusySchedule::from_interval_partition(&inst, parts);
        prop_assert!(sched.validate(&inst).is_ok());
        prop_assert_eq!(sched.total_busy_time(&inst), inst.total_length());
    }
}

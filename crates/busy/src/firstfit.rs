//! `FIRSTFIT` for interval jobs — the 4-approximation baseline of
//! Flammini et al. \[5\] that `GREEDYTRACKING` improves on.
//!
//! Jobs are considered in non-increasing order of length; each is placed in
//! the first (lowest-index) bundle where its whole interval keeps the
//! simultaneous-job count at most `g`, opening a new bundle if none fits.
//!
//! The module also provides the order-by-release variant, which Flammini et
//! al. prove 2-approximate on **proper** instances (footnote 1).

use abt_core::{BusySchedule, Error, Instance, Interval, JobId, Result};

/// Job orderings for FirstFit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FirstFitOrder {
    /// Non-increasing length (the classic 4-approximation).
    LengthDesc,
    /// Non-decreasing release time (2-approximate on proper instances).
    ByRelease,
}

/// A bundle under construction: the intervals it already carries.
#[derive(Debug, Default, Clone)]
struct OpenBundle {
    ids: Vec<JobId>,
    intervals: Vec<Interval>,
}

impl OpenBundle {
    /// Max simultaneous intervals within `iv` if we were to add it.
    fn fits(&self, iv: Interval, g: usize) -> bool {
        // Sweep only over events inside iv.
        let mut events: Vec<(i64, i32)> = Vec::new();
        let mut base = 0i32; // intervals covering iv.start
        for other in &self.intervals {
            if other.start <= iv.start && iv.start < other.end {
                base += 1;
            } else if other.start > iv.start && other.start < iv.end {
                events.push((other.start, 1));
            }
            if other.end > iv.start && other.end < iv.end {
                events.push((other.end, -1));
            }
        }
        let mut cur = base;
        let mut peak = base;
        events.sort_unstable();
        for (_, d) in events {
            cur += d;
            peak = peak.max(cur);
        }
        (peak as usize) < g // adding iv raises every covered point by 1
    }
}

/// Runs FirstFit on an interval instance. Errors on flexible jobs (convert
/// them first via the span placement, see `flexible`).
pub fn first_fit(inst: &Instance, order: FirstFitOrder) -> Result<BusySchedule> {
    if !inst.is_interval_instance() {
        return Err(Error::Unsupported(
            "first_fit requires interval jobs; use flexible::solve for general jobs".into(),
        ));
    }
    let ids = match order {
        FirstFitOrder::LengthDesc => inst.ids_by_length_desc(),
        FirstFitOrder::ByRelease => {
            let mut v: Vec<JobId> = (0..inst.len()).collect();
            v.sort_by_key(|&i| (inst.job(i).release, inst.job(i).deadline, i));
            v
        }
    };
    let g = inst.g();
    let mut bundles: Vec<OpenBundle> = Vec::new();
    for id in ids {
        let iv = inst.job(id).window();
        let target = bundles.iter_mut().find(|b| b.fits(iv, g));
        match target {
            Some(b) => {
                b.ids.push(id);
                b.intervals.push(iv);
            }
            None => bundles.push(OpenBundle {
                ids: vec![id],
                intervals: vec![iv],
            }),
        }
    }
    Ok(BusySchedule::from_interval_partition(
        inst,
        bundles.into_iter().map(|b| b.ids).collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use abt_core::{busy_lower_bounds, within_factor, Job};

    fn interval_inst(ivs: &[(i64, i64)], g: usize) -> Instance {
        Instance::new(ivs.iter().map(|&(a, b)| Job::interval(a, b)).collect(), g).unwrap()
    }

    #[test]
    fn fills_one_machine_up_to_g() {
        let inst = interval_inst(&[(0, 4), (0, 4), (0, 4)], 3);
        let s = first_fit(&inst, FirstFitOrder::LengthDesc).unwrap();
        s.validate(&inst).unwrap();
        assert_eq!(s.machine_count(), 1);
        assert_eq!(s.total_busy_time(&inst), 4);
    }

    #[test]
    fn overflows_to_second_machine() {
        let inst = interval_inst(&[(0, 4), (0, 4), (0, 4)], 2);
        let s = first_fit(&inst, FirstFitOrder::LengthDesc).unwrap();
        s.validate(&inst).unwrap();
        assert_eq!(s.machine_count(), 2);
        assert_eq!(s.total_busy_time(&inst), 8);
    }

    #[test]
    fn length_order_packs_long_jobs_together() {
        // Long jobs [0,10)×2 and short [4,5)×2 with g=2: FirstFit puts the
        // two long together and the two short together: 10 + 1 = 11.
        let inst = interval_inst(&[(0, 10), (0, 10), (4, 5), (4, 5)], 2);
        let s = first_fit(&inst, FirstFitOrder::LengthDesc).unwrap();
        assert_eq!(s.total_busy_time(&inst), 11);
    }

    #[test]
    fn respects_four_approximation_on_samples() {
        let cases = [
            vec![(0, 4), (1, 6), (2, 8), (5, 9), (0, 2), (7, 9)],
            vec![(0, 10), (1, 3), (2, 4), (3, 5), (4, 6), (5, 7)],
        ];
        for ivs in cases {
            for g in 1..=3 {
                let inst = interval_inst(&ivs, g);
                let s = first_fit(&inst, FirstFitOrder::LengthDesc).unwrap();
                s.validate(&inst).unwrap();
                let lb = busy_lower_bounds(&inst).best();
                assert!(
                    within_factor(s.total_busy_time(&inst), 4, lb),
                    "FF > 4×LB on {ivs:?} g={g}"
                );
            }
        }
    }

    #[test]
    fn by_release_on_proper_instance() {
        // Proper: no window contains another.
        let inst = interval_inst(&[(0, 5), (2, 7), (4, 9), (6, 11)], 2);
        let s = first_fit(&inst, FirstFitOrder::ByRelease).unwrap();
        s.validate(&inst).unwrap();
        let lb = busy_lower_bounds(&inst).best();
        assert!(within_factor(s.total_busy_time(&inst), 2, lb));
    }

    #[test]
    fn rejects_flexible_jobs() {
        let inst = Instance::from_triples([(0, 10, 3)], 2).unwrap();
        assert!(matches!(
            first_fit(&inst, FirstFitOrder::LengthDesc),
            Err(Error::Unsupported(_))
        ));
    }

    #[test]
    fn capacity_one_gives_one_job_per_busy_interval() {
        let inst = interval_inst(&[(0, 4), (2, 6), (4, 8)], 1);
        let s = first_fit(&inst, FirstFitOrder::LengthDesc).unwrap();
        s.validate(&inst).unwrap();
        // Jobs 0 and 2 are disjoint and share a machine; job 1 overlaps both.
        assert_eq!(s.machine_count(), 2);
        assert_eq!(s.total_busy_time(&inst), 8 + 4);
    }
}

//! The paper's LP-rounding approximation for minimizing busy time
//! (§4), built on the unified [`abt_lp::solve_lp`] API.
//!
//! # The LP
//!
//! Let the demand profile of the interval jobs (Definitions 11–13)
//! have positive-demand segments `i` with length `len_i` and raw
//! demand `D_i`. The busy-time LP has one variable `z_i` per segment —
//! the (fractional) number of machines kept busy across segment `i` —
//! and minimizes total machine-time:
//!
//! ```text
//!     min  Σ_i len_i · z_i
//!     s.t. g · z_i ≥ D_i          (capacity: g jobs per busy machine)
//!          z_i ≥ 1                 (a demanded segment needs a machine)
//!          0 ≤ z_i ≤ ⌈D_i / g⌉    (implicit bound rows)
//! ```
//!
//! Its optimum `Σ len_i · max(D_i/g, 1)` is a lower bound on the
//! fractional cost of *any* feasible schedule, hence `LP ≤ OPT ≤`
//! [`exact_busy_time`](crate::exact_busy_time). The LP is solved through
//! the same supervised backend ladder as the active side (`Revised` →
//! `DenseHybrid` → `DenseExact`, each rung panic-isolated), with tiered
//! exact certification of the terminal basis.
//!
//! # The rounding
//!
//! Round each segment to `m_i = ⌈z*_i⌉` machines, pad the demand of
//! segment `i` with `m_i·g − D_i` dummy jobs, and pack real + dummy
//! jobs with the Kumar–Rudra level/band scheme (at most two units of a
//! level overlap anywhere; two machines per band of `g` levels; parity
//! 2-coloring per level). The packed cost is at most `2·Σ len_i·m_i`,
//! and since `⌈z⌉ ≤ 2z` for `z ≥ 1`, the schedule costs at most
//! **4 × the LP value** (and at most `2 ×` the integral profile bound,
//! i.e. `2·OPT`). Every output is validated against
//! [`BusySchedule::validate`] and checked against
//! [`abt_core::busy_lower_bounds`] before it is returned.
//!
//! ```
//! use abt_busy::lp_rounding::lp_rounding_run;
//! use abt_core::{busy_lower_bounds, Instance, Job};
//!
//! // Three overlapping interval jobs, machine capacity 2.
//! let inst = Instance::new(
//!     vec![Job::interval(0, 4), Job::interval(1, 5), Job::interval(3, 9)],
//!     2,
//! )
//! .unwrap();
//! let run = lp_rounding_run(&inst).unwrap();
//! run.schedule.validate(&inst).unwrap();
//! let cost = run.schedule.total_busy_time(&inst);
//! assert!(run.within_four_lp());
//! assert!(cost <= 2 * run.profile_bound);
//! assert!(cost >= busy_lower_bounds(&inst).best());
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

use abt_core::obs::{self, metrics::Counter, metrics::Histogram};
use abt_core::{
    busy_lower_bounds, panic_message, BusySchedule, DemandProfile, Error, Instance, Interval,
    Result, SolveFailure,
};
use abt_lp::{solve_lp, Cmp, LpOptions, LpProblem, LpReport, Rat, SolveStats, SolverBackend};

use crate::kumar_rudra::level_band_pack;

// ---------------------------------------------------------------------------
// Telemetry: a view over the shared `abt_core::obs` metrics registry under
// the `busy.lp.*` prefix, mirroring `abt_active::lp_telemetry` (abt-busy
// cannot depend on abt-active, so the bench harness merges this delta into
// the experiment record itself).
// ---------------------------------------------------------------------------

/// Handles into the process-global registry for every busy-LP metric.
struct BusyMetrics {
    solves: &'static Counter,
    fallbacks: &'static Counter,
    pivots: &'static Counter,
    bound_flips: &'static Counter,
    refactorizations: &'static Counter,
    certify_nanos: &'static Counter,
    interval_accepts: &'static Counter,
    interval_escalations: &'static Counter,
    demotions: &'static Counter,
    quarantined: &'static Counter,
    solve_latency_us: &'static Histogram,
}

fn met() -> &'static BusyMetrics {
    static MET: OnceLock<BusyMetrics> = OnceLock::new();
    MET.get_or_init(|| BusyMetrics {
        solves: obs::counter("busy.lp.solves"),
        fallbacks: obs::counter("busy.lp.fallbacks"),
        pivots: obs::counter("busy.lp.pivots"),
        bound_flips: obs::counter("busy.lp.bound_flips"),
        refactorizations: obs::counter("busy.lp.refactorizations"),
        certify_nanos: obs::counter("busy.lp.certify_nanos"),
        interval_accepts: obs::counter("busy.lp.interval_accepts"),
        interval_escalations: obs::counter("busy.lp.interval_escalations"),
        demotions: obs::counter("busy.lp.demotions"),
        quarantined: obs::counter("busy.lp.quarantined"),
        solve_latency_us: obs::histogram("busy.lp.solve_latency_us"),
    })
}

/// Snapshot of the cumulative busy-LP solve counters.
///
/// Take one before and one after a region of work and call
/// [`BusyLpTelemetry::delta`] to attribute effort to that region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusyLpTelemetry {
    /// Successful LP solves.
    pub solves: u64,
    /// Solves whose winning rung reported an internal fallback.
    pub fallbacks: u64,
    /// Simplex pivots across all solves.
    pub pivots: u64,
    /// Bound flips across all solves.
    pub bound_flips: u64,
    /// Basis refactorizations across all solves.
    pub refactorizations: u64,
    /// Nanoseconds spent certifying terminal bases.
    pub certify_nanos: u64,
    /// Certifications settled by the interval tier.
    pub interval_accepts: u64,
    /// Certifications escalated to the exact tier.
    pub interval_escalations: u64,
    /// Ladder demotions (a rung failed and the next one was tried).
    pub demotions: u64,
    /// Solves abandoned after every rung failed.
    pub quarantined: u64,
}

impl BusyLpTelemetry {
    /// Componentwise `self − earlier` (both cumulative snapshots).
    pub fn delta(&self, earlier: &BusyLpTelemetry) -> BusyLpTelemetry {
        BusyLpTelemetry {
            solves: self.solves - earlier.solves,
            fallbacks: self.fallbacks - earlier.fallbacks,
            pivots: self.pivots - earlier.pivots,
            bound_flips: self.bound_flips - earlier.bound_flips,
            refactorizations: self.refactorizations - earlier.refactorizations,
            certify_nanos: self.certify_nanos - earlier.certify_nanos,
            interval_accepts: self.interval_accepts - earlier.interval_accepts,
            interval_escalations: self.interval_escalations - earlier.interval_escalations,
            demotions: self.demotions - earlier.demotions,
            quarantined: self.quarantined - earlier.quarantined,
        }
    }
}

/// Cumulative busy-LP counters for this process — a view over the shared
/// `abt_core::obs` metrics registry (`busy.lp.*` names).
pub fn busy_lp_telemetry() -> BusyLpTelemetry {
    let m = met();
    BusyLpTelemetry {
        solves: m.solves.get(),
        fallbacks: m.fallbacks.get(),
        pivots: m.pivots.get(),
        bound_flips: m.bound_flips.get(),
        refactorizations: m.refactorizations.get(),
        certify_nanos: m.certify_nanos.get(),
        interval_accepts: m.interval_accepts.get(),
        interval_escalations: m.interval_escalations.get(),
        demotions: m.demotions.get(),
        quarantined: m.quarantined.get(),
    }
}

/// The `busy.lp.solve_latency_us` histogram, cumulative for this process.
/// Snapshot before/after a region and [`delta`](
/// abt_core::obs::HistogramSnapshot::delta) the pair for in-region
/// percentiles.
pub fn busy_solve_latency_snapshot() -> abt_core::obs::HistogramSnapshot {
    met().solve_latency_us.snapshot()
}

fn record_solve(rep: &LpReport) {
    let m = met();
    m.solves.inc();
    if rep.fallback {
        m.fallbacks.inc();
    }
    m.pivots.add(rep.stats.pivots);
    m.bound_flips.add(rep.stats.bound_flips);
    m.refactorizations.add(rep.stats.refactorizations);
    m.certify_nanos.add(rep.stats.certify_nanos);
    m.interval_accepts.add(rep.stats.interval_accepts);
    m.interval_escalations.add(rep.stats.interval_escalations);
}

// ---------------------------------------------------------------------------
// The LP model.
// ---------------------------------------------------------------------------

/// The busy-time LP over a demand profile's positive segments.
#[derive(Debug, Clone)]
pub struct BusyLpModel {
    /// The LP: one variable per entry of `segments`, objective
    /// coefficient = segment length.
    pub lp: LpProblem<Rat>,
    /// The positive-demand segments `(interval, raw demand)`, in
    /// variable order.
    pub segments: Vec<(Interval, usize)>,
}

/// Builds the busy-time LP for an interval instance.
///
/// One variable `z_i` per positive-demand segment of the instance's
/// demand profile, with cost `len_i`, rows `g·z_i ≥ D_i` and `z_i ≥ 1`,
/// and an implicit upper bound `z_i ≤ ⌈D_i/g⌉`.
pub fn build_busy_lp(inst: &Instance) -> Result<BusyLpModel> {
    if !inst.is_interval_instance() {
        return Err(Error::Unsupported(
            "lp_rounding requires interval jobs; use flexible::solve for general jobs".into(),
        ));
    }
    let g = inst.g() as i64;
    let windows: Vec<Interval> = inst.jobs().iter().map(|j| j.window()).collect();
    let profile = DemandProfile::new(&windows);
    let mut lp = LpProblem::new();
    let mut segments = Vec::new();
    for &(iv, d) in profile.segments() {
        if d == 0 {
            continue;
        }
        let z = lp.add_var(Rat::from_int(iv.len()));
        lp.add_constraint(
            vec![(z, Rat::from_int(g))],
            Cmp::Ge,
            Rat::from_int(d as i64),
        );
        lp.add_constraint(vec![(z, Rat::ONE)], Cmp::Ge, Rat::ONE);
        lp.set_upper(z, Rat::from_int((d as i64 + g - 1) / g));
        segments.push((iv, d));
    }
    Ok(BusyLpModel { lp, segments })
}

// ---------------------------------------------------------------------------
// The supervised solve ladder.
// ---------------------------------------------------------------------------

/// Solves a busy-time LP through the degradation ladder
/// `Revised → DenseHybrid → DenseExact`, panic-isolating each rung.
///
/// Mirrors `abt_active::supervise::supervised_solve`: a failing rung
/// records a demotion and the next rung is tried; only the winning
/// rung's own internal-fallback flag counts toward the fallback rate.
/// If every rung fails the solve is quarantined.
pub fn solve_busy_lp(lp: &LpProblem<Rat>) -> Result<LpReport> {
    let rungs = [
        SolverBackend::Revised,
        SolverBackend::DenseHybrid,
        SolverBackend::DenseExact,
    ];
    let mut span = abt_core::obs_span!("solve.component", model = "busy", vars = lp.num_vars());
    let started = std::time::Instant::now();
    let mut first_failure: Option<SolveFailure> = None;
    for (i, backend) in rungs.into_iter().enumerate() {
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            solve_lp(lp, &LpOptions::new().backend(backend))
        }));
        let failure = match attempt {
            Ok(Ok(rep)) => {
                record_solve(&rep);
                met()
                    .solve_latency_us
                    .record(started.elapsed().as_micros() as u64);
                span.field("rung", format_args!("{backend:?}"));
                return Ok(rep);
            }
            Ok(Err(f)) => f,
            Err(p) => SolveFailure::Panicked(panic_message(p.as_ref())),
        };
        met().demotions.inc();
        obs::trace::event("supervise.demotion", || {
            vec![
                ("model", "busy".to_string()),
                ("failure", failure.to_string()),
                ("from", format!("{backend:?}")),
                (
                    "to",
                    rungs
                        .get(i + 1)
                        .map_or("quarantine".into(), |b| format!("{b:?}")),
                ),
            ]
        });
        first_failure.get_or_insert(failure);
    }
    met().quarantined.inc();
    obs::trace::event("supervise.quarantine", || {
        vec![("model", "busy".to_string())]
    });
    Err(Error::Quarantined(format!(
        "busy LP: every ladder rung failed; first failure: {}",
        first_failure.expect("at least one rung ran")
    )))
}

// ---------------------------------------------------------------------------
// Rounding.
// ---------------------------------------------------------------------------

/// Diagnostic output of an LP-rounding run.
#[derive(Debug, Clone)]
pub struct LpRoundingRun {
    /// The schedule over real jobs (validated before return).
    pub schedule: BusySchedule,
    /// The schedule's total busy time.
    pub cost: i64,
    /// The exact rational LP optimum `Σ len_i · max(D_i/g, 1)`.
    pub lp_objective: Rat,
    /// The rounded machine-time `Σ len_i · ⌈z*_i⌉` charged by the
    /// packing (the packed cost is at most twice this).
    pub rounded_profile: i64,
    /// The integral demand-profile lower bound `Σ ⌈D_i/g⌉·len_i`.
    pub profile_bound: i64,
    /// Number of Kumar–Rudra levels used by the packing.
    pub levels: usize,
    /// Whether the winning ladder rung reported an internal fallback.
    pub fallback: bool,
    /// Simplex/certification effort of the winning solve.
    pub stats: SolveStats,
}

impl LpRoundingRun {
    /// The theorem-level guarantee: packed cost ≤ 4 × the LP value.
    pub fn within_four_lp(&self) -> bool {
        // cost ≤ 4·(p/q)  ⇔  q·cost ≤ 4·p  (q > 0).
        let p = self.lp_objective.numer();
        let q = self.lp_objective.denom();
        q * self.cost as i128 <= 4 * p
    }
}

/// Runs LP rounding on an interval instance, returning the schedule.
pub fn lp_rounding_busy(inst: &Instance) -> Result<BusySchedule> {
    Ok(lp_rounding_run(inst)?.schedule)
}

/// Runs LP rounding, returning diagnostics.
///
/// Builds the busy-time LP, solves it through the supervised ladder,
/// rounds each segment to `m_i = ⌈z*_i⌉` machines, pads with
/// `m_i·g − D_i` dummies per segment, and packs with the Kumar–Rudra
/// level/band scheme. The output is validated and checked against both
/// factor guarantees (`≤ 2·profile` and `≤ 4·LP`) and the instance's
/// busy-time lower bounds before it is returned.
pub fn lp_rounding_run(inst: &Instance) -> Result<LpRoundingRun> {
    let model = build_busy_lp(inst)?;
    let g = inst.g() as i64;
    let windows: Vec<Interval> = inst.jobs().iter().map(|j| j.window()).collect();
    let profile = DemandProfile::new(&windows);
    let profile_bound = profile.cost(g as usize);

    let rep = solve_busy_lp(&model.lp)?;
    let lp_objective = model.lp.objective_value(&rep.solution.x);

    // Round: m_i = ⌈z*_i⌉ machines on segment i; pad the demand up to
    // m_i·g with dummies so the level/band packing can charge segment i
    // exactly m_i machine-intervals per color class.
    let mut dummies: Vec<Interval> = Vec::new();
    let mut rounded_profile = 0i64;
    for (i, &(iv, d)) in model.segments.iter().enumerate() {
        let m = rep.solution.x[i].ceil() as i64;
        debug_assert!(m >= 1 && m == (d as i64 + g - 1) / g);
        rounded_profile += m * iv.len();
        for _ in 0..(m * g - d as i64) {
            dummies.push(iv);
        }
    }

    let (schedule, levels) = level_band_pack(inst, &windows, &dummies)?;
    schedule.validate(inst)?;
    let cost = schedule.total_busy_time(inst);
    if cost > 2 * rounded_profile {
        return Err(Error::InvalidSchedule(format!(
            "lp_rounding exceeded its factor: cost {cost} > 2×rounded profile {rounded_profile}"
        )));
    }
    if cost < busy_lower_bounds(inst).best() {
        return Err(Error::InvalidSchedule(format!(
            "lp_rounding undercut the busy lower bound: cost {cost}"
        )));
    }
    let run = LpRoundingRun {
        schedule,
        cost,
        lp_objective,
        rounded_profile,
        profile_bound,
        levels,
        fallback: rep.fallback,
        stats: rep.stats,
    };
    debug_assert!(run.within_four_lp());
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_busy_time;
    use crate::kumar_rudra::kumar_rudra_run;
    use abt_core::{within_factor, Job};

    fn interval_inst(ivs: &[(i64, i64)], g: usize) -> Instance {
        Instance::new(ivs.iter().map(|&(a, b)| Job::interval(a, b)).collect(), g).unwrap()
    }

    fn check(inst: &Instance) -> LpRoundingRun {
        let run = lp_rounding_run(inst).unwrap();
        run.schedule.validate(inst).unwrap();
        let cost = run.schedule.total_busy_time(inst);
        assert!(run.within_four_lp(), "cost {cost} > 4×LP");
        assert!(
            within_factor(cost, 2, run.profile_bound),
            "cost {cost} > 2×profile {}",
            run.profile_bound
        );
        assert!(cost >= busy_lower_bounds(inst).best());
        run
    }

    #[test]
    fn lp_value_matches_fractional_profile() {
        // Demands 1, 2, 3 on unit segments with g = 2:
        // LP = 1·1 + 1·1 + 1·(3/2) = 7/2.
        let inst = interval_inst(&[(0, 3), (1, 3), (2, 3)], 2);
        let run = check(&inst);
        assert_eq!(run.lp_objective, Rat::new(7, 2));
        assert_eq!(run.profile_bound, 4); // ⌈1/2⌉+⌈2/2⌉+⌈3/2⌉
    }

    #[test]
    fn lp_is_a_lower_bound_on_exact() {
        let cases: &[(&[(i64, i64)], usize)] = &[
            (&[(0, 4), (1, 5), (3, 9)], 2),
            (&[(0, 5), (2, 7), (4, 9), (6, 11)], 3),
            (&[(0, 10), (1, 9), (2, 8), (3, 7)], 2),
        ];
        for &(ivs, g) in cases {
            let inst = interval_inst(ivs, g);
            let run = check(&inst);
            let exact = exact_busy_time(&inst, Some(20_000_000)).unwrap();
            // q·LP ≤ q·exact  ⇔  p ≤ q·exact.
            let (p, q) = (run.lp_objective.numer(), run.lp_objective.denom());
            assert!(p <= q * exact.cost as i128, "LP exceeds exact cost");
            assert!(run.schedule.total_busy_time(&inst) >= exact.cost);
        }
    }

    #[test]
    fn rounding_coincides_with_kumar_rudra_padding() {
        // ⌈z*_i⌉ = ⌈D_i/g⌉, so the LP-driven dummies equal the
        // multiple-of-g padding and the packed cost matches KR's.
        for g in 1..=4 {
            let inst = interval_inst(&[(0, 5), (2, 7), (4, 9), (6, 11), (8, 13)], g);
            let run = check(&inst);
            let kr = kumar_rudra_run(&inst).unwrap();
            assert_eq!(
                run.schedule.total_busy_time(&inst),
                kr.schedule.total_busy_time(&inst)
            );
        }
    }

    #[test]
    fn ladder_solves_record_telemetry() {
        let before = busy_lp_telemetry();
        let inst = interval_inst(&[(0, 4), (1, 5)], 2);
        check(&inst);
        let d = busy_lp_telemetry().delta(&before);
        assert_eq!(d.solves, 1);
        assert_eq!(d.quarantined, 0);
    }

    #[test]
    fn rejects_flexible() {
        let inst = Instance::from_triples([(0, 9, 3)], 2).unwrap();
        assert!(matches!(
            lp_rounding_busy(&inst),
            Err(Error::Unsupported(_))
        ));
    }
}

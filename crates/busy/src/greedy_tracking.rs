//! `GREEDYTRACKING` — the paper's 3-approximation for busy time
//! (Algorithm 1, Theorem 5).
//!
//! Iteration `i` extracts a maximum-length track `T_i` from the remaining
//! jobs and assigns it to bundle `⌈i/g⌉`; each bundle is thus a union of
//! `g` tracks, hence runs at most `g` jobs simultaneously. The analysis
//! charges `Sp(B_i) ≤ 2·ℓ(T*)/1 ≤ (2/g)·ℓ(B_{i−1})` for `i > 1` and
//! `Sp(B_1) ≤ OPT_∞`, giving `3·OPT` in total; the Fig. 6 gadget shows the
//! factor 3 is asymptotically tight.

use abt_core::{BusySchedule, Error, Instance, JobId, Result};

/// Result of GreedyTracking with per-track diagnostics.
#[derive(Debug, Clone)]
pub struct GreedyTrackingRun {
    /// The final schedule (bundle `p` = tracks `pg+1 … (p+1)g`).
    pub schedule: BusySchedule,
    /// The extracted tracks, in extraction order.
    pub tracks: Vec<Vec<JobId>>,
}

/// Runs GreedyTracking on an interval instance.
pub fn greedy_tracking(inst: &Instance) -> Result<BusySchedule> {
    Ok(greedy_tracking_run(inst)?.schedule)
}

/// Runs GreedyTracking, also returning the track decomposition.
pub fn greedy_tracking_run(inst: &Instance) -> Result<GreedyTrackingRun> {
    let prio: Vec<usize> = (0..inst.len()).collect();
    greedy_tracking_with_priority(inst, &prio)
}

/// GreedyTracking with a seeded tie-break priority (ablation knob: the
/// 3-approximation holds for *every* tie-breaking, but the realized
/// constant on tight gadgets varies — experiment E15).
pub fn greedy_tracking_seeded(inst: &Instance, seed: u64) -> Result<GreedyTrackingRun> {
    let mut prio: Vec<usize> = (0..inst.len()).collect();
    let mut state = seed | 1;
    for i in (1..prio.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let j = (state % (i as u64 + 1)) as usize;
        prio.swap(i, j);
    }
    greedy_tracking_with_priority(inst, &prio)
}

fn greedy_tracking_with_priority(inst: &Instance, prio: &[usize]) -> Result<GreedyTrackingRun> {
    if !inst.is_interval_instance() {
        return Err(Error::Unsupported(
            "greedy_tracking requires interval jobs; use flexible::solve for general jobs".into(),
        ));
    }
    let g = inst.g();
    let mut remaining: Vec<JobId> = (0..inst.len()).collect();
    let mut tracks: Vec<Vec<JobId>> = Vec::new();
    while !remaining.is_empty() {
        let track = crate::tracks::longest_track_with_priority(inst, &remaining, prio);
        debug_assert!(!track.is_empty());
        remaining.retain(|id| !track.contains(id));
        tracks.push(track);
    }
    let mut parts: Vec<Vec<JobId>> = Vec::new();
    for (i, track) in tracks.iter().enumerate() {
        if i % g == 0 {
            parts.push(Vec::new());
        }
        parts.last_mut().unwrap().extend_from_slice(track);
    }
    let schedule = BusySchedule::from_interval_partition(inst, parts);
    Ok(GreedyTrackingRun { schedule, tracks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracks::{is_track, total_length};
    use abt_core::{busy_lower_bounds, within_factor, Job};

    fn interval_inst(ivs: &[(i64, i64)], g: usize) -> Instance {
        Instance::new(ivs.iter().map(|&(a, b)| Job::interval(a, b)).collect(), g).unwrap()
    }

    #[test]
    fn tracks_are_tracks_and_lengths_decrease() {
        let inst = interval_inst(&[(0, 4), (1, 6), (2, 8), (5, 9), (0, 2), (7, 9)], 2);
        let run = greedy_tracking_run(&inst).unwrap();
        run.schedule.validate(&inst).unwrap();
        let lens: Vec<i64> = run.tracks.iter().map(|t| total_length(&inst, t)).collect();
        for t in &run.tracks {
            assert!(is_track(&inst, t));
        }
        for w in lens.windows(2) {
            assert!(
                w[0] >= w[1],
                "greedy track lengths must be non-increasing: {lens:?}"
            );
        }
        // Every job appears exactly once.
        let total: usize = run.tracks.iter().map(Vec::len).sum();
        assert_eq!(total, inst.len());
    }

    #[test]
    fn single_track_instance_uses_one_machine() {
        let inst = interval_inst(&[(0, 3), (3, 6), (6, 9)], 2);
        let s = greedy_tracking(&inst).unwrap();
        assert_eq!(s.machine_count(), 1);
        assert_eq!(s.total_busy_time(&inst), 9);
    }

    #[test]
    fn identical_jobs_fill_bundles_of_g_tracks() {
        // 4 identical unit jobs, g=2 → 4 tracks → 2 bundles of busy time 1.
        let inst = interval_inst(&[(0, 1), (0, 1), (0, 1), (0, 1)], 2);
        let s = greedy_tracking(&inst).unwrap();
        s.validate(&inst).unwrap();
        assert_eq!(s.machine_count(), 2);
        assert_eq!(s.total_busy_time(&inst), 2);
    }

    #[test]
    fn three_approximation_on_samples() {
        let cases = [
            vec![(0, 4), (1, 6), (2, 8), (5, 9), (0, 2), (7, 9)],
            vec![(0, 10), (1, 3), (2, 4), (3, 5), (4, 6), (5, 7)],
            vec![(0, 2), (0, 2), (0, 2), (4, 8), (5, 9), (6, 7), (6, 7)],
        ];
        for ivs in cases {
            for g in 1..=3 {
                let inst = interval_inst(&ivs, g);
                let s = greedy_tracking(&inst).unwrap();
                s.validate(&inst).unwrap();
                let lb = busy_lower_bounds(&inst).best();
                assert!(
                    within_factor(s.total_busy_time(&inst), 3, lb),
                    "GT > 3×LB on {ivs:?} g={g}"
                );
            }
        }
    }

    #[test]
    fn figure1_instance_two_machines() {
        // Fig. 1: seven interval jobs, g = 3, optimally packed on two
        // machines. GreedyTracking must stay within 3× of the profile bound.
        let ivs = [(0, 8), (0, 3), (2, 5), (5, 8), (0, 4), (3, 6), (5, 9)];
        let inst = interval_inst(&ivs, 3);
        let s = greedy_tracking(&inst).unwrap();
        s.validate(&inst).unwrap();
        let lb = busy_lower_bounds(&inst).best();
        assert!(within_factor(s.total_busy_time(&inst), 3, lb));
    }

    #[test]
    fn seeded_variants_keep_the_guarantee() {
        let inst = interval_inst(&[(0, 4), (1, 6), (2, 8), (5, 9), (0, 2), (7, 9), (3, 7)], 2);
        let lb = busy_lower_bounds(&inst).best();
        let mut costs = std::collections::BTreeSet::new();
        for seed in 0..10u64 {
            let run = greedy_tracking_seeded(&inst, seed).unwrap();
            run.schedule.validate(&inst).unwrap();
            let c = run.schedule.total_busy_time(&inst);
            assert!(within_factor(c, 3, lb));
            costs.insert(c);
        }
        assert!(!costs.is_empty());
    }

    #[test]
    fn rejects_flexible_jobs() {
        let inst = Instance::from_triples([(0, 10, 3)], 2).unwrap();
        assert!(matches!(greedy_tracking(&inst), Err(Error::Unsupported(_))));
    }
}

//! The resource-allocation **maximization dual** of busy time (Mertzios et
//! al. \[12\], discussed in §1.3): given interval jobs, capacity `g`, and a
//! busy-time **budget** `T`, schedule as many jobs as possible on machines
//! whose cumulative busy time stays within `T`.
//!
//! Mertzios et al. show the maximization version is NP-hard whenever the
//! minimization version is and give constant-factor algorithms for special
//! classes. We provide the natural greedy (shortest jobs first, admitted
//! only if the marginal busy-time cost fits the remaining budget) plus an
//! exact branch-and-bound reference for ratio measurements.

use abt_core::{Error, Instance, IntervalSet, JobId, Result};

/// A budgeted schedule: the accepted jobs per machine.
#[derive(Debug, Clone, Default)]
pub struct BudgetedSchedule {
    /// `machines[m]` = accepted job ids on machine `m`.
    pub machines: Vec<Vec<JobId>>,
}

impl BudgetedSchedule {
    /// Number of accepted jobs.
    pub fn accepted(&self) -> usize {
        self.machines.iter().map(Vec::len).sum()
    }

    /// Total busy time used.
    pub fn busy_time(&self, inst: &Instance) -> i64 {
        self.machines
            .iter()
            .map(|ids| {
                IntervalSet::from_intervals(ids.iter().map(|&j| inst.job(j).window())).measure()
            })
            .sum()
    }

    /// Validates capacity, uniqueness, and the budget.
    pub fn validate(&self, inst: &Instance, budget: i64) -> Result<()> {
        let mut seen = vec![false; inst.len()];
        for (m, ids) in self.machines.iter().enumerate() {
            let mut events: Vec<(i64, i32)> = Vec::new();
            for &j in ids {
                if seen[j] {
                    return Err(Error::InvalidSchedule(format!("job {j} accepted twice")));
                }
                seen[j] = true;
                let w = inst.job(j).window();
                events.push((w.start, 1));
                events.push((w.end, -1));
            }
            events.sort_unstable();
            let mut cur = 0i32;
            for (_, d) in events {
                cur += d;
                if cur as usize > inst.g() {
                    return Err(Error::InvalidSchedule(format!(
                        "machine {m} exceeds capacity {}",
                        inst.g()
                    )));
                }
            }
        }
        if self.busy_time(inst) > budget {
            return Err(Error::InvalidSchedule(format!(
                "busy time {} exceeds budget {budget}",
                self.busy_time(inst)
            )));
        }
        Ok(())
    }
}

/// Greedy throughput maximization: consider jobs shortest-first; accept a
/// job on the machine where its *marginal* busy-time increase is smallest,
/// provided the budget still holds (opening a new machine costs the job's
/// full length).
pub fn budgeted_greedy(inst: &Instance, budget: i64) -> Result<BudgetedSchedule> {
    if !inst.is_interval_instance() {
        return Err(Error::Unsupported(
            "budgeted_greedy requires interval jobs".into(),
        ));
    }
    let mut ids: Vec<JobId> = (0..inst.len()).collect();
    ids.sort_by_key(|&j| (inst.job(j).length, inst.job(j).release, j));

    let mut machines: Vec<Vec<JobId>> = Vec::new();
    let mut busy_sets: Vec<IntervalSet> = Vec::new();
    let mut used = 0i64;
    for j in ids {
        let iv = inst.job(j).window();
        // Best (machine, marginal cost) among machines with spare capacity.
        let mut best: Option<(usize, i64)> = None;
        for (m, ids_m) in machines.iter().enumerate() {
            let overlap = ids_m
                .iter()
                .filter(|&&o| inst.job(o).window().overlaps(&iv))
                .count();
            if overlap >= inst.g() && peak_with(inst, ids_m, j) > inst.g() {
                continue;
            }
            if peak_with(inst, ids_m, j) > inst.g() {
                continue;
            }
            let before = busy_sets[m].measure();
            let mut with = busy_sets[m].clone();
            with.insert(iv);
            let marginal = with.measure() - before;
            if best.is_none_or(|(_, b)| marginal < b) {
                best = Some((m, marginal));
            }
        }
        let (target, marginal) = match best {
            Some((m, c)) if c <= iv.len() => (Some(m), c),
            _ => (None, iv.len()),
        };
        if used + marginal > budget {
            continue; // reject: over budget
        }
        used += marginal;
        match target {
            Some(m) => {
                machines[m].push(j);
                busy_sets[m].insert(iv);
            }
            None => {
                machines.push(vec![j]);
                let mut s = IntervalSet::new();
                s.insert(iv);
                busy_sets.push(s);
            }
        }
    }
    Ok(BudgetedSchedule { machines })
}

fn peak_with(inst: &Instance, bundle: &[JobId], extra: JobId) -> usize {
    let mut events: Vec<(i64, i32)> = Vec::new();
    for &j in bundle.iter().chain(std::iter::once(&extra)) {
        let w = inst.job(j).window();
        events.push((w.start, 1));
        events.push((w.end, -1));
    }
    events.sort_unstable();
    let mut cur = 0i32;
    let mut peak = 0i32;
    for (_, d) in events {
        cur += d;
        peak = peak.max(cur);
    }
    peak.max(0) as usize
}

/// Exact maximum throughput within the budget via branch and bound over
/// accept/reject + machine choice. For ratio measurements on small
/// instances only.
pub fn budgeted_exact(inst: &Instance, budget: i64, node_limit: u64) -> Result<usize> {
    if !inst.is_interval_instance() {
        return Err(Error::Unsupported(
            "budgeted_exact requires interval jobs".into(),
        ));
    }
    struct Search<'a> {
        inst: &'a Instance,
        budget: i64,
        best: usize,
        nodes: u64,
        limit: u64,
    }
    impl Search<'_> {
        fn dfs(
            &mut self,
            j: usize,
            accepted: usize,
            used: i64,
            machines: &mut Vec<Vec<JobId>>,
            sets: &mut Vec<IntervalSet>,
        ) -> Result<()> {
            self.nodes += 1;
            if self.nodes > self.limit {
                return Err(Error::Unsupported(
                    "budgeted_exact node limit exceeded".into(),
                ));
            }
            if j == self.inst.len() {
                self.best = self.best.max(accepted);
                return Ok(());
            }
            // Bound: even accepting everything remaining cannot beat best.
            if accepted + (self.inst.len() - j) <= self.best {
                return Ok(());
            }
            let iv = self.inst.job(j).window();
            // Reject branch.
            self.dfs(j + 1, accepted, used, machines, sets)?;
            // Accept on each machine (or a new one).
            let mut tried_empty = false;
            for m in 0..=machines.len() {
                if m == machines.len() {
                    if tried_empty {
                        break;
                    }
                    machines.push(Vec::new());
                    sets.push(IntervalSet::new());
                }
                if machines[m].is_empty() {
                    if tried_empty {
                        continue;
                    }
                    tried_empty = true;
                }
                if peak_with(self.inst, &machines[m], j) > self.inst.g() {
                    continue;
                }
                let before = sets[m].measure();
                let saved = sets[m].clone();
                sets[m].insert(iv);
                let marginal = sets[m].measure() - before;
                if used + marginal <= self.budget {
                    machines[m].push(j);
                    self.dfs(j + 1, accepted + 1, used + marginal, machines, sets)?;
                    machines[m].pop();
                }
                sets[m] = saved;
                if machines[m].is_empty() && m == machines.len() - 1 {
                    machines.pop();
                    sets.pop();
                }
            }
            Ok(())
        }
    }
    let mut search = Search {
        inst,
        budget,
        best: 0,
        nodes: 0,
        limit: node_limit,
    };
    search.dfs(0, 0, 0, &mut Vec::new(), &mut Vec::new())?;
    Ok(search.best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abt_core::Job;

    fn interval_inst(ivs: &[(i64, i64)], g: usize) -> Instance {
        Instance::new(ivs.iter().map(|&(a, b)| Job::interval(a, b)).collect(), g).unwrap()
    }

    #[test]
    fn zero_budget_accepts_nothing() {
        let inst = interval_inst(&[(0, 3), (1, 4)], 2);
        let s = budgeted_greedy(&inst, 0).unwrap();
        s.validate(&inst, 0).unwrap();
        assert_eq!(s.accepted(), 0);
    }

    #[test]
    fn ample_budget_accepts_everything() {
        let inst = interval_inst(&[(0, 3), (1, 4), (5, 8)], 2);
        let s = budgeted_greedy(&inst, 100).unwrap();
        s.validate(&inst, 100).unwrap();
        assert_eq!(s.accepted(), 3);
    }

    #[test]
    fn greedy_prefers_cheap_marginals() {
        // Budget 4: the overlapping pair shares one machine (span 4) and
        // both fit; the far job would cost 3 more.
        let inst = interval_inst(&[(0, 4), (1, 4), (10, 13)], 2);
        let s = budgeted_greedy(&inst, 4).unwrap();
        s.validate(&inst, 4).unwrap();
        assert_eq!(s.accepted(), 2);
    }

    #[test]
    fn exact_dominates_greedy_on_pseudorandom() {
        let mut state = 0xB0B0u64;
        let mut next = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        for _ in 0..15 {
            let n = 3 + next(5) as usize;
            let g = 1 + next(3) as usize;
            let mut ivs = Vec::new();
            for _ in 0..n {
                let r = next(10) as i64;
                ivs.push((r, r + 1 + next(5) as i64));
            }
            let inst = interval_inst(&ivs, g);
            let budget = 1 + next(15) as i64;
            let greedy = budgeted_greedy(&inst, budget).unwrap();
            greedy.validate(&inst, budget).unwrap();
            let exact = budgeted_exact(&inst, budget, 10_000_000).unwrap();
            assert!(greedy.accepted() <= exact, "greedy cannot beat exact");
        }
    }

    #[test]
    fn budget_violation_detected_by_validator() {
        let inst = interval_inst(&[(0, 5), (6, 9)], 1);
        let s = BudgetedSchedule {
            machines: vec![vec![0], vec![1]],
        };
        assert!(s.validate(&inst, 7).is_err());
        s.validate(&inst, 8).unwrap();
    }

    #[test]
    fn rejects_flexible() {
        let inst = Instance::from_triples([(0, 9, 2)], 1).unwrap();
        assert!(budgeted_greedy(&inst, 5).is_err());
        assert!(budgeted_exact(&inst, 5, 1000).is_err());
    }
}

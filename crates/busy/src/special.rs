//! Special instance classes of the busy-time problem (§1 footnote 1 and
//! the related-work algorithms the paper builds on):
//!
//! * **Proper instances** (no window strictly contains another):
//!   FirstFit in release order is 2-approximate [Flammini et al.].
//! * **Clique instances** (all windows share a time point): greedy by
//!   length is 2-approximate [Flammini et al.].
//! * **Proper cliques** (both at once): an exact dynamic program
//!   [Mertzios et al. 12] — sort by release; an optimal solution groups
//!   jobs into *consecutive* batches of `g`, so a 1-D DP over prefixes
//!   suffices.
//! * **Laminar instances** (any two windows nested or disjoint): the
//!   greedy that packs each laminar chain top-down is optimal
//!   [Khandekar et al. 9]; we implement the chain-peeling variant and
//!   validate optimality against branch and bound on small inputs.

use crate::firstfit::{first_fit, FirstFitOrder};
use abt_core::{BusySchedule, Error, Instance, JobId, Result};

/// Whether no job's window strictly contains another's (a *proper*
/// instance; equal windows are allowed). Strict containment means
/// containment with at least one strict endpoint inequality.
pub fn is_proper(inst: &Instance) -> bool {
    let jobs = inst.jobs();
    jobs.iter().all(|a| {
        jobs.iter().all(|b| {
            let contains = a.release <= b.release && b.deadline <= a.deadline;
            let strict = a.release < b.release || b.deadline < a.deadline;
            !(contains && strict)
        })
    })
}

/// Whether all windows share a common time point (a *clique* instance).
pub fn is_clique(inst: &Instance) -> bool {
    if inst.is_empty() {
        return true;
    }
    let latest_start = inst.jobs().iter().map(|j| j.release).max().unwrap();
    let earliest_end = inst.jobs().iter().map(|j| j.deadline).min().unwrap();
    latest_start < earliest_end
}

/// Whether any two windows are nested or disjoint (a *laminar* instance).
pub fn is_laminar(inst: &Instance) -> bool {
    let jobs = inst.jobs();
    jobs.iter().all(|a| {
        jobs.iter().all(|b| {
            let aw = a.window();
            let bw = b.window();
            !aw.overlaps(&bw) || aw.contains_interval(&bw) || bw.contains_interval(&aw)
        })
    })
}

/// 2-approximation for proper interval instances: FirstFit by release
/// (footnote 1). Errors if the instance is not proper or not interval.
pub fn proper_greedy(inst: &Instance) -> Result<BusySchedule> {
    if !is_proper(inst) {
        return Err(Error::Unsupported(
            "proper_greedy requires a proper instance".into(),
        ));
    }
    first_fit(inst, FirstFitOrder::ByRelease)
}

/// 2-approximation for clique interval instances: greedy by length
/// descending (footnote 1 — on cliques FirstFit's bundles are cliques too,
/// so first-fit by length is exactly the paper's greedy).
pub fn clique_greedy(inst: &Instance) -> Result<BusySchedule> {
    if !is_clique(inst) {
        return Err(Error::Unsupported(
            "clique_greedy requires a clique instance".into(),
        ));
    }
    first_fit(inst, FirstFitOrder::LengthDesc)
}

/// Exact algorithm for **proper clique** interval instances \[12\]: sort by
/// release; some optimal solution partitions the sorted order into
/// consecutive groups of at most `g`, because in a proper clique both the
/// release times and the deadlines are sorted the same way, so exchanging
/// two jobs between bundles never helps. DP over prefixes:
/// `best[i] = min over k ≤ g of best[i-k] + span(jobs[i-k..i])`.
pub fn proper_clique_exact(inst: &Instance) -> Result<BusySchedule> {
    if !inst.is_interval_instance() {
        return Err(Error::Unsupported(
            "proper_clique_exact requires interval jobs".into(),
        ));
    }
    if !is_proper(inst) || !is_clique(inst) {
        return Err(Error::Unsupported(
            "proper_clique_exact requires a proper clique instance".into(),
        ));
    }
    let mut ids: Vec<JobId> = (0..inst.len()).collect();
    ids.sort_by_key(|&j| (inst.job(j).release, inst.job(j).deadline, j));
    let n = ids.len();
    let g = inst.g();
    // Span of the consecutive group ids[a..b): proper ⇒ releases and
    // deadlines both non-decreasing ⇒ span = max deadline − min release
    // = d(ids[b-1]) − r(ids[a]) (the union is one interval: clique).
    let group_span =
        |a: usize, b: usize| -> i64 { inst.job(ids[b - 1]).deadline - inst.job(ids[a]).release };
    let mut best = vec![i64::MAX; n + 1];
    let mut cut = vec![0usize; n + 1];
    best[0] = 0;
    for i in 1..=n {
        for k in 1..=g.min(i) {
            let cand = best[i - k].saturating_add(group_span(i - k, i));
            if cand < best[i] {
                best[i] = cand;
                cut[i] = i - k;
            }
        }
    }
    let mut parts: Vec<Vec<JobId>> = Vec::new();
    let mut i = n;
    while i > 0 {
        let a = cut[i];
        parts.push(ids[a..i].to_vec());
        i = a;
    }
    parts.reverse();
    Ok(BusySchedule::from_interval_partition(inst, parts))
}

/// Optimal-in-practice greedy for **laminar** interval instances: peel
/// maximal chains of nested windows, outermost first, and stack `g` chains
/// per machine. Each chain is a track (within a laminar family, a chain's
/// members are nested — we instead peel *disjoint-support* groups):
/// concretely, repeatedly take, among remaining jobs, a maximal set of
/// pairwise-disjoint windows chosen outermost-first, and bundle `g` such
/// sets per machine (the laminar analogue of GreedyTracking, exact on
/// laminar inputs per Khandekar et al.).
pub fn laminar_solve(inst: &Instance) -> Result<BusySchedule> {
    if !is_laminar(inst) {
        return Err(Error::Unsupported(
            "laminar_solve requires a laminar instance".into(),
        ));
    }
    if !inst.is_interval_instance() {
        return Err(Error::Unsupported(
            "laminar_solve requires interval jobs".into(),
        ));
    }
    let g = inst.g();
    let mut remaining: Vec<JobId> = (0..inst.len()).collect();
    // Outermost-first: sort by (start asc, end desc); a "layer" greedily
    // takes the next job whose window is disjoint from the layer so far,
    // always preferring the outermost available window.
    remaining.sort_by_key(|&j| {
        let w = inst.job(j).window();
        (w.start, std::cmp::Reverse(w.end), j)
    });
    let mut layers: Vec<Vec<JobId>> = Vec::new();
    while !remaining.is_empty() {
        let mut layer: Vec<JobId> = Vec::new();
        let mut frontier = i64::MIN;
        let mut rest = Vec::new();
        for &j in &remaining {
            let w = inst.job(j).window();
            if w.start >= frontier {
                frontier = w.end;
                layer.push(j);
            } else {
                rest.push(j);
            }
        }
        remaining = rest;
        layers.push(layer);
    }
    let mut parts: Vec<Vec<JobId>> = Vec::new();
    for (i, layer) in layers.iter().enumerate() {
        if i % g == 0 {
            parts.push(Vec::new());
        }
        parts.last_mut().unwrap().extend_from_slice(layer);
    }
    Ok(BusySchedule::from_interval_partition(inst, parts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_busy_time;
    use abt_core::{busy_lower_bounds, within_factor, Job};

    fn interval_inst(ivs: &[(i64, i64)], g: usize) -> Instance {
        Instance::new(ivs.iter().map(|&(a, b)| Job::interval(a, b)).collect(), g).unwrap()
    }

    #[test]
    fn class_predicates() {
        let proper = interval_inst(&[(0, 5), (4, 9), (8, 13)], 2);
        assert!(is_proper(&proper));
        assert!(!is_clique(&proper));
        let clique = interval_inst(&[(0, 5), (2, 9), (4, 6)], 2);
        assert!(is_clique(&clique));
        assert!(!is_proper(&clique));
        let laminar = interval_inst(&[(0, 10), (1, 4), (5, 9), (2, 3)], 2);
        assert!(is_laminar(&laminar));
        assert!(!is_laminar(&proper));
        let pc = interval_inst(&[(0, 5), (1, 6), (2, 7)], 2);
        assert!(is_proper(&pc) && is_clique(&pc));
    }

    #[test]
    fn proper_clique_dp_matches_exact() {
        let mut state = 0x3C3C3Cu64;
        let mut next = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        for trial in 0..20 {
            // Staircase through a common point: starts ascend, ends ascend,
            // all windows cross t = 100.
            let n = 2 + next(7) as usize;
            let g = 1 + next(3) as usize;
            let mut start = 0i64;
            let mut end = 101i64;
            let mut ivs = Vec::new();
            for _ in 0..n {
                start += 1 + next(4) as i64;
                end += 1 + next(4) as i64;
                ivs.push((start, end));
            }
            let inst = interval_inst(&ivs, g);
            assert!(is_proper(&inst) && is_clique(&inst), "trial {trial}");
            let dp = proper_clique_exact(&inst).unwrap();
            dp.validate(&inst).unwrap();
            let bnb = exact_busy_time(&inst, Some(10_000_000)).unwrap();
            assert_eq!(
                dp.total_busy_time(&inst),
                bnb.cost,
                "trial {trial} on {ivs:?} g={g}"
            );
        }
    }

    #[test]
    fn clique_greedy_two_approx() {
        let mut state = 0x11AA11u64;
        let mut next = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        for _ in 0..15 {
            let n = 3 + next(8) as usize;
            let g = 1 + next(3) as usize;
            let mut ivs = Vec::new();
            for _ in 0..n {
                let a = next(50) as i64;
                let b = 51 + next(50) as i64;
                ivs.push((a, b));
            }
            let inst = interval_inst(&ivs, g);
            let s = clique_greedy(&inst).unwrap();
            s.validate(&inst).unwrap();
            let lb = busy_lower_bounds(&inst).best();
            assert!(within_factor(s.total_busy_time(&inst), 2, lb));
        }
    }

    #[test]
    fn laminar_solver_matches_exact_on_small() {
        let cases = [
            vec![(0, 10), (1, 4), (5, 9), (2, 3), (6, 8)],
            vec![(0, 20), (0, 20), (1, 9), (11, 19), (2, 5), (12, 15)],
            vec![(0, 6), (8, 14), (0, 6), (9, 13), (1, 5)],
        ];
        for ivs in cases {
            for g in 1..=3 {
                let inst = interval_inst(&ivs, g);
                assert!(is_laminar(&inst));
                let s = laminar_solve(&inst).unwrap();
                s.validate(&inst).unwrap();
                let bnb = exact_busy_time(&inst, Some(10_000_000)).unwrap();
                assert_eq!(
                    s.total_busy_time(&inst),
                    bnb.cost,
                    "laminar greedy should be optimal on {ivs:?} g={g}"
                );
            }
        }
    }

    #[test]
    fn wrong_class_rejected() {
        let proper = interval_inst(&[(0, 5), (4, 9), (8, 13)], 2);
        assert!(clique_greedy(&proper).is_err());
        assert!(proper_clique_exact(&proper).is_err());
        assert!(laminar_solve(&proper).is_err());
        let clique = interval_inst(&[(0, 5), (2, 9), (4, 6)], 2);
        assert!(proper_greedy(&clique).is_err());
    }
}

//! Minimum-span placement: busy time with **unbounded `g`** (`OPT_∞`).
//!
//! The flexible-job pipeline (§4.3) first fixes every job's start time so
//! that the projection ("shadow") of the jobs onto the time axis is
//! minimal; the paper invokes Khandekar et al.'s polynomial DP for this as
//! a black box. We implement an exact solver from first principles via a
//! covering reduction (DESIGN.md §5.3):
//!
//! **Reduction.** With unbounded capacity, minimizing total busy time
//! equals choosing disjoint intervals of minimum total length such that
//! every job *fits* one of them, where
//! `fits(j, [u,v)) ⇔ min(d_j, v) − max(r_j, u) ≥ p_j`. (From a schedule,
//! take the busy components; conversely, place each job anywhere inside its
//! chosen interval — the union's components only shrink the cost.)
//!
//! **Canonical form.** Process intervals left to right. The unserved job
//! `j*` with the smallest `c_j = d_j − p_j` must be served by the next
//! interval (later intervals start too late), and that interval's start can
//! be pushed right to exactly `u = c_{j*}`: pushing right never increases
//! the length (`v(u) = max_j (max(r_j,u) + p_j)` grows at most as fast as
//! `u`), keeps every served job feasible while `u ≤ min c_j` over the
//! served set, and a collision with the next interval just merges them.
//! Once `u` is fixed, only the `O(n)` values `v ∈ {max(r_j,u) + p_j}` can
//! be optimal right endpoints, and an interval should serve *every* job
//! that fits it (capacity is unbounded). The search memoizes on
//! `(frontier, unserved set)`.

#![allow(clippy::type_complexity)] // the memo key/value is a documented pair

use abt_core::{Error, Instance, Interval, IntervalSet, Result, Time};
use std::collections::HashMap;

/// A placement of all jobs: chosen start times, the busy region, its cost.
#[derive(Debug, Clone)]
pub struct SpanPlacement {
    /// `starts[j]` = chosen start of job `j`.
    pub starts: Vec<Time>,
    /// The union of the placed run intervals.
    pub busy: IntervalSet,
    /// Measure of `busy` (total busy time with unbounded `g`).
    pub cost: i64,
    /// Whether the solver guarantees optimality.
    pub exact: bool,
}

const INF: i64 = i64::MAX / 4;

/// Exact minimum-span placement. Exponential worst case (memoized over
/// job subsets), so restricted to `n ≤ 127`; intended for benchmark-scale
/// instances. Use [`span_greedy`] beyond that.
pub fn span_exact(inst: &Instance) -> Result<SpanPlacement> {
    let n = inst.len();
    if n == 0 {
        return Ok(SpanPlacement {
            starts: vec![],
            busy: IntervalSet::new(),
            cost: 0,
            exact: true,
        });
    }
    if n > 127 {
        return Err(Error::Unsupported(format!(
            "span_exact supports at most 127 jobs, got {n}; use span_greedy"
        )));
    }
    let c: Vec<Time> = inst.jobs().iter().map(|j| j.latest_start()).collect();

    struct Ctx<'a> {
        inst: &'a Instance,
        c: Vec<Time>,
        memo: HashMap<(Time, u128), (i64, Option<(Time, Time)>)>,
    }
    impl Ctx<'_> {
        /// Returns (min cost, first interval chosen) for serving `mask`
        /// with all intervals starting at ≥ `frontier`.
        fn solve(&mut self, frontier: Time, mask: u128) -> (i64, Option<(Time, Time)>) {
            if mask == 0 {
                return (0, None);
            }
            if let Some(&hit) = self.memo.get(&(frontier, mask)) {
                return hit;
            }
            // Forced job: smallest c among unserved.
            let jmin = (0..self.inst.len())
                .filter(|&j| mask >> j & 1 == 1)
                .min_by_key(|&j| (self.c[j], j))
                .unwrap();
            let u = self.c[jmin];
            if u < frontier {
                self.memo.insert((frontier, mask), (INF, None));
                return (INF, None);
            }
            // Candidate right endpoints: requirements of unserved jobs.
            let req = |j: usize| -> Time {
                let job = self.inst.job(j);
                job.release.max(u) + job.length
            };
            let vmin = req(jmin);
            let mut cands: Vec<Time> = (0..self.inst.len())
                .filter(|&j| mask >> j & 1 == 1)
                .map(req)
                .filter(|&v| v >= vmin)
                .collect();
            cands.sort_unstable();
            cands.dedup();
            let mut best = (INF, None);
            for &v in &cands {
                let mut served = 0u128;
                for j in 0..self.inst.len() {
                    if mask >> j & 1 == 1 && req(j) <= v {
                        served |= 1 << j;
                    }
                }
                let (rest, _) = self.solve(v, mask & !served);
                if rest < INF {
                    let cost = (v - u) + rest;
                    if cost < best.0 {
                        best = (cost, Some((u, v)));
                    }
                }
            }
            self.memo.insert((frontier, mask), best);
            best
        }
    }

    let mut ctx = Ctx {
        inst,
        c,
        memo: HashMap::new(),
    };
    let full = if n == 128 {
        u128::MAX
    } else {
        (1u128 << n) - 1
    };
    let lo = inst.min_release();
    let (cost, _) = ctx.solve(lo, full);
    debug_assert!(cost < INF, "every instance is feasible with unbounded g");

    // Walk the memo to reconstruct the chosen intervals.
    let mut intervals: Vec<Interval> = Vec::new();
    let mut frontier = lo;
    let mut mask = full;
    while mask != 0 {
        let (_, first) = ctx.solve(frontier, mask);
        let (u, v) = first.expect("non-empty mask yields an interval");
        intervals.push(Interval::new(u, v));
        let mut served = 0u128;
        for j in 0..n {
            if mask >> j & 1 == 1 {
                let job = inst.job(j);
                if job.release.max(u) + job.length <= v {
                    served |= 1 << j;
                }
            }
        }
        mask &= !served;
        frontier = v;
    }
    let placement = place_into(inst, &intervals);
    debug_assert_eq!(
        placement.cost, cost,
        "placed union must match the covering optimum"
    );
    Ok(SpanPlacement {
        exact: true,
        ..placement
    })
}

/// Greedy heuristic for large instances: serve the most urgent job with a
/// minimal interval, extending while an extension is locally profitable
/// (extension cost < length of the job it absorbs).
pub fn span_greedy(inst: &Instance) -> SpanPlacement {
    let n = inst.len();
    let mut unserved: Vec<usize> = (0..n).collect();
    unserved.sort_by_key(|&j| (inst.job(j).latest_start(), j));
    let mut intervals: Vec<Interval> = Vec::new();
    let mut frontier = inst.min_release();
    let i = 0;
    while i < unserved.len() {
        let jmin = unserved[i];
        let u = inst.job(jmin).latest_start().max(frontier);
        let req = |j: usize| -> Time { inst.job(j).release.max(u) + inst.job(j).length };
        let mut v = req(jmin);
        loop {
            // Absorb any remaining job whose marginal extension is cheaper
            // than its own length (it would otherwise cost ≥ p_j later).
            let candidate = unserved[i..]
                .iter()
                .copied()
                .filter(|&j| {
                    let r = req(j);
                    r > v && inst.job(j).latest_start() >= u && r - v < inst.job(j).length
                })
                .min_by_key(|&j| req(j));
            match candidate {
                Some(j) => v = req(j),
                None => break,
            }
        }
        intervals.push(Interval::new(u, v));
        frontier = v;
        // Drop all served jobs.
        let served: Vec<usize> = unserved[i..]
            .iter()
            .copied()
            .filter(|&j| inst.job(j).latest_start() >= u && req(j) <= v)
            .collect();
        unserved.retain(|j| !served.contains(j));
        // `i` stays: unserved[i] is now the next most-urgent job.
    }
    let _ = i;
    SpanPlacement {
        exact: false,
        ..place_into(inst, &intervals)
    }
}

/// Exact if small enough, else greedy.
pub fn span_place(inst: &Instance) -> SpanPlacement {
    if inst.len() <= 24 {
        span_exact(inst).expect("n ≤ 24 is supported")
    } else {
        match span_exact(inst) {
            Ok(p) => p,
            Err(_) => span_greedy(inst),
        }
    }
}

/// Places every job leftmost inside the first chosen interval it fits,
/// returning starts and the realized busy union.
fn place_into(inst: &Instance, intervals: &[Interval]) -> SpanPlacement {
    let mut starts = vec![0; inst.len()];
    for (j, job) in inst.jobs().iter().enumerate() {
        let iv = intervals
            .iter()
            .find(|iv| job.release.max(iv.start) + job.length <= job.deadline.min(iv.end))
            .unwrap_or_else(|| panic!("job {j} fits no chosen interval"));
        starts[j] = job.release.max(iv.start);
    }
    let busy: IntervalSet = inst
        .jobs()
        .iter()
        .zip(&starts)
        .map(|(job, &s)| Interval::new(s, s + job.length))
        .collect();
    let cost = busy.measure();
    SpanPlacement {
        starts,
        busy,
        cost,
        exact: false,
    }
}

/// Brute-force optimum over all integer start combinations (testing only;
/// exponential in `n` and the horizon).
pub fn span_brute_force(inst: &Instance) -> i64 {
    fn rec(inst: &Instance, j: usize, placed: &mut Vec<Interval>, best: &mut i64) {
        if j == inst.len() {
            let m = IntervalSet::from_intervals(placed.iter().copied()).measure();
            *best = (*best).min(m);
            return;
        }
        let job = inst.job(j);
        for s in job.release..=job.latest_start() {
            placed.push(Interval::new(s, s + job.length));
            rec(inst, j + 1, placed, best);
            placed.pop();
        }
    }
    let mut best = i64::MAX;
    rec(inst, 0, &mut Vec::new(), &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn validate(inst: &Instance, p: &SpanPlacement) {
        for (j, &s) in p.starts.iter().enumerate() {
            assert!(
                inst.job(j).run_at(s).is_some(),
                "job {j} start {s} infeasible"
            );
        }
        let busy: IntervalSet = inst
            .jobs()
            .iter()
            .zip(&p.starts)
            .map(|(job, &s)| Interval::new(s, s + job.length))
            .collect();
        assert_eq!(busy.measure(), p.cost);
    }

    #[test]
    fn interval_jobs_have_fixed_span() {
        let inst = Instance::from_triples([(0, 4, 4), (2, 6, 4), (10, 12, 2)], 1).unwrap();
        let p = span_exact(&inst).unwrap();
        validate(&inst, &p);
        assert_eq!(p.cost, 6 + 2);
    }

    #[test]
    fn flexible_jobs_consolidate() {
        // Two flexible unit jobs with overlapping windows stack on one point.
        let inst = Instance::from_triples([(0, 10, 2), (0, 10, 2)], 1).unwrap();
        let p = span_exact(&inst).unwrap();
        validate(&inst, &p);
        assert_eq!(p.cost, 2);
    }

    #[test]
    fn chains_pack_tight() {
        // Three length-2 jobs with staggered windows: optimal span 4 by
        // overlapping neighbours.
        let inst = Instance::from_triples([(0, 4, 2), (2, 6, 2), (4, 8, 2)], 1).unwrap();
        let p = span_exact(&inst).unwrap();
        validate(&inst, &p);
        assert_eq!(p.cost, span_brute_force(&inst));
    }

    #[test]
    fn exact_matches_brute_force_on_pseudorandom_instances() {
        let mut state = 0xABCDEFu64;
        let mut next = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        for trial in 0..40 {
            let n = 2 + next(4) as usize; // 2..=5 jobs
            let mut triples = Vec::new();
            for _ in 0..n {
                let r = next(6) as i64;
                let len = 1 + next(4) as i64;
                let d = r + len + next(5) as i64;
                triples.push((r, d, len));
            }
            let inst = Instance::from_triples(triples.clone(), 1).unwrap();
            let p = span_exact(&inst).unwrap();
            validate(&inst, &p);
            let bf = span_brute_force(&inst);
            assert_eq!(p.cost, bf, "trial {trial} on {triples:?}");
        }
    }

    #[test]
    fn greedy_is_feasible_and_not_better_than_exact() {
        let mut state = 0x5EEDu64;
        let mut next = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        for _ in 0..20 {
            let n = 3 + next(5) as usize;
            let mut triples = Vec::new();
            for _ in 0..n {
                let r = next(10) as i64;
                let len = 1 + next(5) as i64;
                let d = r + len + next(6) as i64;
                triples.push((r, d, len));
            }
            let inst = Instance::from_triples(triples, 1).unwrap();
            let ge = span_greedy(&inst);
            validate(&inst, &ge);
            let ex = span_exact(&inst).unwrap();
            assert!(ge.cost >= ex.cost);
        }
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(vec![], 2).unwrap();
        let p = span_exact(&inst).unwrap();
        assert_eq!(p.cost, 0);
    }
}

//! Busy time with job **widths** (the Khandekar et al. generalization the
//! paper discusses in §1): each job demands `w_j ≤ g` units of its
//! machine's capacity, and the running jobs' total width may not exceed
//! `g`. The paper's unit-width results are the special case `w_j = 1`.
//!
//! The 5-approximation splits jobs by width: **wide** jobs (`w_j > g/2`)
//! cannot share a machine pairwise, so each gets its own machine — that
//! costs exactly their span sum, at most 2× the optimum restricted to wide
//! jobs (any machine runs at most one wide job at a time, making wide jobs
//! a unit-capacity sub-instance). **Narrow** jobs (`w_j ≤ g/2`) go through
//! width-aware FirstFit in non-increasing length order.

use abt_core::{Error, Interval, IntervalSet, Job, JobId, Result, Time};

/// A job with a capacity demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WideJob {
    /// The underlying (interval) job.
    pub job: Job,
    /// Capacity demand `1 ≤ w ≤ g`.
    pub width: usize,
}

/// An instance of width-demand interval jobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WidthInstance {
    jobs: Vec<WideJob>,
    g: usize,
}

impl WidthInstance {
    /// Builds an instance; every job must be an interval job with
    /// `1 ≤ width ≤ g`.
    pub fn new(jobs: Vec<WideJob>, g: usize) -> Result<Self> {
        if g == 0 {
            return Err(Error::InvalidInstance(
                "capacity g must be at least 1".into(),
            ));
        }
        for (i, wj) in jobs.iter().enumerate() {
            if !wj.job.is_interval() {
                return Err(Error::InvalidJob {
                    job: i,
                    reason: "width-demand scheduling requires interval jobs".into(),
                });
            }
            if wj.width == 0 || wj.width > g {
                return Err(Error::InvalidJob {
                    job: i,
                    reason: format!("width {} outside 1..={g}", wj.width),
                });
            }
        }
        Ok(WidthInstance { jobs, g })
    }

    /// The jobs.
    pub fn jobs(&self) -> &[WideJob] {
        &self.jobs
    }

    /// Machine capacity.
    pub fn g(&self) -> usize {
        self.g
    }

    /// The width-weighted mass bound `⌈Σ w_j·p_j / g⌉ ≤ OPT`.
    pub fn mass_bound(&self) -> i64 {
        let mass: i64 = self
            .jobs
            .iter()
            .map(|wj| wj.width as i64 * wj.job.length)
            .sum();
        (mass + self.g as i64 - 1) / self.g as i64
    }

    /// The span bound `Sp(J) ≤ OPT`.
    pub fn span_bound(&self) -> i64 {
        IntervalSet::from_intervals(self.jobs.iter().map(|wj| wj.job.window())).measure()
    }
}

/// A machine assignment for a width instance.
#[derive(Debug, Clone, Default)]
pub struct WidthSchedule {
    /// `machines[m]` = job ids on machine `m`.
    pub machines: Vec<Vec<JobId>>,
}

impl WidthSchedule {
    /// Total busy time (union span per machine).
    pub fn total_busy_time(&self, inst: &WidthInstance) -> i64 {
        self.machines
            .iter()
            .map(|ids| {
                IntervalSet::from_intervals(ids.iter().map(|&j| inst.jobs()[j].job.window()))
                    .measure()
            })
            .sum()
    }

    /// Validates: every job exactly once; per machine, total running width
    /// never exceeds `g`.
    pub fn validate(&self, inst: &WidthInstance) -> Result<()> {
        let mut seen = vec![false; inst.jobs().len()];
        for (m, ids) in self.machines.iter().enumerate() {
            let mut events: Vec<(Time, i64)> = Vec::new();
            for &j in ids {
                if seen[j] {
                    return Err(Error::InvalidSchedule(format!("job {j} scheduled twice")));
                }
                seen[j] = true;
                let wj = inst.jobs()[j];
                events.push((wj.job.release, wj.width as i64));
                events.push((wj.job.deadline, -(wj.width as i64)));
            }
            events.sort_unstable();
            let mut load = 0i64;
            for (_, d) in events {
                load += d;
                if load > inst.g() as i64 {
                    return Err(Error::InvalidSchedule(format!(
                        "machine {m} exceeds width capacity {}",
                        inst.g()
                    )));
                }
            }
        }
        if let Some(j) = seen.iter().position(|&s| !s) {
            return Err(Error::InvalidSchedule(format!("job {j} unscheduled")));
        }
        Ok(())
    }
}

/// The narrow/wide FirstFit 5-approximation.
pub fn width_first_fit(inst: &WidthInstance) -> WidthSchedule {
    let g = inst.g() as i64;
    let mut ids: Vec<JobId> = (0..inst.jobs().len()).collect();
    ids.sort_by_key(|&j| {
        let wj = inst.jobs()[j];
        (std::cmp::Reverse(wj.job.length), wj.job.release, j)
    });

    let mut machines: Vec<Vec<JobId>> = Vec::new();
    // Wide jobs: one machine each.
    for &j in ids.iter().filter(|&&j| 2 * inst.jobs()[j].width as i64 > g) {
        machines.push(vec![j]);
    }
    // Narrow jobs: width-aware FirstFit into fresh machines.
    let narrow_start = machines.len();
    for &j in ids
        .iter()
        .filter(|&&j| 2 * inst.jobs()[j].width as i64 <= g)
    {
        let wj = inst.jobs()[j];
        let iv = wj.job.window();
        let slot = machines[narrow_start..]
            .iter()
            .position(|ids| fits_width(inst, ids, iv, wj.width as i64))
            .map(|p| p + narrow_start);
        match slot {
            Some(m) => machines[m].push(j),
            None => machines.push(vec![j]),
        }
    }
    WidthSchedule { machines }
}

/// Whether adding a `width`-wide job over `iv` keeps the machine within g.
fn fits_width(inst: &WidthInstance, ids: &[JobId], iv: Interval, width: i64) -> bool {
    let mut events: Vec<(Time, i64)> = Vec::new();
    let mut base = 0i64;
    for &j in ids {
        let wj = inst.jobs()[j];
        let o = wj.job.window();
        if !o.overlaps(&iv) {
            continue;
        }
        if o.start <= iv.start {
            base += wj.width as i64;
        } else {
            events.push((o.start, wj.width as i64));
        }
        if o.end < iv.end {
            events.push((o.end, -(wj.width as i64)));
        }
    }
    events.sort_unstable();
    let mut cur = base;
    let mut peak = base;
    for (_, d) in events {
        cur += d;
        peak = peak.max(cur);
    }
    peak + width <= inst.g() as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use abt_core::within_factor;

    fn wj(r: i64, d: i64, w: usize) -> WideJob {
        WideJob {
            job: Job::interval(r, d),
            width: w,
        }
    }

    #[test]
    fn construction_validates() {
        assert!(WidthInstance::new(vec![wj(0, 5, 3)], 2).is_err()); // width > g
        assert!(WidthInstance::new(vec![wj(0, 5, 0)], 2).is_err());
        assert!(WidthInstance::new(
            vec![WideJob {
                job: Job::new(0, 9, 3),
                width: 1
            }],
            2
        )
        .is_err()); // flexible job
        assert!(WidthInstance::new(vec![wj(0, 5, 2)], 2).is_ok());
    }

    #[test]
    fn unit_widths_reduce_to_plain_firstfit_capacity() {
        let inst = WidthInstance::new(vec![wj(0, 4, 1), wj(0, 4, 1), wj(0, 4, 1)], 2).unwrap();
        let s = width_first_fit(&inst);
        s.validate(&inst).unwrap();
        assert_eq!(s.total_busy_time(&inst), 8); // 2 machines × 4
    }

    #[test]
    fn wide_jobs_get_own_machines() {
        // Two width-3 jobs (g = 4) overlap: they cannot share.
        let inst = WidthInstance::new(vec![wj(0, 6, 3), wj(2, 8, 3), wj(0, 8, 1)], 4).unwrap();
        let s = width_first_fit(&inst);
        s.validate(&inst).unwrap();
        // wide: [0,6) and [2,8) on own machines; narrow [0,8) on its own.
        assert_eq!(s.total_busy_time(&inst), 6 + 6 + 8);
    }

    #[test]
    fn narrow_jobs_pack_by_width() {
        // Four width-2 jobs over the same interval, g = 4: two per machine.
        let inst = WidthInstance::new(vec![wj(0, 5, 2), wj(0, 5, 2), wj(0, 5, 2), wj(0, 5, 2)], 4)
            .unwrap();
        let s = width_first_fit(&inst);
        s.validate(&inst).unwrap();
        assert_eq!(s.total_busy_time(&inst), 10);
    }

    #[test]
    fn five_approximation_on_pseudorandom_instances() {
        let mut state = 0xD1CEu64;
        let mut next = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        for _ in 0..30 {
            let n = 3 + next(10) as usize;
            let g = 2 + next(6) as usize;
            let mut jobs = Vec::new();
            for _ in 0..n {
                let r = next(20) as i64;
                let len = 1 + next(8) as i64;
                let w = 1 + next(g as u64) as usize;
                jobs.push(wj(r, r + len, w));
            }
            let inst = WidthInstance::new(jobs, g).unwrap();
            let s = width_first_fit(&inst);
            s.validate(&inst).unwrap();
            let lb = inst.mass_bound().max(inst.span_bound());
            assert!(
                within_factor(s.total_busy_time(&inst), 5, lb),
                "width FirstFit exceeded 5×LB"
            );
        }
    }

    #[test]
    fn capacity_violations_detected() {
        let inst = WidthInstance::new(vec![wj(0, 5, 3), wj(1, 4, 3)], 4).unwrap();
        let bad = WidthSchedule {
            machines: vec![vec![0, 1]],
        };
        assert!(bad.validate(&inst).is_err());
        let missing = WidthSchedule {
            machines: vec![vec![0]],
        };
        assert!(missing.validate(&inst).is_err());
        let dup = WidthSchedule {
            machines: vec![vec![0, 0], vec![1]],
        };
        assert!(dup.validate(&inst).is_err());
    }
}

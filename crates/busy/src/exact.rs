//! Exact busy time for interval jobs via branch-and-bound, used to measure
//! the approximation ratios the paper proves (the problem is NP-hard even
//! for `g = 2` [Winkler–Zhang], so this is for benchmark-scale instances).

use abt_core::{busy_lower_bounds, BusySchedule, Error, Instance, IntervalSet, JobId, Result};

/// Result of the exact busy-time solve.
#[derive(Debug, Clone)]
pub struct ExactBusy {
    /// An optimal schedule.
    pub schedule: BusySchedule,
    /// Its cost.
    pub cost: i64,
    /// Search nodes explored.
    pub nodes: u64,
}

/// Exact minimum busy time for an interval instance. Branch and bound over
/// "assign job to an existing bundle or open one new bundle", jobs in
/// non-increasing length order (strong symmetry breaking: only the first
/// empty bundle is tried).
pub fn exact_busy_time(inst: &Instance, node_limit: Option<u64>) -> Result<ExactBusy> {
    if !inst.is_interval_instance() {
        return Err(Error::Unsupported(
            "exact_busy_time requires interval jobs".into(),
        ));
    }
    let order = inst.ids_by_length_desc();
    let g = inst.g();
    let lb = busy_lower_bounds(inst).best();

    // Incumbent: each job on its own machine.
    let mut best_parts: Vec<Vec<JobId>> = order.iter().map(|&j| vec![j]).collect();
    let mut best_cost: i64 = inst.jobs().iter().map(|j| j.length).sum();

    struct Node {
        parts: Vec<Vec<JobId>>,
        sets: Vec<IntervalSet>,
        cost: i64,
    }
    struct Search<'a> {
        inst: &'a Instance,
        order: &'a [JobId],
        g: usize,
        lb: i64,
        best_cost: i64,
        best_parts: Vec<Vec<JobId>>,
        nodes: u64,
        limit: u64,
    }
    impl Search<'_> {
        fn dfs(&mut self, state: &mut Node, idx: usize) -> Result<()> {
            self.nodes += 1;
            if self.nodes > self.limit {
                return Err(Error::Unsupported(format!(
                    "exact busy-time search exceeded {} nodes",
                    self.limit
                )));
            }
            if state.cost >= self.best_cost || self.best_cost == self.lb {
                return Ok(());
            }
            if idx == self.order.len() {
                self.best_cost = state.cost;
                self.best_parts = state.parts.clone();
                return Ok(());
            }
            let job = self.order[idx];
            let iv = self.inst.job(job).window();
            let mut tried_empty = false;
            for b in 0..=state.parts.len() {
                if b == state.parts.len() {
                    if tried_empty {
                        break;
                    }
                    state.parts.push(Vec::new());
                    state.sets.push(IntervalSet::new());
                }
                if state.parts[b].is_empty() {
                    if tried_empty {
                        continue;
                    }
                    tried_empty = true;
                }
                // Capacity check within iv.
                let overlap = state.parts[b]
                    .iter()
                    .filter(|&&j2| self.inst.job(j2).window().overlaps(&iv))
                    .count();
                // Cheap necessary bound; the exact peak check follows.
                if overlap >= self.g && peak_with(self.inst, &state.parts[b], job) > self.g {
                    continue;
                }
                if peak_with(self.inst, &state.parts[b], job) > self.g {
                    continue;
                }
                let before = state.sets[b].measure();
                let saved_set = state.sets[b].clone();
                state.sets[b].insert(iv);
                let delta = state.sets[b].measure() - before;
                state.parts[b].push(job);
                state.cost += delta;
                self.dfs(state, idx + 1)?;
                state.cost -= delta;
                state.parts[b].pop();
                state.sets[b] = saved_set;
                if state.parts[b].is_empty() && b == state.parts.len() - 1 {
                    state.parts.pop();
                    state.sets.pop();
                }
            }
            Ok(())
        }
    }

    fn peak_with(inst: &Instance, bundle: &[JobId], extra: JobId) -> usize {
        let mut events: Vec<(i64, i32)> = Vec::new();
        for &j in bundle.iter().chain(std::iter::once(&extra)) {
            let w = inst.job(j).window();
            events.push((w.start, 1));
            events.push((w.end, -1));
        }
        events.sort_unstable();
        let mut cur = 0i32;
        let mut peak = 0i32;
        for (_, d) in events {
            cur += d;
            peak = peak.max(cur);
        }
        peak.max(0) as usize
    }

    // Trivial case: nothing to schedule.
    if inst.is_empty() {
        return Ok(ExactBusy {
            schedule: BusySchedule::new(),
            cost: 0,
            nodes: 0,
        });
    }

    let mut search = Search {
        inst,
        order: &order,
        g,
        lb,
        best_cost,
        best_parts: best_parts.clone(),
        nodes: 0,
        limit: node_limit.unwrap_or(u64::MAX),
    };
    let mut state = Node {
        parts: Vec::new(),
        sets: Vec::new(),
        cost: 0,
    };
    search.dfs(&mut state, 0)?;
    best_cost = search.best_cost;
    best_parts = search.best_parts;

    let schedule = BusySchedule::from_interval_partition(inst, best_parts);
    debug_assert_eq!(schedule.total_busy_time(inst), best_cost);
    Ok(ExactBusy {
        schedule,
        cost: best_cost,
        nodes: search.nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy_tracking::greedy_tracking;
    use abt_core::Job;

    fn interval_inst(ivs: &[(i64, i64)], g: usize) -> Instance {
        Instance::new(ivs.iter().map(|&(a, b)| Job::interval(a, b)).collect(), g).unwrap()
    }

    #[test]
    fn figure1_optimum() {
        // Fig. 1: 7 interval jobs, g = 3, optimal = 2 machines. Using the
        // figure's visual layout: one machine takes the long job with two
        // staggered rows, the other the rest.
        let ivs = [(0, 8), (0, 3), (2, 5), (5, 8), (0, 4), (3, 6), (5, 9)];
        let inst = interval_inst(&ivs, 3);
        let res = exact_busy_time(&inst, None).unwrap();
        res.schedule.validate(&inst).unwrap();
        assert!(res.cost <= 17);
        assert!(res.cost >= busy_lower_bounds(&inst).best());
        // Exact is no worse than GreedyTracking.
        let gt = greedy_tracking(&inst).unwrap().total_busy_time(&inst);
        assert!(res.cost <= gt);
    }

    #[test]
    fn identical_jobs_need_ceil_n_over_g_machines() {
        let inst = interval_inst(&[(0, 5); 7], 3);
        let res = exact_busy_time(&inst, None).unwrap();
        assert_eq!(res.cost, 15); // ⌈7/3⌉ = 3 machines × 5
    }

    #[test]
    fn disjoint_jobs_share_one_machine() {
        let inst = interval_inst(&[(0, 2), (3, 5), (6, 9)], 1);
        let res = exact_busy_time(&inst, None).unwrap();
        // Disjoint jobs cost the same on one machine or three; only the
        // total busy time is determined.
        assert_eq!(res.cost, 7);
    }

    #[test]
    fn node_limit() {
        let inst = interval_inst(&[(0, 3), (1, 4), (2, 5), (3, 6), (4, 7), (5, 8)], 2);
        assert!(matches!(
            exact_busy_time(&inst, Some(0)),
            Err(Error::Unsupported(_))
        ));
    }

    #[test]
    fn exact_at_most_heuristics_on_pseudorandom() {
        let mut state = 0xACE5u64;
        let mut next = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        for _ in 0..15 {
            let n = 3 + next(5) as usize;
            let g = 1 + next(3) as usize;
            let mut ivs = Vec::new();
            for _ in 0..n {
                let r = next(10) as i64;
                let len = 1 + next(5) as i64;
                ivs.push((r, r + len));
            }
            let inst = interval_inst(&ivs, g);
            let res = exact_busy_time(&inst, Some(5_000_000)).unwrap();
            res.schedule.validate(&inst).unwrap();
            assert!(res.cost >= busy_lower_bounds(&inst).best());
            let gt = greedy_tracking(&inst).unwrap().total_busy_time(&inst);
            assert!(res.cost <= gt);
        }
    }
}

//! # abt-busy
//!
//! Algorithms for the **busy time** problem (§4 of Chang–Khuller–Mukherjee,
//! SPAA 2014): partition jobs onto unboundedly many capacity-`g` machines,
//! scheduling non-preemptively, to minimize total busy (union) time.
//!
//! * [`tracks`] / [`greedy_tracking`](mod@greedy_tracking) — the paper's `GREEDYTRACKING`
//!   3-approximation (Theorem 5; tight by the Fig. 6 gadget).
//! * [`firstfit`] — the Flammini et al. 4-approximation baseline, plus the
//!   order-by-release variant for proper instances.
//! * [`kumar_rudra`](mod@kumar_rudra) / [`alicherry_bhatia`](mod@alicherry_bhatia) — the 2-approximations for
//!   interval jobs (Appendix A; tight by the Fig. 8 instance).
//! * [`span`] — exact / heuristic minimum-span placement (`OPT_∞`,
//!   substituting Khandekar et al.'s DP; DESIGN.md §5.3).
//! * [`flexible`] — the placement→interval pipeline (3-approx end to end
//!   with GreedyTracking, Theorem 5; 4 with KR/AB, Theorem 10).
//! * [`preemptive`] — §4.4: exact unbounded greedy and bounded-`g` 2-approx.
//! * [`maximization`] — the Mertzios et al. budgeted-throughput dual
//!   (§1.3 related work): maximize accepted jobs within a busy-time budget.
//! * [`online`] — the release-ordered online setting (§1.3 related work).
//! * [`widths`] — the Khandekar et al. width-demand generalization
//!   (narrow/wide FirstFit 5-approximation) discussed in §1.
//! * [`special`] — proper/clique/laminar classes: greedy 2-approximations
//!   and the exact proper-clique DP \[12\] / laminar solver \[9\].
//! * [`lp_rounding`] — the paper's busy-time LP (over demand-profile
//!   segments, solved through `abt-lp`'s certified simplex behind a
//!   supervised backend ladder) rounded to a 2-approximation vs the
//!   profile bound and a 4-approximation vs the LP value.
//! * [`exact`] — branch-and-bound optimum for ratio measurements.

#![warn(missing_docs)]

pub mod alicherry_bhatia;
pub mod exact;
pub mod firstfit;
pub mod flexible;
pub mod greedy_tracking;
pub mod kumar_rudra;
pub mod lp_rounding;
pub mod maximization;
pub mod online;
pub mod preemptive;
pub mod span;
pub mod special;
pub mod tracks;
pub mod widths;

pub use alicherry_bhatia::{alicherry_bhatia, alicherry_bhatia_run, AlicherryBhatiaRun};
pub use exact::{exact_busy_time, ExactBusy};
pub use firstfit::{first_fit, FirstFitOrder};
pub use flexible::{
    placement_from_starts, solve_flexible, solve_with_placement, FlexibleOutcome, IntervalAlgo,
};
pub use greedy_tracking::{
    greedy_tracking, greedy_tracking_run, greedy_tracking_seeded, GreedyTrackingRun,
};
pub use kumar_rudra::{kumar_rudra, kumar_rudra_run, KumarRudraRun};
pub use lp_rounding::{
    build_busy_lp, busy_lp_telemetry, busy_solve_latency_snapshot, lp_rounding_busy,
    lp_rounding_run, solve_busy_lp, BusyLpModel, BusyLpTelemetry, LpRoundingRun,
};
pub use maximization::{budgeted_exact, budgeted_greedy, BudgetedSchedule};
pub use online::{online_first_fit, OnlineScheduler};
pub use preemptive::{
    preemptive_bounded, preemptive_lower_bound, preemptive_unbounded, validate_unbounded,
    UnboundedPreemptive,
};
pub use span::{span_brute_force, span_exact, span_greedy, span_place, SpanPlacement};
pub use special::{
    clique_greedy, is_clique, is_laminar, is_proper, laminar_solve, proper_clique_exact,
    proper_greedy,
};
pub use widths::{width_first_fit, WideJob, WidthInstance, WidthSchedule};

//! The flexible-job pipeline (§4.3): place jobs to minimize their span
//! (unbounded-`g` solution), freeze the placement into an interval
//! instance, then run an interval-job algorithm.
//!
//! With `GREEDYTRACKING` as the interval algorithm this is the paper's
//! **3-approximation** for flexible jobs (Theorem 5 plus
//! `Sp(B_1) ≤ OPT_∞(J') ≤ OPT(J')`); with Kumar–Rudra / Alicherry–Bhatia
//! it is the 4-approximation of Theorem 10 (tight, Figs. 10–12).

use crate::alicherry_bhatia::alicherry_bhatia;
use crate::firstfit::{first_fit, FirstFitOrder};
use crate::greedy_tracking::greedy_tracking;
use crate::kumar_rudra::kumar_rudra;
use crate::lp_rounding::lp_rounding_busy;
use crate::span::{span_place, SpanPlacement};
use abt_core::{BusySchedule, Instance, Result, Time};

/// The interval-job algorithm used after placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntervalAlgo {
    /// Flammini et al.'s FirstFit (4-approx on interval jobs).
    FirstFit,
    /// The paper's GreedyTracking (3-approx end to end).
    GreedyTracking,
    /// Kumar–Rudra (2-approx on interval jobs; 4-approx end to end).
    KumarRudra,
    /// Alicherry–Bhatia (2-approx on interval jobs; 4-approx end to end).
    AlicherryBhatia,
    /// The paper's LP rounding (2-approx on interval jobs vs the profile
    /// bound, 4-approx vs its own LP value; 4-approx end to end).
    LpRounding,
}

impl IntervalAlgo {
    /// Runs this algorithm on an interval instance.
    pub fn run(&self, inst: &Instance) -> Result<BusySchedule> {
        match self {
            IntervalAlgo::FirstFit => first_fit(inst, FirstFitOrder::LengthDesc),
            IntervalAlgo::GreedyTracking => greedy_tracking(inst),
            IntervalAlgo::KumarRudra => kumar_rudra(inst),
            IntervalAlgo::AlicherryBhatia => alicherry_bhatia(inst),
            IntervalAlgo::LpRounding => lp_rounding_busy(inst),
        }
    }

    /// All variants, for sweeps.
    pub fn all() -> [IntervalAlgo; 5] {
        [
            IntervalAlgo::FirstFit,
            IntervalAlgo::GreedyTracking,
            IntervalAlgo::KumarRudra,
            IntervalAlgo::AlicherryBhatia,
            IntervalAlgo::LpRounding,
        ]
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            IntervalAlgo::FirstFit => "FirstFit",
            IntervalAlgo::GreedyTracking => "GreedyTracking",
            IntervalAlgo::KumarRudra => "KumarRudra",
            IntervalAlgo::AlicherryBhatia => "AlicherryBhatia",
            IntervalAlgo::LpRounding => "LpRounding",
        }
    }
}

/// Outcome of the flexible pipeline.
#[derive(Debug, Clone)]
pub struct FlexibleOutcome {
    /// The schedule (starts taken from the placement).
    pub schedule: BusySchedule,
    /// The span placement used (its cost is `OPT_∞` when `exact`).
    pub placement: SpanPlacement,
}

/// Solves a (possibly flexible) instance: minimum-span placement, then the
/// chosen interval algorithm.
pub fn solve_flexible(inst: &Instance, algo: IntervalAlgo) -> Result<FlexibleOutcome> {
    let placement = span_place(inst);
    solve_with_placement(inst, &placement, algo)
}

/// Same pipeline with an explicit placement — used by the gadget
/// experiments, which feed the paper's *adversarial* span-optimal
/// placements (Figs. 7, 9, 11).
pub fn solve_with_placement(
    inst: &Instance,
    placement: &SpanPlacement,
    algo: IntervalAlgo,
) -> Result<FlexibleOutcome> {
    let fixed = inst.fix_starts(&placement.starts)?;
    let fixed_schedule = algo.run(&fixed)?;
    // Rebind the bundles to the original instance: same job ids, the starts
    // are exactly the placement starts.
    let schedule = BusySchedule {
        bundles: fixed_schedule.bundles,
    };
    schedule.validate(inst)?;
    Ok(FlexibleOutcome {
        schedule,
        placement: placement.clone(),
    })
}

/// Convenience: place with an explicit starts vector.
pub fn placement_from_starts(inst: &Instance, starts: Vec<Time>) -> Result<SpanPlacement> {
    let fixed = inst.fix_starts(&starts)?; // validates
    let busy: abt_core::IntervalSet = fixed.jobs().iter().map(|j| j.window()).collect();
    let cost = busy.measure();
    Ok(SpanPlacement {
        starts,
        busy,
        cost,
        exact: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use abt_core::{busy_lower_bounds, within_factor};

    #[test]
    fn pipeline_runs_all_algorithms() {
        let inst = Instance::from_triples(
            [(0, 10, 3), (2, 8, 4), (5, 15, 2), (0, 4, 2), (9, 14, 5)],
            2,
        )
        .unwrap();
        for algo in IntervalAlgo::all() {
            let out = solve_flexible(&inst, algo).unwrap();
            out.schedule.validate(&inst).unwrap();
            let cost = out.schedule.total_busy_time(&inst);
            // Guarantees: GT ≤ 3·OPT, others ≤ 4·OPT; check against the
            // max of mass bound and OPT∞ (placement is exact here).
            let lb = busy_lower_bounds(&inst).mass.max(out.placement.cost);
            let factor = match algo {
                IntervalAlgo::GreedyTracking => 3,
                _ => 4,
            };
            assert!(
                within_factor(cost, factor, lb),
                "{} cost {cost} > {factor}×LB {lb}",
                algo.name()
            );
        }
    }

    #[test]
    fn interval_instances_pass_through() {
        let inst = Instance::new(
            vec![
                abt_core::Job::interval(0, 4),
                abt_core::Job::interval(2, 6),
                abt_core::Job::interval(5, 9),
            ],
            2,
        )
        .unwrap();
        let out = solve_flexible(&inst, IntervalAlgo::GreedyTracking).unwrap();
        // Placement of an interval instance is forced.
        assert_eq!(out.placement.cost, inst.interval_span().unwrap());
        out.schedule.validate(&inst).unwrap();
    }

    #[test]
    fn explicit_placement_is_respected() {
        let inst = Instance::from_triples([(0, 10, 2), (0, 10, 2)], 2).unwrap();
        // Adversarial: spread the two jobs apart.
        let placement = placement_from_starts(&inst, vec![0, 8]).unwrap();
        assert_eq!(placement.cost, 4);
        let out = solve_with_placement(&inst, &placement, IntervalAlgo::GreedyTracking).unwrap();
        assert_eq!(out.schedule.total_busy_time(&inst), 4);
        // The optimal placement stacks them: cost 2.
        let opt = solve_flexible(&inst, IntervalAlgo::GreedyTracking).unwrap();
        assert_eq!(opt.schedule.total_busy_time(&inst), 2);
    }

    #[test]
    fn bad_starts_rejected() {
        let inst = Instance::from_triples([(0, 5, 3)], 1).unwrap();
        assert!(placement_from_starts(&inst, vec![3]).is_err());
    }
}

//! Preemptive busy time (§4.4): the exact greedy for unbounded `g`
//! (Theorem 6) and the 2-approximation for bounded `g` (Theorem 7).
//!
//! **Unbounded `g`.** The objective reduces to choosing a measurable set
//! `S` of open time minimizing `|S|` subject to
//! `|S ∩ [r_j, d_j)| ≥ p_j` for every job — per-window demand constraints.
//! The paper's greedy repeatedly takes the earliest remaining deadline
//! `d_1`, opens the latest `ℓ_{max,1}` (longest remaining length among
//! deadline-`d_1` jobs) units of still-closed time before `d_1`, schedules
//! every live job maximally inside the newly opened time, contracts it, and
//! repeats; we implement the contraction with an explicit open-set in
//! original coordinates.
//!
//! **Bounded `g`** (Theorem 7). Take the unbounded solution `S_∞`, split
//! its busy region at piece endpoints into interesting intervals, and pack
//! the jobs of each interval onto `⌈n_i/g⌉` machines, at most one of which
//! is non-full. Full machines charge the mass bound, the non-full ones
//! charge `OPT_∞`, giving 2·OPT.

#![allow(clippy::while_let_loop)] // the loop has a mid-body exit condition

use abt_core::{Error, Instance, Interval, IntervalSet, Piece, PreemptiveSchedule, Result, Time};

/// The unbounded-`g` preemptive solution.
#[derive(Debug, Clone)]
pub struct UnboundedPreemptive {
    /// Open time (the busy set).
    pub open: IntervalSet,
    /// Pieces per job (within the open set), covering `p_j` each.
    pub pieces: Vec<Vec<Interval>>,
    /// Total busy time `|open|` — exact `OPT_∞` for preemptive jobs.
    pub cost: i64,
}

/// Theorem 6: exact greedy for unbounded `g`.
pub fn preemptive_unbounded(inst: &Instance) -> UnboundedPreemptive {
    let n = inst.len();
    let mut rem: Vec<i64> = inst.jobs().iter().map(|j| j.length).collect();
    let mut open = IntervalSet::new();
    let mut pieces: Vec<Vec<Interval>> = vec![Vec::new(); n];

    loop {
        // Earliest deadline among unfinished jobs.
        let Some(d1) = (0..n)
            .filter(|&j| rem[j] > 0)
            .map(|j| inst.job(j).deadline)
            .min()
        else {
            break;
        };
        let lmax = (0..n)
            .filter(|&j| rem[j] > 0 && inst.job(j).deadline == d1)
            .map(|j| rem[j])
            .max()
            .unwrap();
        // Open the latest `lmax` closed units before d1.
        let newly = latest_closed(&open, d1, lmax);
        debug_assert_eq!(
            newly.iter().map(Interval::len).sum::<i64>(),
            lmax,
            "deadline-d1 job must fit (its window has enough closed room by feasibility)"
        );
        for &iv in &newly {
            open.insert(iv);
        }
        // Schedule every live unfinished job maximally inside the new time,
        // latest-first (keeps early new time free for earlier-release jobs —
        // any maximal assignment works for the cost argument).
        for j in 0..n {
            if rem[j] == 0 {
                continue;
            }
            let w = inst.job(j).window();
            for iv in newly.iter().rev() {
                if rem[j] == 0 {
                    break;
                }
                if let Some(avail) = iv.intersect(&w) {
                    let take = rem[j].min(avail.len());
                    if take > 0 {
                        // Latest `take` units of the availability.
                        pieces[j].push(Interval::new(avail.end - take, avail.end));
                        rem[j] -= take;
                    }
                }
            }
        }
    }
    let cost = open.measure();
    UnboundedPreemptive { open, pieces, cost }
}

/// The latest `amount` units of time before `deadline` not yet in `open`,
/// as disjoint intervals sorted ascending.
fn latest_closed(open: &IntervalSet, deadline: Time, amount: i64) -> Vec<Interval> {
    let mut out: Vec<Interval> = Vec::new();
    let mut need = amount;
    let mut cursor = deadline;
    // Walk the open components right-to-left from `deadline`.
    let comps = open.components();
    let mut idx = comps.partition_point(|c| c.start < deadline);
    while need > 0 {
        let gap_start = if idx == 0 {
            i64::MIN / 2
        } else {
            comps[idx - 1].end
        };
        let gap_end = cursor;
        let gap = (gap_end - gap_start).max(0);
        let take = need.min(gap);
        if take > 0 {
            out.push(Interval::new(gap_end - take, gap_end));
            need -= take;
        }
        if idx == 0 {
            break;
        }
        idx -= 1;
        cursor = comps[idx].start;
    }
    out.sort_unstable();
    out
}

/// Validates an unbounded preemptive solution (window containment and
/// per-job totals).
pub fn validate_unbounded(inst: &Instance, sol: &UnboundedPreemptive) -> Result<()> {
    for (j, ps) in sol.pieces.iter().enumerate() {
        let job = inst.job(j);
        let mut sorted = ps.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            if w[0].end > w[1].start {
                return Err(Error::InvalidSchedule(format!("job {j} pieces overlap")));
            }
        }
        let total: i64 = sorted.iter().map(Interval::len).sum();
        if total != job.length {
            return Err(Error::InvalidSchedule(format!(
                "job {j} got {total} of {} units",
                job.length
            )));
        }
        for p in &sorted {
            if p.start < job.release || p.end > job.deadline {
                return Err(Error::InvalidSchedule(format!(
                    "job {j} piece {p} outside window"
                )));
            }
            if !sol.open.covers(p) {
                return Err(Error::InvalidSchedule(format!(
                    "job {j} piece {p} outside open time"
                )));
            }
        }
    }
    Ok(())
}

/// Theorem 7: 2-approximate preemptive schedule for bounded `g`.
pub fn preemptive_bounded(inst: &Instance) -> PreemptiveSchedule {
    let unbounded = preemptive_unbounded(inst);
    // Interesting boundaries: all piece endpoints.
    let mut cuts: Vec<Time> = unbounded
        .pieces
        .iter()
        .flatten()
        .flat_map(|iv| [iv.start, iv.end])
        .collect();
    cuts.sort_unstable();
    cuts.dedup();

    let mut machines: Vec<Vec<Piece>> = Vec::new();
    for w in cuts.windows(2) {
        let seg = Interval::new(w[0], w[1]);
        if !unbounded.open.covers(&seg) {
            continue;
        }
        // Jobs with a piece covering this segment.
        let active: Vec<usize> = (0..inst.len())
            .filter(|&j| {
                unbounded.pieces[j]
                    .iter()
                    .any(|p| p.contains_interval(&seg))
            })
            .collect();
        // Greedy fill: ⌈|active|/g⌉ fresh machines for this segment.
        for chunk in active.chunks(inst.g()) {
            machines.push(
                chunk
                    .iter()
                    .map(|&j| Piece {
                        job: j,
                        interval: seg,
                    })
                    .collect(),
            );
        }
    }
    PreemptiveSchedule { machines }
}

/// Lower bound for preemptive busy time: `max(⌈mass/g⌉, OPT_∞)` where
/// `OPT_∞` is the exact unbounded preemptive optimum.
pub fn preemptive_lower_bound(inst: &Instance) -> i64 {
    let mass = inst.total_length();
    let g = inst.g() as i64;
    let unbounded = preemptive_unbounded(inst).cost;
    ((mass + g - 1) / g).max(unbounded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abt_core::within_factor;

    #[test]
    fn single_job_opens_exactly_its_length() {
        let inst = Instance::from_triples([(0, 10, 4)], 1).unwrap();
        let sol = preemptive_unbounded(&inst);
        validate_unbounded(&inst, &sol).unwrap();
        assert_eq!(sol.cost, 4);
        // Opened as late as possible: [6, 10).
        assert_eq!(sol.open.components(), &[Interval::new(6, 10)]);
    }

    #[test]
    fn overlapping_windows_share_open_time() {
        // Jobs (0,10,4) and (2,12,4): greedy opens [6,10) for the first;
        // the second schedules fully inside it → cost 4.
        let inst = Instance::from_triples([(0, 10, 4), (2, 12, 4)], 9).unwrap();
        let sol = preemptive_unbounded(&inst);
        validate_unbounded(&inst, &sol).unwrap();
        assert_eq!(sol.cost, 4);
    }

    #[test]
    fn disjoint_windows_add_up() {
        let inst = Instance::from_triples([(0, 4, 2), (10, 14, 3)], 5).unwrap();
        let sol = preemptive_unbounded(&inst);
        validate_unbounded(&inst, &sol).unwrap();
        assert_eq!(sol.cost, 5);
    }

    #[test]
    fn preemption_splits_around_full_windows() {
        // Job A must use [4,6) (rigid); job B (0,8,4) can reuse [4,6) and
        // extend. Greedy: d1=6 → open [4,6); then B needs 2 more before 8.
        let inst = Instance::from_triples([(4, 6, 2), (0, 8, 4)], 9).unwrap();
        let sol = preemptive_unbounded(&inst);
        validate_unbounded(&inst, &sol).unwrap();
        assert_eq!(sol.cost, 4);
    }

    #[test]
    fn matches_rightmost_covering_oracle() {
        // Exactness (Theorem 6): compare with a tick-level rightmost greedy
        // on the covering formulation, which is exact for interval demands.
        let mut state = 0x1234u64;
        let mut next = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        for trial in 0..40 {
            let n = 1 + next(5) as usize;
            let mut triples = Vec::new();
            for _ in 0..n {
                let r = next(10) as i64;
                let len = 1 + next(5) as i64;
                let d = r + len + next(6) as i64;
                triples.push((r, d, len));
            }
            let inst = Instance::from_triples(triples.clone(), 1).unwrap();
            let sol = preemptive_unbounded(&inst);
            validate_unbounded(&inst, &sol).unwrap();
            let oracle = rightmost_cover_cost(&inst);
            assert_eq!(sol.cost, oracle, "trial {trial} on {triples:?}");
        }
    }

    /// Tick-level rightmost greedy for the covering problem
    /// (process deadlines ascending, open rightmost ticks on deficit).
    fn rightmost_cover_cost(inst: &Instance) -> i64 {
        use std::collections::BTreeSet;
        let mut ids = inst.ids_by_deadline();
        ids.sort_by_key(|&j| (inst.job(j).deadline, inst.job(j).release));
        let mut open: BTreeSet<Time> = BTreeSet::new();
        for j in ids {
            let job = inst.job(j);
            let have = open.range(job.release..job.deadline).count() as i64;
            let mut deficit = job.length - have;
            let mut t = job.deadline - 1;
            while deficit > 0 {
                if open.insert(t) {
                    deficit -= 1;
                }
                t -= 1;
            }
        }
        open.len() as i64
    }

    #[test]
    fn bounded_schedule_is_valid_and_two_approx() {
        let mut state = 0x7777u64;
        let mut next = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        for _ in 0..25 {
            let n = 2 + next(6) as usize;
            let g = 1 + next(3) as usize;
            let mut triples = Vec::new();
            for _ in 0..n {
                let r = next(10) as i64;
                let len = 1 + next(5) as i64;
                let d = r + len + next(6) as i64;
                triples.push((r, d, len));
            }
            let inst = Instance::from_triples(triples, g).unwrap();
            let sched = preemptive_bounded(&inst);
            sched.validate(&inst).unwrap();
            let lb = preemptive_lower_bound(&inst);
            assert!(
                within_factor(sched.total_busy_time(), 2, lb),
                "preemptive bounded exceeded 2×LB"
            );
        }
    }
}

//! Tracks: sets of interval jobs with pairwise-disjoint windows
//! (Definition 14), and maximum-length track extraction.
//!
//! `GREEDYTRACKING` repeatedly needs the *longest* track of the remaining
//! jobs, i.e. a maximum-weight independent set in an interval graph with
//! weights = lengths — the classic weighted interval scheduling DP
//! (sort by right endpoint, binary-search the latest compatible
//! predecessor).

use abt_core::{Instance, Interval, JobId};

/// Computes a maximum-total-length track among `jobs` (ids into `inst`,
/// which must be interval jobs). Ties are broken deterministically by the
/// DP's right-endpoint order. Returns the chosen ids, sorted by start time.
pub fn longest_track(inst: &Instance, jobs: &[JobId]) -> Vec<JobId> {
    let prio: Vec<usize> = (0..inst.len()).collect();
    longest_track_with_priority(inst, jobs, &prio)
}

/// [`longest_track`] with an explicit tie-break priority per job id
/// (smaller = preferred among equal-length choices). GreedyTracking's
/// guarantee is tie-break independent, but its constant on tight gadgets is
/// not (Figs. 6–7) — the seeded variant exposes that spread as an ablation.
pub fn longest_track_with_priority(inst: &Instance, jobs: &[JobId], prio: &[usize]) -> Vec<JobId> {
    let mut items: Vec<(Interval, JobId)> = jobs
        .iter()
        .map(|&id| {
            let j = inst.job(id);
            debug_assert!(j.is_interval(), "tracks are defined on interval jobs");
            (j.window(), id)
        })
        .collect();
    items.sort_by_key(|(iv, id)| (iv.end, iv.start, prio[*id]));
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    // pred[i] = number of items whose end ≤ items[i].start (i.e. the DP
    // index of the latest compatible prefix).
    let ends: Vec<i64> = items.iter().map(|(iv, _)| iv.end).collect();
    let mut dp = vec![0i64; n + 1]; // dp[k] = best over first k items
    let mut take = vec![false; n];
    for i in 0..n {
        let (iv, _) = items[i];
        let pred = ends[..i].partition_point(|&e| e <= iv.start);
        let with = dp[pred] + iv.len();
        if with > dp[i] {
            dp[i + 1] = with;
            take[i] = true;
        } else {
            dp[i + 1] = dp[i];
        }
    }
    // Reconstruct.
    let mut chosen = Vec::new();
    let mut i = n;
    while i > 0 {
        if take[i - 1] {
            chosen.push(items[i - 1].1);
            let (iv, _) = items[i - 1];
            i = ends[..i - 1].partition_point(|&e| e <= iv.start);
        } else {
            i -= 1;
        }
    }
    chosen.sort_by_key(|&id| inst.job(id).release);
    chosen
}

/// Total length of a set of jobs (`ℓ(S)`).
pub fn total_length(inst: &Instance, jobs: &[JobId]) -> i64 {
    jobs.iter().map(|&id| inst.job(id).length).sum()
}

/// Whether `jobs` form a track (pairwise-disjoint windows).
pub fn is_track(inst: &Instance, jobs: &[JobId]) -> bool {
    let mut ivs: Vec<Interval> = jobs.iter().map(|&id| inst.job(id).window()).collect();
    ivs.sort_unstable();
    ivs.windows(2).all(|w| w[0].end <= w[1].start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abt_core::Job;

    fn inst(ivs: &[(i64, i64)]) -> Instance {
        Instance::new(ivs.iter().map(|&(a, b)| Job::interval(a, b)).collect(), 2).unwrap()
    }

    #[test]
    fn picks_disjoint_maximum() {
        // [0,3), [2,5), [5,9): best track = {0, 2} with length 7.
        let i = inst(&[(0, 3), (2, 5), (5, 9)]);
        let t = longest_track(&i, &[0, 1, 2]);
        assert_eq!(t, vec![0, 2]);
        assert!(is_track(&i, &t));
        assert_eq!(total_length(&i, &t), 7);
    }

    #[test]
    fn prefers_one_long_over_many_short() {
        // [0,10) vs {[0,3), [3,6), [6,9)}: lengths 10 vs 9.
        let i = inst(&[(0, 10), (0, 3), (3, 6), (6, 9)]);
        let t = longest_track(&i, &[0, 1, 2, 3]);
        assert_eq!(t, vec![0]);
    }

    #[test]
    fn prefers_many_short_when_longer() {
        let i = inst(&[(0, 8), (0, 3), (3, 6), (6, 9)]);
        let t = longest_track(&i, &[0, 1, 2, 3]);
        assert_eq!(t, vec![1, 2, 3]);
        assert_eq!(total_length(&i, &t), 9);
    }

    #[test]
    fn subset_restriction_respected() {
        let i = inst(&[(0, 10), (0, 3), (3, 6), (6, 9)]);
        let t = longest_track(&i, &[1, 2]);
        assert_eq!(t, vec![1, 2]);
    }

    #[test]
    fn empty_and_single() {
        let i = inst(&[(0, 5)]);
        assert!(longest_track(&i, &[]).is_empty());
        assert_eq!(longest_track(&i, &[0]), vec![0]);
    }

    #[test]
    fn touching_intervals_are_disjoint() {
        // Half-open windows: [0,3) and [3,5) don't overlap.
        let i = inst(&[(0, 3), (3, 5)]);
        let t = longest_track(&i, &[0, 1]);
        assert_eq!(t.len(), 2);
        assert!(is_track(&i, &t));
    }

    #[test]
    fn exhaustive_cross_check_small() {
        // Compare DP against brute force over all subsets.
        let cases = [
            vec![(0, 4), (1, 3), (2, 6), (5, 7), (6, 9)],
            vec![(0, 2), (0, 2), (1, 5), (4, 6), (2, 4)],
            vec![(0, 9), (1, 2), (2, 3), (3, 4), (4, 5)],
        ];
        for ivs in cases {
            let i = inst(&ivs);
            let ids: Vec<JobId> = (0..ivs.len()).collect();
            let dp_len = total_length(&i, &longest_track(&i, &ids));
            let mut best = 0;
            for mask in 0u32..(1 << ivs.len()) {
                let subset: Vec<JobId> = ids
                    .iter()
                    .copied()
                    .filter(|&j| mask >> j & 1 == 1)
                    .collect();
                if is_track(&i, &subset) {
                    best = best.max(total_length(&i, &subset));
                }
            }
            assert_eq!(dp_len, best, "instance {ivs:?}");
        }
    }
}

//! Online busy-time scheduling (the Shalom et al. setting discussed in
//! §1.3): interval jobs arrive in release order and must be assigned to a
//! machine irrevocably on arrival.
//!
//! No deterministic algorithm beats `g`-competitive on general instances;
//! greedy FirstFit is the standard `O(g)`-competitive baseline. The
//! [`OnlineScheduler`] keeps per-machine occupancy incrementally so each
//! arrival costs `O(machines × jobs-per-machine)` — a genuinely online data
//! structure rather than a replay of the offline code.

use abt_core::{Bundle, BusySchedule, Error, Instance, Interval, JobId, Result};

/// Incremental online scheduler for interval jobs.
#[derive(Debug, Clone)]
pub struct OnlineScheduler {
    g: usize,
    machines: Vec<Vec<Interval>>,
    assignments: Vec<(JobId, Interval, usize)>,
    last_release: Option<i64>,
}

impl OnlineScheduler {
    /// New scheduler for machines of capacity `g`.
    pub fn new(g: usize) -> Self {
        assert!(g >= 1);
        OnlineScheduler {
            g,
            machines: Vec::new(),
            assignments: Vec::new(),
            last_release: None,
        }
    }

    /// Handles the arrival of interval job `id` running as `iv`; returns the
    /// machine index it was irrevocably assigned to. Arrivals must come in
    /// non-decreasing release order (the online model).
    pub fn arrive(&mut self, id: JobId, iv: Interval) -> Result<usize> {
        if let Some(prev) = self.last_release {
            if iv.start < prev {
                return Err(Error::Unsupported(format!(
                    "online arrivals must be release-ordered ({} after {prev})",
                    iv.start
                )));
            }
        }
        self.last_release = Some(iv.start);
        let m = self
            .machines
            .iter()
            .position(|mach| fits(mach, iv, self.g))
            .unwrap_or_else(|| {
                self.machines.push(Vec::new());
                self.machines.len() - 1
            });
        self.machines[m].push(iv);
        self.assignments.push((id, iv, m));
        Ok(m)
    }

    /// Number of machines opened so far.
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// Current total busy time.
    pub fn total_busy_time(&self) -> i64 {
        self.machines
            .iter()
            .map(|m| abt_core::IntervalSet::from_intervals(m.iter().copied()).measure())
            .sum()
    }

    /// Converts the history into a [`BusySchedule`] over `n` jobs.
    pub fn into_schedule(self, machines_hint: usize) -> BusySchedule {
        let mut bundles = vec![Bundle::new(); self.machines.len().max(machines_hint)];
        for (id, iv, m) in self.assignments {
            bundles[m].items.push((id, iv.start));
        }
        BusySchedule { bundles }
    }
}

fn fits(machine: &[Interval], iv: Interval, g: usize) -> bool {
    // Arrivals are release-ordered, so only jobs still running at iv.start
    // or starting inside iv matter; count the peak inside iv.
    let mut events: Vec<(i64, i32)> = Vec::new();
    let mut base = 0i32;
    for other in machine {
        if !other.overlaps(&iv) {
            continue;
        }
        if other.start <= iv.start {
            base += 1;
        } else {
            events.push((other.start, 1));
        }
        if other.end < iv.end {
            events.push((other.end, -1));
        }
    }
    events.sort_unstable();
    let mut cur = base;
    let mut peak = base;
    for (_, d) in events {
        cur += d;
        peak = peak.max(cur);
    }
    (peak as usize) < g
}

/// Runs the online scheduler over a whole interval instance (jobs presented
/// in release order) and returns the final schedule.
pub fn online_first_fit(inst: &Instance) -> Result<BusySchedule> {
    if !inst.is_interval_instance() {
        return Err(Error::Unsupported(
            "online_first_fit requires interval jobs".into(),
        ));
    }
    let mut ids: Vec<JobId> = (0..inst.len()).collect();
    ids.sort_by_key(|&j| (inst.job(j).release, inst.job(j).deadline, j));
    let mut sched = OnlineScheduler::new(inst.g());
    for id in ids {
        sched.arrive(id, inst.job(id).window())?;
    }
    let out = sched.into_schedule(0);
    debug_assert!(out.validate(inst).is_ok());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_busy_time;
    use crate::firstfit::{first_fit, FirstFitOrder};
    use abt_core::{within_factor, Job};

    fn interval_inst(ivs: &[(i64, i64)], g: usize) -> Instance {
        Instance::new(ivs.iter().map(|&(a, b)| Job::interval(a, b)).collect(), g).unwrap()
    }

    #[test]
    fn matches_offline_release_order_firstfit() {
        let mut state = 0x0A11u64;
        let mut next = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        for _ in 0..20 {
            let n = 3 + next(10) as usize;
            let g = 1 + next(3) as usize;
            let mut ivs = Vec::new();
            for _ in 0..n {
                let r = next(20) as i64;
                ivs.push((r, r + 1 + next(8) as i64));
            }
            let inst = interval_inst(&ivs, g);
            let online = online_first_fit(&inst).unwrap();
            online.validate(&inst).unwrap();
            let offline = first_fit(&inst, FirstFitOrder::ByRelease).unwrap();
            assert_eq!(
                online.total_busy_time(&inst),
                offline.total_busy_time(&inst),
                "online replay must equal offline release-order FirstFit"
            );
        }
    }

    #[test]
    fn rejects_out_of_order_arrivals() {
        let mut s = OnlineScheduler::new(2);
        s.arrive(0, Interval::new(5, 8)).unwrap();
        assert!(s.arrive(1, Interval::new(3, 9)).is_err());
    }

    #[test]
    fn incremental_state_is_consistent() {
        let mut s = OnlineScheduler::new(2);
        assert_eq!(s.arrive(0, Interval::new(0, 4)).unwrap(), 0);
        assert_eq!(s.arrive(1, Interval::new(1, 5)).unwrap(), 0); // fits, g=2
        assert_eq!(s.arrive(2, Interval::new(2, 6)).unwrap(), 1); // overflow
        assert_eq!(s.machine_count(), 2);
        assert_eq!(s.total_busy_time(), 5 + 4);
        let inst = interval_inst(&[(0, 4), (1, 5), (2, 6)], 2);
        s.into_schedule(0).validate(&inst).unwrap();
    }

    #[test]
    fn adversarial_nested_arrivals_hurt_online() {
        // The classic online pain: a long job arrives first, then g
        // disjoint short jobs that offline would stack with it. Online
        // FirstFit co-locates the shorts with the long job greedily, while
        // offline groups the shorts per time slot — the gap grows with the
        // horizon. Verify online stays within g× of exact offline.
        let g = 3;
        let mut ivs = vec![(0i64, 100i64)];
        for k in 0..12 {
            ivs.push((k * 8, k * 8 + 1));
        }
        let inst = interval_inst(&ivs, g);
        let online = online_first_fit(&inst).unwrap();
        online.validate(&inst).unwrap();
        let exact = exact_busy_time(&inst, Some(20_000_000)).unwrap();
        assert!(within_factor(
            online.total_busy_time(&inst),
            g as i64 + 1,
            exact.cost
        ));
        assert!(online.total_busy_time(&inst) >= exact.cost);
    }
}

//! The Alicherry–Bhatia flow-based 2-approximation for busy time on
//! interval jobs (Appendix A.2 of the paper).
//!
//! Per *round*, the algorithm opens two bundles and performs `g`
//! iterations. Each iteration extracts a **2-unit flow** over the event
//! graph of the remaining jobs — nodes are event times; each job is a
//! unit-capacity arc from its start to its end; the *idle arc* between
//! consecutive events has capacity `max(0, 2 − demand)` — and decomposes it
//! into two unit paths. The job arcs of one path form a *track* (pairwise
//! disjoint intervals); path 1's track joins bundle A, path 2's joins
//! bundle B. Any point with positive demand loses at least one unit of
//! demand per iteration (the idle capacity there is at most `2 − demand`),
//! so a round removes `min(g, demand)` everywhere; each bundle is a union
//! of ≤ `g` tracks and is busy only inside the round's demand support.
//! Summing over rounds, the cost charges the demand-profile lower bound at
//! most twice.

use abt_core::{BusySchedule, DemandProfile, Error, Instance, Interval, JobId, Result, Time};
use abt_flow::{decompose_unit_paths, max_flow_limited, FlowGraph};

/// Diagnostics of an Alicherry–Bhatia run.
#[derive(Debug, Clone)]
pub struct AlicherryBhatiaRun {
    /// The schedule over real jobs.
    pub schedule: BusySchedule,
    /// The demand-profile lower bound (`Σ ⌈|A|/g⌉·ℓ`).
    pub profile_bound: i64,
    /// Number of two-bundle rounds performed.
    pub rounds: usize,
}

/// Runs Alicherry–Bhatia on an interval instance.
pub fn alicherry_bhatia(inst: &Instance) -> Result<BusySchedule> {
    Ok(alicherry_bhatia_run(inst)?.schedule)
}

/// Runs Alicherry–Bhatia, returning diagnostics.
pub fn alicherry_bhatia_run(inst: &Instance) -> Result<AlicherryBhatiaRun> {
    if !inst.is_interval_instance() {
        return Err(Error::Unsupported(
            "alicherry_bhatia requires interval jobs; use flexible::solve for general jobs".into(),
        ));
    }
    let g = inst.g();
    let profile_bound =
        DemandProfile::new(&inst.jobs().iter().map(|j| j.window()).collect::<Vec<_>>()).cost(g);

    let mut remaining: Vec<JobId> = (0..inst.len()).collect();
    let mut parts: Vec<Vec<JobId>> = Vec::new();
    let mut rounds = 0usize;
    while !remaining.is_empty() {
        rounds += 1;
        let mut bundle_a: Vec<JobId> = Vec::new();
        let mut bundle_b: Vec<JobId> = Vec::new();
        for _ in 0..g {
            if remaining.is_empty() {
                break;
            }
            let (track_a, track_b) = extract_two_tracks(inst, &remaining);
            if track_a.is_empty() && track_b.is_empty() {
                break; // both paths all-idle: demand exhausted
            }
            for &j in &track_a {
                bundle_a.push(j);
            }
            for &j in &track_b {
                bundle_b.push(j);
            }
            remaining.retain(|j| !track_a.contains(j) && !track_b.contains(j));
        }
        if !bundle_a.is_empty() {
            parts.push(bundle_a);
        }
        if !bundle_b.is_empty() {
            parts.push(bundle_b);
        }
    }
    let schedule = BusySchedule::from_interval_partition(inst, parts);
    Ok(AlicherryBhatiaRun {
        schedule,
        profile_bound,
        rounds,
    })
}

/// Builds the event graph of `jobs` and extracts one 2-unit flow, returning
/// the job sets of the two unit paths.
fn extract_two_tracks(inst: &Instance, jobs: &[JobId]) -> (Vec<JobId>, Vec<JobId>) {
    // Event times.
    let mut events: Vec<Time> = Vec::with_capacity(jobs.len() * 2);
    for &j in jobs {
        events.push(inst.job(j).release);
        events.push(inst.job(j).deadline);
    }
    events.sort_unstable();
    events.dedup();
    if events.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let node_of = |t: Time| -> usize { events.binary_search(&t).unwrap() };
    let profile = DemandProfile::new(
        &jobs
            .iter()
            .map(|&j| inst.job(j).window())
            .collect::<Vec<_>>(),
    );

    let mut graph = FlowGraph::new(events.len());
    // Job arcs.
    let mut arc_jobs: Vec<(usize, JobId)> = Vec::new(); // (edge id, job)
    for &j in jobs {
        let e = graph.add_edge(
            node_of(inst.job(j).release),
            node_of(inst.job(j).deadline),
            1,
        );
        arc_jobs.push((e, j));
    }
    // Idle arcs between consecutive events: capacity 2 across zero-demand
    // gaps, 1 inside the support (so at every positive-demand point at most
    // one of the two unit paths idles — i.e. at least one is in a job, which
    // is exactly the "reduce demand by ≥ 1 everywhere" property).
    for w in 0..events.len() - 1 {
        let seg = Interval::new(events[w], events[w + 1]);
        let demand = profile.raw_demand_at(seg.start) as i64;
        let cap = if demand == 0 { 2 } else { 1 };
        graph.add_edge(w, w + 1, cap);
    }
    let s = 0;
    let t = events.len() - 1;
    let flow = max_flow_limited(&mut graph, s, t, Some(2));
    debug_assert_eq!(flow.value, 2, "event graph always carries a 2-flow");
    let paths = decompose_unit_paths(&mut graph, s, t);
    let mut tracks: Vec<Vec<JobId>> = paths
        .iter()
        .map(|p| {
            p.iter()
                .filter_map(|&e| arc_jobs.iter().find(|&&(ae, _)| ae == e).map(|&(_, j)| j))
                .collect()
        })
        .collect();
    tracks.resize(2, Vec::new());
    let b = tracks.pop().unwrap();
    let a = tracks.pop().unwrap();
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abt_core::{within_factor, Job};

    fn interval_inst(ivs: &[(i64, i64)], g: usize) -> Instance {
        Instance::new(ivs.iter().map(|&(a, b)| Job::interval(a, b)).collect(), g).unwrap()
    }

    fn check(inst: &Instance) -> AlicherryBhatiaRun {
        let run = alicherry_bhatia_run(inst).unwrap();
        run.schedule.validate(inst).unwrap();
        let cost = run.schedule.total_busy_time(inst);
        assert!(
            within_factor(cost, 2, run.profile_bound),
            "AB cost {cost} > 2×profile {}",
            run.profile_bound
        );
        run
    }

    #[test]
    fn identical_jobs() {
        let inst = interval_inst(&[(0, 4); 4], 2);
        let run = check(&inst);
        assert_eq!(run.rounds, 1);
        assert_eq!(run.schedule.total_busy_time(&inst), 8);
    }

    #[test]
    fn chain_of_disjoint_jobs_one_track() {
        let inst = interval_inst(&[(0, 2), (2, 4), (4, 6)], 2);
        let run = check(&inst);
        // All three fit one track → one bundle, busy 6.
        assert_eq!(run.schedule.total_busy_time(&inst), 6);
    }

    #[test]
    fn high_demand_needs_multiple_rounds() {
        // 6 identical jobs, g = 2: demand 6 → 3 bands → ≥ 2 rounds. AB opens
        // two bundles per round, so it pays 4 machines here (12) against the
        // profile bound 9 — within its factor 2, but above OPT (9): exactly
        // the slack the Fig. 8 tight instance formalizes.
        let inst = interval_inst(&[(0, 3); 6], 2);
        let run = check(&inst);
        assert!(run.rounds >= 2);
        assert_eq!(run.schedule.total_busy_time(&inst), 12);
    }

    #[test]
    fn staircases_and_nests() {
        let cases = [
            vec![(0, 5), (2, 7), (4, 9), (6, 11), (8, 13)],
            vec![(0, 10), (1, 9), (2, 8), (3, 7), (4, 6)],
            vec![(0, 4), (0, 4), (2, 6), (2, 6), (4, 8), (4, 8)],
        ];
        for ivs in cases {
            for g in 1..=4 {
                check(&interval_inst(&ivs, g));
            }
        }
    }

    #[test]
    fn pseudorandom_two_approx_sweep() {
        let mut state = 0xBEEF5u64;
        let mut next = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        for _ in 0..40 {
            let n = 2 + next(8) as usize;
            let g = 1 + next(4) as usize;
            let mut ivs = Vec::new();
            for _ in 0..n {
                let r = next(12) as i64;
                let len = 1 + next(6) as i64;
                ivs.push((r, r + len));
            }
            check(&interval_inst(&ivs, g));
        }
    }

    #[test]
    fn rejects_flexible() {
        let inst = Instance::from_triples([(0, 9, 3)], 2).unwrap();
        assert!(matches!(
            alicherry_bhatia(&inst),
            Err(Error::Unsupported(_))
        ));
    }
}

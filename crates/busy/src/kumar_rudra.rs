//! The Kumar–Rudra 2-approximation for busy time on interval jobs
//! (Appendix A.1 of the paper; originally a fiber-minimization algorithm).
//!
//! Phase 0 pads every interesting interval's raw demand up to the next
//! multiple of `g` with dummy jobs (this does not change the demand-profile
//! lower bound). Phase 1 assigns every (real or dummy) job to a **level**
//! `ℓ(j) ≤ min_{t ∈ window} |A(t)|` such that at most **two** jobs of the
//! same level overlap at any point — feasible because at any time `t` at
//! most `2k` active jobs can have a window point of demand `≤ k` (only the
//! `k` leftmost-starting and `k` rightmost-ending active jobs can reach
//! such a point). Phase 2 opens **two machines per band** of `g` levels and
//! splits each level's overlap chains by parity (triangle-free interval
//! graphs are bipartite), so each machine runs at most one job per level,
//! i.e. at most `g` jobs, and each band-`i` machine is busy only where the
//! demand is at least `i`. Total cost ≤ 2 × the profile bound ≤ 2·OPT.

#![allow(clippy::needless_range_loop)] // levels are 1-based indices into level_members

use abt_core::{BusySchedule, DemandProfile, Error, Instance, Interval, JobId, Result};

/// A unit scheduled by the algorithm: a real job or a padding dummy.
#[derive(Debug, Clone, Copy)]
struct Unit {
    iv: Interval,
    job: Option<JobId>,
    level_cap: usize,
}

/// Diagnostic output of a Kumar–Rudra run.
#[derive(Debug, Clone)]
pub struct KumarRudraRun {
    /// The schedule over real jobs.
    pub schedule: BusySchedule,
    /// The demand-profile lower bound it charges (`Σ ⌈|A|/g⌉·ℓ`).
    pub profile_bound: i64,
    /// Number of levels used.
    pub levels: usize,
}

/// Runs Kumar–Rudra on an interval instance.
pub fn kumar_rudra(inst: &Instance) -> Result<BusySchedule> {
    Ok(kumar_rudra_run(inst)?.schedule)
}

/// Runs Kumar–Rudra, returning diagnostics.
pub fn kumar_rudra_run(inst: &Instance) -> Result<KumarRudraRun> {
    if !inst.is_interval_instance() {
        return Err(Error::Unsupported(
            "kumar_rudra requires interval jobs; use flexible::solve for general jobs".into(),
        ));
    }
    let g = inst.g();
    let real: Vec<Interval> = inst.jobs().iter().map(|j| j.window()).collect();
    let profile = DemandProfile::new(&real);
    let profile_bound = profile.cost(g);

    // Phase 0: pad to multiples of g.
    let dummies = profile.padding_to_multiple(g);
    let (schedule, levels) = level_band_pack(inst, &real, &dummies)?;
    Ok(KumarRudraRun {
        schedule,
        profile_bound,
        levels,
    })
}

/// Phases 1–2 of Kumar–Rudra, shared with `lp_rounding`: given the real
/// job windows and a set of padding dummies whose union profile has
/// demand a multiple of `g` on every positive segment, assign levels
/// (≤ 2 overlapping units per level), open two machines per band of `g`
/// levels, and parity-split each level. Returns the schedule over real
/// jobs and the number of levels used.
pub(crate) fn level_band_pack(
    inst: &Instance,
    real: &[Interval],
    dummies: &[Interval],
) -> Result<(BusySchedule, usize)> {
    let g = inst.g();
    let mut all: Vec<Interval> = real.to_vec();
    all.extend_from_slice(dummies);
    let padded_profile = DemandProfile::new(&all);

    let mut units: Vec<Unit> = Vec::with_capacity(all.len());
    for (i, &iv) in all.iter().enumerate() {
        let job = if i < real.len() { Some(i) } else { None };
        // Level cap: the min raw demand over the unit's interval (padded).
        let cap = padded_profile
            .segments()
            .iter()
            .filter(|(seg, _)| seg.overlaps(&iv))
            .map(|&(_, d)| d)
            .min()
            .unwrap_or(0);
        debug_assert!(cap >= 1);
        units.push(Unit {
            iv,
            job,
            level_cap: cap,
        });
    }

    // Phase 1: levels. Process by (level_cap asc, start asc): tightest
    // eligibility first (eligibility sets are prefixes {1..cap}).
    let mut order: Vec<usize> = (0..units.len()).collect();
    order.sort_by_key(|&i| (units[i].level_cap, units[i].iv.start, i));
    let max_level = padded_profile.max_raw_demand();
    let mut level_members: Vec<Vec<usize>> = vec![Vec::new(); max_level + 1];
    let mut assigned_level = vec![0usize; units.len()];
    for &ui in &order {
        let u = units[ui];
        let mut placed = false;
        for lvl in 1..=u.level_cap {
            // At most one existing member may cover any point of u.iv.
            let conflict = max_overlap_within(&level_members[lvl], &units, u.iv) >= 2;
            if !conflict {
                level_members[lvl].push(ui);
                assigned_level[ui] = lvl;
                placed = true;
                break;
            }
        }
        if !placed {
            return Err(Error::InvalidInstance(
                "Kumar–Rudra phase 1 could not place a job within its eligible levels".into(),
            ));
        }
    }

    // Phase 2: two machines per band of g levels; parity-split each level.
    let bands = max_level.div_ceil(g);
    let mut parts: Vec<Vec<JobId>> = vec![Vec::new(); bands * 2];
    for lvl in 1..=max_level {
        let band = (lvl - 1) / g;
        let mut members: Vec<usize> = level_members[lvl].clone();
        members.sort_by_key(|&ui| (units[ui].iv.start, units[ui].iv.end, ui));
        // Greedy 2-coloring along the sorted order (triangle-free interval
        // graph: a member conflicts only with its still-active predecessor).
        let mut color = vec![0u8; members.len()];
        for (k, &ui) in members.iter().enumerate() {
            let mut used = [false, false];
            for (k2, &uj) in members.iter().enumerate().take(k) {
                if units[uj].iv.overlaps(&units[ui].iv) {
                    used[color[k2] as usize] = true;
                }
            }
            color[k] = if used[0] { 1 } else { 0 };
            if used[color[k] as usize] {
                return Err(Error::InvalidInstance(
                    "Kumar–Rudra phase 2: level overlap chain is not 2-colorable".into(),
                ));
            }
        }
        for (k, &ui) in members.iter().enumerate() {
            if let Some(job) = units[ui].job {
                parts[band * 2 + color[k] as usize].push(job);
            }
        }
    }
    parts.retain(|p| !p.is_empty());
    let schedule = BusySchedule::from_interval_partition(inst, parts);
    Ok((schedule, max_level))
}

/// Maximum number of `members` (plus the candidate) simultaneously covering
/// a point of `iv`, counting only existing members.
fn max_overlap_within(members: &[usize], units: &[Unit], iv: Interval) -> usize {
    let mut events: Vec<(i64, i32)> = Vec::new();
    let mut base = 0i32;
    for &ui in members {
        let o = units[ui].iv;
        if !o.overlaps(&iv) {
            continue;
        }
        if o.start <= iv.start {
            base += 1;
        } else {
            events.push((o.start, 1));
        }
        if o.end < iv.end {
            events.push((o.end, -1));
        }
    }
    events.sort_unstable();
    let mut cur = base;
    let mut peak = base;
    for (_, d) in events {
        cur += d;
        peak = peak.max(cur);
    }
    peak.max(0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use abt_core::{within_factor, Job};

    fn interval_inst(ivs: &[(i64, i64)], g: usize) -> Instance {
        Instance::new(ivs.iter().map(|&(a, b)| Job::interval(a, b)).collect(), g).unwrap()
    }

    fn check(inst: &Instance) -> KumarRudraRun {
        let run = kumar_rudra_run(inst).unwrap();
        run.schedule.validate(inst).unwrap();
        let cost = run.schedule.total_busy_time(inst);
        assert!(
            within_factor(cost, 2, run.profile_bound),
            "KR cost {cost} > 2×profile {}",
            run.profile_bound
        );
        run
    }

    #[test]
    fn identical_jobs_one_band() {
        let inst = interval_inst(&[(0, 4); 4], 2);
        let run = check(&inst);
        assert!(run.schedule.total_busy_time(&inst) <= 8);
    }

    #[test]
    fn disjoint_jobs_single_level() {
        let inst = interval_inst(&[(0, 2), (3, 5), (6, 8)], 2);
        let run = check(&inst);
        assert_eq!(run.levels, 2); // padding doubles the singleton demand
        assert_eq!(run.schedule.total_busy_time(&inst), 6);
    }

    #[test]
    fn figure8_instance() {
        // Fig. 8 with ε = 4, ε' = 1, unit = 16 ticks, g = 2:
        // jobs: [0,16), [0,16+1), [16,16+4), [16+1,16+4), [16+1,16+4-1)...
        // Simplified faithful shape: two unit jobs, one ε job, one ε' job,
        // one ε−ε' job arranged as in the figure.
        let unit = 16;
        let e = 4;
        let e1 = 1;
        let ivs = vec![
            (0, unit),             // length 1
            (0, unit + e1),        // length 1 + ε'
            (unit, unit + e),      // length ε
            (unit + e1, unit + e), // length ε − ε'
        ];
        let inst = interval_inst(&ivs, 2);
        check(&inst);
    }

    #[test]
    fn staircase_and_nested_mixes() {
        let cases = [
            vec![(0, 5), (2, 7), (4, 9), (6, 11), (8, 13)],
            vec![(0, 10), (1, 9), (2, 8), (3, 7), (4, 6)],
            vec![(0, 4), (0, 4), (2, 6), (2, 6), (4, 8), (4, 8)],
        ];
        for ivs in cases {
            for g in 1..=4 {
                let inst = interval_inst(&ivs, g);
                check(&inst);
            }
        }
    }

    #[test]
    fn pseudorandom_two_approx_sweep() {
        let mut state = 0xFEEDu64;
        let mut next = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        for _ in 0..40 {
            let n = 2 + next(8) as usize;
            let g = 1 + next(4) as usize;
            let mut ivs = Vec::new();
            for _ in 0..n {
                let r = next(12) as i64;
                let len = 1 + next(6) as i64;
                ivs.push((r, r + len));
            }
            let inst = interval_inst(&ivs, g);
            check(&inst);
        }
    }

    #[test]
    fn rejects_flexible() {
        let inst = Instance::from_triples([(0, 9, 3)], 2).unwrap();
        assert!(matches!(kumar_rudra(&inst), Err(Error::Unsupported(_))));
    }
}

#![allow(clippy::needless_range_loop)] // index loops mirror the math
#![allow(deprecated)] // the shimmed legacy solve names stay covered

//! Differential test: simplex vs brute-force vertex enumeration on small
//! random LPs with exact rational arithmetic.
//!
//! For an LP `min c·x, Ax ≤ b, x ≥ 0` in `k` variables, every optimal basic
//! solution is a vertex of the polytope: the intersection of `k` tight
//! constraints (rows of `A` or axes). The oracle enumerates all such
//! intersections, filters the feasible ones, and takes the best objective.

use abt_lp::{solve, solve_hybrid, solve_revised, Cmp, LpProblem, LpStatus, Rat};
use proptest::prelude::*;

fn r(p: i64) -> Rat {
    Rat::from_int(p)
}

/// Solve a k×k exact linear system via Gaussian elimination; None if singular.
fn solve_square(mut m: Vec<Vec<Rat>>, mut rhs: Vec<Rat>) -> Option<Vec<Rat>> {
    let k = rhs.len();
    for col in 0..k {
        let piv = (col..k).find(|&i| !m[i][col].is_zero())?;
        m.swap(col, piv);
        rhs.swap(col, piv);
        let p = m[col][col];
        for j in 0..k {
            m[col][j] = m[col][j].div(&p);
        }
        rhs[col] = rhs[col].div(&p);
        for i in 0..k {
            if i != col && !m[i][col].is_zero() {
                let f = m[i][col];
                for j in 0..k {
                    let t = f.mul(&m[col][j]);
                    m[i][j] = m[i][j].sub(&t);
                }
                let t = f.mul(&rhs[col]);
                rhs[i] = rhs[i].sub(&t);
            }
        }
    }
    Some(rhs)
}

/// Brute-force optimum of `min c·x, Ax ≤ b, x ≥ 0` (or None if infeasible).
/// Assumes boundedness (we add a box x_i ≤ box to guarantee it).
fn brute_force(c: &[Rat], a: &[Vec<Rat>], b: &[Rat]) -> Option<Rat> {
    let k = c.len();
    let m = a.len();
    // Build the full row list: Ax ≤ b rows and axis rows x_i ≥ 0 (as -x_i ≤ 0).
    let mut rows: Vec<(Vec<Rat>, Rat)> = Vec::new();
    for i in 0..m {
        rows.push((a[i].clone(), b[i]));
    }
    for i in 0..k {
        let mut row = vec![Rat::ZERO; k];
        row[i] = Rat::from_int(-1);
        rows.push((row, Rat::ZERO));
    }
    let n_rows = rows.len();
    let feasible = |x: &[Rat]| -> bool {
        rows.iter().all(|(row, bi)| {
            let mut lhs = Rat::ZERO;
            for (coef, xi) in row.iter().zip(x) {
                lhs = lhs.add(&coef.mul(xi));
            }
            lhs <= *bi
        })
    };
    // Enumerate all k-subsets of rows (n_rows is tiny here).
    let mut best: Option<Rat> = None;
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        let msub: Vec<Vec<Rat>> = idx.iter().map(|&i| rows[i].0.clone()).collect();
        let rsub: Vec<Rat> = idx.iter().map(|&i| rows[i].1).collect();
        if let Some(x) = solve_square(msub, rsub) {
            if feasible(&x) {
                let mut obj = Rat::ZERO;
                for (ci, xi) in c.iter().zip(&x) {
                    obj = obj.add(&ci.mul(xi));
                }
                best = Some(match best {
                    Some(b) if b <= obj => b,
                    _ => obj,
                });
            }
        }
        // Next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return best;
            }
            i -= 1;
            if idx[i] != i + n_rows - k {
                idx[i] += 1;
                for j in i + 1..k {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// Builds `min c·x, Ax ≤ b, 0 ≤ x_i ≤ 10` from the raw proptest draws.
fn build_boxed_lp(k: usize, rows: &[(Vec<i64>, i64)], costs: &[i64]) -> LpProblem<Rat> {
    let mut lp: LpProblem<Rat> = LpProblem::new();
    let vars: Vec<_> = (0..k).map(|i| lp.add_var(r(costs[i]))).collect();
    for (coeffs, b) in rows {
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, r(coeffs[i])))
            .collect();
        lp.add_constraint(terms, Cmp::Le, r(*b));
    }
    for &v in &vars {
        lp.bound_var(v, r(10));
    }
    lp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn simplex_matches_vertex_enumeration(
        k in 1usize..4,
        rows in proptest::collection::vec(
            (proptest::collection::vec(-4i64..5, 3), 0i64..9), 1..5),
        costs in proptest::collection::vec(-5i64..6, 3),
    ) {
        // Build min c·x, Ax ≤ b, x ≥ 0, x_i ≤ 10 (bounding box).
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let vars: Vec<_> = (0..k).map(|i| lp.add_var(r(costs[i]))).collect();
        let mut a_rows: Vec<Vec<Rat>> = Vec::new();
        let mut b_vec: Vec<Rat> = Vec::new();
        for (coeffs, b) in &rows {
            let terms: Vec<_> = vars.iter().enumerate()
                .map(|(i, &v)| (v, r(coeffs[i])))
                .collect();
            lp.add_constraint(terms, Cmp::Le, r(*b));
            a_rows.push((0..k).map(|i| r(coeffs[i])).collect());
            b_vec.push(r(*b));
        }
        for &v in &vars {
            lp.bound_var(v, r(10));
            let mut row = vec![Rat::ZERO; k];
            row[v] = Rat::ONE;
            a_rows.push(row);
            b_vec.push(r(10));
        }
        let c: Vec<Rat> = (0..k).map(|i| r(costs[i])).collect();
        let oracle = brute_force(&c, &a_rows, &b_vec);
        let sol = solve(&lp);
        match oracle {
            None => prop_assert_eq!(sol.status, LpStatus::Infeasible),
            Some(best) => {
                prop_assert_eq!(sol.status.clone(), LpStatus::Optimal);
                prop_assert_eq!(sol.objective, best);
                prop_assert!(lp.is_feasible(&sol.x));

                // Strong duality: b·y = c·x, and dual feasibility:
                // Σ_i y_i a_ij ≤ c_j with y ≤ 0 on ≤ rows (all rows here).
                prop_assert_eq!(sol.duals.len(), lp.num_constraints());
                let mut by = Rat::ZERO;
                for (cons, y) in lp.constraints().iter().zip(&sol.duals) {
                    prop_assert!(y.signum() <= 0, "≤-row dual must be ≤ 0");
                    by = by.add(&y.mul(&cons.rhs));
                }
                prop_assert_eq!(by, sol.objective, "strong duality");
                for j in 0..k {
                    let mut aty = Rat::ZERO;
                    for (cons, y) in lp.constraints().iter().zip(&sol.duals) {
                        for &(v, coef) in &cons.terms {
                            if v == j {
                                aty = aty.add(&y.mul(&coef));
                            }
                        }
                    }
                    prop_assert!(aty <= r(costs[j]), "dual feasibility for var {}", j);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn hybrid_matches_pure_rational_simplex(
        k in 1usize..4,
        rows in proptest::collection::vec(
            (proptest::collection::vec(-4i64..5, 3), -3i64..9), 1..6),
        costs in proptest::collection::vec(-5i64..6, 3),
    ) {
        // The hybrid contract: status and objective bit-identical to the
        // pure exact simplex; the returned vertex exactly feasible and
        // exactly optimal; duals exactly feasible with strong duality.
        let lp = build_boxed_lp(k, &rows, &costs);
        let exact = solve(&lp);
        let hybrid = solve_hybrid(&lp);
        prop_assert_eq!(hybrid.status.clone(), exact.status.clone());
        if exact.status == LpStatus::Optimal {
            prop_assert_eq!(hybrid.objective, exact.objective);
            prop_assert!(lp.is_feasible(&hybrid.x));
            prop_assert_eq!(lp.objective_value(&hybrid.x), exact.objective);
            prop_assert_eq!(hybrid.duals.len(), lp.num_constraints());
            let mut by = Rat::ZERO;
            for (cons, y) in lp.constraints().iter().zip(&hybrid.duals) {
                prop_assert!(y.signum() <= 0, "≤-row dual must be ≤ 0");
                by = by.add(&y.mul(&cons.rhs));
            }
            prop_assert_eq!(by, exact.objective, "strong duality");
            for j in 0..k {
                let mut aty = Rat::ZERO;
                for (cons, y) in lp.constraints().iter().zip(&hybrid.duals) {
                    for &(v, coef) in &cons.terms {
                        if v == j {
                            aty = aty.add(&y.mul(&coef));
                        }
                    }
                }
                prop_assert!(aty <= r(costs[j]), "dual feasibility for var {}", j);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn revised_matches_dense_on_both_vub_encodings(
        k in 2usize..4,
        rows in proptest::collection::vec(
            (proptest::collection::vec(-4i64..5, 6), -3i64..9), 1..6),
        costs in proptest::collection::vec(-5i64..6, 6),
        key_ubs in proptest::collection::vec(0i64..7, 3),
        dep_cap in -1i64..7,
    ) {
        // `k` dependent/key pairs: dependent i (< k) is VUB-bounded by key
        // k + i. The keys carry constant bounds (so the LP is bounded);
        // optionally (`dep_cap ≥ 0`) dependent 0 also carries a constant
        // cap, exercising the promoted-bound-row path. The VUB encoding
        // must be bit-identical (status and objective) to the dense exact
        // simplex on the row encoding, under both the revised and the
        // dense-hybrid backends.
        let nvars = 2 * k;
        let mut row_lp: LpProblem<Rat> = LpProblem::new();
        let mut vub_lp: LpProblem<Rat> = LpProblem::new();
        for i in 0..nvars {
            row_lp.add_var(r(costs[i]));
            vub_lp.add_var(r(costs[i]));
        }
        for (coeffs, b) in &rows {
            let terms: Vec<_> = (0..nvars).map(|i| (i, r(coeffs[i]))).collect();
            row_lp.add_constraint(terms.clone(), Cmp::Le, r(*b));
            vub_lp.add_constraint(terms, Cmp::Le, r(*b));
        }
        for i in 0..k {
            let key = k + i;
            row_lp.add_constraint(vec![(i, Rat::ONE), (key, r(-1))], Cmp::Le, r(0));
            vub_lp.set_vub(i, key);
            row_lp.bound_var(key, r(key_ubs[i]));
            vub_lp.set_upper(key, r(key_ubs[i]));
        }
        if dep_cap >= 0 {
            row_lp.bound_var(0, r(dep_cap));
            vub_lp.set_upper(0, r(dep_cap)); // promoted to a row internally
        }
        let exact = solve(&row_lp);
        let rev = solve_revised(&vub_lp);
        let hyb = solve_hybrid(&vub_lp);
        for sol in [&rev, &hyb] {
            prop_assert_eq!(sol.status.clone(), exact.status.clone());
            if exact.status == LpStatus::Optimal {
                prop_assert_eq!(sol.objective, exact.objective);
                prop_assert!(vub_lp.is_feasible(&sol.x));
                prop_assert_eq!(vub_lp.objective_value(&sol.x), exact.objective);
                prop_assert_eq!(sol.duals.len(), vub_lp.num_constraints());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn revised_matches_dense_on_both_bound_encodings(
        k in 1usize..4,
        rows in proptest::collection::vec(
            (proptest::collection::vec(-4i64..5, 3), -3i64..9), 1..6),
        costs in proptest::collection::vec(-5i64..6, 3),
        ubs in proptest::collection::vec(0i64..11, 3),
    ) {
        // The bounded revised hybrid must be bit-identical (status and
        // objective) to the dense exact simplex whether the per-variable
        // box is written as explicit `≤` rows or as implicit bounds.
        let mut row_lp: LpProblem<Rat> = LpProblem::new();
        let mut bnd_lp: LpProblem<Rat> = LpProblem::new();
        for i in 0..k {
            row_lp.add_var(r(costs[i]));
            bnd_lp.add_var(r(costs[i]));
        }
        for (coeffs, b) in &rows {
            let terms: Vec<_> = (0..k).map(|i| (i, r(coeffs[i]))).collect();
            row_lp.add_constraint(terms.clone(), Cmp::Le, r(*b));
            bnd_lp.add_constraint(terms, Cmp::Le, r(*b));
        }
        for i in 0..k {
            row_lp.bound_var(i, r(ubs[i]));
            bnd_lp.set_upper(i, r(ubs[i]));
        }
        let exact = solve(&row_lp);
        for lp in [&row_lp, &bnd_lp] {
            let rev = solve_revised(lp);
            prop_assert_eq!(rev.status.clone(), exact.status.clone());
            if exact.status == LpStatus::Optimal {
                prop_assert_eq!(rev.objective, exact.objective);
                prop_assert!(lp.is_feasible(&rev.x));
                prop_assert_eq!(lp.objective_value(&rev.x), exact.objective);
                prop_assert_eq!(rev.duals.len(), lp.num_constraints());
            }
        }
    }
}

//! Differential and adversarial tests for the layered certification
//! tiers: every [`CertifyMode`] must return bit-identical results (the
//! interval tier only ever changes *how* dual feasibility is proven,
//! never *what* is reported), and an adversarially tiny dual gap must
//! drive the interval sweep to escalation rather than a wrong verdict.

use abt_lp::{
    solve, solve_lp, CertifyMode, Cmp, LpOptions, LpProblem, LpStatus, Rat, SolveFailure,
};
use proptest::prelude::*;

fn r(p: i64) -> Rat {
    Rat::from_int(p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn all_certify_modes_are_bit_identical(
        k in 2usize..4,
        rows in proptest::collection::vec(
            (proptest::collection::vec(-4i64..5, 6), -3i64..9), 1..6),
        costs in proptest::collection::vec(-5i64..6, 6),
        key_ubs in proptest::collection::vec(0i64..7, 3),
    ) {
        // `k` dependent/key VUB pairs over random rows: the families and
        // implicit bounds route the certifier through every resting state
        // (at-zero, at-upper, at-VUB, augmented key columns). The exact
        // dense simplex on the equivalent row encoding is the oracle.
        let nvars = 2 * k;
        let mut row_lp: LpProblem<Rat> = LpProblem::new();
        let mut vub_lp: LpProblem<Rat> = LpProblem::new();
        for &c in costs.iter().take(nvars) {
            row_lp.add_var(r(c));
            vub_lp.add_var(r(c));
        }
        for (coeffs, b) in &rows {
            let terms: Vec<_> = (0..nvars).map(|i| (i, r(coeffs[i]))).collect();
            row_lp.add_constraint(terms.clone(), Cmp::Le, r(*b));
            vub_lp.add_constraint(terms, Cmp::Le, r(*b));
        }
        for (i, &ub) in key_ubs.iter().enumerate().take(k) {
            let key = k + i;
            row_lp.add_constraint(vec![(i, Rat::ONE), (key, r(-1))], Cmp::Le, r(0));
            vub_lp.set_vub(i, key);
            row_lp.bound_var(key, r(ub));
            vub_lp.set_upper(key, r(ub));
        }
        let oracle = solve(&row_lp);
        let exact = solve_lp(&vub_lp, &LpOptions::new().certify(CertifyMode::Exact));
        let tiered =
            solve_lp(&vub_lp, &LpOptions::new().certify(CertifyMode::IntervalThenExact));
        match (&exact, &tiered) {
            (Ok(e), Ok(t)) => {
                prop_assert_eq!(e.solution.status.clone(), oracle.status.clone());
                prop_assert_eq!(t.solution.status.clone(), oracle.status.clone());
                if oracle.status == LpStatus::Optimal {
                    // Bit-identical across tiers AND against the oracle:
                    // objective, point, duals, and the terminal basis.
                    prop_assert_eq!(e.solution.objective, oracle.objective);
                    prop_assert_eq!(t.solution.objective, oracle.objective);
                    prop_assert_eq!(&t.solution.x, &e.solution.x);
                    prop_assert_eq!(&t.solution.duals, &e.solution.duals);
                    prop_assert_eq!(&t.snapshot, &e.snapshot);
                    // The tiered run must never pay for both sweeps on
                    // these well-scaled instances unless it escalated, and
                    // whichever tier proved it, the proof is counted.
                    prop_assert_eq!(
                        t.stats.interval_accepts + t.stats.interval_escalations, 1);
                    prop_assert_eq!(e.stats.interval_accepts, 0);
                    prop_assert_eq!(e.stats.interval_escalations, 0);
                }
            }
            (Err(ef), Err(tf)) => prop_assert_eq!(ef.clone(), tf.clone()),
            other => prop_assert!(false, "tiers disagreed on solvability: {:?}", other),
        }
        // Interval-only mode may refuse (NumericalStall) when the sweep is
        // inconclusive, but an accept must be bit-identical to Exact, and
        // a genuine failure (e.g. infeasibility) must match the other
        // tiers' verdict.
        match solve_lp(&vub_lp, &LpOptions::new().certify(CertifyMode::Interval)) {
            Ok(iv) => {
                let e = exact.as_ref().expect("exact agrees when interval accepts");
                prop_assert_eq!(iv.solution.objective, e.solution.objective);
                prop_assert_eq!(&iv.solution.x, &e.solution.x);
                prop_assert_eq!(&iv.snapshot, &e.snapshot);
                prop_assert_eq!(iv.stats.interval_accepts, 1);
            }
            Err(SolveFailure::NumericalStall) => {}
            Err(f) => {
                let ef = exact.as_ref().expect_err("interval failed where exact solved");
                prop_assert_eq!(&f, ef);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn warm_solves_are_bit_identical_across_certify_modes(
        k in 1usize..4,
        rows in proptest::collection::vec(
            (proptest::collection::vec(-4i64..5, 3), -3i64..9), 1..6),
        costs in proptest::collection::vec(-5i64..6, 3),
        ubs in proptest::collection::vec(1i64..11, 3),
    ) {
        let mut lp: LpProblem<Rat> = LpProblem::new();
        for &c in costs.iter().take(k) {
            lp.add_var(r(c));
        }
        for (coeffs, b) in &rows {
            let terms: Vec<_> = (0..k).map(|i| (i, r(coeffs[i]))).collect();
            lp.add_constraint(terms, Cmp::Le, r(*b));
        }
        for (i, &ub) in ubs.iter().enumerate().take(k) {
            lp.set_upper(i, r(ub));
        }
        let Ok(cold) = solve_lp(&lp, &LpOptions::new()) else {
            return Ok(()); // infeasible draws have no warm story
        };
        let Some(snap) = cold.snapshot.clone() else {
            return Ok(());
        };
        let pool = [snap];
        // Warm re-solves of the *same* problem from its own terminal
        // snapshot must hit, and stay bit-identical whichever tier
        // certifies the re-installed basis.
        for mode in [
            CertifyMode::Exact,
            CertifyMode::Interval,
            CertifyMode::IntervalThenExact,
        ] {
            let opts = LpOptions::new()
                .certify(mode)
                .snapshots(&pool)
                .warm_only(true);
            match solve_lp(&lp, &opts) {
                Ok(warm) => {
                    prop_assert!(warm.warm_hit);
                    prop_assert_eq!(warm.solution.objective, cold.solution.objective);
                    prop_assert_eq!(&warm.solution.x, &cold.solution.x);
                }
                // Interval-only certification may refuse inconclusively.
                Err(SolveFailure::NumericalStall) => {
                    prop_assert_eq!(mode, CertifyMode::Interval);
                }
                Err(other) => {
                    prop_assert!(false, "warm re-solve failed under {mode:?}: {other:?}");
                }
            }
        }
    }
}

/// Builds the adversarial straddle instance: minimize `−x₀` over
/// `3·x₀ + Σⱼ xⱼ ≤ 3` with `n` satellite columns whose costs are
/// `−1/3 + 2⁻⁶⁰`. At the optimum `x₀ = 1` is basic, the row dual is
/// `−1/3` (non-dyadic — its f64 enclosure is one ulp wide), and every
/// satellite's exact reduced cost is `2⁻⁶⁰`: positive, so the basis is
/// genuinely optimal, but 10⁴× smaller than the interval sweep's
/// outward-rounding width — every satellite column straddles zero.
fn straddle_lp(n: usize) -> LpProblem<Rat> {
    let mut lp: LpProblem<Rat> = LpProblem::new();
    lp.add_var(r(-1));
    // −1/3 + 2⁻⁶⁰ = (3 − 2⁶⁰) / (3·2⁶⁰), exactly.
    let tiny_above = Rat::new(3 - (1i128 << 60), 3 * (1i128 << 60));
    for _ in 0..n {
        lp.add_var(tiny_above);
    }
    let mut terms = vec![(0usize, r(3))];
    for j in 0..n {
        terms.push((j + 1, Rat::ONE));
    }
    lp.add_constraint(terms, Cmp::Le, r(3));
    // The satellites need upper bounds so the enclosing box is finite on
    // the paths that materialize bounds; generous enough to stay slack.
    for j in 0..n {
        lp.set_upper(j + 1, r(100));
    }
    lp
}

/// With more straddling columns than the per-solve rescue cap, the
/// interval sweep must go inconclusive and escalate — and the escalated
/// exact sweep must certify the same bit-identical optimum the pure exact
/// tier reports. A 2⁻⁶⁰ dual gap must never produce a wrong verdict.
#[test]
fn adversarial_tiny_gap_escalates_to_exact() {
    let lp = straddle_lp(24);
    let exact = solve_lp(&lp, &LpOptions::new().certify(CertifyMode::Exact))
        .expect("exact certification of the straddle instance");
    assert_eq!(exact.solution.status, LpStatus::Optimal);
    assert_eq!(exact.solution.objective, r(-1));
    assert_eq!(exact.stats.interval_escalations, 0);

    let tiered = solve_lp(
        &lp,
        &LpOptions::new().certify(CertifyMode::IntervalThenExact),
    )
    .expect("escalation must rescue the tiered solve");
    assert_eq!(
        tiered.stats.interval_escalations, 1,
        "a straddle beyond the rescue cap must escalate"
    );
    assert_eq!(tiered.stats.interval_accepts, 0);
    assert_eq!(tiered.solution.objective, exact.solution.objective);
    assert_eq!(tiered.solution.x, exact.solution.x);
    assert_eq!(tiered.solution.duals, exact.solution.duals);
    assert_eq!(tiered.snapshot, exact.snapshot);
}

/// Interval-only certification must *refuse* the straddle instance
/// (inconclusive is not a proof) rather than accept or mis-refute it —
/// the supervision ladder upstream absorbs the refusal by demoting.
#[test]
fn adversarial_tiny_gap_refuses_under_interval_only() {
    let lp = straddle_lp(24);
    match solve_lp(&lp, &LpOptions::new().certify(CertifyMode::Interval)) {
        Err(SolveFailure::NumericalStall) => {}
        other => panic!("interval-only mode must refuse the straddle instance, got {other:?}"),
    }
}

/// A *small* number of straddling columns stays within the per-column
/// rescue cap: the sweep rescues each straddle exactly and still accepts
/// at the interval tier, with no escalation.
#[test]
fn isolated_straddles_are_rescued_without_escalation() {
    let lp = straddle_lp(2);
    let rep = solve_lp(
        &lp,
        &LpOptions::new().certify(CertifyMode::IntervalThenExact),
    )
    .expect("rescued interval certification");
    assert_eq!(rep.stats.interval_accepts, 1);
    assert_eq!(rep.stats.interval_escalations, 0);
    assert_eq!(rep.solution.objective, r(-1));
}

//! Fault-injection tests for the solver crate: injected panics in the
//! pivot loop and FTRAN must never leak or double-checkout `SolveArena`
//! buffers, and solves that *survive* injection must stay bit-identical
//! to fault-free runs.
//!
//! Compiled only with `--features fault-injection`; every test holds the
//! process-global [`faultinject::exclusive`] guard.

#![cfg(feature = "fault-injection")]
#![allow(deprecated)] // the shimmed legacy solve names stay covered

use abt_core::faultinject::{self, FaultSpec};
use abt_lp::{solve, try_solve_revised_with, with_arena, Cmp, LpProblem, Rat, RevisedOptions};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn r(p: i64, q: i64) -> Rat {
    Rat::new(p as i128, q as i128)
}

/// A small LP1-shaped instance (VUB family + capacity + demand rows) with
/// data varied by `k`, so consecutive solves are siblings, not clones.
fn instance(k: i64) -> LpProblem<Rat> {
    let g = r(2, 1);
    let mut lp: LpProblem<Rat> = LpProblem::new();
    let y = lp.add_var(Rat::ONE);
    lp.set_upper(y, r(3 + k % 3, 1));
    let x0 = lp.add_var(Rat::ZERO);
    let x1 = lp.add_var(Rat::ZERO);
    lp.set_vub(x0, y);
    lp.set_vub(x1, y);
    lp.add_constraint(
        vec![(x0, Rat::ONE), (x1, Rat::ONE), (y, g.neg())],
        Cmp::Le,
        Rat::ZERO,
    );
    lp.add_constraint(vec![(x0, Rat::ONE)], Cmp::Ge, r(1 + k % 2, 1));
    lp.add_constraint(vec![(x1, Rat::ONE)], Cmp::Ge, r(2, 1));
    lp
}

/// Satellite: a panicking component solve mid-pivot must not leak or
/// double-checkout arena buffers — the thread-local pool's high-water mark
/// stays bounded and no fresh allocations appear across 1000 injected
/// failures, because `Rev`'s `Drop` recycles every checked-out buffer on
/// the unwind path exactly as on the ordinary return path.
#[test]
fn injected_pivot_panics_never_leak_arena_buffers() {
    let _guard = faultinject::exclusive();
    // Warm the pool with clean solves so later checkouts can all be
    // served by recycled buffers.
    for k in 0..4 {
        try_solve_revised_with(&instance(k), &RevisedOptions::default()).expect("clean solve");
    }
    let before = with_arena(|a| a.stats());
    faultinject::configure("panic_in_pivot", FaultSpec::panic_every(1));
    for k in 0..1000 {
        let lp = instance(k % 7);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            try_solve_revised_with(&lp, &RevisedOptions::default())
        }));
        assert!(caught.is_err(), "every:1 must panic every solve");
    }
    faultinject::reset();
    let after = with_arena(|a| a.stats());
    assert!(
        after.pooled_f64 <= abt_lp::arena::MAX_POOLED
            && after.pooled_pairs <= abt_lp::arena::MAX_POOLED,
        "pool high-water must stay bounded under injected panics"
    );
    let fresh_before = before.checkouts - before.reuses;
    let fresh_after = after.checkouts - after.reuses;
    assert_eq!(
        fresh_before,
        fresh_after,
        "unwinding solves must recycle every buffer (fresh allocations grew by {})",
        fresh_after - fresh_before
    );
    // The pool still serves clean solves with the right answers.
    let lp = instance(1);
    let rep = try_solve_revised_with(&lp, &RevisedOptions::default()).expect("post-fault solve");
    assert_eq!(rep.solution.objective, solve(&lp).objective);
}

/// FTRAN panics unwind from deeper inside an iteration (a column solve is
/// in flight); the arena discipline must hold there too, and intermittent
/// triggers must leave the surviving solves bit-identical to fault-free
/// runs.
#[test]
fn intermittent_ftran_panics_leave_survivors_bit_identical() {
    let _guard = faultinject::exclusive();
    let baselines: Vec<Rat> = (0..6)
        .map(|k| {
            try_solve_revised_with(&instance(k), &RevisedOptions::default())
                .expect("fault-free solve")
                .solution
                .objective
        })
        .collect();
    // Every 19th FTRAN panics. The counter runs across solves and a small
    // instance makes a handful of FTRANs, so the fault lands in a
    // different solve (or between solves) each round: some die, most
    // survive.
    faultinject::configure("panic_in_ftran", FaultSpec::panic_every(19));
    let mut survived = 0usize;
    for round in 0..50 {
        for k in 0..6 {
            let lp = instance(k);
            let caught = catch_unwind(AssertUnwindSafe(|| {
                try_solve_revised_with(&lp, &RevisedOptions::default())
            }));
            if let Ok(Ok(rep)) = caught {
                assert_eq!(
                    rep.solution.objective, baselines[k as usize],
                    "survivor (round {round}, k {k}) must be bit-identical"
                );
                survived += 1;
            }
        }
    }
    faultinject::reset();
    assert!(
        survived > 0,
        "an every:19 trigger must let some solves finish"
    );
    let after = with_arena(|a| a.stats());
    assert!(
        after.pooled_f64 <= abt_lp::arena::MAX_POOLED
            && after.pooled_pairs <= abt_lp::arena::MAX_POOLED
    );
}

/// The `slow_certify` failpoint plus a wall-time budget, under the
/// default interval-then-exact certification: the deadline checks inside
/// the *interval tier* (every 512 columns and before each per-column
/// rescue) convert the injected delay into a typed `BudgetExceeded(Time)`
/// — the budget machinery is live inside the new tier, not just at the
/// certifier's entry.
#[test]
fn slow_certify_trips_budget_inside_interval_tier() {
    use abt_lp::{solve_lp, BoundedOptions, BudgetKind, CertifyMode, LpOptions, SolveFailure};
    let _guard = faultinject::exclusive();
    let lp = instance(0);
    for mode in [CertifyMode::Interval, CertifyMode::IntervalThenExact] {
        // The nth trigger is per-configure: re-arm for each mode.
        faultinject::configure("slow_certify", FaultSpec::delay_nth(1, 30));
        let opts = LpOptions::new()
            .pricing(BoundedOptions {
                time_budget: Some(std::time::Duration::from_millis(5)),
                ..BoundedOptions::default()
            })
            .certify(mode);
        match solve_lp(&lp, &opts) {
            Err(SolveFailure::BudgetExceeded(BudgetKind::Time)) => {}
            Ok(rep) => {
                // Timer granularity may let the solve through; then it
                // must be exactly right.
                assert_eq!(rep.solution.objective, solve(&lp).objective);
            }
            other => panic!("expected a Time budget trip or a clean solve, got {other:?}"),
        }
    }
    faultinject::reset();
}

/// The `slow_certify` failpoint plus a wall-time budget: the certifier's
/// deadline check at entry converts the injected delay into a typed
/// `BudgetExceeded(Time)` instead of a wrong verdict.
#[test]
fn slow_certify_with_time_budget_trips_typed() {
    use abt_lp::{BoundedOptions, BudgetKind, SolveFailure};
    let _guard = faultinject::exclusive();
    faultinject::configure("slow_certify", FaultSpec::delay_nth(1, 30));
    let opts = RevisedOptions {
        pricing: BoundedOptions {
            time_budget: Some(std::time::Duration::from_millis(5)),
            ..BoundedOptions::default()
        },
        ..RevisedOptions::default()
    };
    let lp = instance(0);
    let out = try_solve_revised_with(&lp, &opts);
    faultinject::reset();
    // Either the float pass itself tripped the time budget first, or the
    // delayed certifier did; both are typed Time trips, never a wrong
    // answer.
    match out {
        Err(SolveFailure::BudgetExceeded(BudgetKind::Time)) => {}
        Ok(rep) => {
            // Timer granularity may let the solve through; then it must be
            // exactly right.
            assert_eq!(rep.solution.objective, solve(&lp).objective);
        }
        other => panic!("expected a Time budget trip or a clean solve, got {other:?}"),
    }
}
